//! # wardrop
//!
//! A production-quality Rust reproduction of **“Adaptive routing with
//! stale information”** (Simon Fischer & Berthold Vöcking, PODC 2005;
//! journal version TCS 410:3357–3371, 2009).
//!
//! The paper studies load-adaptive rerouting in the Wardrop model when
//! agents act on *stale* information from a periodically refreshed
//! bulletin board. Naive policies (best response) oscillate forever;
//! the paper's **α-smooth** policies — sample a path, migrate with
//! probability at most `α · (latency gain)` — provably converge to
//! Wardrop equilibria whenever the update period satisfies
//! `T ≤ 1/(4 D α β)`.
//!
//! This facade re-exports the five sub-crates:
//!
//! * [`pool`] — the hand-rolled worker pool behind the deterministic
//!   multi-threaded engine (bit-identical to serial at any lane
//!   count);
//! * [`net`] — the Wardrop model substrate (graphs, latencies, paths,
//!   flows, potential, equilibria, instance builders);
//! * [`core`] — the paper's contribution (bulletin board, smooth
//!   policies, fluid-limit engine, best response, closed forms);
//! * [`analysis`] — equilibrium solvers, price of anarchy, oscillation
//!   detection, convergence metrics;
//! * [`agents`] — a finite-population discrete-event simulator.
//!
//! # Quick start
//!
//! ```
//! use wardrop::prelude::*;
//!
//! // The Braess network under replicator dynamics with a stale board.
//! let inst = builders::braess();
//! let policy = replicator(&inst);
//! let t_safe = safe_update_period(&inst, policy.smoothness().unwrap());
//! let config = SimulationConfig::new(t_safe, 500);
//! let traj = run(&inst, &policy, &FlowVec::uniform(&inst), &config);
//! assert_eq!(traj.monotonicity_violations(1e-10), 0); // Lemma 4
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Compile and run the README's code blocks as doctests, so the
// quickstart snippet there can never drift from the real API.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;

pub use wardrop_agents as agents;
pub use wardrop_analysis as analysis;
pub use wardrop_core as core;
pub use wardrop_net as net;
pub use wardrop_pool as pool;

/// Commonly used items in one import.
pub mod prelude {
    pub use wardrop_agents::sim::{run_agents, run_agents_scenario, AgentPolicy, AgentSimConfig};
    pub use wardrop_analysis::edge_metrics::{
        best_reply_distances, edge_gap_report, edge_regret, EdgeGapReport,
    };
    pub use wardrop_analysis::frank_wolfe::{minimise, FrankWolfeConfig, Objective};
    pub use wardrop_analysis::metrics::{bad_phase_count, summarise, EquilibriumKind};
    pub use wardrop_analysis::oscillation::{amplitude, detect_orbit, OrbitKind};
    pub use wardrop_analysis::poa::price_of_anarchy;
    pub use wardrop_analysis::rates::potential_decay_rate;
    pub use wardrop_analysis::regret::population_regret;
    pub use wardrop_analysis::robustness::{
        divergence_threshold, divergence_threshold_by, robustness_report, worst_excursion,
        RobustnessReport, SafetyMargin,
    };
    pub use wardrop_analysis::tracking::{tracking_report, TrackingReport};
    pub use wardrop_core::best_response::BestResponse;
    pub use wardrop_core::board::{BoardPrecision, BulletinBoard};
    pub use wardrop_core::edge_engine::{run_edge, run_edge_scenario, EdgeSimulation, PathSeeding};
    pub use wardrop_core::engine::{
        run, run_scenario, Dynamics, Parallelism, PhaseSchedule, Simulation, SimulationConfig,
    };
    pub use wardrop_core::ensemble::{map_runs, run_many, RunSpec};
    pub use wardrop_core::fault::{FaultPlan, FaultStats};
    pub use wardrop_core::guard::{GuardConfig, GuardLog, SmoothnessGuard};
    pub use wardrop_core::integrator::Integrator;
    pub use wardrop_core::kernel::SeparableKernel;
    pub use wardrop_core::migration::{
        BetterResponse, Linear, MigrationRule, RelativeSlack, ScaledLinear,
    };
    pub use wardrop_core::policy::{
        fast_relative_slack, replicator, smoothed_best_response, stock_policy_zoo, uniform_linear,
        PhaseRates, ReroutingPolicy, SmoothPolicy,
    };
    pub use wardrop_core::sampling::{Logit, Proportional, SamplingRule, Uniform};
    pub use wardrop_core::theory::{self, safe_update_period};
    pub use wardrop_core::trajectory::Trajectory;
    pub use wardrop_core::WorkerPool;
    pub use wardrop_net::builders;
    pub use wardrop_net::equilibrium::{is_approx_equilibrium, is_wardrop_equilibrium, max_regret};
    pub use wardrop_net::eval::{ChangeSet, DeltaEval, DeltaOutcome, DeltaStats, EvalWorkspace};
    pub use wardrop_net::flow::FlowVec;
    pub use wardrop_net::potential::{potential, virtual_gain};
    pub use wardrop_net::scenario::{
        DemandSchedule, Event, EventAction, LatencyModulation, Scenario,
    };
    pub use wardrop_net::shortest_path::{
        dijkstra, topological_order, DijkstraWorkspace, PathSampler,
    };
    pub use wardrop_net::{
        Commodity, EdgeId, EdgeInstance, Graph, Instance, Latency, NetError, PathId,
    };
}
