//! Cross-crate integration tests: the paper's convergence guarantees,
//! end to end (net → core → analysis).

use wardrop::prelude::*;

/// Every α-smooth policy at T = T* converges to the Frank–Wolfe
/// ground-truth potential on every builder instance (Corollary 5).
#[test]
fn smooth_policies_reach_ground_truth_potential() {
    let instances = vec![
        builders::pigou(),
        builders::braess(),
        builders::two_link_oscillator(2.0),
        builders::standard_random_links(5, 8),
        builders::grid_network(3, 3, 8),
    ];
    for inst in &instances {
        let phi_star = minimise(inst, Objective::Potential, &FrankWolfeConfig::default()).value;
        let alpha = 1.0 / inst.latency_upper_bound();
        let t = safe_update_period(inst, alpha);
        for policy_is_replicator in [false, true] {
            let config = SimulationConfig::new(t, 4000);
            let traj = if policy_is_replicator {
                run(inst, &replicator(inst), &FlowVec::uniform(inst), &config)
            } else {
                run(
                    inst,
                    &uniform_linear(inst),
                    &FlowVec::uniform(inst),
                    &config,
                )
            };
            let gap = traj.phases.last().unwrap().potential_end - phi_star;
            assert!(
                gap < 5e-3,
                "replicator={policy_is_replicator}: final gap {gap}"
            );
            assert_eq!(traj.monotonicity_violations(1e-10), 0);
        }
    }
}

/// The Lemma 4 inequality ΔΦ ≤ ½V holds on every phase of a smooth run
/// within the safe period, on a multi-commodity instance.
#[test]
fn lemma4_holds_on_multi_commodity_grid() {
    let inst = builders::multi_commodity_grid(3, 3, 4);
    let policy = uniform_linear(&inst);
    let alpha = policy.smoothness().unwrap();
    let t = safe_update_period(&inst, alpha);
    let config = SimulationConfig::new(t, 500);
    let traj = run(&inst, &policy, &FlowVec::concentrated(&inst), &config);
    assert_eq!(traj.lemma4_violations(1e-10), 0);
    assert!(traj.lemma4_worst_slack() <= 1e-10);
}

/// Theorem 6/7 bounds dominate measured bad-phase counts end to end.
#[test]
fn theorem_bounds_dominate_measured_counts() {
    let inst = builders::standard_random_links(6, 21);
    let alpha = 1.0 / inst.latency_upper_bound();
    let t = safe_update_period(&inst, alpha).min(1.0);
    let (delta, eps) = (0.2, 0.05);

    let config = SimulationConfig::new(t, 4000).with_deltas(vec![delta]);
    let uni = run(
        &inst,
        &uniform_linear(&inst),
        &FlowVec::uniform(&inst),
        &config,
    );
    let strict_bad = uni.bad_phase_count(0, eps) as f64;
    assert!(strict_bad <= wardrop::core::theory::theorem6_bound(&inst, t, delta, eps));

    let rep = run(&inst, &replicator(&inst), &FlowVec::uniform(&inst), &config);
    let weak_bad = rep.weak_bad_phase_count(0, eps) as f64;
    assert!(weak_bad <= wardrop::core::theory::theorem7_bound(&inst, t, delta, eps));
}

/// Integrators agree along a full multi-phase run, not just one phase.
#[test]
fn integrators_agree_along_full_runs() {
    let inst = builders::braess();
    let policy = uniform_linear(&inst);
    let f0 = FlowVec::concentrated(&inst);
    let t = 0.15;
    let run_with = |integ: Integrator| {
        let config = SimulationConfig::new(t, 50).with_integrator(integ);
        run(&inst, &policy, &f0, &config).final_flow
    };
    let exact = run_with(Integrator::Uniformization { tol: 1e-13 });
    let rk4 = run_with(Integrator::Rk4 { dt: 0.005 });
    let euler = run_with(Integrator::Euler { dt: 0.0002 });
    assert!(
        exact.linf_distance(&rk4) < 1e-7,
        "rk4 drift {}",
        exact.linf_distance(&rk4)
    );
    assert!(
        exact.linf_distance(&euler) < 1e-3,
        "euler drift {}",
        exact.linf_distance(&euler)
    );
}

/// The engine's flow stays feasible after thousands of phases
/// (renormalisation absorbs floating-point drift).
#[test]
fn feasibility_preserved_over_long_runs() {
    let inst = builders::grid_network(3, 3, 2);
    let policy = replicator(&inst);
    let config = SimulationConfig::new(0.2, 5000);
    let traj = run(&inst, &policy, &FlowVec::uniform(&inst), &config);
    assert!(traj.final_flow.is_feasible(&inst, 1e-9));
}

/// Best response converges on instances whose equilibrium is a strict
/// vertex (Braess) but not on the §3.2 oscillator — both behaviours in
/// one suite to prevent regressions that "fix" the oscillation.
#[test]
fn best_response_dichotomy() {
    let braess = builders::braess();
    let config = SimulationConfig::new(0.25, 400);
    let ok = run(
        &braess,
        &BestResponse::new(),
        &FlowVec::uniform(&braess),
        &config,
    );
    assert!(ok.phases.last().unwrap().max_regret_start < 1e-3);

    let osc = builders::two_link_oscillator(4.0);
    let f1 = theory::oscillation::initial_flow(0.25);
    let f0 = FlowVec::from_values(&osc, vec![f1, 1.0 - f1]).unwrap();
    let bad = run(
        &osc,
        &BestResponse::new(),
        &f0,
        &SimulationConfig::new(0.25, 400),
    );
    assert!(bad.phases.last().unwrap().max_regret_start > 0.1);
}

/// Early stopping honours the regret threshold and shortens the run.
#[test]
fn early_stop_cross_crate() {
    let inst = builders::pigou();
    let config = SimulationConfig::new(0.25, 100_000).with_stop_regret(0.01);
    let traj = run(
        &inst,
        &uniform_linear(&inst),
        &FlowVec::uniform(&inst),
        &config,
    );
    assert!(traj.len() < 100_000);
    assert!(max_regret(&inst, &traj.final_flow, 1e-12) < 0.011);
}
