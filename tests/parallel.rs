//! Determinism of the multi-threaded engine: `Parallelism::Threads(n)`
//! must produce **bit-identical** trajectories to `Parallelism::Serial`
//! — same phase records, same recorded flows, same final flow — for
//! every policy in the stock zoo, across scenario events, for 2, 4 and
//! 8 workers.
//!
//! The instances are sized to genuinely cross the engine's parallel
//! dispatch gates (grid_8x8-based: 3432+ paths, 48k+ incidences), so
//! the pooled evaluation, rate fill and generator applies actually run
//! on the worker lanes rather than falling back to the serial loop.

use proptest::prelude::*;
use wardrop::core::ensemble::{run_many, RunSpec};
use wardrop::core::Parallelism;
use wardrop::core::WorkerPool;
use wardrop::prelude::*;

proptest! {
    // Each case runs the 12-policy zoo at 4 lane counts on a large
    // grid — keep the case count small; coverage comes from the zoo ×
    // worker sweep inside.
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn parallel_matches_serial_bitwise(
        seed in 0u64..1000,
        k in 2usize..6,
        event_phase in 0usize..2,
        factor in 0.5f64..2.0,
        demand in 0.15f64..0.6,
        single in 0u32..2,
    ) {
        let single = single == 1;
        // Alternate between the single-commodity grid (within-block
        // chunked applies) and the many-commodity grid (block-level
        // fan-out, mixed block sizes).
        let inst = if single {
            builders::grid_network(8, 8, seed)
        } else {
            builders::many_commodity_grid(8, 8, k, seed)
        };
        let f0 = FlowVec::uniform(&inst);
        // A scenario with a latency shock (and, when admissible, a
        // demand surge): events must not break bit-identity either.
        let mut scenario = Scenario::new("shock").with_event(Event::at(
            event_phase,
            "degrade",
            EventAction::ScaleLatency { edge: EdgeId::from_index(0), factor },
        ));
        if !single {
            scenario = scenario.with_event(Event::at(
                event_phase + 1,
                "surge",
                EventAction::SetDemand { commodity: 0, demand },
            ));
        }

        let policies = stock_policy_zoo(inst.latency_upper_bound().max(1e-6));
        prop_assert_eq!(policies.len(), 12);
        let serial_config = SimulationConfig::new(1.0, 3).with_flows();
        for policy in &policies {
            let serial = run_scenario(&inst, policy.as_ref(), &f0, &serial_config, &scenario)
                .expect("serial scenario run");
            for workers in [2usize, 4, 8] {
                let config = serial_config
                    .clone()
                    .with_parallelism(Parallelism::Threads(workers));
                let par = run_scenario(&inst, policy.as_ref(), &f0, &config, &scenario)
                    .expect("parallel scenario run");
                // Bit-identical phase records (potential, virtual gain,
                // regret, volumes — PhaseRecord equality is exact f64
                // equality), recorded flows and final flow.
                prop_assert!(
                    par.phases == serial.phases,
                    "records diverged: {} at {} workers", policy.name(), workers
                );
                prop_assert!(
                    par.flows == serial.flows,
                    "flows diverged: {} at {} workers", policy.name(), workers
                );
                prop_assert!(
                    par.final_flow == serial.final_flow,
                    "final flow diverged: {} at {} workers", policy.name(), workers
                );
                for (a, b) in par.phases.iter().zip(&serial.phases) {
                    prop_assert!(
                        a.potential_start.to_bits() == b.potential_start.to_bits(),
                        "potential bits diverged: {} at {} workers", policy.name(), workers
                    );
                }
            }
        }
    }

    /// The ensemble runner is lane-transparent too: fanning runs across
    /// a pool returns exactly the per-run serial results, in order.
    #[test]
    fn ensemble_runner_is_lane_transparent(
        m in 3usize..8,
        seeds in proptest::collection::vec(0u64..500, 2..6),
        t in 0.05f64..0.5,
    ) {
        let insts: Vec<Instance> = seeds
            .iter()
            .map(|s| builders::standard_random_links(m, *s))
            .collect();
        let policy = uniform_linear(&insts[0]);
        let config = SimulationConfig::new(t, 12).with_flows();
        let reference: Vec<Trajectory> = insts
            .iter()
            .map(|i| run(i, &policy, &FlowVec::uniform(i), &config))
            .collect();
        for lanes in [1usize, 3] {
            let pool = WorkerPool::new(lanes);
            let specs: Vec<RunSpec<'_, _>> = insts
                .iter()
                .map(|i| RunSpec::new(i, &policy, FlowVec::uniform(i), config.clone()))
                .collect();
            let got = run_many(Some(&pool), &specs);
            for (g, r) in got.iter().zip(&reference) {
                prop_assert_eq!(&g.phases, &r.phases);
                prop_assert_eq!(&g.flows, &r.flows);
                prop_assert_eq!(&g.final_flow, &r.final_flow);
            }
        }
    }
}

/// The implicit-path backend is lane-transparent too: seeded with the
/// full grid_8x8 path set (3432 columns — past the 2048-path parallel
/// dispatch gate, so the pooled evaluation and rate fill genuinely run
/// on the worker lanes), `Threads(n)` trajectories are bit-identical to
/// serial for 2, 4 and 8 lanes, through scenario events.
#[test]
fn edge_backend_is_lane_transparent() {
    use wardrop::core::edge_engine::{run_edge_scenario, PathSeeding};
    use wardrop::net::edge_flow::EdgeInstance;

    let inst = builders::grid_network(8, 8, 7);
    let edge = EdgeInstance::from_instance(&inst).expect("grids are DAGs");
    let seeding = PathSeeding::Explicit(
        (0..inst.num_commodities())
            .map(|i| inst.paths()[inst.commodity_paths(i)].to_vec())
            .collect(),
    );
    let policy = uniform_linear(&inst);
    let scenario = Scenario::new("shock").with_event(Event::at(
        1,
        "degrade",
        EventAction::ScaleLatency {
            edge: EdgeId::from_index(0),
            factor: 1.7,
        },
    ));
    let serial_config = SimulationConfig::new(1.0, 3).with_flows();
    let serial = run_edge_scenario(&edge, &policy, &serial_config, &seeding, &scenario)
        .expect("serial edge run");
    for workers in [1usize, 2, 4, 8] {
        let config = serial_config
            .clone()
            .with_parallelism(Parallelism::Threads(workers));
        let par = run_edge_scenario(&edge, &policy, &config, &seeding, &scenario)
            .expect("parallel edge run");
        assert!(
            par.phases == serial.phases,
            "edge records diverged at {workers} workers"
        );
        assert!(
            par.flows == serial.flows && par.final_flow == serial.final_flow,
            "edge flows diverged at {workers} workers"
        );
        for (a, b) in par.phases.iter().zip(&serial.phases) {
            assert!(
                a.potential_start.to_bits() == b.potential_start.to_bits(),
                "edge potential bits diverged at {workers} workers"
            );
        }
    }
}
