//! Property tests for the shortest-path and random-path oracles that
//! drive the implicit-path backend.
//!
//! On enumerated instances every oracle answer can be cross-checked by
//! brute force over the explicit path arena: the Dijkstra distance must
//! be the argmin of the per-path weight sums, the reconstructed path
//! must be simple and DAG-consistent, and the reusable
//! [`DijkstraWorkspace`] must agree with the one-shot [`dijkstra`]
//! run for run. The [`PathSampler`]'s sampling distribution is pinned
//! two ways: a seeded reference vector (exact sequence of enumerated
//! path indices for a fixed seed — any change to the sampling loop or
//! the RNG stream is a breaking change and must be deliberate) and a
//! frequency check that all implicit paths are hit roughly uniformly.

use proptest::prelude::*;
use wardrop::net::rng::SplitMix64;
use wardrop::prelude::*;

/// Positive per-edge weights derived deterministically from a seed.
fn random_weights(edges: usize, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    (0..edges).map(|_| 0.05 + rng.next_unit()).collect()
}

/// Brute-force: the cheapest enumerated path of commodity `i` under
/// `weights`, as `(total weight, path index)`.
fn brute_force_argmin(inst: &Instance, i: usize, weights: &[f64]) -> (f64, usize) {
    inst.commodity_paths(i)
        .map(|p| {
            let w: f64 = inst.paths()[p]
                .edges()
                .iter()
                .map(|e| weights[e.index()])
                .sum();
            (w, p)
        })
        .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite weights"))
        .expect("commodities have paths")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Dijkstra distances and reconstructed paths match the brute-force
    /// argmin over the enumerated arena, and the paths are simple and
    /// edge-consecutive.
    #[test]
    fn dijkstra_matches_brute_force(
        seed in 0u64..1000,
        wseed in 0u64..1000,
        k in 2usize..4,
        family in 0u32..3,
    ) {
        let inst = match family {
            0 => builders::grid_network(3, 4, seed),
            1 => builders::multi_commodity_grid(3, 3, seed),
            _ => builders::many_commodity_grid(3, 4, k, seed),
        };
        let g = inst.graph();
        let weights = random_weights(inst.num_edges(), wseed);
        let mut workspace = DijkstraWorkspace::new();
        for (i, c) in inst.commodities().iter().enumerate() {
            let (best, _) = brute_force_argmin(&inst, i, &weights);
            let one_shot = dijkstra(g, c.source, &weights);
            prop_assert!((one_shot.distance(c.sink) - best).abs() <= 1e-12);

            // The reusable workspace agrees with the one-shot run…
            workspace.run(g, c.source, &weights);
            prop_assert!(workspace.distance(c.sink).to_bits() == one_shot.distance(c.sink).to_bits());

            // …and reconstructs a witness: simple, consecutive, ends
            // at the sink, and achieves the optimal weight.
            let mut path = Vec::new();
            prop_assert!(workspace.path_into(g, c.sink, &mut path));
            prop_assert!(g.edge(path[0]).from == c.source);
            prop_assert!(g.edge(*path.last().unwrap()).to == c.sink);
            for w in path.windows(2) {
                prop_assert!(g.edge(w[0]).to == g.edge(w[1]).from);
            }
            let mut visited: Vec<_> = path.iter().map(|e| g.edge(*e).from).collect();
            visited.push(c.sink);
            let n = visited.len();
            visited.sort_unstable();
            visited.dedup();
            prop_assert!(visited.len() == n, "path revisits a node");
            let total: f64 = path.iter().map(|e| weights[e.index()]).sum();
            prop_assert!((total - best).abs() <= 1e-12);
        }
    }

    /// The sampler's path count equals the enumerated count and every
    /// sampled path is a valid source–sink path; over many draws the
    /// empirical distribution is close to uniform over the arena.
    #[test]
    fn sampler_is_uniform_over_the_arena(
        seed in 0u64..200,
        rng_seed in 0u64..50,
    ) {
        let inst = builders::grid_network(3, 3, seed);
        let g = inst.graph();
        let c = inst.commodities()[0];
        let sampler = PathSampler::new(g, c.source, c.sink).expect("grids are DAGs");
        let paths = inst.num_paths();
        prop_assert!(sampler.path_count() == paths as f64);

        let draws = 240 * paths;
        let mut rng = SplitMix64::new(rng_seed);
        let mut counts = vec![0usize; paths];
        let mut out = Vec::new();
        for _ in 0..draws {
            sampler.sample_into(g, &mut rng, &mut out);
            let id = inst
                .paths()
                .iter()
                .position(|p| p.edges() == out.as_slice())
                .expect("sampled path must be in the enumerated arena");
            counts[id] += 1;
        }
        // Uniform expectation is 240 per path; a ±50% band is ~7 σ for
        // a binomial with p = 1/6 — far beyond any plausible seed
        // fluctuation, tight enough to catch a biased sampler.
        for (id, &n) in counts.iter().enumerate() {
            prop_assert!(
                (120..=360).contains(&n),
                "path {id} drawn {n} times in {draws} draws"
            );
        }
    }
}

/// The exact sample sequence for a fixed seed, as enumerated path
/// indices on `grid_network(3, 3, 7)`. Pins the RNG stream *and* the
/// inverse-transform walk of `sample_into`: any reordering of the
/// candidate edges or change to the RNG advances is a visible,
/// deliberate break.
#[test]
fn seeded_sample_sequence_is_pinned() {
    const EXPECTED: [usize; 16] = [3, 1, 1, 4, 1, 4, 0, 5, 5, 0, 3, 3, 5, 0, 4, 2];
    let inst = builders::grid_network(3, 3, 7);
    let g = inst.graph();
    let c = inst.commodities()[0];
    let sampler = PathSampler::new(g, c.source, c.sink).unwrap();
    let mut rng = SplitMix64::new(42);
    let mut out = Vec::new();
    let mut got = Vec::new();
    for _ in 0..EXPECTED.len() {
        sampler.sample_into(g, &mut rng, &mut out);
        got.push(
            inst.paths()
                .iter()
                .position(|p| p.edges() == out.as_slice())
                .expect("sampled path must be enumerable"),
        );
    }
    assert_eq!(got, EXPECTED);
}
