//! Serialisation round-trips: instances, flows, boards, trajectories
//! and configurations are data — they must survive JSON round-trips so
//! experiment artefacts are reloadable.

use wardrop::core::board::BulletinBoard;
use wardrop::prelude::*;

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialise");
    serde_json::from_str(&json).expect("deserialise")
}

#[test]
fn instance_round_trips() {
    let inst = builders::braess();
    let back: Instance = round_trip(&inst);
    assert_eq!(back.num_paths(), inst.num_paths());
    assert_eq!(back.num_edges(), inst.num_edges());
    assert_eq!(back.max_path_len(), inst.max_path_len());
    assert_eq!(back.latency_upper_bound(), inst.latency_upper_bound());
    assert_eq!(back.latencies(), inst.latencies());
}

#[test]
fn all_latency_variants_round_trip() {
    let variants = vec![
        Latency::Constant(1.5),
        Latency::Affine { a: 0.5, b: 2.0 },
        Latency::Polynomial(vec![1.0, 0.0, 3.0]),
        Latency::Bpr {
            t0: 1.0,
            coef: 0.15,
            pow: 4,
        },
        Latency::oscillator(2.0),
        Latency::Mm1 { capacity: 1.7 },
        Latency::Mm1 { capacity: 1.7 }.scaled(2.5),
    ];
    for l in &variants {
        let back: Latency = round_trip(l);
        assert_eq!(&back, l);
        // The deserialised function computes identically.
        for x in [0.0, 0.3, 0.7, 1.0] {
            assert_eq!(back.eval(x), l.eval(x));
            assert_eq!(back.primitive(x), l.primitive(x));
        }
    }
}

#[test]
fn flow_round_trips() {
    let inst = builders::pigou();
    let f = FlowVec::from_values(&inst, vec![0.3, 0.7]).unwrap();
    let back: FlowVec = round_trip(&f);
    assert_eq!(back, f);
    assert!(back.is_feasible(&inst, 1e-12));
}

#[test]
fn board_round_trips() {
    let inst = builders::braess();
    let f = FlowVec::uniform(&inst);
    let board = BulletinBoard::post(&inst, &f, 2.5);
    let back: BulletinBoard = round_trip(&board);
    assert_eq!(back, board);
    assert_eq!(back.time(), 2.5);
}

#[test]
fn trajectory_round_trips_and_metrics_survive() {
    let inst = builders::pigou();
    let config = SimulationConfig::new(0.5, 25)
        .with_flows()
        .with_deltas(vec![0.1]);
    let traj = run(
        &inst,
        &uniform_linear(&inst),
        &FlowVec::uniform(&inst),
        &config,
    );
    let back: Trajectory = round_trip(&traj);
    assert_eq!(back, traj);
    assert_eq!(back.bad_phase_count(0, 0.05), traj.bad_phase_count(0, 0.05));
    assert_eq!(back.potential_series(), traj.potential_series());
}

#[test]
fn configs_round_trip() {
    let sim = SimulationConfig::new(0.25, 100)
        .with_deltas(vec![0.01, 0.1])
        .with_integrator(Integrator::Rk4 { dt: 0.01 });
    let back: SimulationConfig = round_trip(&sim);
    assert_eq!(back, sim);

    let agents = AgentSimConfig::new(1000, 0.5, 50, 7).with_flows();
    let back: AgentSimConfig = round_trip(&agents);
    assert_eq!(back, agents);
}

#[test]
fn scenarios_round_trip() {
    let scenario = Scenario::new("round-trip")
        .with_demand_schedule(0, &DemandSchedule::pulse(0.5, 0.8, 10, 10))
        .with_event(Event::at(
            5,
            "degrade",
            EventAction::ScaleLatency {
                edge: EdgeId::from_index(1),
                factor: 3.0,
            },
        ))
        .with_event(Event::at(
            7,
            "replace",
            EventAction::SetLatency {
                edge: EdgeId::from_index(0),
                latency: Latency::Mm1 { capacity: 2.0 }.scaled(1.5),
            },
        ));
    let back: Scenario = round_trip(&scenario);
    assert_eq!(back, scenario);
    // Replaying the deserialised scenario mutates instances identically.
    let inst = builders::multi_commodity_grid(3, 3, 5);
    let a = scenario.epoch_instances(&inst).unwrap();
    let b = back.epoch_instances(&inst).unwrap();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.latencies(), y.latencies());
        assert_eq!(x.commodities(), y.commodities());
    }
    // Schedules and modulations are data too.
    let back: DemandSchedule = round_trip(&DemandSchedule::step(0.5, 3, 0.7));
    assert_eq!(back.demand_at(4), 0.7);
    let back: LatencyModulation = round_trip(&LatencyModulation::pulse(4.0, 2, 3));
    assert_eq!(back.factor_at(2), 4.0);
}

#[test]
fn scenario_trajectory_round_trips_with_epochs() {
    let inst = builders::multi_commodity_grid(3, 3, 5);
    let scenario =
        Scenario::new("pulse").with_demand_schedule(0, &DemandSchedule::pulse(0.5, 0.8, 5, 5));
    let config = SimulationConfig::new(0.1, 15).with_record_stride(5);
    let traj = run_scenario(
        &inst,
        &uniform_linear(&inst),
        &FlowVec::uniform(&inst),
        &config,
        &scenario,
    )
    .unwrap();
    let back: Trajectory = round_trip(&traj);
    assert_eq!(back, traj);
    assert_eq!(back.num_epochs(), 3);
    assert_eq!(back.flow_stride, 5);
    assert_eq!(back.epoch_ranges(), traj.epoch_ranges());
}

#[test]
fn deserialised_instance_runs_identically() {
    let inst = builders::grid_network(3, 3, 9);
    let back: Instance = round_trip(&inst);
    let config = SimulationConfig::new(0.2, 50);
    let a = run(
        &inst,
        &uniform_linear(&inst),
        &FlowVec::uniform(&inst),
        &config,
    );
    let b = run(
        &back,
        &uniform_linear(&back),
        &FlowVec::uniform(&back),
        &config,
    );
    assert_eq!(a.final_flow, b.final_flow);
    assert_eq!(a.potential_series(), b.potential_series());
}
