//! Integration tests for the §3.2 oscillation construction: engine,
//! closed forms, orbit detection and the finite-agent simulator must
//! all tell the same story.

use wardrop::prelude::*;

fn oscillating_start(inst: &Instance, t_period: f64) -> FlowVec {
    let f1 = theory::oscillation::initial_flow(t_period);
    FlowVec::from_values(inst, vec![f1, 1.0 - f1]).unwrap()
}

/// The fluid engine reproduces the closed-form orbit to near machine
/// precision for several (β, T) combinations.
#[test]
fn engine_matches_closed_form_orbit() {
    for beta in [0.5, 2.0, 8.0] {
        for t_period in [0.1, 0.5, 1.5] {
            let inst = builders::two_link_oscillator(beta);
            let f0 = oscillating_start(&inst, t_period);
            let config = SimulationConfig::new(t_period, 30).with_flows();
            let traj = run(&inst, &BestResponse::new(), &f0, &config);
            for (i, flow) in traj.flows.iter().enumerate() {
                let analytic = theory::oscillation::orbit_f1(i as f64 * t_period, t_period);
                assert!(
                    (flow.values()[0] - analytic).abs() < 1e-9,
                    "β={beta} T={t_period} phase {i}"
                );
            }
        }
    }
}

/// The measured latency deviation equals the paper's X formula.
#[test]
fn deviation_formula_verified_by_simulation() {
    for (beta, t_period) in [(1.0, 0.3), (4.0, 0.7)] {
        let inst = builders::two_link_oscillator(beta);
        let f0 = oscillating_start(&inst, t_period);
        let config = SimulationConfig::new(t_period, 20).with_flows();
        let traj = run(&inst, &BestResponse::new(), &f0, &config);
        let measured = traj
            .flows
            .iter()
            .map(|f| f.max_used_latency(&inst, 1e-12))
            .fold(0.0_f64, f64::max);
        let predicted = theory::oscillation::deviation(beta, t_period);
        assert!((measured - predicted).abs() < 1e-9);
    }
}

/// Below the critical period T(ε) the deviation stays under ε; above
/// it, over.
#[test]
fn critical_period_separates_deviations() {
    let beta = 2.0;
    for eps in [0.05, 0.15, 0.3] {
        let t_crit = theory::oscillation::max_period_for_deviation(beta, eps).unwrap();
        for (t, expect_below) in [(0.8 * t_crit, true), (1.25 * t_crit, false)] {
            let inst = builders::two_link_oscillator(beta);
            let f0 = oscillating_start(&inst, t);
            let config = SimulationConfig::new(t, 16).with_flows();
            let traj = run(&inst, &BestResponse::new(), &f0, &config);
            let measured = traj
                .flows
                .iter()
                .map(|f| f.max_used_latency(&inst, 1e-12))
                .fold(0.0_f64, f64::max);
            assert_eq!(measured < eps, expect_below, "ε={eps} T={t}");
        }
    }
}

/// Orbit detection classifies the §3.2 run as period-2 and a smooth
/// run on the same instance as a fixed point.
#[test]
fn orbit_classification_end_to_end() {
    let inst = builders::two_link_oscillator(2.0);
    let t = 0.5;
    let f0 = oscillating_start(&inst, t);
    let config = SimulationConfig::new(t, 50).with_flows();
    let br = run(&inst, &BestResponse::new(), &f0, &config);
    assert_eq!(detect_orbit(&br, 10, 4, 1e-9), OrbitKind::Periodic(2));
    assert!(amplitude(&br, 10) > 0.1);

    let asym = FlowVec::from_values(&inst, vec![0.8, 0.2]).unwrap();
    let smooth = run(
        &inst,
        &uniform_linear(&inst),
        &asym,
        &SimulationConfig::new(t, 600).with_flows(),
    );
    assert_eq!(detect_orbit(&smooth, 10, 4, 1e-6), OrbitKind::FixedPoint);
}

/// The finite-agent simulator oscillates in phase with the fluid orbit
/// for large N.
#[test]
fn agents_track_the_oscillation() {
    let inst = builders::two_link_oscillator(4.0);
    let t = 0.5;
    let f0 = oscillating_start(&inst, t);
    let config = AgentSimConfig::new(20_000, t, 24, 3).with_flows();
    let traj = run_agents(&inst, &AgentPolicy::BestResponse, &f0, &config);
    for (i, flow) in traj.flows.iter().enumerate().skip(1) {
        let analytic = theory::oscillation::orbit_f1(i as f64 * t, t);
        assert!(
            (flow.values()[0] - analytic).abs() < 0.05,
            "phase {i}: {} vs {analytic}",
            flow.values()[0]
        );
    }
}
