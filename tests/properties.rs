//! Property-based tests (proptest) on the model's invariants.
//!
//! Strategies generate random parallel-link and layered instances,
//! random feasible flows and random phase lengths; the properties are
//! the paper's structural facts: mass conservation, exact potential
//! decomposition (Lemma 3), monotone potential for smooth policies
//! within the safe period (Lemma 4), integrator agreement, and
//! equilibrium-notion orderings.

use proptest::prelude::*;
use wardrop::net::potential::lemma3_residual;
use wardrop::prelude::*;

/// Strategy: a random parallel-link instance with affine latencies.
fn arb_parallel_instance() -> impl Strategy<Value = Instance> {
    (2usize..10, 0u64..1000)
        .prop_map(|(m, seed)| builders::random_parallel_links(m, 1.0, 0.1, 2.0, seed))
}

/// Strategy: a random layered instance (small, multi-edge paths).
fn arb_layered_instance() -> impl Strategy<Value = Instance> {
    (1usize..3, 2usize..4, 0u64..1000)
        .prop_map(|(layers, width, seed)| builders::layered_network(layers, width, seed))
}

/// Strategy: a feasible random flow for an instance, built from
/// non-negative weights normalised per commodity.
fn arb_flow(inst: &Instance) -> impl Strategy<Value = FlowVec> {
    let n = inst.num_paths();
    let ranges: Vec<std::ops::Range<usize>> = (0..inst.num_commodities())
        .map(|i| inst.commodity_paths(i))
        .collect();
    let demands: Vec<f64> = inst.commodities().iter().map(|c| c.demand).collect();
    proptest::collection::vec(0.01f64..1.0, n).prop_map(move |mut w| {
        for (range, demand) in ranges.iter().zip(&demands) {
            let total: f64 = w[range.clone()].iter().sum();
            for v in &mut w[range.clone()] {
                *v *= demand / total;
            }
        }
        FlowVec::from_values_unchecked(w)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 3 is an identity: the residual vanishes for every pair of
    /// feasible flows on every instance.
    #[test]
    fn lemma3_identity_universal(
        inst in arb_parallel_instance(),
    ) {
        let runner = |a: &FlowVec, b: &FlowVec| {
            prop_assert!(lemma3_residual(&inst, a, b).abs() < 1e-10);
            Ok(())
        };
        let uniform = FlowVec::uniform(&inst);
        let conc = FlowVec::concentrated(&inst);
        runner(&uniform, &conc)?;
        runner(&conc, &uniform)?;
    }

    /// Lemma 3 on layered networks with random flows.
    #[test]
    fn lemma3_identity_layered(
        (inst, seedflow) in arb_layered_instance().prop_flat_map(|inst| {
            let f = arb_flow(&inst);
            (Just(inst), f)
        })
    ) {
        let g = FlowVec::uniform(&inst);
        prop_assert!(lemma3_residual(&inst, &seedflow, &g).abs() < 1e-10);
    }

    /// One engine phase conserves mass per commodity and keeps flows
    /// non-negative, for random starts and phase lengths.
    #[test]
    fn engine_phase_preserves_feasibility(
        (inst, f0) in arb_parallel_instance().prop_flat_map(|inst| {
            let f = arb_flow(&inst);
            (Just(inst), f)
        }),
        tau in 0.01f64..2.0,
    ) {
        let policy = uniform_linear(&inst);
        let config = SimulationConfig::new(tau, 3);
        let traj = run(&inst, &policy, &f0, &config);
        prop_assert!(traj.final_flow.is_feasible(&inst, 1e-6));
    }

    /// Within the safe period the potential never increases across
    /// phases (Lemma 4 ⇒ Corollary 5), from any start.
    #[test]
    fn potential_monotone_within_safe_period(
        (inst, f0) in arb_parallel_instance().prop_flat_map(|inst| {
            let f = arb_flow(&inst);
            (Just(inst), f)
        }),
        t_frac in 0.05f64..1.0,
    ) {
        let policy = uniform_linear(&inst);
        let alpha = policy.smoothness().unwrap();
        let t = safe_update_period(&inst, alpha) * t_frac;
        let config = SimulationConfig::new(t, 30);
        let traj = run(&inst, &policy, &f0, &config);
        prop_assert_eq!(traj.monotonicity_violations(1e-10), 0);
        prop_assert_eq!(traj.lemma4_violations(1e-10), 0);
    }

    /// Uniformization and RK4 agree on arbitrary phases.
    #[test]
    fn integrators_agree(
        (inst, f0) in arb_parallel_instance().prop_flat_map(|inst| {
            let f = arb_flow(&inst);
            (Just(inst), f)
        }),
        tau in 0.01f64..3.0,
    ) {
        use wardrop::core::board::BulletinBoard;
        use wardrop::core::policy::ReroutingPolicy;
        let policy = uniform_linear(&inst);
        let board = BulletinBoard::post(&inst, &f0, 0.0);
        let rates = policy.phase_rates(&inst, &board);
        let mut a = f0.values().to_vec();
        Integrator::Uniformization { tol: 1e-13 }.advance(&rates, &mut a, tau);
        let mut b = f0.values().to_vec();
        Integrator::Rk4 { dt: 0.01 }.advance(&rates, &mut b, tau);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-6, "{} vs {}", x, y);
        }
    }

    /// Strict (δ,ε)-equilibria are weak (δ,ε)-equilibria (Definitions
    /// 3 and 4), and unsatisfied volumes are monotone in δ.
    #[test]
    fn equilibrium_notions_ordered(
        (inst, f) in arb_parallel_instance().prop_flat_map(|inst| {
            let f = arb_flow(&inst);
            (Just(inst), f)
        }),
        delta in 0.0f64..1.0,
    ) {
        use wardrop::net::equilibrium::{unsatisfied_volume, weakly_unsatisfied_volume};
        let strict = unsatisfied_volume(&inst, &f, delta);
        let weak = weakly_unsatisfied_volume(&inst, &f, delta);
        prop_assert!(weak <= strict + 1e-12);
        let strict_wider = unsatisfied_volume(&inst, &f, delta + 0.1);
        prop_assert!(strict_wider <= strict + 1e-12);
    }

    /// The potential is bounded by ℓmax and the Frank–Wolfe optimum
    /// lower-bounds it for every feasible flow.
    #[test]
    fn potential_bounds(
        (inst, f) in arb_parallel_instance().prop_flat_map(|inst| {
            let f = arb_flow(&inst);
            (Just(inst), f)
        }),
    ) {
        let phi = potential(&inst, &f);
        prop_assert!(phi >= 0.0);
        prop_assert!(phi <= inst.latency_upper_bound() + 1e-9);
        let phi_star = minimise(&inst, Objective::Potential, &FrankWolfeConfig::default()).value;
        prop_assert!(phi >= phi_star - 1e-6);
    }

    /// Migration rules are α-smooth: µ ≤ α·gap on random latency pairs.
    #[test]
    fn migration_rules_respect_declared_smoothness(
        lmax in 0.5f64..10.0,
        lp in 0.0f64..10.0,
        lq in 0.0f64..10.0,
    ) {
        let lin = Linear::new(lmax);
        let alpha = lin.smoothness().unwrap();
        if lp > lq {
            prop_assert!(lin.probability(lp, lq) <= alpha * (lp - lq) + 1e-12);
        } else {
            prop_assert_eq!(lin.probability(lp, lq), 0.0);
        }
        let sl = ScaledLinear::new(2.0);
        if lp > lq {
            prop_assert!(sl.probability(lp, lq) <= 2.0 * (lp - lq) + 1e-12);
        }
    }

    /// The safe update period scales as predicted: halving α doubles T*.
    #[test]
    fn safe_period_scales_inversely_with_alpha(
        inst in arb_parallel_instance(),
        alpha in 0.01f64..10.0,
    ) {
        let t1 = safe_update_period(&inst, alpha);
        let t2 = safe_update_period(&inst, alpha / 2.0);
        if t1.is_finite() {
            prop_assert!((t2 / t1 - 2.0).abs() < 1e-9);
        }
    }

    /// The fused evaluation workspace reproduces every naive metric
    /// bit-for-bit (or within re-association error) on random
    /// instances and flows.
    #[test]
    fn fused_evaluation_matches_naive(
        (inst, f) in arb_layered_instance().prop_flat_map(|inst| {
            let f = arb_flow(&inst);
            (Just(inst), f)
        }),
        delta in 0.0f64..0.5,
    ) {
        use wardrop::net::equilibrium::{max_regret, unsatisfied_volume, weakly_unsatisfied_volume};
        use wardrop::net::eval::EvalWorkspace;
        let mut ws = EvalWorkspace::new(&inst);
        ws.evaluate(&inst, &f);
        prop_assert_eq!(ws.edge_flows().to_vec(), f.edge_flows(&inst));
        prop_assert_eq!(ws.edge_latencies().to_vec(), f.edge_latencies(&inst));
        prop_assert_eq!(ws.path_latencies().to_vec(), f.path_latencies(&inst));
        prop_assert_eq!(
            ws.commodity_min_latencies().to_vec(),
            f.commodity_min_latencies(&inst)
        );
        prop_assert_eq!(
            ws.commodity_avg_latencies().to_vec(),
            f.commodity_avg_latencies(&inst)
        );
        prop_assert_eq!(ws.potential(), potential(&inst, &f));
        prop_assert!((ws.avg_latency() - f.avg_latency(&inst)).abs() < 1e-12);
        prop_assert_eq!(
            ws.max_regret(&inst, &f, 1e-12),
            max_regret(&inst, &f, 1e-12)
        );
        prop_assert_eq!(
            ws.unsatisfied_volume(&inst, &f, delta),
            unsatisfied_volume(&inst, &f, delta)
        );
        prop_assert_eq!(
            ws.weakly_unsatisfied_volume(&inst, &f, delta),
            weakly_unsatisfied_volume(&inst, &f, delta)
        );
    }

    /// The zero-allocation phase loop records exactly the metrics a
    /// naive per-flow recomputation yields, across a whole run.
    #[test]
    fn engine_records_match_naive_recomputation(
        (inst, f0) in arb_parallel_instance().prop_flat_map(|inst| {
            let f = arb_flow(&inst);
            (Just(inst), f)
        }),
        t in 0.05f64..1.0,
    ) {
        use wardrop::net::equilibrium::{max_regret, unsatisfied_volume};
        let policy = uniform_linear(&inst);
        let config = SimulationConfig::new(t, 12).with_flows().with_deltas(vec![0.05]);
        let traj = run(&inst, &policy, &f0, &config);
        prop_assert_eq!(traj.flows.len(), traj.phases.len());
        for (flow, rec) in traj.flows.iter().zip(&traj.phases) {
            prop_assert!((potential(&inst, flow) - rec.potential_start).abs() < 1e-12);
            prop_assert!((flow.avg_latency(&inst) - rec.avg_latency_start).abs() < 1e-12);
            prop_assert!(
                (max_regret(&inst, flow, 1e-12) - rec.max_regret_start).abs() < 1e-12
            );
            prop_assert!(
                (unsatisfied_volume(&inst, flow, 0.05) - rec.unsatisfied[0]).abs() < 1e-12
            );
        }
        // Consecutive records chain: Φ end of phase i = Φ start of i+1.
        for w in traj.phases.windows(2) {
            prop_assert_eq!(w[0].potential_end, w[1].potential_start);
        }
    }

    /// Dijkstra and the enumerated-path argmin agree on every random
    /// instance and flow.
    #[test]
    fn dijkstra_matches_path_argmin(
        (inst, f) in arb_layered_instance().prop_flat_map(|inst| {
            let f = arb_flow(&inst);
            (Just(inst), f)
        }),
    ) {
        use wardrop::net::shortest_path::dijkstra;
        let weights = f.edge_latencies(&inst);
        let lp = f.path_latencies(&inst);
        let c = inst.commodities()[0];
        let sp = dijkstra(inst.graph(), c.source, &weights);
        let best = inst
            .commodity_paths(0)
            .map(|p| lp[p])
            .fold(f64::INFINITY, f64::min);
        prop_assert!((sp.distance(c.sink) - best).abs() < 1e-9);
    }

    /// Jittered schedules keep the Lemma 4 guarantee when the longest
    /// phase stays within T*.
    #[test]
    fn jitter_preserves_guarantee(
        inst in arb_parallel_instance(),
        amplitude in 0.0f64..0.9,
        seed in 0u64..1000,
    ) {
        let policy = uniform_linear(&inst);
        let alpha = policy.smoothness().unwrap();
        let t_star = safe_update_period(&inst, alpha);
        let config = SimulationConfig::new(t_star / (1.0 + amplitude), 20)
            .with_jitter(amplitude, seed);
        let traj = run(&inst, &policy, &FlowVec::concentrated(&inst), &config);
        prop_assert_eq!(traj.monotonicity_violations(1e-10), 0);
        prop_assert_eq!(traj.lemma4_violations(1e-10), 0);
    }

    /// Population regret is non-negative along any smooth run.
    #[test]
    fn regret_nonnegative(
        inst in arb_parallel_instance(),
        t in 0.05f64..0.5,
    ) {
        let policy = uniform_linear(&inst);
        let config = SimulationConfig::new(t, 30).with_flows();
        let traj = run(&inst, &policy, &FlowVec::concentrated(&inst), &config);
        let report = wardrop::analysis::regret::population_regret(&inst, &traj);
        for r in &report.regret {
            prop_assert!(*r >= -1e-10);
        }
    }

    /// Series-parallel builders always produce enumerable, feasible
    /// instances whose equilibria the solver certifies.
    #[test]
    fn series_parallel_instances_solve(
        depth in 0usize..5,
        seed in 0u64..200,
    ) {
        let inst = builders::series_parallel(depth, seed);
        let eq = minimise(&inst, Objective::Potential, &FrankWolfeConfig::default());
        prop_assert!(eq.flow.is_feasible(&inst, 1e-6));
        prop_assert!(is_wardrop_equilibrium(&inst, &eq.flow, 1e-2));
    }

    /// Scenario mutations are semantically transparent: after a random
    /// sequence of `scale_latency` / `set_latency` / `set_demand`
    /// events, the mutated instance evaluates exactly like a fresh
    /// `Instance::new` built from the mutated graph, latencies and
    /// commodities — same cached invariants (up to the incremental
    /// update's float re-association), same fused evaluation, and the
    /// same engine trajectory phase by phase.
    #[test]
    fn post_event_instance_matches_fresh_construction(
        inst in arb_layered_instance(),
        scales in proptest::collection::vec((0usize..64, 0.25f64..4.0), 1..5),
        new_a in 0.0f64..2.0,
        t in 0.01f64..0.3,
    ) {
        let mut mutated = inst.clone();
        for (e, k) in &scales {
            let edge = EdgeId::from_index(e % mutated.num_edges());
            mutated.scale_latency(edge, *k).expect("valid scale");
        }
        mutated
            .set_latency(
                EdgeId::from_index(0),
                Latency::Affine { a: new_a, b: 1.0 },
            )
            .expect("valid latency");
        let fresh = Instance::new(
            mutated.graph().clone(),
            mutated.latencies().to_vec(),
            mutated.commodities().to_vec(),
        )
        .expect("mutated data stays valid");

        // Cached invariants agree.
        prop_assert_eq!(mutated.slope_bound(), fresh.slope_bound());
        prop_assert!(
            (mutated.latency_upper_bound() - fresh.latency_upper_bound()).abs()
                <= 1e-12 * fresh.latency_upper_bound().max(1.0)
        );

        // The fused evaluation is bit-identical.
        let f = FlowVec::uniform(&mutated);
        let mut ws_mut = wardrop::net::eval::EvalWorkspace::new(&mutated);
        let mut ws_fresh = wardrop::net::eval::EvalWorkspace::new(&fresh);
        ws_mut.evaluate(&mutated, &f);
        ws_fresh.evaluate(&fresh, &f);
        prop_assert_eq!(ws_mut.path_latencies(), ws_fresh.path_latencies());
        prop_assert_eq!(ws_mut.potential(), ws_fresh.potential());

        // And so is a short engine run.
        let policy = uniform_linear(&mutated);
        let config = SimulationConfig::new(t, 10);
        let a = run(&mutated, &policy, &f, &config);
        let b = run(&fresh, &policy, &f, &config);
        prop_assert_eq!(a.phases, b.phases);
        prop_assert_eq!(a.final_flow, b.final_flow);
    }

    /// Demand events preserve the unit normalisation and rescale
    /// engine flows into feasibility for the mutated instance.
    #[test]
    fn post_demand_event_matches_fresh_construction(
        seed in 0u64..500,
        demand in 0.05f64..0.95,
    ) {
        let inst = builders::multi_commodity_grid(2, 3, seed);
        let mut mutated = inst.clone();
        mutated.set_demand(0, demand).expect("valid demand");
        let total: f64 = mutated.commodities().iter().map(|c| c.demand).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let fresh = Instance::new(
            mutated.graph().clone(),
            mutated.latencies().to_vec(),
            mutated.commodities().to_vec(),
        )
        .expect("renormalised demands stay valid");
        let f = FlowVec::uniform(&mutated);
        prop_assert!(f.is_feasible(&fresh, 1e-9));
        let policy = uniform_linear(&mutated);
        let config = SimulationConfig::new(0.1, 5);
        let a = run(&mutated, &policy, &f, &config);
        let b = run(&fresh, &policy, &f, &config);
        prop_assert_eq!(a.phases, b.phases);
    }

    /// The matrix-free phase rates equal the frozen dense reference
    /// for every stock sampling × migration combination — entry by
    /// entry, exit rate by exit rate, and through a generator
    /// application — on random instances with latency ties
    /// (`two_class_links` repeats each class's constant) and zero-flow
    /// paths (the flow is concentrated on one path per commodity).
    #[test]
    fn matrix_free_rates_match_dense_reference(
        (inst, f) in (0usize..3, 2usize..6, 0u64..1000, 0.01f64..2.0)
            .prop_map(|(kind, half, seed, gap)| match kind {
                0 => builders::random_parallel_links(2 * half, 1.0, 0.1, 2.0, seed),
                1 => builders::layered_network(1 + half % 2, 2 + half % 3, seed),
                _ => builders::two_class_links(2 * half, gap),
            })
            .prop_flat_map(|inst| {
                let f = arb_flow(&inst);
                (Just(inst), f)
            }),
        concentrate in 0u32..2,
        tau in 0.01f64..2.0,
    ) {
        let concentrate = concentrate == 1;
        use wardrop::core::board::BulletinBoard;
        let f = if concentrate { FlowVec::concentrated(&inst) } else { f };
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let policies =
            wardrop::core::policy::stock_policy_zoo(inst.latency_upper_bound().max(1e-6));
        prop_assert_eq!(policies.len(), 12);
        for policy in &policies {
            let free = policy.phase_rates(&inst, &board);
            let dense = policy.phase_rates_dense(&inst, &board);
            prop_assert!(free.is_matrix_free(), "{}", policy.name());
            prop_assert_eq!(free.dense_elements(), 0);
            prop_assert!(!dense.is_matrix_free(), "{}", policy.name());
            prop_assert!(
                (free.max_exit_rate() - dense.max_exit_rate()).abs() < 1e-12,
                "{}: Λ {} vs {}", policy.name(), free.max_exit_rate(), dense.max_exit_rate()
            );
            for (a, b) in free.blocks().iter().zip(dense.blocks()) {
                for p in 0..a.len() {
                    prop_assert!(
                        (a.exit_rate(p) - b.exit_rate(p)).abs() < 1e-12,
                        "{}: exit[{}] {} vs {}", policy.name(), p, a.exit_rate(p), b.exit_rate(p)
                    );
                    for q in 0..a.len() {
                        prop_assert!(
                            (a.rate(p, q) - b.rate(p, q)).abs() < 1e-12,
                            "{}: c[{}][{}] {} vs {}", policy.name(), p, q, a.rate(p, q), b.rate(p, q)
                        );
                    }
                }
            }
            let mut out_free = vec![0.0; inst.num_paths()];
            let mut out_dense = vec![0.0; inst.num_paths()];
            free.apply(f.values(), &mut out_free);
            dense.apply(f.values(), &mut out_dense);
            for (x, y) in out_free.iter().zip(&out_dense) {
                prop_assert!((x - y).abs() < 1e-12, "{}: Af {} vs {}", policy.name(), x, y);
            }
            // An integrated phase agrees too (the engine-facing contract).
            let mut a = f.values().to_vec();
            Integrator::Uniformization { tol: 1e-13 }.advance(&free, &mut a, tau);
            let mut b = f.values().to_vec();
            Integrator::Uniformization { tol: 1e-13 }.advance(&dense, &mut b, tau);
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x - y).abs() < 1e-9, "{}: phase {} vs {}", policy.name(), x, y);
            }
        }
    }

    /// A fault plan with no fault configured is bit-for-bit
    /// transparent: attaching it changes nothing — same phase records,
    /// recorded flows and final flow — on both the enumerated and the
    /// implicit-path backend, at 1, 2 and 4 worker lanes. This pins
    /// the clean-post fast path: fault-free phases must take the exact
    /// `post_from_eval` route the un-faulted engine takes.
    #[test]
    fn zero_fault_plan_is_bit_identical(
        (inst, f0) in arb_layered_instance().prop_flat_map(|inst| {
            let f = arb_flow(&inst);
            (Just(inst), f)
        }),
        t in 0.05f64..0.5,
        seed in 0u64..1000,
    ) {
        let plan = FaultPlan::new(seed);
        prop_assert!(plan.is_trivial());
        let policy = uniform_linear(&inst);
        let base = SimulationConfig::new(t, 12).with_flows().with_deltas(vec![0.05]);
        for lanes in [1usize, 2, 4] {
            let config = base.clone().with_parallelism(Parallelism::Threads(lanes));
            let plain = run(&inst, &policy, &f0, &config);
            let faulted = run(&inst, &policy, &f0, &config.clone().with_faults(plan.clone()));
            prop_assert!(plain.phases == faulted.phases, "records diverged at {} lanes", lanes);
            prop_assert!(plain.flows == faulted.flows, "flows diverged at {} lanes", lanes);
            prop_assert!(
                plain.final_flow == faulted.final_flow,
                "final flow diverged at {} lanes", lanes
            );
            for (a, b) in plain.phases.iter().zip(&faulted.phases) {
                prop_assert!(
                    a.potential_start.to_bits() == b.potential_start.to_bits()
                        && a.potential_end.to_bits() == b.potential_end.to_bits(),
                    "potential bits diverged at {} lanes", lanes
                );
            }
        }
        // The implicit-path backend, fully seeded so nothing is left to
        // discover.
        let edge = EdgeInstance::from_instance(&inst).expect("layered networks are DAGs");
        let seeding = PathSeeding::Explicit(
            (0..inst.num_commodities())
                .map(|i| inst.paths()[inst.commodity_paths(i)].to_vec())
                .collect(),
        );
        for lanes in [1usize, 2, 4] {
            let config = base.clone().with_parallelism(Parallelism::Threads(lanes));
            let plain = run_edge(&edge, &policy, &config, &seeding).expect("edge run");
            let faulted = run_edge(
                &edge,
                &policy,
                &config.clone().with_faults(plan.clone()),
                &seeding,
            )
            .expect("faulted edge run");
            prop_assert!(
                plain.phases == faulted.phases,
                "edge records diverged at {} lanes", lanes
            );
            prop_assert!(
                plain.flows == faulted.flows && plain.final_flow == faulted.final_flow,
                "edge flows diverged at {} lanes", lanes
            );
        }
    }

    /// Agent populations round-trip through flows within 1/N.
    #[test]
    fn population_round_trip(
        (inst, f) in arb_parallel_instance().prop_flat_map(|inst| {
            let f = arb_flow(&inst);
            (Just(inst), f)
        }),
        n in 10u64..10_000,
    ) {
        use wardrop::agents::Population;
        let pop = Population::apportion(&inst, n, &f);
        prop_assert_eq!(pop.num_agents(), n);
        let g = pop.to_flow(&inst);
        prop_assert!(g.is_feasible(&inst, 1e-9));
        prop_assert!(f.linf_distance(&g) <= 1.0 / n as f64 + 1e-9);
    }
}
