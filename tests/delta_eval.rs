//! Incremental delta evaluation vs the full fused evaluation.
//!
//! The delta path is *approximate by design* — unlisted sub-threshold
//! movements and un-propagated sub-threshold latency changes are
//! allowed to drift within explicit budgets — so the contract has two
//! parts:
//!
//! 1. **Trajectory agreement**: every recorded phase quantity of a
//!    `delta_eval` run stays within `1e-9` of the full-evaluation run,
//!    across the 12-policy zoo, scenario events and fault plans.
//! 2. **Exactness at re-syncs**: whenever the drift machine forces a
//!    full re-sync, the cached evaluation state is bit-identical to a
//!    from-scratch evaluation of the simulation's own current flow.

use proptest::prelude::*;
use wardrop::net::EvalWorkspace;
use wardrop::prelude::*;

/// Asserts every shared phase quantity of two trajectories agrees to
/// `tol`, and that they have the same length.
fn assert_trajectories_close(
    a: &Trajectory,
    b: &Trajectory,
    tol: f64,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.phases.len(), b.phases.len());
    for (x, y) in a.phases.iter().zip(&b.phases) {
        prop_assert!((x.potential_start - y.potential_start).abs() <= tol);
        prop_assert!((x.potential_end - y.potential_end).abs() <= tol);
        prop_assert!((x.avg_latency_start - y.avg_latency_start).abs() <= tol);
        prop_assert!((x.max_regret_start - y.max_regret_start).abs() <= tol);
        prop_assert!((x.virtual_gain - y.virtual_gain).abs() <= tol);
    }
    for (fa, fb) in a.final_flow.values().iter().zip(b.final_flow.values()) {
        prop_assert!((fa - fb).abs() <= tol);
    }
    Ok(())
}

proptest! {
    // Each case sweeps the full 12-policy zoo × 2 fault plans; keep
    // the case count small.
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn delta_eval_matches_full_eval(
        seed in 0u64..1000,
        event_phase in 1usize..4,
        factor in 0.5f64..2.0,
        demand in 0.15f64..0.6,
        drop_p in 0.05f64..0.4,
        t in 0.1f64..0.6,
    ) {
        let inst = builders::multi_commodity_grid(4, 4, seed);
        let f0 = FlowVec::uniform(&inst);
        let scenario = Scenario::new("shock")
            .with_event(Event::at(
                event_phase,
                "degrade",
                EventAction::ScaleLatency { edge: EdgeId::from_index(0), factor },
            ))
            .with_event(Event::at(
                event_phase + 2,
                "surge",
                EventAction::SetDemand { commodity: 0, demand },
            ));
        let plans = [
            None,
            Some(
                FaultPlan::new(seed)
                    .with_drop_probability(drop_p)
                    .unwrap()
                    .with_partial_updates(0.5)
                    .unwrap(),
            ),
        ];
        let policies = stock_policy_zoo(inst.latency_upper_bound().max(1e-6));
        prop_assert_eq!(policies.len(), 12);
        for policy in &policies {
            for plan in &plans {
                let mut base = SimulationConfig::new(t, 16).with_flows();
                if let Some(plan) = plan {
                    base = base.with_faults(plan.clone());
                }
                let full = run_scenario(&inst, policy.as_ref(), &f0, &base, &scenario)
                    .expect("full-eval scenario run");
                let delta_cfg = base.clone().with_delta_eval();
                let delta = run_scenario(&inst, policy.as_ref(), &f0, &delta_cfg, &scenario)
                    .expect("delta-eval scenario run");
                assert_trajectories_close(&full, &delta, 1e-9)?;
            }
        }
    }

    /// At every forced re-sync the cached evaluation state must be
    /// bit-identical to a from-scratch evaluation of the simulation's
    /// own current flow — the "exact at re-sync" half of the contract.
    #[test]
    fn resync_state_is_bit_identical_to_fresh_evaluation(
        seed in 0u64..1000,
        t in 0.1f64..0.8,
    ) {
        let inst = builders::grid_network(5, 5, seed);
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(t, 40).with_delta_eval();
        let mut sim = Simulation::new(&inst, &policy, &f0, &config);
        let mut resyncs_seen = 0;
        while sim.step().is_some() {
            if sim.last_eval_resynced() == Some(true) {
                resyncs_seen += 1;
                let mut reference = EvalWorkspace::new(sim.instance());
                reference.evaluate(sim.instance(), sim.flow());
                prop_assert_eq!(
                    sim.eval().potential().to_bits(),
                    reference.potential().to_bits()
                );
                prop_assert_eq!(sim.eval().edge_flows(), reference.edge_flows());
                prop_assert_eq!(sim.eval().edge_latencies(), reference.edge_latencies());
                prop_assert_eq!(sim.eval().path_latencies(), reference.path_latencies());
            }
        }
        // The very first phase-end evaluation is always a re-sync
        // (the scratch starts un-primed).
        prop_assert!(resyncs_seen >= 1);
    }

    /// The movement early-out: a run with `stop_when_phase_delta_below`
    /// must be a bitwise prefix of the unstopped run, and must actually
    /// stop once the contraction drives per-phase movement below the
    /// threshold.
    #[test]
    fn phase_delta_stop_is_a_bitwise_prefix(
        seed in 0u64..1000,
        t in 0.5f64..1.5,
    ) {
        let inst = builders::grid_network(4, 4, seed);
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        // The linear policy contracts slowly on grids (power-law-ish
        // tail): per-phase movement is ~1e-3 after 200 phases, so the
        // stop threshold must sit above that to fire mid-run.
        let base = SimulationConfig::new(t, 200).with_flows();
        let full = run(&inst, &policy, &f0, &base);
        let stopped = run(
            &inst,
            &policy,
            &f0,
            &base.clone().with_stop_phase_delta(5e-3),
        );
        prop_assert!(stopped.phases.len() < full.phases.len(), "early-out never fired");
        for (a, b) in stopped.phases.iter().zip(&full.phases) {
            prop_assert!(a.potential_start.to_bits() == b.potential_start.to_bits());
            prop_assert!(a.potential_end.to_bits() == b.potential_end.to_bits());
        }
        // The early-out composes with delta evaluation (both knobs on).
        let both = run(
            &inst,
            &policy,
            &f0,
            &base.clone().with_delta_eval().with_stop_phase_delta(5e-3),
        );
        prop_assert!(both.phases.len() <= full.phases.len());
        for (a, b) in both.phases.iter().zip(&full.phases) {
            prop_assert!((a.potential_end - b.potential_end).abs() <= 1e-9);
        }
    }

    /// The implicit-path backend honours the same delta contract.
    #[test]
    fn edge_backend_delta_matches_full(
        seed in 0u64..1000,
        t in 0.1f64..0.6,
    ) {
        let inst = builders::grid_network(5, 5, seed);
        let edge = EdgeInstance::from_instance(&inst).expect("grids are DAGs");
        let policy = uniform_linear(&inst);
        let seeding = PathSeeding::Oracle { random_paths: 3, seed };
        let base = SimulationConfig::new(t, 20).with_flows();
        let full = run_edge(&edge, &policy, &base, &seeding).expect("full edge run");
        let delta = run_edge(&edge, &policy, &base.clone().with_delta_eval(), &seeding)
            .expect("delta edge run");
        assert_trajectories_close(&full, &delta, 1e-9)?;
    }

    /// An `F32` board stays a well-posed simulation — finite records,
    /// feasible final flow — and lands near the `F64` trajectory, while
    /// `F64` quantisation is exactly the legacy path.
    #[test]
    fn f32_board_is_close_and_f64_is_identity(
        seed in 0u64..1000,
        t in 0.1f64..0.6,
    ) {
        let inst = builders::multi_commodity_grid(4, 4, seed);
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let base = SimulationConfig::new(t, 15).with_flows();
        let reference = run(&inst, &policy, &f0, &base);
        let f64_explicit = run(
            &inst,
            &policy,
            &f0,
            &base.clone().with_board_precision(BoardPrecision::F64),
        );
        prop_assert!(reference.phases == f64_explicit.phases);
        prop_assert!(reference.final_flow == f64_explicit.final_flow);
        let quantised = run(
            &inst,
            &policy,
            &f0,
            &base.clone().with_board_precision(BoardPrecision::F32),
        );
        prop_assert_eq!(quantised.phases.len(), reference.phases.len());
        prop_assert!(quantised.final_flow.is_feasible(&inst, 1e-6));
        for (a, b) in quantised.phases.iter().zip(&reference.phases) {
            prop_assert!(a.potential_end.is_finite());
            // f32 posts perturb the board by ~1e-7 relative; the
            // trajectories stay close but not bit-equal.
            prop_assert!((a.potential_end - b.potential_end).abs() <= 1e-3);
        }
    }
}

/// Satellite: a reused workspace — delta scratch included — must be
/// indistinguishable from a fresh construction after `apply_event`
/// followed by `reset`, bitwise.
#[test]
fn reused_workspace_after_apply_event_matches_fresh_bitwise() {
    let inst = builders::multi_commodity_grid(4, 4, 9);
    let policy = uniform_linear(&inst);
    let f0 = FlowVec::uniform(&inst);
    let first_cfg = SimulationConfig::new(0.4, 10).with_delta_eval();
    let second_cfg = SimulationConfig::new(0.3, 25)
        .with_flows()
        .with_delta_eval();

    // Dirty the workspace: run with delta, mutate the instance via an
    // event mid-run (leaving drift/shadow state behind), run further.
    let mut reused = Simulation::new(&inst, &policy, &f0, &first_cfg);
    for _ in 0..5 {
        reused.step();
    }
    reused
        .apply_event(&[EventAction::ScaleLatency {
            edge: EdgeId::from_index(0),
            factor: 1.7,
        }])
        .expect("event applies");
    for _ in 0..5 {
        reused.step();
    }

    // Fresh simulation against the *mutated* instance.
    let mutated = reused.instance().clone();
    let mut fresh = Simulation::new(&mutated, &policy, &f0, &second_cfg);

    reused.reset(&f0, &second_cfg);
    let reused_traj = reused.drive();
    let fresh_traj = fresh.drive();

    assert_eq!(reused_traj.phases, fresh_traj.phases);
    assert_eq!(reused_traj.flows, fresh_traj.flows);
    assert_eq!(reused_traj.final_flow, fresh_traj.final_flow);
    for (a, b) in reused_traj.phases.iter().zip(&fresh_traj.phases) {
        assert_eq!(a.potential_start.to_bits(), b.potential_start.to_bits());
        assert_eq!(a.potential_end.to_bits(), b.potential_end.to_bits());
        assert_eq!(a.virtual_gain.to_bits(), b.virtual_gain.to_bits());
    }
    assert_eq!(reused.delta_stats(), fresh.delta_stats());
}

/// `rebind` clears the delta scratch too: rebinding to another seed of
/// the same family matches a fresh construction bitwise.
#[test]
fn rebind_clears_delta_scratch() {
    let a = builders::grid_network(4, 4, 1);
    let b = builders::grid_network(4, 4, 2);
    let policy = uniform_linear(&a);
    let f0 = FlowVec::uniform(&a);
    let cfg = SimulationConfig::new(0.5, 20)
        .with_flows()
        .with_delta_eval();

    let mut sim = Simulation::new(&a, &policy, &f0, &cfg);
    for _ in 0..7 {
        sim.step();
    }
    sim.rebind(&b, &f0, &cfg);
    let rebound = sim.drive();

    let fresh = run(&b, &policy, &f0, &cfg);
    assert_eq!(rebound.phases, fresh.phases);
    assert_eq!(rebound.final_flow, fresh.final_flow);
}
