//! Integration tests for the finite-population simulator against the
//! fluid limit — the law-of-large-numbers argument behind the paper's
//! model.

use wardrop::prelude::*;

/// The empirical trajectory approaches the ODE trajectory as N grows.
#[test]
fn empirical_flows_approach_fluid_limit() {
    let inst = builders::braess();
    let t = 0.25;
    let phases = 60;
    let f0 = FlowVec::uniform(&inst);
    let fluid = run(
        &inst,
        &replicator(&inst),
        &f0,
        &SimulationConfig::new(t, phases).with_flows(),
    );

    let mean_dist = |n: u64| {
        let config = AgentSimConfig::new(n, t, phases, 5).with_flows();
        let traj = run_agents(&inst, &AgentPolicy::replicator(&inst), &f0, &config);
        let d: f64 = traj
            .flows
            .iter()
            .zip(&fluid.flows)
            .map(|(a, b)| a.linf_distance(b))
            .sum();
        d / phases as f64
    };

    let small = mean_dist(200);
    let large = mean_dist(20_000);
    assert!(
        large < small / 3.0,
        "LLN: distance must shrink markedly ({small} → {large})"
    );
    assert!(large < 0.02);
}

/// Finite-agent uniform+linear reaches an approximate equilibrium, and
/// its bad-phase count respects the Theorem 6 bound (the stochastic
/// process tracks the fluid guarantee).
#[test]
fn agent_bad_phases_respect_theorem6_shape() {
    let inst = builders::standard_random_links(4, 9);
    let alpha = 1.0 / inst.latency_upper_bound();
    let t = safe_update_period(&inst, alpha).min(1.0);
    let (delta, eps) = (0.3, 0.1);
    let config = AgentSimConfig::new(5_000, t, 2000, 13).with_deltas(vec![delta]);
    let traj = run_agents(
        &inst,
        &AgentPolicy::uniform_linear(&inst),
        &FlowVec::uniform(&inst),
        &config,
    );
    let bad = traj.bad_phase_count(0, eps) as f64;
    let bound = wardrop::core::theory::theorem6_bound(&inst, t, delta, eps);
    assert!(bad <= bound, "bad {bad} vs bound {bound}");
    // And the tail is good: the process stays near equilibrium.
    let tail_bad = traj
        .phases
        .iter()
        .rev()
        .take(100)
        .filter(|p| p.unsatisfied[0] > eps)
        .count();
    assert!(tail_bad <= 5, "tail still bad in {tail_bad}/100 phases");
}

/// Same seed ⇒ identical trajectory; different seeds ⇒ different
/// trajectories (determinism without degeneracy).
#[test]
fn agent_runs_are_deterministic_per_seed() {
    let inst = builders::braess();
    let f0 = FlowVec::uniform(&inst);
    let mk = |seed| {
        let config = AgentSimConfig::new(300, 0.25, 30, seed).with_flows();
        run_agents(&inst, &AgentPolicy::replicator(&inst), &f0, &config)
    };
    let a = mk(1);
    let b = mk(1);
    let c = mk(2);
    assert_eq!(a.final_flow, b.final_flow);
    assert_eq!(a.flows, b.flows);
    assert_ne!(a.final_flow, c.final_flow);
}

/// The agent simulator and the fluid engine expose the same trajectory
/// schema, so analysis tooling is interchangeable.
#[test]
fn trajectory_schema_is_shared() {
    let inst = builders::pigou();
    let f0 = FlowVec::uniform(&inst);
    let fluid = run(
        &inst,
        &uniform_linear(&inst),
        &f0,
        &SimulationConfig::new(0.5, 20).with_deltas(vec![0.1]),
    );
    let agents = run_agents(
        &inst,
        &AgentPolicy::uniform_linear(&inst),
        &f0,
        &AgentSimConfig::new(500, 0.5, 20, 1).with_deltas(vec![0.1]),
    );
    // Same analysis functions apply to both.
    let s1 = summarise(&fluid, 0.5);
    let s2 = summarise(&agents, 0.5);
    assert_eq!(s1.phases, 20);
    assert_eq!(s2.phases, 20);
    assert_eq!(fluid.deltas, agents.deltas);
}
