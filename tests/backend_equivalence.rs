//! Differential validation of the implicit-path (edge-flow) backend
//! against the enumerated engine.
//!
//! Seeding [`EdgeSimulation`] with the **full enumerated path set** (in
//! enumeration order) makes its restricted instance structurally
//! identical to the enumerated one — both go through the same CSR
//! assembly — so every phase of the two engines must agree. The suite
//! asserts agreement across random small DAG instances, the full
//! 12-policy stock zoo, and non-stationary scenario epochs
//! (`apply_event`). The ISSUE tolerance is 1e-9 on edge flows and
//! per-phase potentials; the engines actually agree **bitwise**, which
//! the assertions also pin (f64 `==` on every record field).
//!
//! Oracle seeding (the production mode) cannot be bit-compared to the
//! enumerated engine — it deliberately runs on a strict subset of
//! columns — so for it the suite checks the structural invariants:
//! feasibility on the restriction, potential bracketed by the
//! enumerated run's optimum certificate, and monotone improvement for
//! smooth policies within the safe period.

use proptest::prelude::*;
use wardrop::core::edge_engine::{run_edge, run_edge_scenario, PathSeeding};
use wardrop::net::edge_flow::EdgeInstance;
use wardrop::net::path::Path;
use wardrop::prelude::*;

/// The full enumerated path set of `inst`, split per commodity — the
/// explicit seeding under which the backends must agree exactly.
fn full_seed(inst: &Instance) -> PathSeeding {
    PathSeeding::Explicit(
        (0..inst.num_commodities())
            .map(|i| inst.paths()[inst.commodity_paths(i)].to_vec())
            .collect(),
    )
}

/// Largest absolute difference between two recorded flows' edge flows.
fn max_edge_flow_diff(inst: &Instance, a: &FlowVec, b: &FlowVec) -> f64 {
    a.edge_flows(inst)
        .iter()
        .zip(&b.edge_flows(inst))
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

proptest! {
    // Each case sweeps the 12-policy zoo on both backends; a handful
    // of cases gives broad instance coverage without a long run.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Full-seed edge-flow runs reproduce the enumerated trajectories
    /// on random small DAG instances across the stock policy zoo,
    /// through scenario events.
    #[test]
    fn edge_backend_matches_enumerated(
        seed in 0u64..1000,
        k in 2usize..4,
        event_phase in 0usize..2,
        factor in 0.5f64..2.0,
        demand in 0.15f64..0.6,
        family in 0u32..3,
    ) {
        let inst = match family {
            0 => builders::grid_network(3, 3, seed),
            1 => builders::multi_commodity_grid(3, 3, seed),
            _ => builders::many_commodity_grid(3, 4, k, seed),
        };
        let edge = EdgeInstance::from_instance(&inst).expect("builders emit DAGs");
        let f0 = FlowVec::uniform(&inst);

        // A latency shock plus (when multi-commodity) a demand surge:
        // scenario epochs must preserve agreement too.
        let mut scenario = Scenario::new("shock").with_event(Event::at(
            event_phase,
            "degrade",
            EventAction::ScaleLatency { edge: EdgeId::from_index(0), factor },
        ));
        if inst.num_commodities() > 1 {
            scenario = scenario.with_event(Event::at(
                event_phase + 1,
                "surge",
                EventAction::SetDemand { commodity: 0, demand },
            ));
        }

        let policies = stock_policy_zoo(inst.latency_upper_bound().max(1e-6));
        prop_assert_eq!(policies.len(), 12);
        let config = SimulationConfig::new(0.5, 4).with_flows();
        let seeding = full_seed(&inst);
        for policy in &policies {
            let reference = run_scenario(&inst, policy.as_ref(), &f0, &config, &scenario)
                .expect("enumerated scenario run");
            let traj = run_edge_scenario(&edge, policy.as_ref(), &config, &seeding, &scenario)
                .expect("edge-flow scenario run");

            // ISSUE tolerances: ≤ 1e-9 per phase on potentials and
            // edge flows…
            prop_assert_eq!(traj.phases.len(), reference.phases.len());
            for (a, b) in traj.phases.iter().zip(&reference.phases) {
                prop_assert!(
                    (a.potential_start - b.potential_start).abs() <= 1e-9
                        && (a.potential_end - b.potential_end).abs() <= 1e-9,
                    "potential diverged for {} at phase {}", policy.name(), b.index
                );
            }
            prop_assert_eq!(traj.flows.len(), reference.flows.len());
            for (a, b) in traj.flows.iter().zip(&reference.flows) {
                prop_assert!(
                    max_edge_flow_diff(&inst, a, b) <= 1e-9,
                    "edge flows diverged for {}", policy.name()
                );
            }
            // …and the stronger truth: the trajectories are identical,
            // record for record (PhaseRecord equality is exact f64
            // equality on every field, epochs included).
            prop_assert!(
                traj.phases == reference.phases,
                "records diverged for {}", policy.name()
            );
            prop_assert!(
                traj.flows == reference.flows && traj.final_flow == reference.final_flow,
                "flows diverged for {}", policy.name()
            );
        }
    }

    /// Oracle seeding runs on a strict subset of columns, so instead of
    /// bit-equality: restricted feasibility, a potential no better than
    /// the true optimum, and Lemma-4 monotonicity for a smooth policy
    /// within the safe period.
    #[test]
    fn oracle_seeding_respects_enumerated_invariants(
        seed in 0u64..1000,
        random_paths in 0usize..6,
        rng_seed in 0u64..100,
    ) {
        let inst = builders::grid_network(4, 4, seed);
        let edge = EdgeInstance::from_instance(&inst).expect("grids are DAGs");
        let policy = uniform_linear(&inst);
        let config = SimulationConfig::new(0.4, 30).with_flows();
        let seeding = PathSeeding::Oracle { random_paths, seed: rng_seed };
        let traj = run_edge(&edge, &policy, &config, &seeding).expect("oracle-seeded run");
        prop_assert_eq!(traj.phases.len(), 30);
        // Monotone potential (smooth policy, conservative period).
        for w in traj.phases.windows(2) {
            prop_assert!(w[1].potential_start <= w[0].potential_start + 1e-9);
        }
        // The restriction can never beat the full-polytope optimum.
        let phi_star = minimise(&inst, Objective::Potential, &FrankWolfeConfig::default()).value;
        prop_assert!(traj.phases.last().unwrap().potential_end >= phi_star - 1e-6);
        // Recorded flows are genuine distributions: every phase-start
        // snapshot sums to the (unit) total demand per commodity.
        for flow in &traj.flows {
            let total: f64 = flow.values().iter().sum();
            prop_assert!((total - 1.0).abs() <= 1e-6, "mass drifted to {total}");
        }
    }
}

/// A path whose endpoints don't match the commodity is rejected at
/// seeding time, not silently mis-assembled.
#[test]
fn mismatched_explicit_seed_is_rejected() {
    let inst = builders::multi_commodity_grid(3, 3, 5);
    let edge = EdgeInstance::from_instance(&inst).unwrap();
    let policy = uniform_linear(&inst);
    let config = SimulationConfig::new(0.5, 2);
    // Swap the two commodities' path lists: every path now has the
    // wrong endpoints for its slot.
    let swapped: Vec<Vec<Path>> = (0..inst.num_commodities())
        .rev()
        .map(|i| inst.paths()[inst.commodity_paths(i)].to_vec())
        .collect();
    let err = run_edge(&edge, &policy, &config, &PathSeeding::Explicit(swapped)).unwrap_err();
    assert!(matches!(err, NetError::Inconsistent(_)), "got {err:?}");
}
