#!/usr/bin/env bash
# Profile-guided-optimisation build recipe for the wardrop workspace.
#
# Three stages:
#   1. instrumented release build (-Cprofile-generate) of the
#      `bench_report` binary;
#   2. a profiling run — `bench_report --smoke` exercises the fused
#      phase loop, the matrix-free rate kernels, the implicit-path
#      backend and the incremental delta evaluation, i.e. every hot
#      loop the report times;
#   3. profile merge (llvm-profdata) + optimised rebuild of the whole
#      workspace with -Cprofile-use.
#
# The merged profile lands in target/pgo-profiles/merged.profdata
# (override the directory with PGO_PROFILE_DIR). Requires the rustup
# `llvm-tools` component for llvm-profdata; the script aborts with a
# hint if it is missing — nothing is downloaded.
set -euo pipefail
cd "$(dirname "$0")/.."

PROFDIR="${PGO_PROFILE_DIR:-target/pgo-profiles}"

SYSROOT="$(rustc --print sysroot)"
LLVM_PROFDATA="$(find "$SYSROOT" -name llvm-profdata -type f 2>/dev/null | head -n1 || true)"
if [[ -z "$LLVM_PROFDATA" ]]; then
    echo "error: llvm-profdata not found under $SYSROOT" >&2
    echo "hint: install it with 'rustup component add llvm-tools'" >&2
    exit 1
fi

rm -rf "$PROFDIR"
mkdir -p "$PROFDIR"

echo "==> stage 1: instrumented build (-Cprofile-generate)"
RUSTFLAGS="${RUSTFLAGS:-} -Cprofile-generate=$PROFDIR" \
    cargo build --release -p wardrop-bench --bin bench_report

echo "==> stage 2: profiling run (bench_report --smoke)"
./target/release/bench_report --smoke --out "$PROFDIR/BENCH_engine.pgo.json"

echo "==> stage 3: merge profiles + optimised rebuild (-Cprofile-use)"
"$LLVM_PROFDATA" merge -o "$PROFDIR/merged.profdata" "$PROFDIR"
RUSTFLAGS="${RUSTFLAGS:-} -Cprofile-use=$PROFDIR/merged.profdata" \
    cargo build --release

echo "PGO build complete: target/release (profile: $PROFDIR/merged.profdata)"
