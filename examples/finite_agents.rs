//! Finite populations versus the fluid limit.
//!
//! The paper analyses the fluid limit (a continuum of infinitesimal
//! agents). This example runs the *actual* stochastic process — `N`
//! agents with Poisson clocks revising paths against the stale board —
//! for increasing `N` and shows the empirical trajectory converging to
//! the ODE solution, justifying the fluid model.
//!
//! Run with: `cargo run --release --example finite_agents`

use wardrop::prelude::*;

fn main() {
    let inst = builders::braess();
    let t_period = 0.25;
    let phases = 120;
    let f0 = FlowVec::uniform(&inst);

    // Ground truth: the fluid-limit run.
    let fluid = run(
        &inst,
        &replicator(&inst),
        &f0,
        &SimulationConfig::new(t_period, phases).with_flows(),
    );

    println!("replicator dynamics on Braess, T = {t_period}, {phases} phases");
    println!("L∞ distance between empirical and fluid phase-start flows:\n");
    println!(
        "{:>8}  {:>10}  {:>10}  {:>12}",
        "N", "mean dist", "max dist", "final dist"
    );

    for num_agents in [100u64, 1_000, 10_000, 100_000] {
        let config = AgentSimConfig::new(num_agents, t_period, phases, 7).with_flows();
        let traj = run_agents(&inst, &AgentPolicy::replicator(&inst), &f0, &config);
        let dists: Vec<f64> = traj
            .flows
            .iter()
            .zip(&fluid.flows)
            .map(|(a, b)| a.linf_distance(b))
            .collect();
        let mean = dists.iter().sum::<f64>() / dists.len() as f64;
        let max = dists.iter().fold(0.0_f64, |a, b| a.max(*b));
        println!(
            "{:>8}  {:>10.5}  {:>10.5}  {:>12.5}",
            num_agents,
            mean,
            max,
            dists.last().expect("recorded flows")
        );
    }

    println!("\nThe distance shrinks like O(1/√N) — the law of large numbers");
    println!("behind the paper's fluid-limit model.");

    // Best response with finitely many agents also oscillates.
    let inst = builders::two_link_oscillator(4.0);
    let t = 0.5;
    let f1 = theory::oscillation::initial_flow(t);
    let f0 = FlowVec::from_values(&inst, vec![f1, 1.0 - f1]).expect("feasible");
    let config = AgentSimConfig::new(50_000, t, 30, 5).with_flows();
    let traj = run_agents(&inst, &AgentPolicy::BestResponse, &f0, &config);
    println!("\nbest response, 50k agents on the §3.2 oscillator (f₁ per phase):");
    let series: Vec<String> = traj
        .flows
        .iter()
        .map(|f| format!("{:.3}", f.values()[0]))
        .collect();
    println!("  {}", series.join(" "));
}
