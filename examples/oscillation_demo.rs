//! The §3.2 oscillation counterexample, live.
//!
//! Two parallel links with latency `ℓ(x) = max{0, β(x − ½)}`. Under
//! best response with *any* update period `T > 0` and the initial flow
//! `f₁(0) = 1/(e^{−T} + 1)`, the population flips between the two
//! links forever with period `2T`, sustaining latency deviation
//! `X = β(1 − e^{−T})/(2e^{−T} + 2)` at every phase start. The same
//! instance under an α-smooth policy converges to the exact
//! equilibrium `(½, ½)`.
//!
//! The demo verifies the engine against the paper's closed forms and
//! prints the orbit.
//!
//! Run with: `cargo run --example oscillation_demo`

use wardrop::core::theory::oscillation;
use wardrop::prelude::*;

fn main() {
    let beta = 2.0;
    let t_period = 0.5;
    let inst = builders::two_link_oscillator(beta);

    let f1 = oscillation::initial_flow(t_period);
    println!("β = {beta}, T = {t_period}");
    println!("paper's oscillating start: f₁(0) = 1/(e^-T + 1) = {f1:.6}");
    println!(
        "predicted sustained deviation X = {:.6}\n",
        oscillation::deviation(beta, t_period)
    );

    let f0 = FlowVec::from_values(&inst, vec![f1, 1.0 - f1]).expect("feasible by construction");
    let config = SimulationConfig::new(t_period, 20).with_flows();
    let traj = run(&inst, &BestResponse::new(), &f0, &config);

    println!("phase    t      f₁ (engine)   f₁ (closed form)   max latency");
    for (i, flow) in traj.flows.iter().enumerate() {
        let t = i as f64 * t_period;
        let engine_f1 = flow.values()[0];
        let analytic = oscillation::orbit_f1(t, t_period);
        let max_lat = flow.max_used_latency(&inst, 1e-12);
        println!("{i:4} {t:6.2}   {engine_f1:.8}   {analytic:.8}     {max_lat:.6}");
        assert!(
            (engine_f1 - analytic).abs() < 1e-9,
            "engine must match the closed form"
        );
    }

    match detect_orbit(&traj, 8, 4, 1e-9) {
        OrbitKind::Periodic(p) => println!("\ndetected periodic orbit, period {p} phases (= 2T)"),
        other => println!("\nunexpected orbit kind: {other:?}"),
    }

    // How small must T be to keep the deviation below ε? (§3.2)
    println!("\nmax update period for deviation ε (β = {beta}):");
    for eps in [0.4, 0.2, 0.1, 0.05, 0.01] {
        match oscillation::max_period_for_deviation(beta, eps) {
            Some(t) => println!("  ε = {eps:5}: T ≤ {t:.5}"),
            None => println!("  ε = {eps:5}: unconstrained"),
        }
    }

    // The smooth baseline on the same instance converges.
    let policy = uniform_linear(&inst);
    let smooth = run(
        &inst,
        &policy,
        &FlowVec::from_values(&inst, vec![0.9, 0.1]).expect("feasible"),
        &SimulationConfig::new(t_period, 400).with_flows(),
    );
    println!(
        "\nα-smooth baseline from (0.9, 0.1): final flow = ({:.4}, {:.4}), orbit = {:?}",
        smooth.final_flow.values()[0],
        smooth.final_flow.values()[1],
        detect_orbit(&smooth, 8, 4, 1e-6)
    );
}
