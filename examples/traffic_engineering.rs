//! Stale-information traffic engineering on a grid network.
//!
//! The paper's motivation: real load-adaptive routing protocols
//! (ARPANET-style) broadcast link metrics at intervals, and greedy
//! reactions to those stale metrics cause the oscillations observed in
//! practice (§1, [15, 19, 24]). This example plays a network operator:
//!
//! * a 4×4 grid with two commodities and random affine latencies;
//! * link metrics are published every `T` (the bulletin board);
//! * we compare smoothed-best-response variants with increasing
//!   greediness (logit parameter `c`) against the α-smooth uniform
//!   policy and plain best response.
//!
//! Run with: `cargo run --example traffic_engineering`

use wardrop::prelude::*;

fn main() {
    let inst = builders::multi_commodity_grid(4, 4, 2024);
    println!(
        "grid network: {} nodes, {} edges, {} commodities, {} paths, D = {}",
        inst.graph().node_count(),
        inst.num_edges(),
        inst.num_commodities(),
        inst.num_paths(),
        inst.max_path_len()
    );

    let eq = minimise(&inst, Objective::Potential, &FrankWolfeConfig::default());
    println!(
        "equilibrium potential Φ* = {:.6} (FW gap {:.1e})\n",
        eq.value, eq.gap
    );

    // A metrics-broadcast interval an operator might pick: larger than
    // the safe period of the fastest policy to make staleness bite.
    let policy_ref = uniform_linear(&inst);
    let alpha = policy_ref.smoothness().expect("linear is smooth");
    let t_star = safe_update_period(&inst, alpha);
    let t = 4.0 * t_star;
    println!("safe period T* = {t_star:.4}; broadcasting metrics every T = {t:.4} (4 T*)\n");

    let f0 = FlowVec::uniform(&inst);
    let phases = 1500;

    println!(
        "{:<28} {:>12} {:>12} {:>10} {:>9}",
        "policy", "final gap", "avg latency", "monotone", "regret"
    );
    run_and_report(&inst, &uniform_linear(&inst), &f0, t, phases, eq.value);
    run_and_report(&inst, &replicator(&inst), &f0, t, phases, eq.value);
    for c in [1.0, 10.0, 100.0] {
        run_and_report(
            &inst,
            &smoothed_best_response(&inst, c),
            &f0,
            t,
            phases,
            eq.value,
        );
    }
    run_and_report(&inst, &BestResponse::new(), &f0, t, phases, eq.value);

    println!("\nGreedier samplers (large c) approach best response and lose the");
    println!("smooth-convergence guarantee; the α-smooth policies stay monotone.");
}

fn run_and_report<D: Dynamics>(
    inst: &Instance,
    dynamics: &D,
    f0: &FlowVec,
    t: f64,
    phases: usize,
    phi_star: f64,
) {
    let config = SimulationConfig::new(t, phases);
    let traj = run(inst, dynamics, f0, &config);
    let last = traj.phases.last().expect("phases ran");
    println!(
        "{:<28} {:>12.3e} {:>12.4} {:>10} {:>9.3}",
        dynamics.dynamics_name(),
        last.potential_end - phi_star,
        last.avg_latency_start,
        traj.monotonicity_violations(1e-10) == 0,
        last.max_regret_start,
    );
}
