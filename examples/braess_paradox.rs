//! The Braess paradox through the lens of the paper.
//!
//! The Braess network is the classic instance where selfish routing
//! hurts everyone: adding a zero-latency chord raises the equilibrium
//! latency from 1.5 to 2 (price of anarchy 4/3). This example
//!
//! 1. computes the Wardrop equilibrium and the system optimum with the
//!    certified Frank–Wolfe solver,
//! 2. shows the α-smooth dynamics *finding* that equilibrium from any
//!    start, even under stale information, and
//! 3. sweeps the update period `T` against the safe threshold
//!    `T* = 1/(4DαΒ)` of Corollary 5.
//!
//! Run with: `cargo run --example braess_paradox`

use wardrop::prelude::*;

fn main() {
    let inst = builders::braess();

    // 1. Static analysis.
    let report = price_of_anarchy(&inst);
    println!("Braess network static analysis");
    println!("  equilibrium social cost: {:.4}", report.equilibrium_cost);
    println!("  optimal social cost:     {:.4}", report.optimal_cost);
    println!(
        "  price of anarchy:        {:.4}  (theory: 4/3)\n",
        report.price_of_anarchy
    );

    // 2. Dynamics under staleness find the equilibrium.
    let policy = replicator(&inst);
    let alpha = policy.smoothness().expect("replicator is smooth");
    let t_star = safe_update_period(&inst, alpha);
    let config = SimulationConfig::new(t_star, 3000).with_deltas(vec![0.01]);
    let traj = run(&inst, &policy, &FlowVec::uniform(&inst), &config);
    let final_latencies = traj.final_flow.path_latencies(&inst);
    println!("replicator dynamics, T = T* = {t_star:.4}:");
    println!(
        "  final path flows:     {:?}",
        rounded(traj.final_flow.values())
    );
    println!("  final path latencies: {:?}", rounded(&final_latencies));
    println!(
        "  equilibrium reached:  {}",
        is_wardrop_equilibrium(&inst, &traj.final_flow, 0.02)
    );
    println!(
        "  phases not at (0.01, 0.01)-equilibrium: {}\n",
        traj.bad_phase_count(0, 0.01)
    );

    // 3. Sweep T around T*: smooth policies keep the potential
    //    monotone within the safe regime.
    println!("update-period sweep (uniform sampling + linear migration):");
    println!("  T/T*    monotone?   Lemma-4 ok?   final regret");
    let policy = uniform_linear(&inst);
    for factor in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let t = t_star * factor;
        let config = SimulationConfig::new(t, 2000);
        let traj = run(&inst, &policy, &FlowVec::concentrated(&inst), &config);
        println!(
            "  {:5.2}   {:9}   {:11}   {:.2e}",
            factor,
            traj.monotonicity_violations(1e-10) == 0,
            traj.lemma4_violations(1e-10) == 0,
            traj.phases.last().expect("ran phases").max_regret_start
        );
    }
    println!("\n(The theorem guarantees monotonicity for T ≤ T*; larger T may\n still converge on this small instance, but without the guarantee.)");
}

fn rounded(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|x| (x * 1e4).round() / 1e4).collect()
}
