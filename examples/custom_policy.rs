//! Designing your own rerouting policy.
//!
//! The paper's framework is a *class* of policies: any sampling rule
//! `σ` (positive, continuous in the board) combined with any α-smooth
//! migration rule `µ` converges under `T ≤ 1/(4DαΒ)`. This example
//! implements both halves from scratch —
//!
//! * `RankSampling`: sample paths with probability decreasing in their
//!   board-latency rank (a "mostly explore the good half" rule), and
//! * `QuadraticMigration`: `µ = α·(ℓP − ℓQ)²/ℓmax` — *smoother* than
//!   linear near zero gap (sub-linear ⇒ α-smooth with the same α),
//!
//! plugs them into the engine via the `SamplingRule`/`MigrationRule`
//! traits, and verifies the Corollary 5 guarantee empirically.
//!
//! Run with: `cargo run --example custom_policy`

use wardrop::core::board::BulletinBoard;
use wardrop::prelude::*;

/// Sample the k-th cheapest path (on the board) with weight `1/(k+1)`.
#[derive(Debug, Clone, Copy)]
struct RankSampling;

impl SamplingRule for RankSampling {
    fn fill_weights(
        &self,
        instance: &Instance,
        board: &BulletinBoard,
        commodity: usize,
        weights: &mut [f64],
    ) {
        let range = instance.commodity_paths(commodity);
        // Rank paths by board latency (cheapest first).
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_by(|a, b| {
            let la = board.path_latencies()[range.start + a];
            let lb = board.path_latencies()[range.start + b];
            la.partial_cmp(&lb).expect("finite latencies")
        });
        let mut total = 0.0;
        for (rank, &local) in order.iter().enumerate() {
            weights[local] = 1.0 / (rank as f64 + 1.0);
            total += weights[local];
        }
        for w in weights.iter_mut() {
            *w /= total;
        }
    }

    fn name(&self) -> String {
        "rank".to_string()
    }

    fn strictly_positive(&self) -> bool {
        true // every rank gets positive weight
    }
}

/// `µ(ℓP, ℓQ) = min{1, (ℓP − ℓQ)² / ℓmax²}`.
///
/// For gaps in `[0, ℓmax]` this is below `(ℓP − ℓQ)/ℓmax`, so the rule
/// is `(1/ℓmax)`-smooth — same constant as linear migration, but even
/// gentler near equilibrium.
#[derive(Debug, Clone, Copy)]
struct QuadraticMigration {
    lmax: f64,
}

impl MigrationRule for QuadraticMigration {
    fn probability(&self, l_from: f64, l_to: f64) -> f64 {
        let gap = (l_from - l_to).max(0.0);
        ((gap / self.lmax) * (gap / self.lmax)).clamp(0.0, 1.0)
    }

    fn smoothness(&self) -> Option<f64> {
        // (gap/ℓmax)² ≤ gap/ℓmax for gap ≤ ℓmax ⇒ α = 1/ℓmax works.
        Some(1.0 / self.lmax)
    }

    fn name(&self) -> String {
        format!("quadratic(ℓmax={:.3})", self.lmax)
    }
}

fn main() {
    let inst = builders::grid_network(3, 3, 77);
    let lmax = inst.latency_upper_bound();
    let policy = SmoothPolicy::new(RankSampling, QuadraticMigration { lmax });

    let alpha = policy.smoothness().expect("quadratic is smooth");
    let t_star = safe_update_period(&inst, alpha);
    println!("custom policy: {}", policy.name());
    println!("α = {alpha:.4}, safe update period T* = {t_star:.4}\n");

    let phi_star = minimise(&inst, Objective::Potential, &FrankWolfeConfig::default()).value;
    let config = SimulationConfig::new(t_star, 4000);
    let traj = run(&inst, &policy, &FlowVec::concentrated(&inst), &config);

    println!("phase        Φ − Φ*");
    for i in [0usize, 10, 100, 500, 1000, 2000, 3999] {
        println!(
            "{:5}   {:11.6e}",
            i,
            traj.phases[i].potential_start - phi_star
        );
    }
    let final_gap = traj.phases.last().expect("ran").potential_end - phi_star;
    println!("\nfinal gap: {final_gap:.3e}");
    println!(
        "potential increases: {}",
        traj.monotonicity_violations(1e-10)
    );
    println!("Lemma 4 violations: {}", traj.lemma4_violations(1e-10));
    assert_eq!(traj.monotonicity_violations(1e-10), 0);
    assert!(final_gap < 1e-2);
    println!("\nThe custom policy inherits the Corollary 5 guarantee: any positive");
    println!("sampling rule + any α-smooth migration rule converges for T ≤ T*.");
}
