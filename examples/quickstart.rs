//! Quickstart: adaptive routing with stale information in 60 lines.
//!
//! Builds the Braess network, runs two policies against a bulletin
//! board that is only refreshed every `T` time units, and prints how
//! the potential (the distance-to-equilibrium measure) evolves:
//!
//! * the **replicator** policy (proportional sampling + linear
//!   migration) is α-smooth, so Corollary 5 *guarantees* monotone
//!   convergence for `T ≤ T*`;
//! * **best response** has no such guarantee — it happens to converge
//!   on Braess (the equilibrium is a strict vertex), but on the §3.2
//!   instance it oscillates forever (see `--example oscillation_demo`).
//!
//! Run with: `cargo run --example quickstart`

use wardrop::prelude::*;

fn main() {
    let inst = builders::braess();
    println!(
        "Braess network: {} paths, D = {}, β = {}, ℓmax = {}",
        inst.num_paths(),
        inst.max_path_len(),
        inst.slope_bound(),
        inst.latency_upper_bound()
    );

    // The paper's safe update period T* = 1/(4 D α β) for the
    // replicator's smoothness α = 1/ℓmax.
    let policy = replicator(&inst);
    let alpha = policy.smoothness().expect("replicator is smooth");
    let t_star = safe_update_period(&inst, alpha);
    println!("α = {alpha:.4},  safe update period T* = {t_star:.4}\n");

    let f0 = FlowVec::uniform(&inst);
    let config = SimulationConfig::new(t_star, 600);

    // 1. Smooth policy: converges despite staleness.
    let smooth = run(&inst, &policy, &f0, &config);
    // 2. Best response on the same stale board.
    let greedy = run(&inst, &BestResponse::new(), &f0, &config);

    println!("phase      t     Φ(replicator)   Φ(best-response)");
    for i in [0, 1, 2, 5, 10, 50, 100, 300, 599] {
        let s = &smooth.phases[i];
        let g = &greedy.phases[i];
        println!(
            "{:5} {:7.2}   {:13.6}   {:15.6}",
            i, s.start_time, s.potential_start, g.potential_start
        );
    }

    let eq = minimise(&inst, Objective::Potential, &FrankWolfeConfig::default());
    println!("\nGround-truth equilibrium potential Φ* = {:.6}", eq.value);
    println!(
        "replicator final gap   = {:.2e}  (monotone: {} violations)",
        smooth.phases.last().unwrap().potential_end - eq.value,
        smooth.monotonicity_violations(1e-10)
    );
    println!(
        "best-response final gap = {:.2e}  ({} potential increases — no guarantee)",
        greedy.phases.last().unwrap().potential_end - eq.value,
        greedy.monotonicity_violations(1e-10)
    );
    println!(
        "\nBraess equilibrium routes everyone via the zero-cost chord: latency {:.3}",
        smooth.final_flow.max_used_latency(&inst, 1e-3)
    );
    println!("Best response converges here; run `--example oscillation_demo` to see");
    println!("it oscillate forever on the paper's two-link counterexample.");
}
