use std::time::Instant;
use wardrop_pool::WorkerPool;
fn main() {
    for lanes in [2usize, 4] {
        let pool = WorkerPool::new(lanes);
        let mut out = vec![0.0f64; 64];
        // warm
        for _ in 0..100 {
            pool.fill_with(&mut out, |i| i as f64);
        }
        let n = 20_000;
        let t = Instant::now();
        for _ in 0..n {
            pool.fill_with(&mut out, |i| i as f64);
        }
        println!(
            "lanes {lanes}: {:.2} us/dispatch",
            t.elapsed().as_micros() as f64 / n as f64
        );
    }
}
