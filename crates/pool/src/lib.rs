//! # wardrop-pool
//!
//! A hand-rolled, dependency-free worker pool for the simulation
//! engine. The container this project builds in has no crates.io
//! access, so there is no rayon; this crate provides the few parallel
//! primitives the engine actually needs, built directly on
//! [`std::thread`], [`std::sync::Mutex`] and [`std::sync::Condvar`].
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Every primitive is *element-wise*: lane `w`
//!    computes output elements that depend only on shared read-only
//!    inputs, never on which lane computed them or on any cross-lane
//!    reduction order. Work is claimed in chunks whose boundaries are
//!    a pure function of `(len, lanes)`, and no primitive performs a
//!    floating-point reduction across chunks — callers keep those
//!    reductions on the dispatching thread. Consequently the results
//!    are **bit-identical** for every lane count, including one.
//! 2. **Zero steady-state allocation.** Workers are spawned once and
//!    park on a condvar between dispatches; a dispatch publishes one
//!    fixed-size job descriptor under a mutex and claims chunks through
//!    a stack-allocated atomic. Nothing is boxed, sent through an
//!    allocating channel, or resized.
//! 3. **Small, audited unsafety.** The crate contains the workspace's
//!    only `unsafe` code: one lifetime erasure (the dispatching call
//!    blocks until every worker is done, so the erased borrow can never
//!    dangle) and disjoint index/range writes (each index is claimed by
//!    exactly one lane). Everything above this crate is safe code.
//!
//! The dispatching thread always participates as lane 0, so
//! `WorkerPool::new(n)` spawns `n − 1` OS threads and `n = 1` degrades
//! to a plain serial loop with no synchronisation at all.

#![warn(missing_docs)]

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A fixed-size, type-erased job descriptor: a borrow of the dispatch
/// closure with its lifetime erased. Written before the epoch bump and
/// cleared only after every lane finished, so the borrow is live
/// whenever a worker dereferences it.
#[derive(Copy, Clone)]
struct Task {
    f: *const (dyn Fn(usize) + Sync),
}

// SAFETY: the pointee is `Sync` (it is a `&dyn Fn(usize) + Sync`), and
// the dispatch protocol guarantees it outlives every use: `broadcast`
// does not return (or unwind) until `remaining == 0`.
unsafe impl Send for Task {}

/// The published job. Written by the dispatcher strictly before the
/// `SeqCst` epoch bump and read by workers strictly after observing the
/// new epoch; the previous job's readers are all done (its `remaining`
/// reached 0 before the next `broadcast` may begin), so writer and
/// readers never overlap.
struct TaskSlot(UnsafeCell<Option<Task>>);

// SAFETY: access is ordered by the epoch/remaining protocol above.
unsafe impl Sync for TaskSlot {}

/// Dispatch latency is the whole game for fine-grained phase work
/// (a condvar wake alone costs tens of microseconds on a busy box), so
/// the pool publishes jobs through atomics and both sides spin briefly
/// before parking: a handful of pure spins, then yielding spins (so an
/// oversubscribed pool degrades gracefully), then the condvar.
const SPIN_ROUNDS: u32 = 1 << 12;
const YIELD_ROUNDS: u32 = 64;

struct Shared {
    /// Bumped once per dispatch (after writing `task`); workers detect
    /// fresh work by comparing against the last epoch they ran.
    epoch: AtomicU64,
    /// Spawned workers still running the current job.
    remaining: AtomicUsize,
    /// Set when a worker's closure panicked.
    panicked: AtomicBool,
    /// Set by `Drop`; workers exit their loop.
    shutdown: AtomicBool,
    /// Workers currently parked on `start` (the dispatcher only takes
    /// the lock to notify when this is nonzero).
    parked: AtomicUsize,
    /// The dispatcher is parked on `done` (workers only take the lock
    /// to notify when set).
    dispatcher_parked: AtomicBool,
    task: TaskSlot,
    /// Serialises whole dispatches: the pool is `Sync` (it is shared
    /// via `Arc` across simulations), so two threads may call
    /// `broadcast` concurrently — the second blocks here until the
    /// first completes, which is what keeps the single-writer task
    /// protocol sound. Distinct from `lock`, which is only the parking
    /// fallback.
    dispatch: Mutex<()>,
    /// Parking fallback; never held on the fast path.
    lock: Mutex<()>,
    start: Condvar,
    done: Condvar,
}

/// A persistent pool of parked worker threads with deterministic,
/// allocation-free parallel primitives.
///
/// # Determinism, worked example
///
/// The primitives are element-wise, so the number of lanes can never
/// change a single bit of the output. Summing each path's edge
/// latencies — the shape of the engine's fused evaluation — produces
/// the same bits serially, on this pool, and on a differently sized
/// pool:
///
/// ```
/// use wardrop_pool::WorkerPool;
///
/// // Toy CSR: path p uses edges [p, p+1, p+2] of a 66-edge network.
/// let edge_latency: Vec<f64> = (0..66).map(|e| 0.1 + (e as f64) * 0.013).collect();
/// let path_edges = |p: usize| [p, p + 1, p + 2];
/// let fill = |p: usize| path_edges(p).iter().map(|&e| edge_latency[e]).sum::<f64>();
///
/// // Serial reference: a plain left-to-right loop.
/// let serial: Vec<f64> = (0..64).map(fill).collect();
///
/// // The same computation on 2 and on 5 lanes.
/// let mut two = vec![0.0; 64];
/// WorkerPool::new(2).fill_with(&mut two, fill);
/// let mut five = vec![0.0; 64];
/// WorkerPool::new(5).fill_with(&mut five, fill);
///
/// // Bit-identical, not merely close: each element is produced by the
/// // same sequence of float operations regardless of which lane ran it.
/// assert!(serial.iter().zip(&two).all(|(a, b)| a.to_bits() == b.to_bits()));
/// assert!(serial.iter().zip(&five).all(|(a, b)| a.to_bits() == b.to_bits()));
/// ```
///
/// What the pool does *not* give you is a parallel reduction: folding
/// chunk results into one float would re-associate additions and break
/// the guarantee. The engine keeps every such fold (potential, average
/// latency, Poisson weights) on the dispatching thread.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    lanes: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("lanes", &self.lanes)
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool with `lanes` total lanes: the dispatching thread
    /// (lane 0) plus `lanes − 1` spawned workers that park between
    /// dispatches. `lanes` is clamped to at least 1; a 1-lane pool
    /// spawns nothing and runs every primitive as a serial loop.
    pub fn new(lanes: usize) -> Self {
        let lanes = lanes.max(1);
        let shared = Arc::new(Shared {
            epoch: AtomicU64::new(0),
            remaining: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            parked: AtomicUsize::new(0),
            dispatcher_parked: AtomicBool::new(false),
            task: TaskSlot(UnsafeCell::new(None)),
            dispatch: Mutex::new(()),
            lock: Mutex::new(()),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..lanes)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("wardrop-worker-{lane}"))
                    .spawn(move || worker_loop(&shared, lane))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            lanes,
        }
    }

    /// Total lanes, including the dispatching thread.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Runs `f(lane)` once on every lane (the caller participates as
    /// lane 0) and returns when all lanes have finished. This is the
    /// primitive the safe helpers are built on; `f` coordinates work
    /// splitting itself (typically through an [`AtomicUsize`] chunk
    /// counter on the caller's stack).
    ///
    /// # Panics
    ///
    /// Propagates a panic from any lane after all lanes have finished
    /// (so no lane can still be using borrowed data while the stack
    /// unwinds).
    pub fn broadcast<F: Fn(usize) + Sync>(&self, f: F) {
        self.broadcast_dyn(&f);
    }

    fn broadcast_dyn(&self, f: &(dyn Fn(usize) + Sync)) {
        if self.handles.is_empty() {
            f(0);
            return;
        }
        let shared = &*self.shared;
        // One dispatch at a time: concurrent `broadcast` calls from
        // threads sharing this pool queue up here instead of racing on
        // the task slot and the `remaining` counter. Held across the
        // whole dispatch (publish → run → completion wait). A worker
        // lane must never dispatch on its own pool — that would
        // deadlock by design (nested dispatch is a bug). Poisoning is
        // ignored: the mutex guards no data, and a propagated panic
        // (which unwinds through this guard) must not brick the pool.
        let _dispatch = shared
            .dispatch
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // SAFETY (lifetime erasure): the raw pointer is dereferenced
        // only by workers between the publish below and the
        // `remaining == 0` wait; this function does not return or
        // unwind before that wait completes, so the borrow outlives
        // every dereference.
        let task = Task {
            f: unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(f as *const _)
            },
        };
        // Publish: slot first, then counters, then the epoch bump that
        // makes it visible. No lane is running (the previous dispatch
        // completed), so the slot write cannot race a reader.
        debug_assert_eq!(shared.remaining.load(Ordering::SeqCst), 0);
        unsafe { *shared.task.0.get() = Some(task) };
        shared.panicked.store(false, Ordering::SeqCst);
        shared.remaining.store(self.handles.len(), Ordering::SeqCst);
        shared.epoch.fetch_add(1, Ordering::SeqCst);
        // Wake parked workers only — spinning ones see the epoch bump.
        if shared.parked.load(Ordering::SeqCst) > 0 {
            let _guard = shared.lock.lock().expect("pool mutex");
            shared.start.notify_all();
        }

        // Lane 0 — catch a local panic so we still wait for the other
        // lanes before unwinding past the borrowed closure.
        let local = catch_unwind(AssertUnwindSafe(|| f(0)));

        // Completion: spin briefly (workers usually finish within the
        // dispatcher's own share), then park on the condvar.
        let mut spins = 0u32;
        while shared.remaining.load(Ordering::SeqCst) > 0 {
            if spins < SPIN_ROUNDS {
                spins += 1;
                std::hint::spin_loop();
            } else if spins < SPIN_ROUNDS + YIELD_ROUNDS {
                spins += 1;
                std::thread::yield_now();
            } else {
                let mut guard = shared.lock.lock().expect("pool mutex");
                shared.dispatcher_parked.store(true, Ordering::SeqCst);
                while shared.remaining.load(Ordering::SeqCst) > 0 {
                    guard = shared.done.wait(guard).expect("pool condvar");
                }
                shared.dispatcher_parked.store(false, Ordering::SeqCst);
                break;
            }
        }
        unsafe { *shared.task.0.get() = None };
        let worker_panicked = shared.panicked.load(Ordering::SeqCst);
        if let Err(payload) = local {
            resume_unwind(payload);
        }
        assert!(
            !worker_panicked,
            "a worker lane panicked during a parallel task"
        );
    }

    /// Overwrites `out[i] = f(i)` for every index, splitting the index
    /// space into chunks claimed atomically by the lanes.
    ///
    /// Deterministic: each element is computed independently, so the
    /// result is bit-identical to the serial loop `for i { out[i] =
    /// f(i) }` for any lane count (see the type-level docs).
    pub fn fill_with<T, F>(&self, out: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let len = out.len();
        if len == 0 {
            return;
        }
        if self.handles.is_empty() {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = f(i);
            }
            return;
        }
        let chunk = chunk_len(len, self.lanes);
        let next = AtomicUsize::new(0);
        let base = SendPtr(out.as_mut_ptr());
        self.broadcast(|_lane| {
            let base = &base;
            loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= len {
                    break;
                }
                let end = (start + chunk).min(len);
                for i in start..end {
                    // SAFETY: `fetch_add` hands each chunk — hence each
                    // index — to exactly one lane, and `out` outlives
                    // the dispatch, so this is a unique in-bounds write.
                    unsafe { *base.0.add(i) = f(i) };
                }
            }
        });
    }

    /// Runs `f(i, &mut items[i])` for every item, each item visited by
    /// exactly one lane. Intended for coarse, independent units of work
    /// (the engine's per-commodity rate blocks).
    pub fn for_each_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let len = items.len();
        if len == 0 {
            return;
        }
        if self.handles.is_empty() {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        let base = SendPtr(items.as_mut_ptr());
        self.broadcast(|_lane| {
            let base = &base;
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    break;
                }
                // SAFETY: each index is claimed once; items are
                // non-overlapping and outlive the dispatch.
                f(i, unsafe { &mut *base.0.add(i) });
            }
        });
    }

    /// Overwrites `out[i] = f(state, i)` where every lane owns one
    /// `state = init()` for the duration of the call — the shape of an
    /// ensemble sweep, where `state` is a reusable per-lane simulation
    /// workspace and each index is one independent run.
    ///
    /// Unlike [`WorkerPool::fill_with`], indices are claimed **one at a
    /// time**: the units are assumed coarse (milliseconds to seconds),
    /// so claim overhead is irrelevant and balance is everything.
    ///
    /// Deterministic as long as `f`'s result does not depend on the
    /// lane state beyond reuse of buffers — the caller's contract,
    /// which the engine's `rebind`-based workspaces satisfy (a reused
    /// workspace replays a run bit-identically; see
    /// `Simulation::reset`).
    pub fn map_init<T, S, I, F>(&self, init: I, out: &mut [T], f: F)
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        let len = out.len();
        if len == 0 {
            return;
        }
        if self.handles.is_empty() {
            let mut state = init();
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = f(&mut state, i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        let base = SendPtr(out.as_mut_ptr());
        self.broadcast(|_lane| {
            let base = &base;
            let mut state = init();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    break;
                }
                // SAFETY: each index is claimed by exactly one lane and
                // `out` outlives the dispatch.
                unsafe { *base.0.add(i) = f(&mut state, i) };
            }
        });
    }

    /// Collects `f(state, i)` for `i in 0..len` into a `Vec`, fanning
    /// the (coarse) units across lanes with one `init()` state per
    /// lane — [`WorkerPool::map_init`] without the caller-managed
    /// `Option` staging. Results land in index order regardless of
    /// which lane produced them.
    pub fn map_collect<R, S, I, F>(&self, len: usize, init: I, f: F) -> Vec<R>
    where
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> R + Sync,
    {
        let mut out: Vec<Option<R>> = (0..len).map(|_| None).collect();
        self.map_init(init, &mut out, |state, i| Some(f(state, i)));
        out.into_iter()
            .map(|r| r.expect("every index is claimed by exactly one lane"))
            .collect()
    }

    /// Splits `data` at `bounds` into the parts
    /// `data[bounds[i]..bounds[i + 1]]` and runs `f(i, part)` on each,
    /// every part visited by exactly one lane.
    ///
    /// `bounds` must be ascending, start at 0 and end at `data.len()`
    /// — the contiguous-partition shape of the engine's per-commodity
    /// (and per-chunk) output ranges.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not an ascending partition of
    /// `0..data.len()`.
    pub fn for_parts<T, F>(&self, data: &mut [T], bounds: &[usize], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let parts = check_bounds(bounds, data.len());
        if parts == 0 {
            return;
        }
        if self.handles.is_empty() {
            for (i, w) in bounds.windows(2).enumerate() {
                f(i, &mut data[w[0]..w[1]]);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        let base = SendPtr(data.as_mut_ptr());
        self.broadcast(|_lane| {
            let base = &base;
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= parts {
                    break;
                }
                let (lo, hi) = (bounds[i], bounds[i + 1]);
                // SAFETY: `check_bounds` proved the ranges are in
                // bounds, ascending and pairwise disjoint; each part
                // index is claimed by exactly one lane.
                let part = unsafe { std::slice::from_raw_parts_mut(base.0.add(lo), hi - lo) };
                f(i, part);
            }
        });
    }
}

impl WorkerPool {
    /// [`WorkerPool::for_parts`] over two equally long arrays sharing
    /// one partition: `f(i, a_part, b_part)` — the shape of a fused
    /// axpy pass updating two vectors in lockstep.
    ///
    /// # Panics
    ///
    /// Panics if the arrays' lengths differ or `bounds` is not an
    /// ascending partition of `0..a.len()`.
    pub fn for_parts2<T, U, F>(&self, a: &mut [T], b: &mut [U], bounds: &[usize], f: F)
    where
        T: Send,
        U: Send,
        F: Fn(usize, &mut [T], &mut [U]) + Sync,
    {
        assert_eq!(a.len(), b.len(), "for_parts2 arrays must match");
        let parts = check_bounds(bounds, a.len());
        if parts == 0 {
            return;
        }
        if self.handles.is_empty() {
            for (i, w) in bounds.windows(2).enumerate() {
                let (lo, hi) = (w[0], w[1]);
                f(i, &mut a[lo..hi], &mut b[lo..hi]);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        let base_a = SendPtr(a.as_mut_ptr());
        let base_b = SendPtr(b.as_mut_ptr());
        self.broadcast(|_lane| {
            let (base_a, base_b) = (&base_a, &base_b);
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= parts {
                    break;
                }
                let (lo, hi) = (bounds[i], bounds[i + 1]);
                // SAFETY: as in `for_parts` — validated disjoint
                // in-bounds ranges, each part claimed once, both
                // arrays outlive the dispatch.
                let pa = unsafe { std::slice::from_raw_parts_mut(base_a.0.add(lo), hi - lo) };
                let pb = unsafe { std::slice::from_raw_parts_mut(base_b.0.add(lo), hi - lo) };
                f(i, pa, pb);
            }
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.lock.lock().expect("pool mutex");
            self.shared.start.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, lane: usize) {
    let mut seen = 0u64;
    loop {
        // Wait for a fresh epoch: spin, then yield, then park. The
        // park re-checks the epoch *after* registering in `parked`
        // (both `SeqCst`), so the dispatcher either sees us parked and
        // notifies, or we see its epoch bump and never sleep — no lost
        // wakeup in either interleaving.
        let mut spins = 0u32;
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if shared.epoch.load(Ordering::SeqCst) != seen {
                seen = shared.epoch.load(Ordering::SeqCst);
                break;
            }
            if spins < SPIN_ROUNDS {
                spins += 1;
                std::hint::spin_loop();
            } else if spins < SPIN_ROUNDS + YIELD_ROUNDS {
                spins += 1;
                std::thread::yield_now();
            } else {
                let mut guard = shared.lock.lock().expect("pool mutex");
                shared.parked.fetch_add(1, Ordering::SeqCst);
                while shared.epoch.load(Ordering::SeqCst) == seen
                    && !shared.shutdown.load(Ordering::SeqCst)
                {
                    guard = shared.start.wait(guard).expect("pool condvar");
                }
                shared.parked.fetch_sub(1, Ordering::SeqCst);
                spins = 0;
            }
        }
        // SAFETY: the dispatcher wrote the slot before the epoch bump
        // we just observed and keeps the erased borrow alive until
        // `remaining` drops to 0, which happens strictly after this
        // call returns.
        let task = unsafe { (*shared.task.0.get()).expect("task published with epoch") };
        let ok = catch_unwind(AssertUnwindSafe(|| unsafe { (*task.f)(lane) })).is_ok();
        if !ok {
            shared.panicked.store(true, Ordering::SeqCst);
        }
        if shared.remaining.fetch_sub(1, Ordering::SeqCst) == 1
            && shared.dispatcher_parked.load(Ordering::SeqCst)
        {
            let _guard = shared.lock.lock().expect("pool mutex");
            shared.done.notify_all();
        }
    }
}

/// Chunk length for element-wise primitives: a pure function of
/// `(len, lanes)` — about four claims per lane for load balance, never
/// fewer than 32 elements so the atomic claim and cache-line sharing
/// stay amortised.
fn chunk_len(len: usize, lanes: usize) -> usize {
    len.div_ceil(lanes * 4).max(32)
}

/// Validates a partition and returns the number of parts.
fn check_bounds(bounds: &[usize], len: usize) -> usize {
    assert!(
        bounds.len() >= 2 || (bounds.len() == 1 && len == 0) || (bounds.is_empty() && len == 0),
        "bounds must describe at least one part"
    );
    if bounds.len() < 2 {
        return 0;
    }
    assert_eq!(bounds[0], 0, "bounds must start at 0");
    assert_eq!(
        *bounds.last().expect("non-empty"),
        len,
        "bounds must end at data.len()"
    );
    assert!(
        bounds.windows(2).all(|w| w[0] <= w[1]),
        "bounds must be ascending"
    );
    bounds.len() - 1
}

/// A raw pointer that may cross lane boundaries. Safety is argued at
/// every dereference site (disjoint claimed indices or ranges).
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_with_matches_serial_bitwise() {
        let f = |i: usize| (i as f64).sqrt() * 0.1 + 1.0 / (i as f64 + 1.0);
        let serial: Vec<f64> = (0..10_000).map(f).collect();
        for lanes in [1usize, 2, 3, 8] {
            let pool = WorkerPool::new(lanes);
            let mut out = vec![0.0; 10_000];
            pool.fill_with(&mut out, f);
            assert!(
                serial
                    .iter()
                    .zip(&out)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "lanes = {lanes}"
            );
        }
    }

    #[test]
    fn fill_with_handles_tiny_and_empty() {
        let pool = WorkerPool::new(4);
        let mut empty: Vec<f64> = vec![];
        pool.fill_with(&mut empty, |_| 1.0);
        let mut one = vec![0.0];
        pool.fill_with(&mut one, |i| i as f64 + 2.0);
        assert_eq!(one, vec![2.0]);
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        let pool = WorkerPool::new(3);
        let mut items = vec![0u64; 257];
        pool.for_each_mut(&mut items, |i, v| *v += i as u64 + 1);
        for (i, v) in items.iter().enumerate() {
            assert_eq!(*v, i as u64 + 1);
        }
    }

    #[test]
    fn for_parts_partitions_exactly() {
        let pool = WorkerPool::new(4);
        let mut data = vec![0.0f64; 100];
        let bounds = [0usize, 10, 10, 55, 100];
        pool.for_parts(&mut data, &bounds, |i, part| {
            for v in part.iter_mut() {
                *v = i as f64;
            }
        });
        assert!(data[..10].iter().all(|v| *v == 0.0));
        assert!(data[10..55].iter().all(|v| *v == 2.0));
        assert!(data[55..].iter().all(|v| *v == 3.0));
    }

    #[test]
    #[should_panic(expected = "bounds must end")]
    fn for_parts_rejects_short_bounds() {
        let pool = WorkerPool::new(2);
        let mut data = vec![0.0f64; 10];
        pool.for_parts(&mut data, &[0, 5], |_, _| {});
    }

    #[test]
    fn pool_is_reusable_across_many_dispatches() {
        let pool = WorkerPool::new(2);
        let mut out = vec![0.0f64; 4096];
        for round in 0..100 {
            let r = round as f64;
            pool.fill_with(&mut out, |i| i as f64 * r);
            assert_eq!(out[4095], 4095.0 * r);
        }
    }

    #[test]
    fn concurrent_dispatch_on_a_shared_pool_is_serialised() {
        // Two threads hammer one pool; the dispatch mutex must keep
        // every broadcast's task/counter protocol private to it.
        let pool = std::sync::Arc::new(WorkerPool::new(3));
        let a = std::sync::Arc::clone(&pool);
        let handle = std::thread::spawn(move || {
            let mut out = vec![0.0f64; 2048];
            for round in 0..200 {
                let r = round as f64;
                a.fill_with(&mut out, |i| i as f64 + r);
                assert_eq!(out[2047], 2047.0 + r);
            }
        });
        let mut out = vec![0u64; 2048];
        for round in 0..200u64 {
            pool.fill_with(&mut out, |i| i as u64 * round);
            assert_eq!(out[3], 3 * round);
        }
        handle.join().expect("concurrent dispatcher");
    }

    #[test]
    fn map_collect_orders_results_and_runs_every_index() {
        let pool = WorkerPool::new(3);
        let got = pool.map_collect(
            37,
            || 0usize,
            |state, i| {
                *state += 1;
                (i, *state)
            },
        );
        assert_eq!(got.len(), 37);
        for (i, (idx, per_lane_count)) in got.iter().enumerate() {
            assert_eq!(*idx, i);
            assert!(*per_lane_count >= 1);
        }
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(|lane| {
                if lane == pool.lanes() - 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool still works after a propagated panic.
        let mut out = vec![0.0f64; 64];
        pool.fill_with(&mut out, |i| i as f64);
        assert_eq!(out[63], 63.0);
    }

    #[test]
    fn one_lane_pool_spawns_nothing_and_works() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.lanes(), 1);
        let mut out = vec![0.0f64; 10];
        pool.fill_with(&mut out, |i| i as f64);
        assert_eq!(out[9], 9.0);
    }
}
