//! Fused, allocation-free evaluation of all per-flow quantities.
//!
//! Every metric the phase loop needs — edge flows, edge and path
//! latencies, the Beckmann–McGuire–Winsten potential, overall and
//! per-commodity average latencies, per-commodity minimum latencies —
//! derives from the same `edge_flows → edge_latencies → path_latencies`
//! chain. The naive API on [`FlowVec`] recomputes that chain (and
//! allocates) once *per metric*; an [`EvalWorkspace`] computes it once
//! per flow into reusable buffers, so a steady-state simulation phase
//! touches the CSR incidence a constant number of times and performs
//! zero heap allocations.
//!
//! Results are identical to the naive implementations (the scatter,
//! gather and reduction orders are preserved, so most quantities match
//! bit-for-bit; cross-commodity sums may differ by float re-association
//! only). `tests/properties.rs` asserts this on random instances.

use crate::equilibrium::{
    max_regret_from, unsatisfied_volume_from, weakly_unsatisfied_volume_from,
};
use crate::flow::FlowVec;
use crate::graph::EdgeId;
use crate::instance::Instance;
use crate::path::PathId;
use wardrop_pool::WorkerPool;

/// Incidence count below which [`EvalWorkspace::evaluate_with`] ignores
/// the pool: dispatch overhead (a couple of condvar round-trips) beats
/// the win on small instances.
const PARALLEL_EVAL_MIN_INCIDENCES: usize = 1 << 14;

/// A per-phase record of which paths are known to have moved, plus an
/// exact upper bound on the total flow mass of every path it leaves
/// out.
///
/// Producers (the engine's change scan, column discovery, the fault
/// layer) [`mark`](ChangeSet::mark) the paths whose flow moved beyond
/// the scan threshold and [`add_residual`](ChangeSet::add_residual) the
/// summed `|Δf_P|` of the paths below it; consumers
/// ([`EvalWorkspace::evaluate_delta`]) apply exactly the marked paths
/// and charge the residual against the drift budget, so sparse
/// evaluation stays error-bounded no matter how conservative the
/// producer was. [`mark_all`](ChangeSet::mark_all) widens the set to
/// "everything may have changed" — the consumer then falls back to a
/// full re-evaluation.
#[derive(Debug, Clone)]
pub struct ChangeSet {
    paths: Vec<u32>,
    residual: f64,
    widen_all: bool,
}

impl ChangeSet {
    /// An empty change set with capacity for every path of `instance`
    /// (marking never reallocates). Starts **widened**: a consumer that
    /// sees it before the first [`clear`](ChangeSet::clear) must assume
    /// everything changed.
    pub fn for_instance(instance: &Instance) -> Self {
        ChangeSet {
            paths: Vec::with_capacity(instance.num_paths()),
            residual: 0.0,
            widen_all: true,
        }
    }

    /// Empties the set for the next phase (allocation-free).
    pub fn clear(&mut self) {
        self.paths.clear();
        self.residual = 0.0;
        self.widen_all = false;
    }

    /// Marks path `index` as changed.
    #[inline]
    pub fn mark(&mut self, index: usize) {
        self.paths.push(index as u32);
    }

    /// Widens the set to "every path may have changed" — used by the
    /// fault layer after a degraded or dropped post and by scenario
    /// events, forcing the next delta evaluation to re-sync fully.
    #[inline]
    pub fn mark_all(&mut self) {
        self.widen_all = true;
    }

    /// Adds unmarked movement mass (`Σ |Δf_P|` of the paths the
    /// producer chose not to mark) to the residual bound.
    #[inline]
    pub fn add_residual(&mut self, mass: f64) {
        self.residual += mass;
    }

    /// The marked path indices, in ascending order when produced by the
    /// engine's block scan.
    #[inline]
    pub fn paths(&self) -> &[u32] {
        &self.paths
    }

    /// Upper bound on the summed `|Δf_P|` of every unmarked path.
    #[inline]
    pub fn residual(&self) -> f64 {
        self.residual
    }

    /// Whether the set was widened to all paths.
    #[inline]
    pub fn is_widened(&self) -> bool {
        self.widen_all
    }

    /// Number of marked paths.
    #[inline]
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether no path is marked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

/// Counters describing how a [`DeltaEval`] has been spending its
/// phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaStats {
    /// Phases evaluated through the sparse path.
    pub sparse_phases: u64,
    /// Full re-synchronisations (including the priming evaluation).
    pub resyncs: u64,
    /// Path increments committed across all sparse phases.
    pub committed_paths: u64,
    /// Edge updates performed across all sparse phases.
    pub touched_edges: u64,
}

/// What [`EvalWorkspace::evaluate_delta`] did for one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOutcome {
    /// The drift budget (or the re-sync interval, or a widened change
    /// set) forced a full [`EvalWorkspace::evaluate`]: every cached
    /// quantity is bit-identical to a from-scratch evaluation.
    Resync,
    /// The sparse path ran: only the listed increments were applied.
    Sparse {
        /// Paths whose pending increment was committed to the edges.
        committed: usize,
        /// Distinct edges whose flow/latency was updated.
        touched_edges: usize,
    },
}

/// Scratch state of the incremental (delta) evaluation path: the
/// shadow flow the edge arrays currently reflect, per-edge committed
/// latencies, touched-edge marks, and the drift accumulators of the
/// re-sync state machine.
///
/// The state machine keeps the sparse results within the configured
/// budgets of a full evaluation:
///
/// * `flow_drift` accumulates the [`ChangeSet::residual`] of every
///   sparse phase — an upper bound (triangle inequality) on the flow
///   mass the edge arrays are missing;
/// * `pending_latency` tracks `Σ_e |ℓ_e(f_e) − committed ℓ_e|` — the
///   exact bound on how stale the cached path latencies are;
/// * a hard re-sync interval bounds the floating-point drift of the
///   incremental `+=` updates themselves.
///
/// Whenever any bound is exceeded the workspace falls back to the
/// unchanged full [`EvalWorkspace::evaluate`], which restores exact
/// (bit-identical) agreement with a from-scratch evaluation and resets
/// all accumulators.
#[derive(Debug, Clone)]
pub struct DeltaEval {
    /// Flow values the edge arrays currently reflect.
    applied_flow: Vec<f64>,
    /// Per-edge latency value currently reflected in `path_latencies`.
    committed_latencies: Vec<f64>,
    /// Edges touched by the current sparse call.
    touched: Vec<u32>,
    /// `f_e` before the current call's increments (parallel to
    /// `touched`).
    touched_old_flow: Vec<f64>,
    /// Per-edge visit stamp (dedup within one call).
    edge_mark: Vec<u32>,
    mark_epoch: u32,
    /// Per-commodity `Σ Δf_P · ℓ_P` of the current call's commits —
    /// folds into the cached averages on flow-only phases.
    acc_delta: Vec<f64>,
    flow_budget: f64,
    latency_budget: f64,
    latency_commit_threshold: f64,
    resync_interval: usize,
    flow_drift: f64,
    pending_latency: f64,
    phases_since_resync: usize,
    primed: bool,
    stats: DeltaStats,
}

impl DeltaEval {
    /// Default budget on the accumulated un-applied flow mass before a
    /// forced re-sync.
    pub const DEFAULT_FLOW_BUDGET: f64 = 1e-11;
    /// Default budget on the accumulated un-propagated edge-latency
    /// drift before a forced re-sync.
    pub const DEFAULT_LATENCY_BUDGET: f64 = 1e-11;
    /// Default per-edge latency change below which the (potentially
    /// huge) edge→path propagation is deferred and the change is
    /// tracked as pending drift instead.
    pub const DEFAULT_LATENCY_COMMIT_THRESHOLD: f64 = 1e-13;
    /// Default hard cap on consecutive sparse phases, bounding the
    /// floating-point drift of the incremental updates themselves.
    pub const DEFAULT_RESYNC_INTERVAL: usize = 64;

    /// Scratch sized for `instance`, with the default budgets. The
    /// state starts un-primed: the first
    /// [`EvalWorkspace::evaluate_delta`] always re-syncs.
    pub fn new(instance: &Instance) -> Self {
        DeltaEval {
            applied_flow: vec![0.0; instance.num_paths()],
            committed_latencies: vec![0.0; instance.num_edges()],
            touched: Vec::with_capacity(instance.num_edges()),
            touched_old_flow: Vec::with_capacity(instance.num_edges()),
            edge_mark: vec![0; instance.num_edges()],
            mark_epoch: 0,
            acc_delta: vec![0.0; instance.commodities().len()],
            flow_budget: Self::DEFAULT_FLOW_BUDGET,
            latency_budget: Self::DEFAULT_LATENCY_BUDGET,
            latency_commit_threshold: Self::DEFAULT_LATENCY_COMMIT_THRESHOLD,
            resync_interval: Self::DEFAULT_RESYNC_INTERVAL,
            flow_drift: 0.0,
            pending_latency: 0.0,
            phases_since_resync: 0,
            primed: false,
            stats: DeltaStats::default(),
        }
    }

    /// Overrides the drift budgets (builder style).
    pub fn with_budgets(mut self, flow_budget: f64, latency_budget: f64) -> Self {
        assert!(flow_budget > 0.0 && latency_budget > 0.0);
        self.flow_budget = flow_budget;
        self.latency_budget = latency_budget;
        self
    }

    /// Overrides the hard re-sync interval (builder style).
    pub fn with_resync_interval(mut self, interval: usize) -> Self {
        assert!(interval > 0);
        self.resync_interval = interval;
        self
    }

    /// Un-primes the state and zeroes all counters — the next
    /// [`EvalWorkspace::evaluate_delta`] re-syncs from scratch. Called
    /// on simulation reset/rebind so a reused workspace is
    /// indistinguishable from a fresh one.
    pub fn clear(&mut self) {
        self.invalidate();
        self.stats = DeltaStats::default();
    }

    /// Un-primes the state (forcing a re-sync on the next delta
    /// evaluation) while keeping the lifetime counters — used after
    /// scenario events and column discovery, where the instance or
    /// shape changed under the shadow state.
    pub fn invalidate(&mut self) {
        self.primed = false;
        self.flow_drift = 0.0;
        self.pending_latency = 0.0;
        self.phases_since_resync = 0;
        self.acc_delta.fill(0.0);
    }

    /// Whether the shadow state currently reflects a real evaluation.
    #[inline]
    pub fn is_primed(&self) -> bool {
        self.primed
    }

    /// Accumulated un-applied flow mass since the last re-sync.
    #[inline]
    pub fn flow_drift(&self) -> f64 {
        self.flow_drift
    }

    /// Accumulated un-propagated edge-latency drift since the last
    /// re-sync.
    #[inline]
    pub fn pending_latency(&self) -> f64 {
        self.pending_latency
    }

    /// The lifetime counters.
    #[inline]
    pub fn stats(&self) -> DeltaStats {
        self.stats
    }

    /// Stamp for the current call's touched-edge dedup.
    fn next_epoch(&mut self) -> u32 {
        if self.mark_epoch == u32::MAX {
            self.edge_mark.fill(0);
            self.mark_epoch = 0;
        }
        self.mark_epoch += 1;
        self.mark_epoch
    }
}

/// Reusable buffers holding every derived quantity of one flow.
///
/// Call [`EvalWorkspace::evaluate`] whenever the flow changes; all
/// accessors then read the cached arrays.
///
/// # Examples
///
/// ```
/// use wardrop_net::{builders, eval::EvalWorkspace, flow::FlowVec};
///
/// let inst = builders::braess();
/// let f = FlowVec::uniform(&inst);
/// let mut ws = EvalWorkspace::new(&inst);
/// ws.evaluate(&inst, &f);
/// assert_eq!(ws.path_latencies(), f.path_latencies(&inst).as_slice());
/// assert_eq!(ws.avg_latency(), f.avg_latency(&inst));
/// ```
#[derive(Debug, Clone)]
pub struct EvalWorkspace {
    edge_flows: Vec<f64>,
    edge_latencies: Vec<f64>,
    path_latencies: Vec<f64>,
    commodity_min: Vec<f64>,
    commodity_avg: Vec<f64>,
    /// Per-commodity `(min, Σ f_P ℓ_P)` scratch for the parallel
    /// gather; the serial combine turns it into min/avg/overall.
    commodity_scratch: Vec<[f64; 2]>,
    potential: f64,
    avg_latency: f64,
}

impl EvalWorkspace {
    /// Creates a workspace sized for `instance` (all buffers zeroed; no
    /// evaluation has happened yet).
    pub fn new(instance: &Instance) -> Self {
        EvalWorkspace {
            edge_flows: vec![0.0; instance.num_edges()],
            edge_latencies: vec![0.0; instance.num_edges()],
            path_latencies: vec![0.0; instance.num_paths()],
            commodity_min: vec![0.0; instance.num_commodities()],
            commodity_avg: vec![0.0; instance.num_commodities()],
            commodity_scratch: vec![[0.0; 2]; instance.num_commodities()],
            potential: 0.0,
            avg_latency: 0.0,
        }
    }

    /// Recomputes every cached quantity for `flow` in one fused pass:
    /// a CSR scatter (edge flows), one sweep over edges (latencies and
    /// potential) and a CSR gather (path latencies, mins, averages).
    ///
    /// Equivalent to [`EvalWorkspace::evaluate_edges`] followed by
    /// [`EvalWorkspace::finish_paths`].
    ///
    /// # Panics
    ///
    /// Panics if `flow` or the workspace does not match `instance`.
    pub fn evaluate(&mut self, instance: &Instance, flow: &FlowVec) {
        self.evaluate_edges(instance, flow);
        self.finish_paths(instance, flow);
    }

    /// Recomputes the *edge-level* quantities only: edge flows, edge
    /// latencies and the potential. Path latencies, per-commodity
    /// minima/averages and the overall average latency are left stale.
    ///
    /// This is the fast path for metric-only callers that need `Φ`,
    /// the edge arrays or a [virtual gain](EvalWorkspace::virtual_gain_from)
    /// but none of the per-path quantities — it skips the CSR gather
    /// and the per-commodity min/avg pass entirely (half the fused
    /// work on `grid_10x10`-sized instances). Call
    /// [`EvalWorkspace::finish_paths`] with the same flow to complete
    /// the evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `flow` or the workspace does not match `instance`.
    pub fn evaluate_edges(&mut self, instance: &Instance, flow: &FlowVec) {
        let values = flow.values();
        assert_eq!(values.len(), instance.num_paths());
        assert_eq!(self.path_latencies.len(), instance.num_paths());
        assert_eq!(self.edge_flows.len(), instance.num_edges());

        // Scatter: f_e = Σ_{P ∋ e} f_P (same visit order as the naive
        // FlowVec::edge_flows, so results are bit-identical). The
        // 4-wide stride keeps the per-edge update order while giving
        // the compiler independent address streams to overlap.
        self.edge_flows.fill(0.0);
        for (idx, &fp) in values.iter().enumerate() {
            if fp == 0.0 {
                continue;
            }
            let edges = instance.path_edges(PathId::from_index(idx));
            let mut quads = edges.chunks_exact(4);
            for q in &mut quads {
                self.edge_flows[q[0].index()] += fp;
                self.edge_flows[q[1].index()] += fp;
                self.edge_flows[q[2].index()] += fp;
                self.edge_flows[q[3].index()] += fp;
            }
            for e in quads.remainder() {
                self.edge_flows[e.index()] += fp;
            }
        }
        self.edge_sweep(instance);
    }

    /// Edge sweep: ℓ_e(f_e) and Φ = Σ_e ∫₀^{f_e} ℓ_e. Cheap (O(|E|))
    /// and kept on one thread in every mode, so the potential's
    /// left-to-right float association never depends on lane count.
    fn edge_sweep(&mut self, instance: &Instance) {
        let mut potential = 0.0;
        for ((le, &fe), lat) in self
            .edge_latencies
            .iter_mut()
            .zip(&self.edge_flows)
            .zip(instance.latencies())
        {
            *le = lat.eval(fe);
            potential += lat.primitive(fe);
        }
        self.potential = potential;
    }

    /// Completes an [`EvalWorkspace::evaluate_edges`] into a full
    /// evaluation: the CSR gather (path latencies) and the
    /// per-commodity min/avg pass.
    ///
    /// # Panics
    ///
    /// Panics if `flow` does not match `instance`. The caller must have
    /// evaluated the edge quantities at the *same* flow.
    pub fn finish_paths(&mut self, instance: &Instance, flow: &FlowVec) {
        let values = flow.values();
        assert_eq!(values.len(), instance.num_paths());
        // Gather: ℓ_P, per-commodity min/avg, overall average latency.
        // The per-path sum keeps a single left-to-right accumulator
        // (bit-identical to the naive iterator sum) but strides the
        // loads four at a time so the gather addresses pipeline.
        let mut avg_latency = 0.0;
        for (i, c) in instance.commodities().iter().enumerate() {
            let mut min_i = f64::INFINITY;
            let mut acc = 0.0;
            for p in instance.commodity_paths(i) {
                let edges = instance.path_edges(PathId::from_index(p));
                let mut lp = 0.0;
                let mut quads = edges.chunks_exact(4);
                for q in &mut quads {
                    let l0 = self.edge_latencies[q[0].index()];
                    let l1 = self.edge_latencies[q[1].index()];
                    let l2 = self.edge_latencies[q[2].index()];
                    let l3 = self.edge_latencies[q[3].index()];
                    lp += l0;
                    lp += l1;
                    lp += l2;
                    lp += l3;
                }
                for e in quads.remainder() {
                    lp += self.edge_latencies[e.index()];
                }
                self.path_latencies[p] = lp;
                min_i = min_i.min(lp);
                acc += values[p] * lp;
            }
            self.commodity_min[i] = min_i;
            self.commodity_avg[i] = acc / c.demand;
            avg_latency += acc;
        }
        self.avg_latency = avg_latency;
    }

    /// [`EvalWorkspace::evaluate`], optionally fanned across a
    /// [`WorkerPool`] — **bit-identical** to the serial evaluation for
    /// every lane count.
    ///
    /// The parallel decomposition preserves every float-operation
    /// sequence of the serial pass:
    ///
    /// * **edge flows** switch from the path-order scatter to a
    ///   per-edge gather over the transposed CSR. For a fixed edge the
    ///   contributions still arrive in ascending path order (the
    ///   transposed rows are sorted), and the skipped `f_P = 0` terms
    ///   of the scatter are bitwise no-ops on a non-negative
    ///   accumulator, so every `f_e` is bit-identical;
    /// * **path latencies** are per-path independent sums;
    /// * the **per-commodity min/avg** pass runs per commodity (the
    ///   serial order within each block), and the cross-commodity
    ///   folds — potential and overall average latency — stay on the
    ///   dispatching thread in commodity order.
    ///
    /// With `pool = None`, or on instances too small to amortise a
    /// dispatch, this is exactly the serial [`EvalWorkspace::evaluate`].
    ///
    /// # Panics
    ///
    /// Panics if `flow` or the workspace does not match `instance`.
    pub fn evaluate_with(
        &mut self,
        instance: &Instance,
        flow: &FlowVec,
        pool: Option<&WorkerPool>,
    ) {
        self.evaluate_edges_with(instance, flow, pool);
        self.finish_paths_with(instance, flow, pool);
    }

    /// [`EvalWorkspace::evaluate_edges`], optionally pooled (see
    /// [`EvalWorkspace::evaluate_with`] for the determinism argument).
    ///
    /// # Panics
    ///
    /// Panics if `flow` or the workspace does not match `instance`.
    pub fn evaluate_edges_with(
        &mut self,
        instance: &Instance,
        flow: &FlowVec,
        pool: Option<&WorkerPool>,
    ) {
        let pool = match pool {
            Some(p)
                if p.lanes() > 1 && instance.incidence_count() >= PARALLEL_EVAL_MIN_INCIDENCES =>
            {
                p
            }
            _ => return self.evaluate_edges(instance, flow),
        };
        let values = flow.values();
        assert_eq!(values.len(), instance.num_paths());
        assert_eq!(self.edge_flows.len(), instance.num_edges());

        // Per-edge gather (ascending path order within each edge row —
        // see the determinism note above).
        pool.fill_with(&mut self.edge_flows, |e| {
            let mut fe = 0.0;
            for p in instance.edge_paths(crate::graph::EdgeId::from_index(e)) {
                fe += values[p.index()];
            }
            fe
        });

        self.edge_sweep(instance);
    }

    /// [`EvalWorkspace::finish_paths`], optionally pooled (see
    /// [`EvalWorkspace::evaluate_with`] for the determinism argument).
    ///
    /// # Panics
    ///
    /// Panics if `flow` does not match `instance`.
    pub fn finish_paths_with(
        &mut self,
        instance: &Instance,
        flow: &FlowVec,
        pool: Option<&WorkerPool>,
    ) {
        let pool = match pool {
            Some(p)
                if p.lanes() > 1 && instance.incidence_count() >= PARALLEL_EVAL_MIN_INCIDENCES =>
            {
                p
            }
            _ => return self.finish_paths(instance, flow),
        };
        let values = flow.values();
        assert_eq!(values.len(), instance.num_paths());
        assert_eq!(self.path_latencies.len(), instance.num_paths());

        // Per-path latency gather.
        let EvalWorkspace {
            path_latencies,
            edge_latencies,
            ..
        } = self;
        pool.fill_with(path_latencies, |p| {
            instance
                .path_edges(PathId::from_index(p))
                .iter()
                .map(|e| edge_latencies[e.index()])
                .sum()
        });

        // Per-commodity (min, Σ f_P ℓ_P) in block-serial order; the
        // cross-commodity combine stays serial.
        let EvalWorkspace {
            path_latencies,
            commodity_scratch,
            ..
        } = self;
        pool.fill_with(commodity_scratch, |i| {
            let mut min_i = f64::INFINITY;
            let mut acc = 0.0;
            for p in instance.commodity_paths(i) {
                let lp = path_latencies[p];
                min_i = min_i.min(lp);
                acc += values[p] * lp;
            }
            [min_i, acc]
        });
        let mut avg_latency = 0.0;
        for (i, c) in instance.commodities().iter().enumerate() {
            let [min_i, acc] = self.commodity_scratch[i];
            self.commodity_min[i] = min_i;
            self.commodity_avg[i] = acc / c.demand;
            avg_latency += acc;
        }
        self.avg_latency = avg_latency;
    }

    /// Incremental evaluation: applies only the flow increments of the
    /// paths listed in `changes`, recomputes latencies and the
    /// potential only on the touched edges, and refreshes the
    /// aggregate metrics from the cached path latencies — O(|changed|
    /// · d̄ + E_touched + P) instead of O(incidences).
    ///
    /// Shorthand for [`EvalWorkspace::evaluate_delta_with`] without a
    /// pool.
    pub fn evaluate_delta(
        &mut self,
        instance: &Instance,
        flow: &FlowVec,
        changes: &ChangeSet,
        scratch: &mut DeltaEval,
    ) -> DeltaOutcome {
        self.evaluate_delta_with(instance, flow, changes, scratch, None)
    }

    /// [`EvalWorkspace::evaluate_delta`] whose forced re-syncs run
    /// through the pooled [`EvalWorkspace::evaluate_with`] (the sparse
    /// path itself stays serial — its touched sets are far below any
    /// dispatch threshold).
    ///
    /// # Drift-bound state machine
    ///
    /// The sparse path runs only while `scratch` is primed and
    /// `changes` is not widened. It commits every listed path's
    /// pending increment (`f_P − applied_P`) to the edge flows via the
    /// CSR, sweeps exactly the touched edges (latency + potential
    /// increment), and propagates an edge's latency change to its
    /// paths only when it exceeds the commit threshold — smaller
    /// changes accrue into `pending_latency`. The
    /// [`ChangeSet::residual`] accrues into `flow_drift`. When either
    /// accumulator exceeds its budget, or the re-sync interval
    /// elapses, the call falls back to the exact full evaluation and
    /// zeroes the accumulators, so the cached state is bit-identical
    /// to a from-scratch [`EvalWorkspace::evaluate`] of `flow` at
    /// every [`DeltaOutcome::Resync`].
    ///
    /// # Panics
    ///
    /// Panics if `flow`, `scratch` or the workspace does not match
    /// `instance`.
    pub fn evaluate_delta_with(
        &mut self,
        instance: &Instance,
        flow: &FlowVec,
        changes: &ChangeSet,
        scratch: &mut DeltaEval,
        pool: Option<&WorkerPool>,
    ) -> DeltaOutcome {
        let values = flow.values();
        assert_eq!(values.len(), instance.num_paths());
        assert_eq!(scratch.applied_flow.len(), instance.num_paths());
        assert_eq!(scratch.committed_latencies.len(), instance.num_edges());
        assert_eq!(self.edge_flows.len(), instance.num_edges());

        if !scratch.primed || changes.is_widened() {
            return self.delta_resync(instance, flow, scratch, pool);
        }

        // Sparse scatter: commit each listed path's pending increment,
        // recording every edge's pre-increment flow on first touch.
        scratch.touched.clear();
        scratch.touched_old_flow.clear();
        let epoch = scratch.next_epoch();
        let mut committed = 0usize;
        for &pu in changes.paths() {
            let p = pu as usize;
            let pending = values[p] - scratch.applied_flow[p];
            if pending == 0.0 {
                continue;
            }
            let pid = PathId::from_index(p);
            for e in instance.path_edges(pid) {
                let ei = e.index();
                if scratch.edge_mark[ei] != epoch {
                    scratch.edge_mark[ei] = epoch;
                    scratch.touched.push(ei as u32);
                    scratch.touched_old_flow.push(self.edge_flows[ei]);
                }
                self.edge_flows[ei] += pending;
            }
            scratch.acc_delta[instance.commodity_of_path(pid)] += pending * self.path_latencies[p];
            scratch.applied_flow[p] = values[p];
            committed += 1;
        }
        let touched_edges = scratch.touched.len();

        // Touched-edge sweep: new latency, potential increment, and
        // either a propagation of the latency change to the edge's
        // paths (transposed CSR row) or a pending-drift charge.
        let latencies = instance.latencies();
        let mut propagated = 0usize;
        for (&eu, &fe_old) in scratch.touched.iter().zip(&scratch.touched_old_flow) {
            let ei = eu as usize;
            let fe_new = self.edge_flows[ei];
            let lat = &latencies[ei];
            let le_new = lat.eval(fe_new);
            self.potential += lat.primitive(fe_new) - lat.primitive(fe_old);
            let le_prev = self.edge_latencies[ei];
            self.edge_latencies[ei] = le_new;
            let le_committed = scratch.committed_latencies[ei];
            let drift_old = (le_prev - le_committed).abs();
            let mut drift_new = (le_new - le_committed).abs();
            if drift_new > scratch.latency_commit_threshold {
                let shift = le_new - le_committed;
                for p in instance.edge_paths(EdgeId::from_index(ei)) {
                    self.path_latencies[p.index()] += shift;
                }
                scratch.committed_latencies[ei] = le_new;
                drift_new = 0.0;
                propagated += 1;
            }
            scratch.pending_latency += drift_new - drift_old;
        }

        // Aggregate refresh, three regimes:
        //
        // * nothing committed — edge flows, path latencies, potential
        //   and hence every aggregate are bitwise untouched; skip
        //   entirely (the machine-converged regime pays only the
        //   change scan);
        // * flow-only commits (no edge crossed the latency commit
        //   threshold) — path latencies are unchanged, so the
        //   per-commodity minima (functions of latency alone) are
        //   exact as cached, and the flow-weighted averages absorb the
        //   committed `Σ Δf_P · ℓ_P` increments in O(|changed|);
        // * latency propagation — the shifted path latencies
        //   invalidate the minima, so redo the O(P) pass from the
        //   (≤ budget stale) cached path latencies and the true flow.
        if committed > 0 && propagated == 0 {
            for (i, c) in instance.commodities().iter().enumerate() {
                let d = scratch.acc_delta[i];
                if d != 0.0 {
                    self.commodity_avg[i] += d / c.demand;
                    self.avg_latency += d;
                    scratch.acc_delta[i] = 0.0;
                }
            }
        } else if committed > 0 {
            let mut avg_latency = 0.0;
            for (i, c) in instance.commodities().iter().enumerate() {
                let mut min_i = f64::INFINITY;
                let mut acc = 0.0;
                for p in instance.commodity_paths(i) {
                    let lp = self.path_latencies[p];
                    min_i = min_i.min(lp);
                    acc += values[p] * lp;
                }
                self.commodity_min[i] = min_i;
                self.commodity_avg[i] = acc / c.demand;
                avg_latency += acc;
                scratch.acc_delta[i] = 0.0;
            }
            self.avg_latency = avg_latency;
        }

        scratch.flow_drift += changes.residual();
        scratch.phases_since_resync += 1;
        scratch.stats.sparse_phases += 1;
        scratch.stats.committed_paths += committed as u64;
        scratch.stats.touched_edges += touched_edges as u64;

        if scratch.flow_drift > scratch.flow_budget
            || scratch.pending_latency > scratch.latency_budget
            || scratch.phases_since_resync >= scratch.resync_interval
        {
            return self.delta_resync(instance, flow, scratch, pool);
        }
        DeltaOutcome::Sparse {
            committed,
            touched_edges,
        }
    }

    /// Full re-sync: exact evaluation plus a refresh of the shadow
    /// state and drift accumulators.
    fn delta_resync(
        &mut self,
        instance: &Instance,
        flow: &FlowVec,
        scratch: &mut DeltaEval,
        pool: Option<&WorkerPool>,
    ) -> DeltaOutcome {
        self.evaluate_with(instance, flow, pool);
        scratch.applied_flow.copy_from_slice(flow.values());
        scratch
            .committed_latencies
            .copy_from_slice(&self.edge_latencies);
        scratch.flow_drift = 0.0;
        scratch.pending_latency = 0.0;
        scratch.phases_since_resync = 0;
        scratch.primed = true;
        scratch.stats.resyncs += 1;
        DeltaOutcome::Resync
    }

    /// Cached edge flows `f_e` of the last evaluated flow.
    #[inline]
    pub fn edge_flows(&self) -> &[f64] {
        &self.edge_flows
    }

    /// Cached edge latencies `ℓ_e(f_e)`.
    #[inline]
    pub fn edge_latencies(&self) -> &[f64] {
        &self.edge_latencies
    }

    /// Cached path latencies `ℓ_P(f)`.
    #[inline]
    pub fn path_latencies(&self) -> &[f64] {
        &self.path_latencies
    }

    /// Cached per-commodity minimum path latencies `ℓ^i_min`.
    #[inline]
    pub fn commodity_min_latencies(&self) -> &[f64] {
        &self.commodity_min
    }

    /// Cached per-commodity average latencies `L_i`.
    #[inline]
    pub fn commodity_avg_latencies(&self) -> &[f64] {
        &self.commodity_avg
    }

    /// Cached potential `Φ(f)`.
    #[inline]
    pub fn potential(&self) -> f64 {
        self.potential
    }

    /// Cached overall average latency `L = Σ_P f_P ℓ_P`.
    #[inline]
    pub fn avg_latency(&self) -> f64 {
        self.avg_latency
    }

    /// Maximum regret of any used path, from the cached latencies (see
    /// [`crate::equilibrium::max_regret`]).
    pub fn max_regret(&self, instance: &Instance, flow: &FlowVec, tol: f64) -> f64 {
        max_regret_from(
            instance,
            flow.values(),
            &self.path_latencies,
            &self.commodity_min,
            tol,
        )
    }

    /// `δ`-unsatisfied volume from the cached latencies (see
    /// [`crate::equilibrium::unsatisfied_volume`]).
    pub fn unsatisfied_volume(&self, instance: &Instance, flow: &FlowVec, delta: f64) -> f64 {
        unsatisfied_volume_from(
            instance,
            flow.values(),
            &self.path_latencies,
            &self.commodity_min,
            delta,
        )
    }

    /// Weakly `δ`-unsatisfied volume from the cached latencies (see
    /// [`crate::equilibrium::weakly_unsatisfied_volume`]).
    pub fn weakly_unsatisfied_volume(
        &self,
        instance: &Instance,
        flow: &FlowVec,
        delta: f64,
    ) -> f64 {
        weakly_unsatisfied_volume_from(
            instance,
            flow.values(),
            &self.path_latencies,
            &self.commodity_avg,
            delta,
        )
    }

    /// The virtual potential gain `V(f̂, f) = Σ_e ℓ_e(f̂_e) (f_e − f̂_e)`
    /// of moving from the snapshot `(f̂_e, ℓ_e(f̂_e))` to the *currently
    /// evaluated* flow (see [`crate::potential::virtual_gain`]).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot slices do not have one entry per edge.
    pub fn virtual_gain_from(&self, start_edge_flows: &[f64], start_edge_latencies: &[f64]) -> f64 {
        crate::potential::virtual_gain_from_edge(
            start_edge_flows,
            start_edge_latencies,
            &self.edge_flows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::equilibrium::{max_regret, unsatisfied_volume, weakly_unsatisfied_volume};
    use crate::potential::{potential, virtual_gain};

    fn assert_slices_eq(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn fused_matches_naive_on_braess() {
        let inst = builders::braess();
        for f in [
            FlowVec::uniform(&inst),
            FlowVec::concentrated(&inst),
            FlowVec::from_values(&inst, vec![0.3, 0.6, 0.1]).unwrap(),
        ] {
            let mut ws = EvalWorkspace::new(&inst);
            ws.evaluate(&inst, &f);
            assert_slices_eq(ws.edge_flows(), &f.edge_flows(&inst));
            assert_slices_eq(ws.edge_latencies(), &f.edge_latencies(&inst));
            assert_slices_eq(ws.path_latencies(), &f.path_latencies(&inst));
            assert_slices_eq(
                ws.commodity_min_latencies(),
                &f.commodity_min_latencies(&inst),
            );
            assert_slices_eq(
                ws.commodity_avg_latencies(),
                &f.commodity_avg_latencies(&inst),
            );
            assert_eq!(ws.potential(), potential(&inst, &f));
            assert!((ws.avg_latency() - f.avg_latency(&inst)).abs() < 1e-15);
            assert_eq!(
                ws.max_regret(&inst, &f, 1e-12),
                max_regret(&inst, &f, 1e-12)
            );
            for d in [0.0, 0.05, 0.5] {
                assert_eq!(
                    ws.unsatisfied_volume(&inst, &f, d),
                    unsatisfied_volume(&inst, &f, d)
                );
                assert_eq!(
                    ws.weakly_unsatisfied_volume(&inst, &f, d),
                    weakly_unsatisfied_volume(&inst, &f, d)
                );
            }
        }
    }

    #[test]
    fn reevaluation_overwrites_stale_state() {
        let inst = builders::pigou();
        let mut ws = EvalWorkspace::new(&inst);
        let a = FlowVec::from_values(&inst, vec![1.0, 0.0]).unwrap();
        ws.evaluate(&inst, &a);
        let phi_a = ws.potential();
        let b = FlowVec::from_values(&inst, vec![0.0, 1.0]).unwrap();
        ws.evaluate(&inst, &b);
        assert_ne!(ws.potential(), phi_a);
        assert_eq!(ws.potential(), potential(&inst, &b));
        assert_slices_eq(ws.edge_flows(), &b.edge_flows(&inst));
    }

    #[test]
    fn virtual_gain_from_matches_naive() {
        let inst = builders::braess();
        let start = FlowVec::uniform(&inst);
        let end = FlowVec::concentrated(&inst);
        let mut ws = EvalWorkspace::new(&inst);
        ws.evaluate(&inst, &start);
        let fe_hat = ws.edge_flows().to_vec();
        let le_hat = ws.edge_latencies().to_vec();
        ws.evaluate(&inst, &end);
        assert_eq!(
            ws.virtual_gain_from(&fe_hat, &le_hat),
            virtual_gain(&inst, &start, &end)
        );
    }

    #[test]
    fn evaluate_edges_then_finish_matches_full_evaluation() {
        let inst = builders::multi_commodity_grid(3, 3, 11);
        let f = FlowVec::uniform(&inst);
        let mut full = EvalWorkspace::new(&inst);
        full.evaluate(&inst, &f);
        let mut split = EvalWorkspace::new(&inst);
        split.evaluate_edges(&inst, &f);
        // The edge-level quantities are already final…
        assert_slices_eq(split.edge_flows(), full.edge_flows());
        assert_slices_eq(split.edge_latencies(), full.edge_latencies());
        assert_eq!(split.potential(), full.potential());
        // …and the completed gather matches the fused pass exactly.
        split.finish_paths(&inst, &f);
        assert_slices_eq(split.path_latencies(), full.path_latencies());
        assert_slices_eq(
            split.commodity_min_latencies(),
            full.commodity_min_latencies(),
        );
        assert_slices_eq(
            split.commodity_avg_latencies(),
            full.commodity_avg_latencies(),
        );
        assert_eq!(split.avg_latency(), full.avg_latency());
    }

    #[test]
    fn parallel_evaluation_is_bit_identical_to_serial() {
        // Large enough to clear the parallel gate (grid_8x8 has 48048
        // incidences).
        let inst = builders::grid_network(8, 8, 3);
        assert!(inst.incidence_count() >= super::PARALLEL_EVAL_MIN_INCIDENCES);
        let flows = [FlowVec::uniform(&inst), FlowVec::concentrated(&inst)];
        for lanes in [2usize, 3, 8] {
            let pool = wardrop_pool::WorkerPool::new(lanes);
            for f in &flows {
                let mut serial = EvalWorkspace::new(&inst);
                serial.evaluate(&inst, f);
                let mut par = EvalWorkspace::new(&inst);
                par.evaluate_with(&inst, f, Some(&pool));
                assert_slices_eq(par.edge_flows(), serial.edge_flows());
                assert_slices_eq(par.edge_latencies(), serial.edge_latencies());
                assert_slices_eq(par.path_latencies(), serial.path_latencies());
                assert_slices_eq(
                    par.commodity_min_latencies(),
                    serial.commodity_min_latencies(),
                );
                assert_slices_eq(
                    par.commodity_avg_latencies(),
                    serial.commodity_avg_latencies(),
                );
                assert_eq!(par.potential().to_bits(), serial.potential().to_bits());
                assert_eq!(par.avg_latency().to_bits(), serial.avg_latency().to_bits());
            }
        }
    }

    #[test]
    fn small_instances_bypass_the_pool() {
        let inst = builders::braess();
        let f = FlowVec::uniform(&inst);
        let pool = wardrop_pool::WorkerPool::new(2);
        let mut a = EvalWorkspace::new(&inst);
        a.evaluate_with(&inst, &f, Some(&pool));
        let mut b = EvalWorkspace::new(&inst);
        b.evaluate(&inst, &f);
        assert_slices_eq(a.path_latencies(), b.path_latencies());
        assert_eq!(a.potential(), b.potential());
    }

    #[test]
    fn multi_commodity_averages_match() {
        let inst = builders::multi_commodity_grid(3, 3, 11);
        let f = FlowVec::uniform(&inst);
        let mut ws = EvalWorkspace::new(&inst);
        ws.evaluate(&inst, &f);
        assert_slices_eq(
            ws.commodity_avg_latencies(),
            &f.commodity_avg_latencies(&inst),
        );
        assert!((ws.avg_latency() - f.avg_latency(&inst)).abs() < 1e-12);
    }

    /// Builds a change set for `from → to` the way the engine's block
    /// scan does: exact diff, threshold split into marks vs residual.
    fn scan_changes(from: &FlowVec, to: &FlowVec, threshold: f64, out: &mut ChangeSet) {
        out.clear();
        let mut residual = 0.0;
        for (idx, (&a, &b)) in from.values().iter().zip(to.values()).enumerate() {
            let d = (b - a).abs();
            if d > threshold {
                out.mark(idx);
            } else {
                residual += d;
            }
        }
        out.add_residual(residual);
    }

    fn assert_state_eq(a: &EvalWorkspace, b: &EvalWorkspace) {
        assert_slices_eq(a.edge_flows(), b.edge_flows());
        assert_slices_eq(a.edge_latencies(), b.edge_latencies());
        assert_slices_eq(a.path_latencies(), b.path_latencies());
        assert_slices_eq(a.commodity_min_latencies(), b.commodity_min_latencies());
        assert_slices_eq(a.commodity_avg_latencies(), b.commodity_avg_latencies());
        assert_eq!(a.potential().to_bits(), b.potential().to_bits());
        assert_eq!(a.avg_latency().to_bits(), b.avg_latency().to_bits());
    }

    #[test]
    fn first_delta_evaluation_resyncs_and_is_exact() {
        let inst = builders::multi_commodity_grid(4, 4, 3);
        let f = FlowVec::uniform(&inst);
        let mut ws = EvalWorkspace::new(&inst);
        let mut scratch = DeltaEval::new(&inst);
        let changes = ChangeSet::for_instance(&inst);
        assert!(changes.is_widened());
        let out = ws.evaluate_delta(&inst, &f, &changes, &mut scratch);
        assert_eq!(out, DeltaOutcome::Resync);
        assert!(scratch.is_primed());
        let mut reference = EvalWorkspace::new(&inst);
        reference.evaluate(&inst, &f);
        assert_state_eq(&ws, &reference);
    }

    #[test]
    fn sparse_step_tracks_reference_within_budget() {
        let inst = builders::multi_commodity_grid(4, 4, 7);
        let mut flow = FlowVec::uniform(&inst);
        let mut ws = EvalWorkspace::new(&inst);
        let mut scratch = DeltaEval::new(&inst);
        let mut changes = ChangeSet::for_instance(&inst);
        ws.evaluate_delta(&inst, &flow, &changes, &mut scratch);

        // Nudge a handful of paths by tiny amounts, keeping per-
        // commodity mass balanced so the flow stays feasible.
        for step in 0..40 {
            let before = flow.clone();
            let values = flow.values_mut();
            for i in 0..inst.num_commodities() {
                let range = inst.commodity_paths(i);
                if range.len() < 2 {
                    continue;
                }
                let (a, b) = (range.start, range.start + 1);
                let shift = 1e-11 * ((step + i) % 3) as f64;
                values[a] += shift;
                values[b] -= shift;
            }
            scan_changes(&before, &flow, 1e-13, &mut changes);
            let out = ws.evaluate_delta(&inst, &flow, &changes, &mut scratch);
            let mut reference = EvalWorkspace::new(&inst);
            reference.evaluate(&inst, &flow);
            match out {
                DeltaOutcome::Resync => assert_state_eq(&ws, &reference),
                DeltaOutcome::Sparse { .. } => {
                    assert!((ws.potential() - reference.potential()).abs() < 1e-9);
                    assert!((ws.avg_latency() - reference.avg_latency()).abs() < 1e-9);
                    for (x, y) in ws.path_latencies().iter().zip(reference.path_latencies()) {
                        assert!((x - y).abs() < 1e-9);
                    }
                    for (x, y) in ws.edge_flows().iter().zip(reference.edge_flows()) {
                        assert!((x - y).abs() < 1e-9);
                    }
                }
            }
        }
        assert!(scratch.stats().sparse_phases > 0);
    }

    #[test]
    fn drift_budget_forces_resync() {
        let inst = builders::multi_commodity_grid(3, 3, 5);
        let mut flow = FlowVec::uniform(&inst);
        let mut ws = EvalWorkspace::new(&inst);
        let mut scratch = DeltaEval::new(&inst).with_budgets(1e-12, 1e-12);
        let mut changes = ChangeSet::for_instance(&inst);
        ws.evaluate_delta(&inst, &flow, &changes, &mut scratch);

        // Large unlisted residuals must trip the flow budget quickly.
        let before = flow.clone();
        {
            let values = flow.values_mut();
            values[0] += 1e-10;
            values[1] -= 1e-10;
        }
        changes.clear();
        changes.add_residual(before.l1_distance(&flow));
        let out = ws.evaluate_delta(&inst, &flow, &changes, &mut scratch);
        assert_eq!(out, DeltaOutcome::Resync);
        let mut reference = EvalWorkspace::new(&inst);
        reference.evaluate(&inst, &flow);
        assert_state_eq(&ws, &reference);
    }

    #[test]
    fn resync_interval_caps_sparse_streak() {
        let inst = builders::braess();
        let flow = FlowVec::uniform(&inst);
        let mut ws = EvalWorkspace::new(&inst);
        let mut scratch = DeltaEval::new(&inst).with_resync_interval(4);
        let mut changes = ChangeSet::for_instance(&inst);
        ws.evaluate_delta(&inst, &flow, &changes, &mut scratch);
        changes.clear();
        let mut resyncs = 0;
        for _ in 0..12 {
            if ws.evaluate_delta(&inst, &flow, &changes, &mut scratch) == DeltaOutcome::Resync {
                resyncs += 1;
            }
        }
        assert_eq!(resyncs, 3, "every 4th phase must force a re-sync");
    }

    #[test]
    fn widened_changeset_forces_exact_resync() {
        let inst = builders::multi_commodity_grid(3, 3, 2);
        let mut flow = FlowVec::uniform(&inst);
        let mut ws = EvalWorkspace::new(&inst);
        let mut scratch = DeltaEval::new(&inst);
        let mut changes = ChangeSet::for_instance(&inst);
        ws.evaluate_delta(&inst, &flow, &changes, &mut scratch);
        // Move real mass without listing it, then widen: the re-sync
        // must still land exactly on the new flow.
        {
            let values = flow.values_mut();
            values[0] += 0.05;
            values[1] -= 0.05;
        }
        changes.clear();
        changes.mark_all();
        let out = ws.evaluate_delta(&inst, &flow, &changes, &mut scratch);
        assert_eq!(out, DeltaOutcome::Resync);
        let mut reference = EvalWorkspace::new(&inst);
        reference.evaluate(&inst, &flow);
        assert_state_eq(&ws, &reference);
    }

    #[test]
    fn delta_clear_unprimes_and_zeroes_counters() {
        let inst = builders::braess();
        let flow = FlowVec::uniform(&inst);
        let mut ws = EvalWorkspace::new(&inst);
        let mut scratch = DeltaEval::new(&inst);
        let mut changes = ChangeSet::for_instance(&inst);
        ws.evaluate_delta(&inst, &flow, &changes, &mut scratch);
        changes.clear();
        ws.evaluate_delta(&inst, &flow, &changes, &mut scratch);
        assert!(scratch.stats().sparse_phases > 0);
        scratch.clear();
        assert!(!scratch.is_primed());
        assert_eq!(scratch.stats(), DeltaStats::default());
        assert_eq!(scratch.flow_drift(), 0.0);
        assert_eq!(scratch.pending_latency(), 0.0);
        assert_eq!(
            ws.evaluate_delta(&inst, &flow, &changes, &mut scratch),
            DeltaOutcome::Resync
        );
    }
}
