//! Fused, allocation-free evaluation of all per-flow quantities.
//!
//! Every metric the phase loop needs — edge flows, edge and path
//! latencies, the Beckmann–McGuire–Winsten potential, overall and
//! per-commodity average latencies, per-commodity minimum latencies —
//! derives from the same `edge_flows → edge_latencies → path_latencies`
//! chain. The naive API on [`FlowVec`] recomputes that chain (and
//! allocates) once *per metric*; an [`EvalWorkspace`] computes it once
//! per flow into reusable buffers, so a steady-state simulation phase
//! touches the CSR incidence a constant number of times and performs
//! zero heap allocations.
//!
//! Results are identical to the naive implementations (the scatter,
//! gather and reduction orders are preserved, so most quantities match
//! bit-for-bit; cross-commodity sums may differ by float re-association
//! only). `tests/properties.rs` asserts this on random instances.

use crate::equilibrium::{
    max_regret_from, unsatisfied_volume_from, weakly_unsatisfied_volume_from,
};
use crate::flow::FlowVec;
use crate::instance::Instance;
use crate::path::PathId;
use wardrop_pool::WorkerPool;

/// Incidence count below which [`EvalWorkspace::evaluate_with`] ignores
/// the pool: dispatch overhead (a couple of condvar round-trips) beats
/// the win on small instances.
const PARALLEL_EVAL_MIN_INCIDENCES: usize = 1 << 14;

/// Reusable buffers holding every derived quantity of one flow.
///
/// Call [`EvalWorkspace::evaluate`] whenever the flow changes; all
/// accessors then read the cached arrays.
///
/// # Examples
///
/// ```
/// use wardrop_net::{builders, eval::EvalWorkspace, flow::FlowVec};
///
/// let inst = builders::braess();
/// let f = FlowVec::uniform(&inst);
/// let mut ws = EvalWorkspace::new(&inst);
/// ws.evaluate(&inst, &f);
/// assert_eq!(ws.path_latencies(), f.path_latencies(&inst).as_slice());
/// assert_eq!(ws.avg_latency(), f.avg_latency(&inst));
/// ```
#[derive(Debug, Clone)]
pub struct EvalWorkspace {
    edge_flows: Vec<f64>,
    edge_latencies: Vec<f64>,
    path_latencies: Vec<f64>,
    commodity_min: Vec<f64>,
    commodity_avg: Vec<f64>,
    /// Per-commodity `(min, Σ f_P ℓ_P)` scratch for the parallel
    /// gather; the serial combine turns it into min/avg/overall.
    commodity_scratch: Vec<[f64; 2]>,
    potential: f64,
    avg_latency: f64,
}

impl EvalWorkspace {
    /// Creates a workspace sized for `instance` (all buffers zeroed; no
    /// evaluation has happened yet).
    pub fn new(instance: &Instance) -> Self {
        EvalWorkspace {
            edge_flows: vec![0.0; instance.num_edges()],
            edge_latencies: vec![0.0; instance.num_edges()],
            path_latencies: vec![0.0; instance.num_paths()],
            commodity_min: vec![0.0; instance.num_commodities()],
            commodity_avg: vec![0.0; instance.num_commodities()],
            commodity_scratch: vec![[0.0; 2]; instance.num_commodities()],
            potential: 0.0,
            avg_latency: 0.0,
        }
    }

    /// Recomputes every cached quantity for `flow` in one fused pass:
    /// a CSR scatter (edge flows), one sweep over edges (latencies and
    /// potential) and a CSR gather (path latencies, mins, averages).
    ///
    /// Equivalent to [`EvalWorkspace::evaluate_edges`] followed by
    /// [`EvalWorkspace::finish_paths`].
    ///
    /// # Panics
    ///
    /// Panics if `flow` or the workspace does not match `instance`.
    pub fn evaluate(&mut self, instance: &Instance, flow: &FlowVec) {
        self.evaluate_edges(instance, flow);
        self.finish_paths(instance, flow);
    }

    /// Recomputes the *edge-level* quantities only: edge flows, edge
    /// latencies and the potential. Path latencies, per-commodity
    /// minima/averages and the overall average latency are left stale.
    ///
    /// This is the fast path for metric-only callers that need `Φ`,
    /// the edge arrays or a [virtual gain](EvalWorkspace::virtual_gain_from)
    /// but none of the per-path quantities — it skips the CSR gather
    /// and the per-commodity min/avg pass entirely (half the fused
    /// work on `grid_10x10`-sized instances). Call
    /// [`EvalWorkspace::finish_paths`] with the same flow to complete
    /// the evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `flow` or the workspace does not match `instance`.
    pub fn evaluate_edges(&mut self, instance: &Instance, flow: &FlowVec) {
        let values = flow.values();
        assert_eq!(values.len(), instance.num_paths());
        assert_eq!(self.path_latencies.len(), instance.num_paths());
        assert_eq!(self.edge_flows.len(), instance.num_edges());

        // Scatter: f_e = Σ_{P ∋ e} f_P (same visit order as the naive
        // FlowVec::edge_flows, so results are bit-identical).
        self.edge_flows.fill(0.0);
        for (idx, &fp) in values.iter().enumerate() {
            if fp == 0.0 {
                continue;
            }
            for e in instance.path_edges(PathId::from_index(idx)) {
                self.edge_flows[e.index()] += fp;
            }
        }
        self.edge_sweep(instance);
    }

    /// Edge sweep: ℓ_e(f_e) and Φ = Σ_e ∫₀^{f_e} ℓ_e. Cheap (O(|E|))
    /// and kept on one thread in every mode, so the potential's
    /// left-to-right float association never depends on lane count.
    fn edge_sweep(&mut self, instance: &Instance) {
        let mut potential = 0.0;
        for ((le, &fe), lat) in self
            .edge_latencies
            .iter_mut()
            .zip(&self.edge_flows)
            .zip(instance.latencies())
        {
            *le = lat.eval(fe);
            potential += lat.primitive(fe);
        }
        self.potential = potential;
    }

    /// Completes an [`EvalWorkspace::evaluate_edges`] into a full
    /// evaluation: the CSR gather (path latencies) and the
    /// per-commodity min/avg pass.
    ///
    /// # Panics
    ///
    /// Panics if `flow` does not match `instance`. The caller must have
    /// evaluated the edge quantities at the *same* flow.
    pub fn finish_paths(&mut self, instance: &Instance, flow: &FlowVec) {
        let values = flow.values();
        assert_eq!(values.len(), instance.num_paths());
        // Gather: ℓ_P, per-commodity min/avg, overall average latency.
        let mut avg_latency = 0.0;
        for (i, c) in instance.commodities().iter().enumerate() {
            let mut min_i = f64::INFINITY;
            let mut acc = 0.0;
            for p in instance.commodity_paths(i) {
                let lp: f64 = instance
                    .path_edges(PathId::from_index(p))
                    .iter()
                    .map(|e| self.edge_latencies[e.index()])
                    .sum();
                self.path_latencies[p] = lp;
                min_i = min_i.min(lp);
                acc += values[p] * lp;
            }
            self.commodity_min[i] = min_i;
            self.commodity_avg[i] = acc / c.demand;
            avg_latency += acc;
        }
        self.avg_latency = avg_latency;
    }

    /// [`EvalWorkspace::evaluate`], optionally fanned across a
    /// [`WorkerPool`] — **bit-identical** to the serial evaluation for
    /// every lane count.
    ///
    /// The parallel decomposition preserves every float-operation
    /// sequence of the serial pass:
    ///
    /// * **edge flows** switch from the path-order scatter to a
    ///   per-edge gather over the transposed CSR. For a fixed edge the
    ///   contributions still arrive in ascending path order (the
    ///   transposed rows are sorted), and the skipped `f_P = 0` terms
    ///   of the scatter are bitwise no-ops on a non-negative
    ///   accumulator, so every `f_e` is bit-identical;
    /// * **path latencies** are per-path independent sums;
    /// * the **per-commodity min/avg** pass runs per commodity (the
    ///   serial order within each block), and the cross-commodity
    ///   folds — potential and overall average latency — stay on the
    ///   dispatching thread in commodity order.
    ///
    /// With `pool = None`, or on instances too small to amortise a
    /// dispatch, this is exactly the serial [`EvalWorkspace::evaluate`].
    ///
    /// # Panics
    ///
    /// Panics if `flow` or the workspace does not match `instance`.
    pub fn evaluate_with(
        &mut self,
        instance: &Instance,
        flow: &FlowVec,
        pool: Option<&WorkerPool>,
    ) {
        self.evaluate_edges_with(instance, flow, pool);
        self.finish_paths_with(instance, flow, pool);
    }

    /// [`EvalWorkspace::evaluate_edges`], optionally pooled (see
    /// [`EvalWorkspace::evaluate_with`] for the determinism argument).
    ///
    /// # Panics
    ///
    /// Panics if `flow` or the workspace does not match `instance`.
    pub fn evaluate_edges_with(
        &mut self,
        instance: &Instance,
        flow: &FlowVec,
        pool: Option<&WorkerPool>,
    ) {
        let pool = match pool {
            Some(p)
                if p.lanes() > 1 && instance.incidence_count() >= PARALLEL_EVAL_MIN_INCIDENCES =>
            {
                p
            }
            _ => return self.evaluate_edges(instance, flow),
        };
        let values = flow.values();
        assert_eq!(values.len(), instance.num_paths());
        assert_eq!(self.edge_flows.len(), instance.num_edges());

        // Per-edge gather (ascending path order within each edge row —
        // see the determinism note above).
        pool.fill_with(&mut self.edge_flows, |e| {
            let mut fe = 0.0;
            for p in instance.edge_paths(crate::graph::EdgeId::from_index(e)) {
                fe += values[p.index()];
            }
            fe
        });

        self.edge_sweep(instance);
    }

    /// [`EvalWorkspace::finish_paths`], optionally pooled (see
    /// [`EvalWorkspace::evaluate_with`] for the determinism argument).
    ///
    /// # Panics
    ///
    /// Panics if `flow` does not match `instance`.
    pub fn finish_paths_with(
        &mut self,
        instance: &Instance,
        flow: &FlowVec,
        pool: Option<&WorkerPool>,
    ) {
        let pool = match pool {
            Some(p)
                if p.lanes() > 1 && instance.incidence_count() >= PARALLEL_EVAL_MIN_INCIDENCES =>
            {
                p
            }
            _ => return self.finish_paths(instance, flow),
        };
        let values = flow.values();
        assert_eq!(values.len(), instance.num_paths());
        assert_eq!(self.path_latencies.len(), instance.num_paths());

        // Per-path latency gather.
        let EvalWorkspace {
            path_latencies,
            edge_latencies,
            ..
        } = self;
        pool.fill_with(path_latencies, |p| {
            instance
                .path_edges(PathId::from_index(p))
                .iter()
                .map(|e| edge_latencies[e.index()])
                .sum()
        });

        // Per-commodity (min, Σ f_P ℓ_P) in block-serial order; the
        // cross-commodity combine stays serial.
        let EvalWorkspace {
            path_latencies,
            commodity_scratch,
            ..
        } = self;
        pool.fill_with(commodity_scratch, |i| {
            let mut min_i = f64::INFINITY;
            let mut acc = 0.0;
            for p in instance.commodity_paths(i) {
                let lp = path_latencies[p];
                min_i = min_i.min(lp);
                acc += values[p] * lp;
            }
            [min_i, acc]
        });
        let mut avg_latency = 0.0;
        for (i, c) in instance.commodities().iter().enumerate() {
            let [min_i, acc] = self.commodity_scratch[i];
            self.commodity_min[i] = min_i;
            self.commodity_avg[i] = acc / c.demand;
            avg_latency += acc;
        }
        self.avg_latency = avg_latency;
    }

    /// Cached edge flows `f_e` of the last evaluated flow.
    #[inline]
    pub fn edge_flows(&self) -> &[f64] {
        &self.edge_flows
    }

    /// Cached edge latencies `ℓ_e(f_e)`.
    #[inline]
    pub fn edge_latencies(&self) -> &[f64] {
        &self.edge_latencies
    }

    /// Cached path latencies `ℓ_P(f)`.
    #[inline]
    pub fn path_latencies(&self) -> &[f64] {
        &self.path_latencies
    }

    /// Cached per-commodity minimum path latencies `ℓ^i_min`.
    #[inline]
    pub fn commodity_min_latencies(&self) -> &[f64] {
        &self.commodity_min
    }

    /// Cached per-commodity average latencies `L_i`.
    #[inline]
    pub fn commodity_avg_latencies(&self) -> &[f64] {
        &self.commodity_avg
    }

    /// Cached potential `Φ(f)`.
    #[inline]
    pub fn potential(&self) -> f64 {
        self.potential
    }

    /// Cached overall average latency `L = Σ_P f_P ℓ_P`.
    #[inline]
    pub fn avg_latency(&self) -> f64 {
        self.avg_latency
    }

    /// Maximum regret of any used path, from the cached latencies (see
    /// [`crate::equilibrium::max_regret`]).
    pub fn max_regret(&self, instance: &Instance, flow: &FlowVec, tol: f64) -> f64 {
        max_regret_from(
            instance,
            flow.values(),
            &self.path_latencies,
            &self.commodity_min,
            tol,
        )
    }

    /// `δ`-unsatisfied volume from the cached latencies (see
    /// [`crate::equilibrium::unsatisfied_volume`]).
    pub fn unsatisfied_volume(&self, instance: &Instance, flow: &FlowVec, delta: f64) -> f64 {
        unsatisfied_volume_from(
            instance,
            flow.values(),
            &self.path_latencies,
            &self.commodity_min,
            delta,
        )
    }

    /// Weakly `δ`-unsatisfied volume from the cached latencies (see
    /// [`crate::equilibrium::weakly_unsatisfied_volume`]).
    pub fn weakly_unsatisfied_volume(
        &self,
        instance: &Instance,
        flow: &FlowVec,
        delta: f64,
    ) -> f64 {
        weakly_unsatisfied_volume_from(
            instance,
            flow.values(),
            &self.path_latencies,
            &self.commodity_avg,
            delta,
        )
    }

    /// The virtual potential gain `V(f̂, f) = Σ_e ℓ_e(f̂_e) (f_e − f̂_e)`
    /// of moving from the snapshot `(f̂_e, ℓ_e(f̂_e))` to the *currently
    /// evaluated* flow (see [`crate::potential::virtual_gain`]).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot slices do not have one entry per edge.
    pub fn virtual_gain_from(&self, start_edge_flows: &[f64], start_edge_latencies: &[f64]) -> f64 {
        crate::potential::virtual_gain_from_edge(
            start_edge_flows,
            start_edge_latencies,
            &self.edge_flows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::equilibrium::{max_regret, unsatisfied_volume, weakly_unsatisfied_volume};
    use crate::potential::{potential, virtual_gain};

    fn assert_slices_eq(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn fused_matches_naive_on_braess() {
        let inst = builders::braess();
        for f in [
            FlowVec::uniform(&inst),
            FlowVec::concentrated(&inst),
            FlowVec::from_values(&inst, vec![0.3, 0.6, 0.1]).unwrap(),
        ] {
            let mut ws = EvalWorkspace::new(&inst);
            ws.evaluate(&inst, &f);
            assert_slices_eq(ws.edge_flows(), &f.edge_flows(&inst));
            assert_slices_eq(ws.edge_latencies(), &f.edge_latencies(&inst));
            assert_slices_eq(ws.path_latencies(), &f.path_latencies(&inst));
            assert_slices_eq(
                ws.commodity_min_latencies(),
                &f.commodity_min_latencies(&inst),
            );
            assert_slices_eq(
                ws.commodity_avg_latencies(),
                &f.commodity_avg_latencies(&inst),
            );
            assert_eq!(ws.potential(), potential(&inst, &f));
            assert!((ws.avg_latency() - f.avg_latency(&inst)).abs() < 1e-15);
            assert_eq!(
                ws.max_regret(&inst, &f, 1e-12),
                max_regret(&inst, &f, 1e-12)
            );
            for d in [0.0, 0.05, 0.5] {
                assert_eq!(
                    ws.unsatisfied_volume(&inst, &f, d),
                    unsatisfied_volume(&inst, &f, d)
                );
                assert_eq!(
                    ws.weakly_unsatisfied_volume(&inst, &f, d),
                    weakly_unsatisfied_volume(&inst, &f, d)
                );
            }
        }
    }

    #[test]
    fn reevaluation_overwrites_stale_state() {
        let inst = builders::pigou();
        let mut ws = EvalWorkspace::new(&inst);
        let a = FlowVec::from_values(&inst, vec![1.0, 0.0]).unwrap();
        ws.evaluate(&inst, &a);
        let phi_a = ws.potential();
        let b = FlowVec::from_values(&inst, vec![0.0, 1.0]).unwrap();
        ws.evaluate(&inst, &b);
        assert_ne!(ws.potential(), phi_a);
        assert_eq!(ws.potential(), potential(&inst, &b));
        assert_slices_eq(ws.edge_flows(), &b.edge_flows(&inst));
    }

    #[test]
    fn virtual_gain_from_matches_naive() {
        let inst = builders::braess();
        let start = FlowVec::uniform(&inst);
        let end = FlowVec::concentrated(&inst);
        let mut ws = EvalWorkspace::new(&inst);
        ws.evaluate(&inst, &start);
        let fe_hat = ws.edge_flows().to_vec();
        let le_hat = ws.edge_latencies().to_vec();
        ws.evaluate(&inst, &end);
        assert_eq!(
            ws.virtual_gain_from(&fe_hat, &le_hat),
            virtual_gain(&inst, &start, &end)
        );
    }

    #[test]
    fn evaluate_edges_then_finish_matches_full_evaluation() {
        let inst = builders::multi_commodity_grid(3, 3, 11);
        let f = FlowVec::uniform(&inst);
        let mut full = EvalWorkspace::new(&inst);
        full.evaluate(&inst, &f);
        let mut split = EvalWorkspace::new(&inst);
        split.evaluate_edges(&inst, &f);
        // The edge-level quantities are already final…
        assert_slices_eq(split.edge_flows(), full.edge_flows());
        assert_slices_eq(split.edge_latencies(), full.edge_latencies());
        assert_eq!(split.potential(), full.potential());
        // …and the completed gather matches the fused pass exactly.
        split.finish_paths(&inst, &f);
        assert_slices_eq(split.path_latencies(), full.path_latencies());
        assert_slices_eq(
            split.commodity_min_latencies(),
            full.commodity_min_latencies(),
        );
        assert_slices_eq(
            split.commodity_avg_latencies(),
            full.commodity_avg_latencies(),
        );
        assert_eq!(split.avg_latency(), full.avg_latency());
    }

    #[test]
    fn parallel_evaluation_is_bit_identical_to_serial() {
        // Large enough to clear the parallel gate (grid_8x8 has 48048
        // incidences).
        let inst = builders::grid_network(8, 8, 3);
        assert!(inst.incidence_count() >= super::PARALLEL_EVAL_MIN_INCIDENCES);
        let flows = [FlowVec::uniform(&inst), FlowVec::concentrated(&inst)];
        for lanes in [2usize, 3, 8] {
            let pool = wardrop_pool::WorkerPool::new(lanes);
            for f in &flows {
                let mut serial = EvalWorkspace::new(&inst);
                serial.evaluate(&inst, f);
                let mut par = EvalWorkspace::new(&inst);
                par.evaluate_with(&inst, f, Some(&pool));
                assert_slices_eq(par.edge_flows(), serial.edge_flows());
                assert_slices_eq(par.edge_latencies(), serial.edge_latencies());
                assert_slices_eq(par.path_latencies(), serial.path_latencies());
                assert_slices_eq(
                    par.commodity_min_latencies(),
                    serial.commodity_min_latencies(),
                );
                assert_slices_eq(
                    par.commodity_avg_latencies(),
                    serial.commodity_avg_latencies(),
                );
                assert_eq!(par.potential().to_bits(), serial.potential().to_bits());
                assert_eq!(par.avg_latency().to_bits(), serial.avg_latency().to_bits());
            }
        }
    }

    #[test]
    fn small_instances_bypass_the_pool() {
        let inst = builders::braess();
        let f = FlowVec::uniform(&inst);
        let pool = wardrop_pool::WorkerPool::new(2);
        let mut a = EvalWorkspace::new(&inst);
        a.evaluate_with(&inst, &f, Some(&pool));
        let mut b = EvalWorkspace::new(&inst);
        b.evaluate(&inst, &f);
        assert_slices_eq(a.path_latencies(), b.path_latencies());
        assert_eq!(a.potential(), b.potential());
    }

    #[test]
    fn multi_commodity_averages_match() {
        let inst = builders::multi_commodity_grid(3, 3, 11);
        let f = FlowVec::uniform(&inst);
        let mut ws = EvalWorkspace::new(&inst);
        ws.evaluate(&inst, &f);
        assert_slices_eq(
            ws.commodity_avg_latencies(),
            &f.commodity_avg_latencies(&inst),
        );
        assert!((ws.avg_latency() - f.avg_latency(&inst)).abs() < 1e-12);
    }
}
