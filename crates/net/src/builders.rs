//! Canonical and random instance builders.
//!
//! These cover the instances the paper uses or motivates: parallel-link
//! networks (including the two-link oscillator of §3.2), Pigou's
//! example, the Braess network, layered random networks and grids for
//! scaling experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::commodity::Commodity;
use crate::edge_flow::EdgeInstance;
use crate::graph::Graph;
use crate::instance::Instance;
use crate::latency::Latency;

/// Pigou's two-link network: `ℓ₁(x) = x` versus `ℓ₂(x) = 1`, demand 1.
///
/// Wardrop equilibrium routes everything on link 1 (latency 1); the
/// system optimum splits `(½, ½)` for average latency `¾`, so the price
/// of anarchy is `4/3`.
pub fn pigou() -> Instance {
    parallel_links(vec![Latency::identity(), Latency::Constant(1.0)])
}

/// A network of `latencies.len()` parallel links between one
/// source–sink pair with unit demand.
///
/// # Panics
///
/// Panics if any latency is invalid (builders construct known-good
/// instances; use [`Instance::new`] directly for fallible construction).
pub fn parallel_links(latencies: Vec<Latency>) -> Instance {
    let mut g = Graph::new();
    let s = g.add_node();
    let t = g.add_node();
    for _ in 0..latencies.len() {
        g.add_edge(s, t);
    }
    Instance::new(g, latencies, vec![Commodity::new(s, t, 1.0)])
        .expect("parallel-link instances are valid by construction")
}

/// `m` identical parallel links with latency `ℓ(x) = x` each.
///
/// The Wardrop equilibrium is the uniform split. Used by the Theorem 6
/// experiments to sweep `m = |P|`.
pub fn uniform_parallel_links(m: usize) -> Instance {
    parallel_links(vec![Latency::identity(); m])
}

/// The §3.2 oscillator: two parallel links, both with latency
/// `ℓ(x) = max{0, β(x − ½)}`.
///
/// Under best response with update period `T` this instance oscillates
/// forever from the initial flow `f₁(0) = 1/(e^{−T} + 1)`; see
/// `wardrop_core::theory::oscillation` for the closed forms.
pub fn two_link_oscillator(beta: f64) -> Instance {
    parallel_links(vec![Latency::oscillator(beta), Latency::oscillator(beta)])
}

/// The Braess network.
///
/// Nodes `s, a, b, t`; edges `s→a` (ℓ = x), `s→b` (ℓ = 1), `a→t`
/// (ℓ = 1), `b→t` (ℓ = x) and the zero-latency chord `a→b`. Demand 1.
/// Paths: `s-a-t`, `s-b-t`, and `s-a-b-t`. At equilibrium everyone uses
/// the chord path for latency 2; removing the chord gives latency 1.5.
pub fn braess() -> Instance {
    let mut g = Graph::new();
    let s = g.add_node();
    let a = g.add_node();
    let b = g.add_node();
    let t = g.add_node();
    g.add_edge(s, a); // 0: x
    g.add_edge(s, b); // 1: 1
    g.add_edge(a, t); // 2: 1
    g.add_edge(b, t); // 3: x
    g.add_edge(a, b); // 4: 0
    let latencies = vec![
        Latency::identity(),
        Latency::Constant(1.0),
        Latency::Constant(1.0),
        Latency::identity(),
        Latency::zero(),
    ];
    Instance::new(g, latencies, vec![Commodity::new(s, t, 1.0)])
        .expect("the Braess network is valid by construction")
}

/// A two-class parallel-link network: `m/2` cheap links `ℓ(x) = x`
/// and `m/2` expensive links `ℓ(x) = gap + x`.
///
/// The latency-gap structure is *independent of `m`*, which isolates
/// the sampling-rule comparison of Theorems 6 and 7: proportional
/// sampling drains the expensive class at a gap-driven, m-independent
/// rate, while uniform sampling throttles inflow to any single cheap
/// link by `σ = 1/m`.
///
/// # Panics
///
/// Panics unless `m ≥ 2` and even, and `gap > 0` finite.
pub fn two_class_links(m: usize, gap: f64) -> Instance {
    assert!(
        m >= 2 && m.is_multiple_of(2),
        "need an even number of links ≥ 2"
    );
    assert!(gap.is_finite() && gap > 0.0, "gap must be positive");
    let mut latencies = Vec::with_capacity(m);
    for _ in 0..m / 2 {
        latencies.push(Latency::Affine { a: 0.0, b: 1.0 });
    }
    for _ in 0..m / 2 {
        latencies.push(Latency::Affine { a: gap, b: 1.0 });
    }
    parallel_links(latencies)
}

/// The workspace's standard random parallel-link family:
/// `random_parallel_links(m, 1.0, 0.2, 2.0, seed)`.
///
/// The benches, experiment binaries and property tests all sweep this
/// one configuration so their measurements are comparable; keep the
/// parameters in one place instead of repeating the magic numbers.
pub fn standard_random_links(m: usize, seed: u64) -> Instance {
    random_parallel_links(m, 1.0, 0.2, 2.0, seed)
}

/// The "funnel" family of the Theorem 6/7 comparison: one cheap link
/// `ℓ(x) = x` plus `m − 1` expensive links `ℓ(x) = gap + x`.
///
/// All demand must funnel into the single good path, so uniform
/// sampling (inflow throttled by `σ = 1/m`) pays Theorem 6's `m`-factor
/// while proportional sampling stays `m`-independent (Theorem 7).
///
/// # Panics
///
/// Panics unless `m ≥ 2` and `gap > 0` finite.
pub fn funnel_links(m: usize, gap: f64) -> Instance {
    assert!(m >= 2, "need at least one expensive link");
    assert!(gap.is_finite() && gap > 0.0, "gap must be positive");
    let mut latencies = vec![Latency::Affine { a: 0.0, b: 1.0 }];
    latencies.extend(std::iter::repeat_n(
        Latency::Affine { a: gap, b: 1.0 },
        m - 1,
    ));
    parallel_links(latencies)
}

/// Random parallel-link instance with affine latencies
/// `ℓ_j(x) = a_j + b_j x`, `a_j ∈ [0, a_max]`, `b_j ∈ [b_min, b_max]`.
///
/// Deterministic for a fixed `seed`.
pub fn random_parallel_links(m: usize, a_max: f64, b_min: f64, b_max: f64, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let latencies = (0..m)
        .map(|_| Latency::Affine {
            a: rng.random_range(0.0..=a_max),
            b: rng.random_range(b_min..=b_max),
        })
        .collect();
    parallel_links(latencies)
}

/// A layered random network.
///
/// `layers` layers of `width` nodes between a source and a sink; every
/// node of layer `l` is connected to every node of layer `l + 1` (and
/// the source/sink to the full first/last layer) with random affine
/// latencies. Single commodity with unit demand. Path count is
/// `width^layers`, so keep `layers`/`width` small.
///
/// Deterministic for a fixed `seed`.
pub fn layered_network(layers: usize, width: usize, seed: u64) -> Instance {
    assert!(
        layers >= 1 && width >= 1,
        "need at least one layer and node"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new();
    let s = g.add_node();
    let mut prev = vec![s];
    let mut latencies = Vec::new();
    let rand_lat = |rng: &mut StdRng| Latency::Affine {
        a: rng.random_range(0.0..=1.0),
        b: rng.random_range(0.1..=1.0),
    };
    for _ in 0..layers {
        let layer: Vec<_> = (0..width).map(|_| g.add_node()).collect();
        for &u in &prev {
            for &v in &layer {
                g.add_edge(u, v);
                latencies.push(rand_lat(&mut rng));
            }
        }
        prev = layer;
    }
    let t = g.add_node();
    for &u in &prev {
        g.add_edge(u, t);
        latencies.push(rand_lat(&mut rng));
    }
    Instance::new(g, latencies, vec![Commodity::new(s, t, 1.0)])
        .expect("layered networks are valid by construction")
}

/// The shared grid substrate: a directed `rows × cols` DAG with
/// rightward and downward edges and random affine latencies, drawn in
/// row-major cell order (right edge before down edge) so every grid
/// builder is deterministic and mutually consistent for a fixed seed.
#[allow(clippy::type_complexity)]
fn grid_graph(
    rows: usize,
    cols: usize,
    rng: &mut StdRng,
) -> (Graph, Vec<Vec<crate::graph::NodeId>>, Vec<Latency>) {
    let mut g = Graph::new();
    let nodes: Vec<Vec<_>> = (0..rows)
        .map(|_| (0..cols).map(|_| g.add_node()).collect())
        .collect();
    let mut latencies = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(nodes[r][c], nodes[r][c + 1]);
                latencies.push(Latency::Affine {
                    a: rng.random_range(0.0..=1.0),
                    b: rng.random_range(0.1..=1.0),
                });
            }
            if r + 1 < rows {
                g.add_edge(nodes[r][c], nodes[r + 1][c]);
                latencies.push(Latency::Affine {
                    a: rng.random_range(0.0..=1.0),
                    b: rng.random_range(0.1..=1.0),
                });
            }
        }
    }
    (g, nodes, latencies)
}

/// A directed `rows × cols` grid with rightward and downward edges,
/// one commodity from the top-left to the bottom-right corner, and
/// random affine latencies.
///
/// Deterministic for a fixed `seed`. Path count is
/// `C(rows + cols − 2, rows − 1)`; keep dimensions modest.
pub fn grid_network(rows: usize, cols: usize, seed: u64) -> Instance {
    grid_network_with_cap(rows, cols, seed, crate::instance::DEFAULT_PATH_CAP)
}

/// [`grid_network`] with an explicit path-enumeration cap, for frontier
/// workloads whose path counts exceed [`DEFAULT_PATH_CAP`] — e.g. the
/// 12×12 grid's `C(22, 11) = 705 432` paths, runnable only through the
/// matrix-free parallel engine.
///
/// [`DEFAULT_PATH_CAP`]: crate::instance::DEFAULT_PATH_CAP
pub fn grid_network_with_cap(rows: usize, cols: usize, seed: u64, path_cap: usize) -> Instance {
    assert!(rows >= 1 && cols >= 1, "grid needs positive dimensions");
    assert!(rows + cols > 2, "grid must contain at least one edge");
    let mut rng = StdRng::seed_from_u64(seed);
    let (g, nodes, latencies) = grid_graph(rows, cols, &mut rng);
    let commodities = vec![Commodity::new(nodes[0][0], nodes[rows - 1][cols - 1], 1.0)];
    Instance::with_path_cap(g, latencies, commodities, path_cap)
        .expect("grid networks are valid by construction")
}

/// The path-free counterpart of [`grid_network`]: the same graph, the
/// same seed-deterministic latencies and the same corner-to-corner
/// commodity, packaged as an [`EdgeInstance`] for the implicit-path
/// backend. No path enumeration is performed, so this constructs
/// grids far beyond the enumerated frontier — grid_14x14 carries
/// `C(26, 13) = 10 400 600` implicit paths on 364 edges.
///
/// For any fixed `(rows, cols, seed)` the latencies are bit-identical
/// to `grid_network(rows, cols, seed)` (both builders draw from the
/// same RNG stream in the same order), so enumerated and implicit
/// backends can be compared differentially on small grids.
pub fn grid_edge_network(rows: usize, cols: usize, seed: u64) -> EdgeInstance {
    assert!(rows >= 1 && cols >= 1, "grid needs positive dimensions");
    assert!(rows + cols > 2, "grid must contain at least one edge");
    let mut rng = StdRng::seed_from_u64(seed);
    let (g, nodes, latencies) = grid_graph(rows, cols, &mut rng);
    let commodities = vec![Commodity::new(nodes[0][0], nodes[rows - 1][cols - 1], 1.0)];
    EdgeInstance::new(g, latencies, commodities).expect("grid networks are valid by construction")
}

/// A multi-commodity grid: the DAG of [`grid_network`] shared by two
/// commodities with demand ½ each — `(0,0) → (rows−1, cols−1)` and
/// `(0,0) → (rows−1, 0)`. The second commodity competes with the first
/// for the first-column edges, so the instances genuinely interact.
pub fn multi_commodity_grid(rows: usize, cols: usize, seed: u64) -> Instance {
    assert!(rows >= 2 && cols >= 2, "need at least a 2×2 grid");
    let mut rng = StdRng::seed_from_u64(seed);
    let (g, nodes, latencies) = grid_graph(rows, cols, &mut rng);
    let commodities = vec![
        Commodity::new(nodes[0][0], nodes[rows - 1][cols - 1], 0.5),
        Commodity::new(nodes[0][0], nodes[rows - 1][0], 0.5),
    ];
    Instance::new(g, latencies, commodities)
        .expect("multi-commodity grids are valid by construction")
}

/// A `k`-commodity grid: the DAG of [`grid_network`] shared by `k`
/// commodities with demand `1/k` each, all sourced at `(0, 0)` with
/// sinks staggered along the bottom row — commodity `i` terminates at
/// `(rows−1, cols−1−i)`. Every commodity competes with all the others
/// for the upper-left edges, so the instances genuinely interact, and
/// the per-commodity path counts span two orders of magnitude — the
/// shape the matrix-free phase rates are benchmarked on.
///
/// # Panics
///
/// Panics unless `1 ≤ k < cols` and the grid is at least `2 × 2`.
pub fn many_commodity_grid(rows: usize, cols: usize, k: usize, seed: u64) -> Instance {
    assert!(rows >= 2 && cols >= 2, "need at least a 2×2 grid");
    assert!(k >= 1 && k < cols, "need 1 ≤ k < cols commodities");
    let mut rng = StdRng::seed_from_u64(seed);
    let (g, nodes, latencies) = grid_graph(rows, cols, &mut rng);
    let demand = 1.0 / k as f64;
    let commodities = (0..k)
        .map(|i| Commodity::new(nodes[0][0], nodes[rows - 1][cols - 1 - i], demand))
        .collect();
    Instance::new(g, latencies, commodities)
        .expect("many-commodity grids are valid by construction")
}

/// A random two-terminal series-parallel network of recursion depth
/// `depth`, single commodity with unit demand.
///
/// Series-parallel networks are the classic topology class of the
/// Wardrop literature (e.g. the Braess paradox cannot occur in them).
/// Each recursive step replaces an edge slot by a series or parallel
/// composition of two sub-networks with probability ½ each; leaves are
/// edges with random affine latencies. Path counts stay manageable for
/// `depth ≤ 5`. Deterministic for a fixed `seed`.
///
/// # Panics
///
/// Panics if `depth > 8` (path counts explode beyond enumeration).
pub fn series_parallel(depth: usize, seed: u64) -> Instance {
    assert!(depth <= 8, "series-parallel depth capped at 8");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new();
    let s = g.add_node();
    let t = g.add_node();
    let mut latencies = Vec::new();
    build_sp(&mut g, &mut latencies, &mut rng, s, t, depth);
    Instance::new(g, latencies, vec![Commodity::new(s, t, 1.0)])
        .expect("series-parallel networks are valid by construction")
}

fn build_sp(
    g: &mut Graph,
    latencies: &mut Vec<Latency>,
    rng: &mut StdRng,
    from: crate::graph::NodeId,
    to: crate::graph::NodeId,
    depth: usize,
) {
    if depth == 0 {
        g.add_edge(from, to);
        latencies.push(Latency::Affine {
            a: rng.random_range(0.0..=1.0),
            b: rng.random_range(0.1..=1.0),
        });
        return;
    }
    if rng.random_bool(0.5) {
        // Series: from -> mid -> to.
        let mid = g.add_node();
        build_sp(g, latencies, rng, from, mid, depth - 1);
        build_sp(g, latencies, rng, mid, to, depth - 1);
    } else {
        // Parallel: two sub-networks side by side.
        build_sp(g, latencies, rng, from, to, depth - 1);
        build_sp(g, latencies, rng, from, to, depth - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pigou_shape() {
        let inst = pigou();
        assert_eq!(inst.num_paths(), 2);
        assert_eq!(inst.num_edges(), 2);
        assert_eq!(inst.max_path_len(), 1);
        assert!((inst.latency_upper_bound() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn braess_shape() {
        let inst = braess();
        assert_eq!(inst.num_paths(), 3);
        assert_eq!(inst.num_edges(), 5);
        assert_eq!(inst.max_path_len(), 3);
        // ℓmax is the zig-zag at capacity: 1 + 0 + 1 = 2.
        assert!((inst.latency_upper_bound() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn oscillator_shape() {
        let inst = two_link_oscillator(4.0);
        assert_eq!(inst.num_paths(), 2);
        assert_eq!(inst.slope_bound(), 4.0);
        // ℓmax = β/2 at capacity.
        assert!((inst.latency_upper_bound() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_parallel_links_count() {
        for m in [1, 2, 8, 32] {
            let inst = uniform_parallel_links(m);
            assert_eq!(inst.num_paths(), m);
            assert_eq!(inst.max_commodity_path_count(), m);
        }
    }

    #[test]
    fn two_class_links_shape() {
        let inst = two_class_links(8, 0.75);
        assert_eq!(inst.num_paths(), 8);
        // ℓmax = gap + 1 at capacity on the expensive class.
        assert!((inst.latency_upper_bound() - 1.75).abs() < 1e-12);
        assert_eq!(inst.slope_bound(), 1.0);
    }

    #[test]
    #[should_panic(expected = "even number")]
    fn two_class_links_rejects_odd_m() {
        let _ = two_class_links(3, 0.5);
    }

    #[test]
    fn standard_random_links_matches_parameters() {
        let a = standard_random_links(5, 42);
        let b = random_parallel_links(5, 1.0, 0.2, 2.0, 42);
        assert_eq!(a.latencies(), b.latencies());
    }

    #[test]
    fn funnel_links_shape() {
        let inst = funnel_links(8, 0.75);
        assert_eq!(inst.num_paths(), 8);
        assert_eq!(inst.latencies()[0], Latency::Affine { a: 0.0, b: 1.0 });
        assert_eq!(inst.latencies()[7], Latency::Affine { a: 0.75, b: 1.0 });
        assert!((inst.latency_upper_bound() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn random_parallel_links_deterministic() {
        let a = random_parallel_links(5, 1.0, 0.1, 2.0, 42);
        let b = random_parallel_links(5, 1.0, 0.1, 2.0, 42);
        for (la, lb) in a.latencies().iter().zip(b.latencies()) {
            assert_eq!(la, lb);
        }
        let c = random_parallel_links(5, 1.0, 0.1, 2.0, 43);
        assert!(a.latencies().iter().zip(c.latencies()).any(|(x, y)| x != y));
    }

    #[test]
    fn layered_network_path_count() {
        let inst = layered_network(2, 3, 7);
        // width^layers = 9 paths.
        assert_eq!(inst.num_paths(), 9);
        assert_eq!(inst.max_path_len(), 3);
    }

    #[test]
    fn grid_network_path_count() {
        let inst = grid_network(3, 3, 7);
        // C(4, 2) = 6 monotone lattice paths.
        assert_eq!(inst.num_paths(), 6);
        assert_eq!(inst.max_path_len(), 4);
    }

    #[test]
    fn grid_edge_network_matches_enumerated_grid() {
        let inst = grid_network(3, 4, 23);
        let edge = grid_edge_network(3, 4, 23);
        assert_eq!(edge.graph(), inst.graph());
        assert_eq!(edge.latencies(), inst.latencies());
        assert_eq!(edge.commodities()[0].source, inst.commodities()[0].source);
        assert_eq!(edge.commodities()[0].sink, inst.commodities()[0].sink);
        assert_eq!(edge.implicit_path_count(0), inst.num_paths() as f64);
    }

    #[test]
    fn multi_commodity_grid_is_valid() {
        let inst = multi_commodity_grid(3, 3, 7);
        assert_eq!(inst.num_commodities(), 2);
        assert!(inst.commodity_path_count(0) >= 1);
        assert!(inst.commodity_path_count(1) >= 1);
    }

    #[test]
    fn many_commodity_grid_is_valid() {
        let inst = many_commodity_grid(4, 5, 3, 7);
        assert_eq!(inst.num_commodities(), 3);
        // Sinks are staggered: path counts strictly decrease.
        let counts: Vec<usize> = (0..3).map(|i| inst.commodity_path_count(i)).collect();
        assert!(counts[0] > counts[1] && counts[1] > counts[2], "{counts:?}");
        for c in inst.commodities() {
            assert!((c.demand - 1.0 / 3.0).abs() < 1e-12);
        }
        // Deterministic per seed.
        let again = many_commodity_grid(4, 5, 3, 7);
        assert_eq!(inst.latencies(), again.latencies());
    }

    #[test]
    #[should_panic(expected = "commodities")]
    fn many_commodity_grid_rejects_too_many_commodities() {
        let _ = many_commodity_grid(3, 3, 3, 1);
    }

    #[test]
    fn series_parallel_is_deterministic_and_valid() {
        let a = series_parallel(4, 11);
        let b = series_parallel(4, 11);
        assert_eq!(a.num_paths(), b.num_paths());
        assert_eq!(a.latencies(), b.latencies());
        assert!(a.num_paths() >= 1);
        // A different seed generically changes the topology or weights.
        let c = series_parallel(4, 12);
        let differs = a.num_paths() != c.num_paths() || a.latencies() != c.latencies();
        assert!(differs);
    }

    #[test]
    fn series_parallel_depth_zero_is_single_edge() {
        let inst = series_parallel(0, 3);
        assert_eq!(inst.num_paths(), 1);
        assert_eq!(inst.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "depth capped")]
    fn series_parallel_depth_capped() {
        let _ = series_parallel(9, 0);
    }

    #[test]
    fn builders_produce_validated_instances() {
        // Instance::new validates; reaching here means all checks passed.
        let _ = pigou();
        let _ = braess();
        let _ = two_link_oscillator(1.0);
        let _ = uniform_parallel_links(4);
        let _ = random_parallel_links(4, 1.0, 0.5, 1.5, 1);
        let _ = layered_network(2, 2, 1);
        let _ = grid_network(2, 3, 1);
        let _ = multi_commodity_grid(2, 2, 1);
    }
}
