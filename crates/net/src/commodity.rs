//! Commodities: source–sink pairs with flow demands.

use serde::{Deserialize, Serialize};

use crate::error::NetError;
use crate::graph::{Graph, NodeId};

/// A commodity `i` with source `s_i`, sink `t_i` and demand `r_i > 0`.
///
/// The paper normalises total demand to `Σ_i r_i = 1`; the
/// [`Instance`](crate::instance::Instance) validator enforces this (with
/// a small tolerance) because the dynamics and the potential analysis
/// assume edge flows stay within `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Commodity {
    /// Source node `s_i`.
    pub source: NodeId,
    /// Sink node `t_i`.
    pub sink: NodeId,
    /// Demand `r_i > 0` routed from source to sink.
    pub demand: f64,
}

impl Commodity {
    /// Creates a commodity.
    pub fn new(source: NodeId, sink: NodeId, demand: f64) -> Self {
        Commodity {
            source,
            sink,
            demand,
        }
    }

    /// Validates the commodity against a graph.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidCommodity`] if the demand is not a
    /// positive finite number, the endpoints coincide, or either endpoint
    /// is not a node of `graph`.
    pub fn validate(&self, graph: &Graph) -> Result<(), NetError> {
        if !self.demand.is_finite() || self.demand <= 0.0 {
            return Err(NetError::InvalidCommodity(format!(
                "demand must be positive and finite, got {}",
                self.demand
            )));
        }
        if self.source == self.sink {
            return Err(NetError::InvalidCommodity(
                "source and sink must differ".to_string(),
            ));
        }
        if !graph.contains_node(self.source) || !graph.contains_node(self.sink) {
            return Err(NetError::InvalidCommodity(
                "endpoints must be nodes of the graph".to_string(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_graph() -> (Graph, NodeId, NodeId) {
        let mut g = Graph::new();
        let s = g.add_node();
        let t = g.add_node();
        (g, s, t)
    }

    #[test]
    fn valid_commodity_passes() {
        let (g, s, t) = two_node_graph();
        assert!(Commodity::new(s, t, 1.0).validate(&g).is_ok());
    }

    #[test]
    fn zero_demand_rejected() {
        let (g, s, t) = two_node_graph();
        assert!(Commodity::new(s, t, 0.0).validate(&g).is_err());
    }

    #[test]
    fn negative_demand_rejected() {
        let (g, s, t) = two_node_graph();
        assert!(Commodity::new(s, t, -0.5).validate(&g).is_err());
    }

    #[test]
    fn nan_demand_rejected() {
        let (g, s, t) = two_node_graph();
        assert!(Commodity::new(s, t, f64::NAN).validate(&g).is_err());
    }

    #[test]
    fn self_loop_commodity_rejected() {
        let (g, s, _) = two_node_graph();
        assert!(Commodity::new(s, s, 1.0).validate(&g).is_err());
    }

    #[test]
    fn out_of_graph_endpoint_rejected() {
        let (g, s, _) = two_node_graph();
        let ghost = NodeId::from_index(10);
        assert!(Commodity::new(s, ghost, 1.0).validate(&g).is_err());
    }
}
