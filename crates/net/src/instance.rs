//! Validated Wardrop instances.
//!
//! An [`Instance`] bundles a graph, per-edge latency functions and
//! commodities, together with the explicit path arena used by the path
//! formulation of the model. Construction validates every standing
//! assumption of the paper and precomputes the constants that appear in
//! its theorems:
//!
//! * `D` — the maximum path length ([`Instance::max_path_len`]),
//! * `β` — the maximum latency slope ([`Instance::slope_bound`]),
//! * `ℓmax` — an upper bound on any path latency
//!   ([`Instance::latency_upper_bound`]).

use serde::{Deserialize, Serialize};

use crate::commodity::Commodity;
use crate::error::NetError;
use crate::graph::{EdgeId, Graph};
use crate::latency::Latency;
use crate::path::{enumerate_simple_paths, Path, PathId};

/// Default cap on simple paths per commodity during enumeration.
pub const DEFAULT_PATH_CAP: usize = 100_000;

/// Tolerance for the `Σ r_i = 1` demand normalisation check.
pub const DEMAND_TOLERANCE: f64 = 1e-9;

/// A validated instance of the Wardrop routing game.
///
/// # Examples
///
/// ```
/// use wardrop_net::builders;
///
/// let inst = builders::pigou();
/// assert_eq!(inst.num_commodities(), 1);
/// assert_eq!(inst.num_paths(), 2);
/// assert_eq!(inst.max_path_len(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instance {
    graph: Graph,
    latencies: Vec<Latency>,
    commodities: Vec<Commodity>,
    /// All paths of all commodities, commodity-contiguous.
    paths: Vec<Path>,
    /// Half-open path-index ranges per commodity: commodity `i` owns
    /// `paths[path_ranges[i] .. path_ranges[i + 1]]`.
    path_ranges: Vec<usize>,
    /// CSR path→edge incidence: path `p` uses
    /// `path_edge_ids[path_edge_offsets[p] .. path_edge_offsets[p+1]]`,
    /// in path order. Flat and cache-friendly — the hot loops of
    /// [`crate::eval::EvalWorkspace`] traverse this instead of the
    /// pointer-chasing `paths[p].edges()`.
    path_edge_offsets: Vec<u32>,
    /// Flat edge ids of the CSR path→edge incidence.
    path_edge_ids: Vec<EdgeId>,
    /// Transposed CSR edge→path incidence: edge `e` is used by
    /// `edge_path_ids[edge_path_offsets[e] .. edge_path_offsets[e+1]]`.
    edge_path_offsets: Vec<u32>,
    /// Flat path ids of the CSR edge→path incidence.
    edge_path_ids: Vec<PathId>,
    /// Owning commodity per path (O(1) `commodity_of_path`).
    path_commodity: Vec<u32>,
    /// Per-path at-capacity latency `Σ_{e ∈ P} ℓ_e(1)` — the cached
    /// summands of `ℓmax`, kept so [`Instance::set_latency`] can refresh
    /// the bound in `O(deg(e) + |P|)` instead of re-walking the CSR.
    path_cap_latencies: Vec<f64>,
    max_path_len: usize,
    slope_bound: f64,
    latency_upper_bound: f64,
}

impl Instance {
    /// Builds and validates an instance, enumerating all simple paths
    /// per commodity with the [default cap](DEFAULT_PATH_CAP).
    ///
    /// # Errors
    ///
    /// See [`Instance::with_path_cap`].
    pub fn new(
        graph: Graph,
        latencies: Vec<Latency>,
        commodities: Vec<Commodity>,
    ) -> Result<Self, NetError> {
        Self::with_path_cap(graph, latencies, commodities, DEFAULT_PATH_CAP)
    }

    /// Builds and validates an instance with an explicit path cap.
    ///
    /// # Errors
    ///
    /// * [`NetError::Inconsistent`] if `latencies.len() != edge count`,
    ///   there are no commodities, or total demand is not 1 (within
    ///   [`DEMAND_TOLERANCE`]).
    /// * [`NetError::InvalidLatency`] if any latency violates the
    ///   standing assumptions.
    /// * [`NetError::InvalidCommodity`] for malformed commodities.
    /// * [`NetError::NoPath`] if a commodity has no source–sink path.
    /// * [`NetError::TooManyPaths`] if enumeration exceeds `path_cap`.
    pub fn with_path_cap(
        graph: Graph,
        latencies: Vec<Latency>,
        commodities: Vec<Commodity>,
        path_cap: usize,
    ) -> Result<Self, NetError> {
        Self::validate_base(&graph, &latencies, &commodities)?;

        let mut paths = Vec::new();
        let mut path_ranges = vec![0usize];
        for (i, c) in commodities.iter().enumerate() {
            let mut ps = enumerate_simple_paths(&graph, c.source, c.sink, path_cap).map_err(
                |e| match e {
                    NetError::TooManyPaths { cap, .. } => {
                        NetError::TooManyPaths { commodity: i, cap }
                    }
                    other => other,
                },
            )?;
            if ps.is_empty() {
                return Err(NetError::NoPath { commodity: i });
            }
            paths.append(&mut ps);
            path_ranges.push(paths.len());
        }
        Self::assemble(graph, latencies, commodities, paths, path_ranges)
    }

    /// Builds a validated instance over an **explicitly given** path set
    /// instead of enumerating all simple paths.
    ///
    /// `commodity_paths[i]` becomes the path arena of commodity `i`, in
    /// the given order. This is the column-generation entry point of the
    /// implicit-path backend (`wardrop_core::edge_engine`): on networks
    /// whose full path set is astronomically large, the engine keeps a
    /// small *active* set discovered by shortest-path / random-path
    /// oracles and rebuilds a restricted instance around it, so every
    /// downstream component (evaluation, phase rates, integrator, board)
    /// runs unchanged. Handing over the full enumerated path set in
    /// enumeration order reproduces [`Instance::new`] exactly.
    ///
    /// Duplicate paths within a commodity are not rejected — callers
    /// performing column generation are expected to deduplicate (a
    /// duplicated column would double-count its edge flow contribution).
    ///
    /// # Errors
    ///
    /// The base validations of [`Instance::with_path_cap`] apply, plus:
    ///
    /// * [`NetError::Inconsistent`] if `commodity_paths.len()` differs
    ///   from the commodity count, a path references an edge outside the
    ///   graph, or a path's endpoints do not match its commodity;
    /// * [`NetError::NoPath`] if a commodity's path list is empty.
    pub fn with_explicit_paths(
        graph: Graph,
        latencies: Vec<Latency>,
        commodities: Vec<Commodity>,
        commodity_paths: &[Vec<Path>],
    ) -> Result<Self, NetError> {
        Self::validate_base(&graph, &latencies, &commodities)?;
        if commodity_paths.len() != commodities.len() {
            return Err(NetError::Inconsistent(format!(
                "{} path lists for {} commodities",
                commodity_paths.len(),
                commodities.len()
            )));
        }
        let mut paths = Vec::with_capacity(commodity_paths.iter().map(Vec::len).sum());
        let mut path_ranges = vec![0usize];
        for (i, (c, ps)) in commodities.iter().zip(commodity_paths).enumerate() {
            if ps.is_empty() {
                return Err(NetError::NoPath { commodity: i });
            }
            for p in ps {
                if !p.edges().iter().all(|e| graph.contains_edge(*e)) {
                    return Err(NetError::Inconsistent(format!(
                        "commodity {i} has a path using an edge outside the graph"
                    )));
                }
                if p.source(&graph) != c.source || p.sink(&graph) != c.sink {
                    return Err(NetError::Inconsistent(format!(
                        "commodity {i} has a path whose endpoints do not match its source/sink"
                    )));
                }
            }
            paths.extend(ps.iter().cloned());
            path_ranges.push(paths.len());
        }
        Self::assemble(graph, latencies, commodities, paths, path_ranges)
    }

    /// Shared construction-time validation of the path-free data.
    fn validate_base(
        graph: &Graph,
        latencies: &[Latency],
        commodities: &[Commodity],
    ) -> Result<(), NetError> {
        if latencies.len() != graph.edge_count() {
            return Err(NetError::Inconsistent(format!(
                "{} latencies for {} edges",
                latencies.len(),
                graph.edge_count()
            )));
        }
        for l in latencies {
            l.validate()?;
        }
        if commodities.is_empty() {
            return Err(NetError::Inconsistent(
                "instance needs at least one commodity".into(),
            ));
        }
        for c in commodities {
            c.validate(graph)?;
        }
        let total_demand: f64 = commodities.iter().map(|c| c.demand).sum();
        if (total_demand - 1.0).abs() > DEMAND_TOLERANCE {
            return Err(NetError::Inconsistent(format!(
                "total demand must be 1 (paper normalisation), got {total_demand}"
            )));
        }
        Ok(())
    }

    /// Assembles the CSR incidences and cached constants over an
    /// already-validated path arena (commodity-contiguous `paths` with
    /// half-open `path_ranges`). Shared by the enumerating and the
    /// explicit-path constructors so both produce bit-identical
    /// instances for the same path set.
    fn assemble(
        graph: Graph,
        latencies: Vec<Latency>,
        commodities: Vec<Commodity>,
        paths: Vec<Path>,
        path_ranges: Vec<usize>,
    ) -> Result<Self, NetError> {
        // Flat CSR incidences, built once so per-phase evaluation never
        // walks the per-path edge vectors.
        let mut path_edge_offsets = Vec::with_capacity(paths.len() + 1);
        path_edge_offsets.push(0u32);
        let mut path_edge_ids = Vec::with_capacity(paths.iter().map(Path::len).sum());
        for p in &paths {
            path_edge_ids.extend_from_slice(p.edges());
            let off = u32::try_from(path_edge_ids.len()).map_err(|_| {
                NetError::Inconsistent("path-edge incidence exceeds u32 range".into())
            })?;
            path_edge_offsets.push(off);
        }
        let num_edges = graph.edge_count();
        let mut edge_degree = vec![0u32; num_edges];
        for e in &path_edge_ids {
            edge_degree[e.index()] += 1;
        }
        let mut edge_path_offsets = Vec::with_capacity(num_edges + 1);
        edge_path_offsets.push(0u32);
        let mut acc = 0u32;
        for d in &edge_degree {
            acc += d;
            edge_path_offsets.push(acc);
        }
        let mut edge_path_ids = vec![PathId(0); path_edge_ids.len()];
        let mut cursor: Vec<u32> = edge_path_offsets[..num_edges].to_vec();
        for (idx, p) in paths.iter().enumerate() {
            for e in p.edges() {
                let slot = cursor[e.index()];
                edge_path_ids[slot as usize] = PathId(idx as u32);
                cursor[e.index()] = slot + 1;
            }
        }
        let mut path_commodity = vec![0u32; paths.len()];
        for i in 0..commodities.len() {
            for slot in &mut path_commodity[path_ranges[i]..path_ranges[i + 1]] {
                *slot = i as u32;
            }
        }

        let max_path_len = paths.iter().map(Path::len).max().unwrap_or(0);
        let slope_bound = latencies
            .iter()
            .map(Latency::slope_bound)
            .fold(0.0, f64::max);
        let path_cap_latencies: Vec<f64> = paths
            .iter()
            .map(|p| {
                p.edges()
                    .iter()
                    .map(|e| latencies[e.index()].at_capacity())
                    .sum()
            })
            .collect();
        let latency_upper_bound = path_cap_latencies.iter().copied().fold(0.0_f64, f64::max);

        Ok(Instance {
            graph,
            latencies,
            commodities,
            paths,
            path_ranges,
            path_edge_offsets,
            path_edge_ids,
            edge_path_offsets,
            edge_path_ids,
            path_commodity,
            path_cap_latencies,
            max_path_len,
            slope_bound,
            latency_upper_bound,
        })
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Latency function of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not an edge of the instance's graph.
    #[inline]
    pub fn latency(&self, e: EdgeId) -> &Latency {
        &self.latencies[e.index()]
    }

    /// All latency functions, indexed by edge.
    #[inline]
    pub fn latencies(&self) -> &[Latency] {
        &self.latencies
    }

    /// The commodities.
    #[inline]
    pub fn commodities(&self) -> &[Commodity] {
        &self.commodities
    }

    /// Number of commodities `k`.
    #[inline]
    pub fn num_commodities(&self) -> usize {
        self.commodities.len()
    }

    /// Total number of paths `|P|` across all commodities.
    #[inline]
    pub fn num_paths(&self) -> usize {
        self.paths.len()
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.graph.edge_count()
    }

    /// The path with id `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn path(&self, p: PathId) -> &Path {
        &self.paths[p.index()]
    }

    /// All paths, commodity-contiguous.
    #[inline]
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// Iterates over all path ids.
    pub fn path_ids(&self) -> impl ExactSizeIterator<Item = PathId> + '_ {
        (0..self.paths.len()).map(PathId::from_index)
    }

    /// Path-index range `[start, end)` of commodity `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ num_commodities()`.
    #[inline]
    pub fn commodity_paths(&self, i: usize) -> std::ops::Range<usize> {
        self.path_ranges[i]..self.path_ranges[i + 1]
    }

    /// Number of paths `|P_i|` of commodity `i`.
    #[inline]
    pub fn commodity_path_count(&self, i: usize) -> usize {
        self.path_ranges[i + 1] - self.path_ranges[i]
    }

    /// The largest `|P_i|` over commodities — the `m` of Theorem 6.
    pub fn max_commodity_path_count(&self) -> usize {
        (0..self.num_commodities())
            .map(|i| self.commodity_path_count(i))
            .max()
            .unwrap_or(0)
    }

    /// The commodity owning path `p` (O(1) table lookup).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn commodity_of_path(&self, p: PathId) -> usize {
        self.path_commodity[p.index()] as usize
    }

    /// The edges of path `p` from the flat CSR incidence, in path
    /// order.
    ///
    /// Equivalent to `self.path(p).edges()` but reads one contiguous
    /// arena — use this in hot loops.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn path_edges(&self, p: PathId) -> &[EdgeId] {
        let idx = p.index();
        let lo = self.path_edge_offsets[idx] as usize;
        let hi = self.path_edge_offsets[idx + 1] as usize;
        &self.path_edge_ids[lo..hi]
    }

    /// The paths using edge `e`, from the transposed CSR incidence
    /// (ascending path index).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn edge_paths(&self, e: EdgeId) -> &[PathId] {
        let idx = e.index();
        let lo = self.edge_path_offsets[idx] as usize;
        let hi = self.edge_path_offsets[idx + 1] as usize;
        &self.edge_path_ids[lo..hi]
    }

    /// Total number of (path, edge) incidences — the `nnz` of the CSR
    /// maps and the per-evaluation work of the fused pipeline.
    #[inline]
    pub fn incidence_count(&self) -> usize {
        self.path_edge_ids.len()
    }

    /// Maximum path length `D = max_P |P|`.
    #[inline]
    pub fn max_path_len(&self) -> usize {
        self.max_path_len
    }

    /// Maximum latency slope `β = max_e sup ℓ'_e`.
    #[inline]
    pub fn slope_bound(&self) -> f64 {
        self.slope_bound
    }

    /// Upper bound `ℓmax = max_P Σ_{e ∈ P} ℓ_e(1)` on any path latency.
    #[inline]
    pub fn latency_upper_bound(&self) -> f64 {
        self.latency_upper_bound
    }

    /// Re-validates every invariant of an instance that arrived
    /// through deserialization rather than a constructor — the serde
    /// derive necessarily fills private fields verbatim, so a decoded
    /// checkpoint could otherwise smuggle in inconsistent CSR arenas
    /// or cached constants.
    ///
    /// The base data is re-validated exactly as at construction, the
    /// derived integer structure (path ranges, CSR incidences, the
    /// path→commodity map, `D`) is rebuilt from the path arena and
    /// compared **exactly**, and the cached float bounds (`β`, `ℓmax`,
    /// per-path at-capacity sums) are compared with a relative
    /// tolerance: [`Instance::set_latency`] / [`Instance::scale_latency`]
    /// refresh them incrementally, so a mutated instance's cached
    /// values may legitimately differ from a from-scratch recompute in
    /// the last bits. The serialized values stay authoritative — this
    /// check only rejects corruption, it never rewrites state (which
    /// would break bit-identical restores).
    ///
    /// # Errors
    ///
    /// [`NetError::Inconsistent`] (or the base-validation errors of
    /// [`Instance::with_path_cap`]) naming the first violated
    /// invariant.
    pub fn check_consistent(&self) -> Result<(), NetError> {
        Self::validate_base(&self.graph, &self.latencies, &self.commodities)?;
        if self.path_ranges.len() != self.commodities.len() + 1
            || self.path_ranges.first() != Some(&0)
            || self.path_ranges.last() != Some(&self.paths.len())
        {
            return Err(NetError::Inconsistent(
                "path ranges do not cover the path arena".into(),
            ));
        }
        for (i, c) in self.commodities.iter().enumerate() {
            let (lo, hi) = (self.path_ranges[i], self.path_ranges[i + 1]);
            if lo >= hi {
                return Err(NetError::NoPath { commodity: i });
            }
            for p in &self.paths[lo..hi] {
                if !p.edges().iter().all(|e| self.graph.contains_edge(*e)) {
                    return Err(NetError::Inconsistent(format!(
                        "commodity {i} has a path using an edge outside the graph"
                    )));
                }
                if p.source(&self.graph) != c.source || p.sink(&self.graph) != c.sink {
                    return Err(NetError::Inconsistent(format!(
                        "commodity {i} has a path whose endpoints do not match its source/sink"
                    )));
                }
            }
        }
        let rebuilt = Self::assemble(
            self.graph.clone(),
            self.latencies.clone(),
            self.commodities.clone(),
            self.paths.clone(),
            self.path_ranges.clone(),
        )?;
        if rebuilt.path_edge_offsets != self.path_edge_offsets
            || rebuilt.path_edge_ids != self.path_edge_ids
            || rebuilt.edge_path_offsets != self.edge_path_offsets
            || rebuilt.edge_path_ids != self.edge_path_ids
            || rebuilt.path_commodity != self.path_commodity
            || rebuilt.max_path_len != self.max_path_len
        {
            return Err(NetError::Inconsistent(
                "cached incidence structure disagrees with the path arena".into(),
            ));
        }
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
        let floats_ok = close(rebuilt.slope_bound, self.slope_bound)
            && close(rebuilt.latency_upper_bound, self.latency_upper_bound)
            && rebuilt.path_cap_latencies.len() == self.path_cap_latencies.len()
            && rebuilt
                .path_cap_latencies
                .iter()
                .zip(&self.path_cap_latencies)
                .all(|(a, b)| close(*a, *b));
        if !floats_ok {
            return Err(NetError::Inconsistent(
                "cached latency bounds disagree with the latency functions".into(),
            ));
        }
        Ok(())
    }

    /// Replaces the latency function of edge `e`, incrementally
    /// refreshing the cached invariants.
    ///
    /// The graph, paths and CSR incidences are untouched (latency
    /// changes never alter the path sets), so the update costs
    /// `O(|E| + deg(e) + |P|)`: the slope bound is re-folded over the
    /// edges, and `ℓmax` is refreshed through the cached per-path
    /// at-capacity sums, touching only the paths using `e`. No heap
    /// allocation is performed, which keeps scenario reconfiguration
    /// compatible with the engine's zero-allocation steady state.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidLatency`] if `latency` violates the
    /// standing assumptions, or [`NetError::Inconsistent`] if `e` is not
    /// an edge of the graph. The instance is unchanged on error.
    pub fn set_latency(&mut self, e: EdgeId, latency: Latency) -> Result<(), NetError> {
        if e.index() >= self.graph.edge_count() {
            return Err(NetError::Inconsistent(format!(
                "edge {} out of range for {} edges",
                e.index(),
                self.graph.edge_count()
            )));
        }
        latency.validate()?;
        let old_cap = self.latencies[e.index()].at_capacity();
        let delta_cap = latency.at_capacity() - old_cap;
        self.latencies[e.index()] = latency;

        // β = max_e sup ℓ'_e: one fold over the edges (the replaced edge
        // may have carried the old maximum).
        self.slope_bound = self
            .latencies
            .iter()
            .map(Latency::slope_bound)
            .fold(0.0, f64::max);

        // ℓmax: shift the cached at-capacity sum of every path using e,
        // then re-fold the per-path maxima.
        if delta_cap != 0.0 {
            let lo = self.edge_path_offsets[e.index()] as usize;
            let hi = self.edge_path_offsets[e.index() + 1] as usize;
            for p in &self.edge_path_ids[lo..hi] {
                self.path_cap_latencies[p.index()] += delta_cap;
            }
        }
        self.latency_upper_bound = self
            .path_cap_latencies
            .iter()
            .copied()
            .fold(0.0_f64, f64::max);
        Ok(())
    }

    /// Scales the latency function of edge `e` by `factor` (see
    /// [`Latency::scaled`]) — the scenario-event form of link
    /// degradation (`factor > 1`) and repair (`factor < 1`).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidLatency`] if `factor` is NaN,
    /// negative or non-finite (a scaled latency must stay non-negative
    /// and non-decreasing); otherwise see [`Instance::set_latency`].
    /// The instance is unchanged on error.
    pub fn scale_latency(&mut self, e: EdgeId, factor: f64) -> Result<(), NetError> {
        if e.index() >= self.graph.edge_count() {
            return Err(NetError::Inconsistent(format!(
                "edge {} out of range for {} edges",
                e.index(),
                self.graph.edge_count()
            )));
        }
        if !factor.is_finite() || factor < 0.0 {
            return Err(NetError::InvalidLatency(format!(
                "scale factor must be finite and non-negative, got {factor}"
            )));
        }
        let scaled = self.latencies[e.index()].scaled(factor);
        self.set_latency(e, scaled)
    }

    /// Sets the demand of commodity `i` to `demand`, rescaling the
    /// remaining commodities proportionally so the paper's
    /// normalisation `Σ_j r_j = 1` keeps holding.
    ///
    /// This is the scenario-event form of demand surges: a flash crowd
    /// on commodity `i` raises its *share* of the unit total while the
    /// background traffic shrinks correspondingly. With a single
    /// commodity the only admissible demand is `1.0` (the normalisation
    /// leaves nothing to trade against).
    ///
    /// Path sets, CSR incidences and latency invariants are untouched;
    /// existing flows become infeasible and must be rescaled by the
    /// caller (the engine's `apply_event` does this per commodity).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidCommodity`] if `i` is out of range,
    /// `demand` is not in `(0, 1)` (or `≠ 1` for single-commodity
    /// instances). The instance is unchanged on error.
    pub fn set_demand(&mut self, i: usize, demand: f64) -> Result<(), NetError> {
        let k = self.commodities.len();
        if i >= k {
            return Err(NetError::InvalidCommodity(format!(
                "commodity {i} out of range for {k} commodities"
            )));
        }
        if !demand.is_finite() || demand <= 0.0 {
            return Err(NetError::InvalidCommodity(format!(
                "demand must be positive and finite, got {demand}"
            )));
        }
        if k == 1 {
            if (demand - 1.0).abs() > DEMAND_TOLERANCE {
                return Err(NetError::InvalidCommodity(
                    "single-commodity demand is pinned to 1 by the paper's normalisation".into(),
                ));
            }
            self.commodities[0].demand = 1.0;
            return Ok(());
        }
        if demand >= 1.0 {
            return Err(NetError::InvalidCommodity(format!(
                "demand {demand} leaves no mass for the other {} commodities",
                k - 1
            )));
        }
        let old = self.commodities[i].demand;
        let others = 1.0 - old;
        debug_assert!(others > 0.0, "validated demands keep every r_j > 0");
        let scale = (1.0 - demand) / others;
        for (j, c) in self.commodities.iter_mut().enumerate() {
            if j == i {
                c.demand = demand;
            } else {
                c.demand *= scale;
            }
        }
        Ok(())
    }

    /// Grid estimate of the instance's elasticity bound
    /// `d = max_e sup_x x·ℓ'_e(x)/ℓ_e(x)`.
    ///
    /// The parameter the follow-up work \[10\] replaces the slope bound
    /// with; see [`Latency::elasticity_bound_estimate`]. `+∞` if any
    /// edge's latency vanishes where its derivative does not.
    pub fn elasticity_bound_estimate(&self, grid: usize) -> f64 {
        self.latencies
            .iter()
            .map(|l| l.elasticity_bound_estimate(grid))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;

    fn two_link(latencies: Vec<Latency>) -> Result<Instance, NetError> {
        let mut g = Graph::new();
        let s = g.add_node();
        let t = g.add_node();
        for _ in 0..latencies.len() {
            g.add_edge(s, t);
        }
        Instance::new(g, latencies, vec![Commodity::new(s, t, 1.0)])
    }

    #[test]
    fn builds_two_link_instance() {
        let inst = two_link(vec![Latency::identity(), Latency::Constant(1.0)]).unwrap();
        assert_eq!(inst.num_paths(), 2);
        assert_eq!(inst.num_commodities(), 1);
        assert_eq!(inst.max_path_len(), 1);
        assert_eq!(inst.slope_bound(), 1.0);
        assert_eq!(inst.latency_upper_bound(), 1.0);
    }

    #[test]
    fn latency_count_mismatch_rejected() {
        let mut g = Graph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t);
        let err = Instance::new(g, vec![], vec![Commodity::new(s, t, 1.0)]).unwrap_err();
        assert!(matches!(err, NetError::Inconsistent(_)));
    }

    #[test]
    fn demand_normalisation_enforced() {
        let mut g = Graph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t);
        let err = Instance::new(
            g,
            vec![Latency::identity()],
            vec![Commodity::new(s, t, 0.5)],
        )
        .unwrap_err();
        assert!(matches!(err, NetError::Inconsistent(_)));
    }

    #[test]
    fn missing_path_detected() {
        let mut g = Graph::new();
        let s = g.add_node();
        let t = g.add_node();
        let u = g.add_node();
        g.add_edge(s, t);
        let err = Instance::new(
            g,
            vec![Latency::identity()],
            vec![Commodity::new(s, t, 0.5), Commodity::new(s, u, 0.5)],
        )
        .unwrap_err();
        assert_eq!(err, NetError::NoPath { commodity: 1 });
    }

    #[test]
    fn path_cap_reports_commodity() {
        let mut g = Graph::new();
        let s = g.add_node();
        let t = g.add_node();
        for _ in 0..5 {
            g.add_edge(s, t);
        }
        let err = Instance::with_path_cap(
            g,
            vec![Latency::identity(); 5],
            vec![Commodity::new(s, t, 1.0)],
            3,
        )
        .unwrap_err();
        assert_eq!(
            err,
            NetError::TooManyPaths {
                commodity: 0,
                cap: 3
            }
        );
    }

    #[test]
    fn invalid_latency_rejected() {
        let err = two_link(vec![Latency::Constant(-1.0), Latency::identity()]).unwrap_err();
        assert!(matches!(err, NetError::InvalidLatency(_)));
    }

    #[test]
    fn no_commodities_rejected() {
        let mut g = Graph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t);
        let err = Instance::new(g, vec![Latency::identity()], vec![]).unwrap_err();
        assert!(matches!(err, NetError::Inconsistent(_)));
    }

    #[test]
    fn commodity_path_ranges_partition_paths() {
        // Two commodities on a shared 4-node graph.
        let mut g = Graph::new();
        let s1 = g.add_node();
        let t1 = g.add_node();
        let s2 = g.add_node();
        let t2 = g.add_node();
        g.add_edge(s1, t1);
        g.add_edge(s1, t1);
        g.add_edge(s2, t2);
        let inst = Instance::new(
            g,
            vec![Latency::identity(); 3],
            vec![Commodity::new(s1, t1, 0.5), Commodity::new(s2, t2, 0.5)],
        )
        .unwrap();
        assert_eq!(inst.commodity_paths(0), 0..2);
        assert_eq!(inst.commodity_paths(1), 2..3);
        assert_eq!(inst.commodity_path_count(0), 2);
        assert_eq!(inst.max_commodity_path_count(), 2);
        assert_eq!(inst.commodity_of_path(PathId::from_index(0)), 0);
        assert_eq!(inst.commodity_of_path(PathId::from_index(1)), 0);
        assert_eq!(inst.commodity_of_path(PathId::from_index(2)), 1);
    }

    #[test]
    fn constants_on_two_edge_path() {
        // s -> m -> t with affine latencies.
        let mut g = Graph::new();
        let s = g.add_node();
        let m = g.add_node();
        let t = g.add_node();
        g.add_edge(s, m);
        g.add_edge(m, t);
        let inst = Instance::new(
            g,
            vec![
                Latency::Affine { a: 1.0, b: 2.0 },
                Latency::Affine { a: 0.5, b: 4.0 },
            ],
            vec![Commodity::new(s, t, 1.0)],
        )
        .unwrap();
        assert_eq!(inst.max_path_len(), 2);
        assert_eq!(inst.slope_bound(), 4.0);
        // ℓmax = (1 + 2·1) + (0.5 + 4·1) = 7.5
        assert!((inst.latency_upper_bound() - 7.5).abs() < 1e-12);
        let _ = NodeId::from_index(0);
    }

    #[test]
    fn csr_incidence_matches_paths() {
        let inst = crate::builders::braess();
        let mut nnz = 0;
        for (idx, p) in inst.paths().iter().enumerate() {
            let pid = PathId::from_index(idx);
            assert_eq!(inst.path_edges(pid), p.edges());
            nnz += p.len();
        }
        assert_eq!(inst.incidence_count(), nnz);
        // Transposed map: e ∈ path_edges(p) ⇔ p ∈ edge_paths(e).
        for e in 0..inst.num_edges() {
            let eid = crate::graph::EdgeId::from_index(e);
            let users = inst.edge_paths(eid);
            for (idx, p) in inst.paths().iter().enumerate() {
                let pid = PathId::from_index(idx);
                assert_eq!(p.contains(eid), users.contains(&pid), "edge {e} path {idx}");
            }
            // Ascending path order within each edge row.
            assert!(users.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn csr_incidence_on_multi_commodity_grid() {
        let inst = crate::builders::multi_commodity_grid(3, 3, 5);
        let total: usize = inst.paths().iter().map(Path::len).sum();
        assert_eq!(inst.incidence_count(), total);
        for (idx, p) in inst.paths().iter().enumerate() {
            assert_eq!(inst.path_edges(PathId::from_index(idx)), p.edges());
        }
    }

    /// Reference reconstruction: an instance freshly built from the
    /// mutated graph/latencies/commodities.
    fn rebuild(inst: &Instance) -> Instance {
        Instance::new(
            inst.graph().clone(),
            inst.latencies().to_vec(),
            inst.commodities().to_vec(),
        )
        .unwrap()
    }

    #[test]
    fn set_latency_refreshes_bounds_incrementally() {
        let mut inst = crate::builders::braess();
        // Edge 1 (s→b, constant 1) becomes steep: slope and ℓmax move.
        inst.set_latency(EdgeId::from_index(1), Latency::Affine { a: 1.0, b: 9.0 })
            .unwrap();
        let fresh = rebuild(&inst);
        assert_eq!(inst.slope_bound(), fresh.slope_bound());
        assert_eq!(inst.latency_upper_bound(), fresh.latency_upper_bound());
        assert_eq!(inst.slope_bound(), 9.0);
        // Replacing the maximum-slope edge with a flat one shrinks β.
        inst.set_latency(EdgeId::from_index(1), Latency::Constant(1.0))
            .unwrap();
        let fresh = rebuild(&inst);
        assert_eq!(inst.slope_bound(), fresh.slope_bound());
        assert_eq!(inst.latency_upper_bound(), fresh.latency_upper_bound());
        assert_eq!(inst.slope_bound(), 1.0);
    }

    #[test]
    fn scale_latency_round_trips_bounds() {
        let mut inst = crate::builders::grid_network(3, 3, 7);
        let before_beta = inst.slope_bound();
        let before_lmax = inst.latency_upper_bound();
        let e = EdgeId::from_index(2);
        inst.scale_latency(e, 25.0).unwrap();
        assert!(inst.slope_bound() >= before_beta);
        let fresh = rebuild(&inst);
        assert!((inst.latency_upper_bound() - fresh.latency_upper_bound()).abs() < 1e-12);
        inst.scale_latency(e, 1.0 / 25.0).unwrap();
        assert!((inst.slope_bound() - before_beta).abs() < 1e-9 * before_beta.max(1.0));
        assert!((inst.latency_upper_bound() - before_lmax).abs() < 1e-9 * before_lmax.max(1.0));
    }

    #[test]
    fn scale_latency_rejects_nan_negative_and_infinite_factors() {
        let mut inst = crate::builders::pigou();
        let before = inst.latency(EdgeId::from_index(0)).clone();
        for bad in [f64::NAN, -0.5, f64::INFINITY, f64::NEG_INFINITY] {
            let err = inst.scale_latency(EdgeId::from_index(0), bad).unwrap_err();
            assert!(matches!(err, NetError::InvalidLatency(_)), "factor {bad}");
            // The instance is untouched on error — the poisoned factor
            // never reaches the latency table or the cached bounds.
            assert_eq!(inst.latency(EdgeId::from_index(0)), &before);
        }
        let err = inst.scale_latency(EdgeId::from_index(9), 2.0).unwrap_err();
        assert!(matches!(err, NetError::Inconsistent(_)));
    }

    #[test]
    fn set_demand_rejects_nan_and_nonfinite() {
        let mut inst = crate::builders::multi_commodity_grid(2, 2, 3);
        let before: Vec<f64> = inst.commodities().iter().map(|c| c.demand).collect();
        for bad in [f64::NAN, -0.2, 0.0, f64::INFINITY] {
            let err = inst.set_demand(0, bad).unwrap_err();
            assert!(matches!(err, NetError::InvalidCommodity(_)), "demand {bad}");
            let after: Vec<f64> = inst.commodities().iter().map(|c| c.demand).collect();
            assert_eq!(before, after);
        }
    }

    #[test]
    fn set_latency_rejects_invalid_inputs() {
        let mut inst = crate::builders::pigou();
        let err = inst
            .set_latency(EdgeId::from_index(0), Latency::Constant(-1.0))
            .unwrap_err();
        assert!(matches!(err, NetError::InvalidLatency(_)));
        let err = inst
            .set_latency(EdgeId::from_index(9), Latency::identity())
            .unwrap_err();
        assert!(matches!(err, NetError::Inconsistent(_)));
        // Untouched on error.
        assert_eq!(inst.latency(EdgeId::from_index(0)), &Latency::identity());
    }

    #[test]
    fn set_demand_renormalises_other_commodities() {
        let mut inst = crate::builders::multi_commodity_grid(3, 3, 5);
        inst.set_demand(0, 0.75).unwrap();
        let demands: Vec<f64> = inst.commodities().iter().map(|c| c.demand).collect();
        assert!((demands[0] - 0.75).abs() < 1e-12);
        assert!((demands.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((demands[1] - 0.25).abs() < 1e-12);
        // Back to the even split.
        inst.set_demand(0, 0.5).unwrap();
        assert!((inst.commodities()[1].demand - 0.5).abs() < 1e-12);
    }

    #[test]
    fn set_demand_rejects_degenerate_targets() {
        let mut inst = crate::builders::multi_commodity_grid(3, 3, 5);
        assert!(inst.set_demand(0, 0.0).is_err());
        assert!(inst.set_demand(0, 1.0).is_err());
        assert!(inst.set_demand(0, f64::NAN).is_err());
        assert!(inst.set_demand(7, 0.5).is_err());
        // Untouched on error.
        assert!((inst.commodities()[0].demand - 0.5).abs() < 1e-12);

        let mut single = crate::builders::pigou();
        assert!(single.set_demand(0, 0.5).is_err());
        assert!(single.set_demand(0, 1.0).is_ok());
    }

    #[test]
    fn mutated_instance_matches_fresh_construction() {
        let mut inst = crate::builders::multi_commodity_grid(3, 3, 11);
        inst.set_demand(1, 0.3).unwrap();
        inst.scale_latency(EdgeId::from_index(0), 4.0).unwrap();
        inst.set_latency(EdgeId::from_index(3), Latency::Constant(2.5))
            .unwrap();
        let fresh = rebuild(&inst);
        assert_eq!(inst.slope_bound(), fresh.slope_bound());
        // The incremental ℓmax update re-associates float additions;
        // agreement is up to round-off.
        assert!(
            (inst.latency_upper_bound() - fresh.latency_upper_bound()).abs()
                < 1e-12 * fresh.latency_upper_bound().max(1.0)
        );
        assert_eq!(inst.latencies(), fresh.latencies());
        for (a, b) in inst.commodities().iter().zip(fresh.commodities()) {
            assert_eq!(a.demand, b.demand);
        }
        // CSR incidence untouched by mutation.
        for p in inst.path_ids() {
            assert_eq!(inst.path_edges(p), fresh.path_edges(p));
        }
    }

    #[test]
    fn explicit_paths_reproduce_enumeration() {
        // Handing the full enumerated path set back to the explicit
        // constructor must yield a bit-identical instance — the
        // invariant the differential backend tests rely on.
        let inst = crate::builders::multi_commodity_grid(3, 3, 9);
        let per_commodity: Vec<Vec<Path>> = (0..inst.num_commodities())
            .map(|i| inst.paths()[inst.commodity_paths(i)].to_vec())
            .collect();
        let rebuilt = Instance::with_explicit_paths(
            inst.graph().clone(),
            inst.latencies().to_vec(),
            inst.commodities().to_vec(),
            &per_commodity,
        )
        .unwrap();
        assert_eq!(rebuilt.paths(), inst.paths());
        assert_eq!(rebuilt.incidence_count(), inst.incidence_count());
        assert_eq!(rebuilt.max_path_len(), inst.max_path_len());
        assert_eq!(
            rebuilt.slope_bound().to_bits(),
            inst.slope_bound().to_bits()
        );
        assert_eq!(
            rebuilt.latency_upper_bound().to_bits(),
            inst.latency_upper_bound().to_bits()
        );
        for p in inst.path_ids() {
            assert_eq!(rebuilt.path_edges(p), inst.path_edges(p));
            assert_eq!(rebuilt.commodity_of_path(p), inst.commodity_of_path(p));
        }
        for e in 0..inst.num_edges() {
            let eid = EdgeId::from_index(e);
            assert_eq!(rebuilt.edge_paths(eid), inst.edge_paths(eid));
        }
    }

    #[test]
    fn explicit_paths_accept_strict_subsets() {
        let inst = crate::builders::braess();
        // Keep only the first two of the three Braess paths; demands
        // and validation must still hold on the restriction.
        let subset = vec![inst.paths()[..2].to_vec()];
        let restricted = Instance::with_explicit_paths(
            inst.graph().clone(),
            inst.latencies().to_vec(),
            inst.commodities().to_vec(),
            &subset,
        )
        .unwrap();
        assert_eq!(restricted.num_paths(), 2);
        assert_eq!(restricted.paths(), &inst.paths()[..2]);
    }

    #[test]
    fn explicit_paths_validate_shape_and_endpoints() {
        let inst = crate::builders::braess();
        let graph = inst.graph().clone();
        let latencies = inst.latencies().to_vec();
        let commodities = inst.commodities().to_vec();
        // Path-list count must match the commodity count.
        let err = Instance::with_explicit_paths(
            graph.clone(),
            latencies.clone(),
            commodities.clone(),
            &[],
        )
        .unwrap_err();
        assert!(matches!(err, NetError::Inconsistent(_)));
        // Empty path list surfaces as NoPath.
        let err = Instance::with_explicit_paths(
            graph.clone(),
            latencies.clone(),
            commodities.clone(),
            &[vec![]],
        )
        .unwrap_err();
        assert_eq!(err, NetError::NoPath { commodity: 0 });
        // A path with the wrong endpoints is rejected: Braess paths all
        // run s→t, so a single-edge s→a path cannot serve commodity 0.
        let first_edge = inst.paths()[0].edges()[0];
        let stub = Path::new(&graph, vec![first_edge]).unwrap();
        let err = Instance::with_explicit_paths(graph, latencies, commodities, &[vec![stub]])
            .unwrap_err();
        assert!(matches!(err, NetError::Inconsistent(_)));
    }

    #[test]
    fn commodity_of_path_at_range_boundaries() {
        let mut g = Graph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t);
        g.add_edge(s, t);
        g.add_edge(t, s);
        let inst = Instance::new(
            g,
            vec![Latency::identity(); 3],
            vec![Commodity::new(s, t, 0.7), Commodity::new(t, s, 0.3)],
        )
        .unwrap();
        assert_eq!(inst.num_paths(), 3);
        assert_eq!(inst.commodity_of_path(PathId::from_index(2)), 1);
    }
}
