//! Directed multigraph substrate.
//!
//! The Wardrop model is defined on a finite directed *multigraph*: two
//! nodes may be connected by several parallel edges with different
//! latency functions (the canonical "parallel links" instances of the
//! paper rely on this). This module provides a small, purpose-built
//! graph with stable integer identifiers and O(1) incidence lookups.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a node in a [`Graph`].
///
/// Node ids are dense indices assigned in insertion order.
///
/// # Examples
///
/// ```
/// use wardrop_net::graph::Graph;
///
/// let mut g = Graph::new();
/// let v = g.add_node();
/// assert_eq!(v.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a node id from a raw index.
    ///
    /// Useful when reconstructing references to a known graph; the id is
    /// only meaningful for the graph it was created for.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of a directed edge in a [`Graph`].
///
/// Edge ids are dense indices assigned in insertion order; parallel
/// edges receive distinct ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// Returns the dense index of this edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an edge id from a raw index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        EdgeId(index as u32)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A directed edge endpoint pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Tail (origin) node.
    pub from: NodeId,
    /// Head (destination) node.
    pub to: NodeId,
}

/// A finite directed multigraph.
///
/// Nodes and edges are created through [`Graph::add_node`] and
/// [`Graph::add_edge`] and referred to by dense ids. The graph stores
/// outgoing adjacency lists for path enumeration.
///
/// # Examples
///
/// ```
/// use wardrop_net::graph::Graph;
///
/// let mut g = Graph::new();
/// let s = g.add_node();
/// let t = g.add_node();
/// let e1 = g.add_edge(s, t);
/// let e2 = g.add_edge(s, t); // parallel edge
/// assert_ne!(e1, e2);
/// assert_eq!(g.out_edges(s).len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    edges: Vec<Edge>,
    out: Vec<Vec<EdgeId>>,
    r#in: Vec<Vec<EdgeId>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with capacity hints.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Graph {
            edges: Vec::with_capacity(edges),
            out: Vec::with_capacity(nodes),
            r#in: Vec::with_capacity(nodes),
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.out.len() as u32);
        self.out.push(Vec::new());
        self.r#in.push(Vec::new());
        id
    }

    /// Adds `n` nodes and returns their ids in insertion order.
    pub fn add_nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node()).collect()
    }

    /// Adds a directed edge from `from` to `to` and returns its id.
    ///
    /// Parallel edges and self-loops are permitted at this layer;
    /// instance validation rejects self-loops because they can never
    /// appear on a simple source–sink path.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not a node of this graph.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> EdgeId {
        assert!(
            from.index() < self.out.len(),
            "edge tail {from} is not a node of this graph"
        );
        assert!(
            to.index() < self.out.len(),
            "edge head {to} is not a node of this graph"
        );
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { from, to });
        self.out[from.index()].push(id);
        self.r#in[to.index()].push(id);
        id
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns the endpoints of `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not an edge of this graph.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e.index()]
    }

    /// Returns true if `e` is an edge of this graph.
    #[inline]
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        e.index() < self.edges.len()
    }

    /// Returns true if `v` is a node of this graph.
    #[inline]
    pub fn contains_node(&self, v: NodeId) -> bool {
        v.index() < self.out.len()
    }

    /// Outgoing edges of `v` in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a node of this graph.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.out[v.index()]
    }

    /// Incoming edges of `v` in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a node of this graph.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.r#in[v.index()]
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.out.len()).map(|i| NodeId(i as u32))
    }

    /// Iterates over all edge ids.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(|i| EdgeId(i as u32))
    }

    /// Iterates over `(EdgeId, Edge)` pairs.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = (EdgeId, Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), *e))
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph({} nodes, {} edges)",
            self.node_count(),
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_nodes_or_edges() {
        let g = Graph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn add_node_assigns_dense_ids() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn add_nodes_returns_all_ids() {
        let mut g = Graph::new();
        let ids = g.add_nodes(5);
        assert_eq!(ids.len(), 5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(ids[4].index(), 4);
    }

    #[test]
    fn add_edge_updates_incidence_lists() {
        let mut g = Graph::new();
        let s = g.add_node();
        let t = g.add_node();
        let e = g.add_edge(s, t);
        assert_eq!(g.edge(e), Edge { from: s, to: t });
        assert_eq!(g.out_edges(s), &[e]);
        assert_eq!(g.in_edges(t), &[e]);
        assert!(g.out_edges(t).is_empty());
        assert!(g.in_edges(s).is_empty());
    }

    #[test]
    fn parallel_edges_are_distinct() {
        let mut g = Graph::new();
        let s = g.add_node();
        let t = g.add_node();
        let e1 = g.add_edge(s, t);
        let e2 = g.add_edge(s, t);
        assert_ne!(e1, e2);
        assert_eq!(g.out_edges(s).len(), 2);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "not a node")]
    fn add_edge_rejects_unknown_tail() {
        let mut g = Graph::new();
        let t = g.add_node();
        g.add_edge(NodeId::from_index(7), t);
    }

    #[test]
    fn display_is_nonempty() {
        let g = Graph::new();
        assert!(!format!("{g}").is_empty());
        assert!(!format!("{}", NodeId::from_index(3)).is_empty());
        assert!(!format!("{}", EdgeId::from_index(3)).is_empty());
    }

    #[test]
    fn iterators_cover_all_items() {
        let mut g = Graph::new();
        let vs = g.add_nodes(3);
        g.add_edge(vs[0], vs[1]);
        g.add_edge(vs[1], vs[2]);
        assert_eq!(g.nodes().count(), 3);
        assert_eq!(g.edge_ids().count(), 2);
        let pairs: Vec<_> = g.edges().collect();
        assert_eq!(pairs[1].1.from, vs[1]);
    }
}
