//! Paths and path enumeration.
//!
//! The paper works in the *path formulation* of the Wardrop model: the
//! strategy space of commodity `i` is the set `P_i` of simple
//! source–sink paths, and the population state is a flow vector indexed
//! by paths. We therefore enumerate `P_i` explicitly (with a safety cap,
//! since the number of simple paths can be exponential) and store all
//! paths of all commodities in one arena indexed by [`PathId`].

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::NetError;
use crate::graph::{EdgeId, Graph, NodeId};

/// Identifier of a path in an instance's path arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PathId(pub(crate) u32);

impl PathId {
    /// Returns the dense index of this path.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a path id from a raw index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        PathId(index as u32)
    }
}

impl fmt::Display for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A simple directed path: a sequence of consecutive edges.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    edges: Vec<EdgeId>,
}

impl Path {
    /// Creates a path from consecutive edges.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Inconsistent`] if the edge sequence is empty,
    /// not consecutive in `graph`, or visits a node twice.
    pub fn new(graph: &Graph, edges: Vec<EdgeId>) -> Result<Self, NetError> {
        if edges.is_empty() {
            return Err(NetError::Inconsistent("path must be non-empty".into()));
        }
        let mut seen = Vec::with_capacity(edges.len() + 1);
        seen.push(graph.edge(edges[0]).from);
        for w in edges.windows(2) {
            if graph.edge(w[0]).to != graph.edge(w[1]).from {
                return Err(NetError::Inconsistent(
                    "path edges are not consecutive".into(),
                ));
            }
        }
        for &e in &edges {
            let head = graph.edge(e).to;
            if seen.contains(&head) {
                return Err(NetError::Inconsistent("path revisits a node".into()));
            }
            seen.push(head);
        }
        Ok(Path { edges })
    }

    /// The edges of the path, in order.
    #[inline]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of edges, `|P|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns true if the path has no edges (never constructible via
    /// [`Path::new`], provided for completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// First node of the path.
    pub fn source(&self, graph: &Graph) -> NodeId {
        graph.edge(self.edges[0]).from
    }

    /// Last node of the path.
    pub fn sink(&self, graph: &Graph) -> NodeId {
        graph
            .edge(*self.edges.last().expect("paths are non-empty"))
            .to
    }

    /// Returns true if the path uses edge `e`.
    #[inline]
    pub fn contains(&self, e: EdgeId) -> bool {
        self.edges.contains(&e)
    }
}

/// Enumerates all simple `source → sink` paths of `graph`.
///
/// Paths are produced in depth-first order, following edge insertion
/// order at each node, so enumeration is deterministic.
///
/// # Errors
///
/// Returns [`NetError::TooManyPaths`] (with `commodity = usize::MAX`,
/// rewritten by the instance builder) once more than `cap` paths have
/// been found.
pub fn enumerate_simple_paths(
    graph: &Graph,
    source: NodeId,
    sink: NodeId,
    cap: usize,
) -> Result<Vec<Path>, NetError> {
    let mut paths = Vec::new();
    let mut edge_stack: Vec<EdgeId> = Vec::new();
    let mut on_stack = vec![false; graph.node_count()];
    on_stack[source.index()] = true;

    // Iterative DFS over out-edge indices to avoid recursion limits on
    // deep graphs: frame = (node, next out-edge index to try).
    let mut frames: Vec<(NodeId, usize)> = vec![(source, 0)];
    while let Some((node, idx)) = frames.last_mut() {
        let node = *node;
        let out = graph.out_edges(node);
        if *idx >= out.len() {
            frames.pop();
            on_stack[node.index()] = false;
            edge_stack.pop();
            continue;
        }
        let e = out[*idx];
        *idx += 1;
        let head = graph.edge(e).to;
        if on_stack[head.index()] {
            continue;
        }
        if head == sink {
            let mut edges = edge_stack.clone();
            edges.push(e);
            paths.push(Path { edges });
            if paths.len() > cap {
                return Err(NetError::TooManyPaths {
                    commodity: usize::MAX,
                    cap,
                });
            }
            continue;
        }
        edge_stack.push(e);
        on_stack[head.index()] = true;
        frames.push((head, 0));
    }
    // The source frame pops an extra sentinel from edge_stack; guard by
    // construction: we only push edges when descending, and pop exactly
    // when a frame is exhausted, so the stacks stay balanced.
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Graph, NodeId, NodeId) {
        // s -> a -> t, s -> b -> t, plus a -> b chord.
        let mut g = Graph::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a);
        g.add_edge(s, b);
        g.add_edge(a, t);
        g.add_edge(b, t);
        g.add_edge(a, b);
        (g, s, t)
    }

    #[test]
    fn enumerates_all_simple_paths_in_diamond() {
        let (g, s, t) = diamond();
        let paths = enumerate_simple_paths(&g, s, t, 100).unwrap();
        // s-a-t, s-a-b-t, s-b-t
        assert_eq!(paths.len(), 3);
        for p in &paths {
            assert_eq!(p.source(&g), s);
            assert_eq!(p.sink(&g), t);
        }
    }

    #[test]
    fn parallel_edges_give_distinct_paths() {
        let mut g = Graph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t);
        g.add_edge(s, t);
        g.add_edge(s, t);
        let paths = enumerate_simple_paths(&g, s, t, 100).unwrap();
        assert_eq!(paths.len(), 3);
        assert!(paths.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn cycle_does_not_trap_enumeration() {
        let mut g = Graph::new();
        let s = g.add_node();
        let a = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a);
        g.add_edge(a, s); // back edge forming a cycle
        g.add_edge(a, t);
        let paths = enumerate_simple_paths(&g, s, t, 100).unwrap();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 2);
    }

    #[test]
    fn cap_is_enforced() {
        let (g, s, t) = diamond();
        let err = enumerate_simple_paths(&g, s, t, 2).unwrap_err();
        assert!(matches!(err, NetError::TooManyPaths { cap: 2, .. }));
    }

    #[test]
    fn no_path_yields_empty_vec() {
        let mut g = Graph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_node(); // isolated
        let paths = enumerate_simple_paths(&g, s, t, 100).unwrap();
        assert!(paths.is_empty());
    }

    #[test]
    fn path_new_validates_consecutiveness() {
        let (g, s, t) = diamond();
        let e_sa = g.out_edges(s)[0];
        let e_bt = g.out_edges(NodeId::from_index(2))[0];
        assert!(Path::new(&g, vec![e_sa, e_bt]).is_err());
        let e_at = g.out_edges(NodeId::from_index(1))[0];
        let p = Path::new(&g, vec![e_sa, e_at]).unwrap();
        assert_eq!(p.source(&g), s);
        assert_eq!(p.sink(&g), t);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn path_new_rejects_empty() {
        let (g, _, _) = diamond();
        assert!(Path::new(&g, vec![]).is_err());
    }

    #[test]
    fn path_new_rejects_node_revisit() {
        let mut g = Graph::new();
        let s = g.add_node();
        let a = g.add_node();
        let e1 = g.add_edge(s, a);
        let e2 = g.add_edge(a, s);
        assert!(Path::new(&g, vec![e1, e2]).is_err());
    }

    #[test]
    fn contains_reports_edge_membership() {
        let (g, s, t) = diamond();
        let paths = enumerate_simple_paths(&g, s, t, 100).unwrap();
        // The diamond has no 1-edge path; every path has ≥ 2 edges.
        assert!(paths.iter().all(|p| p.len() >= 2));
        // s-b-t uses edge 1 (s->b) and edge 3 (b->t) but not edge 0 (s->a).
        let sbt = paths
            .iter()
            .find(|p| p.edges()[0] == EdgeId::from_index(1))
            .unwrap();
        assert!(sbt.contains(EdgeId::from_index(3)));
        assert!(!sbt.contains(EdgeId::from_index(0)));
    }

    #[test]
    fn deep_line_graph_enumerates_without_stack_overflow() {
        let mut g = Graph::new();
        let nodes = g.add_nodes(10_001);
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        let paths = enumerate_simple_paths(&g, nodes[0], nodes[10_000], 10).unwrap();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 10_000);
    }

    #[test]
    fn display_path_id() {
        assert_eq!(format!("{}", PathId::from_index(4)), "P4");
    }
}
