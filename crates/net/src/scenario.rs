//! Non-stationary scenarios: time-varying demands and latencies.
//!
//! The paper freezes an [`Instance`] forever; real systems do not. A
//! [`Scenario`] is a list of [`Event`]s — demand surges, link
//! degradations and repairs — pinned to bulletin-board phase indices.
//! Each event mutates the instance through the controlled setters
//! ([`Instance::set_demand`], [`Instance::set_latency`],
//! [`Instance::scale_latency`]), which refresh the cached theorem
//! constants (`β`, `ℓmax`) incrementally and never touch the path sets
//! or CSR incidences — so the engine's pre-allocated buffers stay
//! valid across events.
//!
//! Two small schedule languages, [`DemandSchedule`] and
//! [`LatencyModulation`], compile recurring patterns (steps, pulses)
//! into events, so scenarios like *rush-hour* or *link-failure* are a
//! few lines (see `wardrop_experiments::scenarios` and the
//! `wardrop-lab` binary).
//!
//! Epochs: the simulation engine increments an *epoch* counter at every
//! applied event; the per-epoch segments between shocks are what the
//! tracking analysis (`wardrop_analysis::tracking`) measures recovery
//! times and tracking regret on.

use serde::{Deserialize, Serialize};

use crate::error::NetError;
use crate::graph::EdgeId;
use crate::instance::Instance;
use crate::latency::Latency;

/// One atomic mutation of an instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventAction {
    /// Set commodity `commodity`'s demand to `demand`, renormalising
    /// the remaining commodities (see [`Instance::set_demand`]).
    SetDemand {
        /// Target commodity index.
        commodity: usize,
        /// New demand share in `(0, 1)`.
        demand: f64,
    },
    /// Replace edge `edge`'s latency function (see
    /// [`Instance::set_latency`]).
    SetLatency {
        /// Target edge.
        edge: EdgeId,
        /// The new latency function.
        latency: Latency,
    },
    /// Scale edge `edge`'s latency by `factor` (see
    /// [`Instance::scale_latency`]): degradation for `factor > 1`,
    /// repair for `factor < 1`.
    ScaleLatency {
        /// Target edge.
        edge: EdgeId,
        /// Non-negative scale factor.
        factor: f64,
    },
}

impl EventAction {
    /// Applies the action to `instance`.
    ///
    /// # Errors
    ///
    /// Propagates the setter's [`NetError`]; the instance is unchanged
    /// on error.
    pub fn apply(&self, instance: &mut Instance) -> Result<(), NetError> {
        match self {
            EventAction::SetDemand { commodity, demand } => {
                instance.set_demand(*commodity, *demand)
            }
            EventAction::SetLatency { edge, latency } => {
                instance.set_latency(*edge, latency.clone())
            }
            EventAction::ScaleLatency { edge, factor } => instance.scale_latency(*edge, *factor),
        }
    }

    /// One-line human-readable description for reports.
    pub fn describe(&self) -> String {
        match self {
            EventAction::SetDemand { commodity, demand } => {
                format!("demand[{commodity}] ← {demand}")
            }
            EventAction::SetLatency { edge, latency } => {
                format!("ℓ[{}] ← {latency}", edge.index())
            }
            EventAction::ScaleLatency { edge, factor } => {
                format!("ℓ[{}] ×= {factor}", edge.index())
            }
        }
    }
}

/// A shock: one or more actions applied atomically at the start of
/// phase `at_phase` (before the board for that phase is posted).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Phase index at whose start the event fires.
    pub at_phase: usize,
    /// Label for reports (e.g. `"rush-hour onset"`).
    pub label: String,
    /// The mutations, applied in order.
    pub actions: Vec<EventAction>,
}

impl Event {
    /// Creates an event with a single action.
    pub fn at(at_phase: usize, label: impl Into<String>, action: EventAction) -> Self {
        Event {
            at_phase,
            label: label.into(),
            actions: vec![action],
        }
    }
}

/// A piecewise-constant demand profile over phases for one commodity.
///
/// Breakpoints `(phase, demand)` are sorted by phase; the demand from
/// phase `p` on is the value of the last breakpoint at or before `p`.
/// The value before the first breakpoint is the first breakpoint's
/// value (which should match the instance's initial demand — the
/// compiler emits events only for breakpoints at phase `> 0`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandSchedule {
    breakpoints: Vec<(usize, f64)>,
}

impl DemandSchedule {
    /// A schedule from raw breakpoints.
    ///
    /// # Panics
    ///
    /// Panics if `breakpoints` is empty or phases are not strictly
    /// increasing.
    pub fn piecewise(breakpoints: Vec<(usize, f64)>) -> Self {
        assert!(!breakpoints.is_empty(), "need at least one breakpoint");
        assert!(
            breakpoints.windows(2).all(|w| w[0].0 < w[1].0),
            "breakpoint phases must be strictly increasing"
        );
        DemandSchedule { breakpoints }
    }

    /// A single step: `before` until `at_phase`, `after` from then on.
    pub fn step(before: f64, at_phase: usize, after: f64) -> Self {
        Self::piecewise(vec![(0, before), (at_phase, after)])
    }

    /// A pulse: `base` except for `[start, start + duration)`, where
    /// the demand is `peak`.
    ///
    /// # Panics
    ///
    /// Panics if `start == 0` or `duration == 0` (use
    /// [`DemandSchedule::step`] for one-sided changes).
    pub fn pulse(base: f64, peak: f64, start: usize, duration: usize) -> Self {
        assert!(
            start > 0 && duration > 0,
            "pulse needs start > 0, duration > 0"
        );
        Self::piecewise(vec![(0, base), (start, peak), (start + duration, base)])
    }

    /// The scheduled demand from phase `phase` on.
    pub fn demand_at(&self, phase: usize) -> f64 {
        let mut value = self.breakpoints[0].1;
        for &(p, d) in &self.breakpoints {
            if p <= phase {
                value = d;
            } else {
                break;
            }
        }
        value
    }

    /// The change points after phase 0: `(phase, new_demand)` pairs.
    pub fn change_points(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.breakpoints.iter().copied().filter(|(p, _)| *p > 0)
    }
}

/// A piecewise-constant multiplicative latency profile for one edge,
/// with factors *relative to the original latency*.
///
/// Compiled into cumulative [`EventAction::ScaleLatency`] events: a
/// transition from factor `a` to factor `b` emits a scale by `b / a`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyModulation {
    breakpoints: Vec<(usize, f64)>,
}

impl LatencyModulation {
    /// A modulation from raw breakpoints `(phase, factor)`.
    ///
    /// # Panics
    ///
    /// Panics if `breakpoints` is empty, phases are not strictly
    /// increasing, or any factor is not positive and finite (factors
    /// must be invertible so repairs can be expressed as scale events).
    pub fn piecewise(breakpoints: Vec<(usize, f64)>) -> Self {
        assert!(!breakpoints.is_empty(), "need at least one breakpoint");
        assert!(
            breakpoints.windows(2).all(|w| w[0].0 < w[1].0),
            "breakpoint phases must be strictly increasing"
        );
        assert!(
            breakpoints.iter().all(|(_, f)| f.is_finite() && *f > 0.0),
            "modulation factors must be positive and finite"
        );
        LatencyModulation { breakpoints }
    }

    /// A degradation pulse: factor 1 except for
    /// `[start, start + duration)`, where the latency is scaled by
    /// `peak_factor`.
    ///
    /// # Panics
    ///
    /// Panics if `start == 0` or `duration == 0`.
    pub fn pulse(peak_factor: f64, start: usize, duration: usize) -> Self {
        assert!(
            start > 0 && duration > 0,
            "pulse needs start > 0, duration > 0"
        );
        Self::piecewise(vec![
            (0, 1.0),
            (start, peak_factor),
            (start + duration, 1.0),
        ])
    }

    /// The factor (relative to the original latency) from phase
    /// `phase` on. Before the first breakpoint the factor is 1 — the
    /// edge carries its original latency until the schedule first
    /// touches it.
    pub fn factor_at(&self, phase: usize) -> f64 {
        let mut value = 1.0;
        for &(p, f) in &self.breakpoints {
            if p <= phase {
                value = f;
            } else {
                break;
            }
        }
        value
    }

    /// Cumulative scale events: `(phase, relative_factor)` with
    /// `relative_factor = factor_at(phase) / previous factor`, starting
    /// from the implicit factor 1 of the untouched edge. Applying the
    /// emitted `ScaleLatency` events in order reproduces exactly the
    /// [`LatencyModulation::factor_at`] profile.
    pub fn change_points(&self) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        let mut prev = 1.0;
        for &(p, f) in &self.breakpoints {
            if f != prev {
                out.push((p, f / prev));
            }
            prev = f;
        }
        out
    }
}

/// A named, phase-indexed shock sequence over one instance.
///
/// # Examples
///
/// ```
/// use wardrop_net::scenario::{DemandSchedule, LatencyModulation, Scenario};
/// use wardrop_net::EdgeId;
///
/// // Rush hour: commodity 0 surges at phase 50, relaxes at 100, while
/// // an arterial edge degrades 3× over the same window.
/// let s = Scenario::new("rush-hour")
///     .with_demand_schedule(0, &DemandSchedule::pulse(0.5, 0.75, 50, 50))
///     .with_latency_modulation(EdgeId::from_index(0), &LatencyModulation::pulse(3.0, 50, 50));
/// assert_eq!(s.events().len(), 4);
/// assert_eq!(s.events()[0].at_phase, 50);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Scenario {
    name: String,
    events: Vec<Event>,
}

impl Scenario {
    /// An empty scenario (a static run).
    pub fn new(name: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            events: Vec::new(),
        }
    }

    /// The scenario name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The events, sorted by phase (stable for equal phases).
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Adds an event (builder style).
    pub fn with_event(mut self, event: Event) -> Self {
        self.push_event(event);
        self
    }

    /// Adds an event, keeping the list sorted by phase (stable).
    pub fn push_event(&mut self, event: Event) {
        let pos = self
            .events
            .partition_point(|e| e.at_phase <= event.at_phase);
        self.events.insert(pos, event);
    }

    /// Compiles a demand schedule for `commodity` into events (builder
    /// style). Only change points after phase 0 emit events; the
    /// schedule's initial value must match the instance.
    pub fn with_demand_schedule(mut self, commodity: usize, schedule: &DemandSchedule) -> Self {
        for (phase, demand) in schedule.change_points() {
            self.push_event(Event::at(
                phase,
                format!("demand[{commodity}] → {demand}"),
                EventAction::SetDemand { commodity, demand },
            ));
        }
        self
    }

    /// Compiles a latency modulation for `edge` into cumulative scale
    /// events (builder style).
    pub fn with_latency_modulation(mut self, edge: EdgeId, modulation: &LatencyModulation) -> Self {
        for (phase, factor) in modulation.change_points() {
            self.push_event(Event::at(
                phase,
                format!("ℓ[{}] ×{factor:.4}", edge.index()),
                EventAction::ScaleLatency { edge, factor },
            ));
        }
        self
    }

    /// True if the scenario has no events.
    pub fn is_static(&self) -> bool {
        self.events.is_empty()
    }

    /// The largest event phase, or `None` for a static scenario.
    pub fn last_event_phase(&self) -> Option<usize> {
        self.events.last().map(|e| e.at_phase)
    }

    /// Replays every event onto `instance` in order, yielding the
    /// instance state of each epoch: element `k` of the result is a
    /// clone of the instance after the first `k` events (element 0 is
    /// the unmodified base). The per-epoch tracking analysis compares
    /// trajectories against the Frank–Wolfe optimum of these states.
    ///
    /// # Errors
    ///
    /// Propagates the first failing event application.
    pub fn epoch_instances(&self, instance: &Instance) -> Result<Vec<Instance>, NetError> {
        let mut current = instance.clone();
        let mut out = Vec::with_capacity(self.events.len() + 1);
        out.push(current.clone());
        for event in &self.events {
            for action in &event.actions {
                action.apply(&mut current)?;
            }
            out.push(current.clone());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn demand_schedule_pulse_shape() {
        let s = DemandSchedule::pulse(0.5, 0.8, 10, 5);
        assert_eq!(s.demand_at(0), 0.5);
        assert_eq!(s.demand_at(9), 0.5);
        assert_eq!(s.demand_at(10), 0.8);
        assert_eq!(s.demand_at(14), 0.8);
        assert_eq!(s.demand_at(15), 0.5);
        let cps: Vec<_> = s.change_points().collect();
        assert_eq!(cps, vec![(10, 0.8), (15, 0.5)]);
    }

    #[test]
    fn demand_schedule_step_shape() {
        let s = DemandSchedule::step(0.5, 7, 0.9);
        assert_eq!(s.demand_at(6), 0.5);
        assert_eq!(s.demand_at(7), 0.9);
        assert_eq!(s.demand_at(1000), 0.9);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn demand_schedule_rejects_unsorted_breakpoints() {
        let _ = DemandSchedule::piecewise(vec![(5, 0.5), (5, 0.6)]);
    }

    #[test]
    fn latency_modulation_emits_cumulative_factors() {
        let m = LatencyModulation::pulse(4.0, 10, 5);
        assert_eq!(m.factor_at(0), 1.0);
        assert_eq!(m.factor_at(12), 4.0);
        assert_eq!(m.factor_at(15), 1.0);
        let cps = m.change_points();
        assert_eq!(cps.len(), 2);
        assert_eq!(cps[0], (10, 4.0));
        assert!((cps[1].1 - 0.25).abs() < 1e-15);
    }

    #[test]
    fn modulation_with_initial_factor_emits_phase_zero_event() {
        let m = LatencyModulation::piecewise(vec![(0, 2.0), (5, 1.0)]);
        let cps = m.change_points();
        assert_eq!(cps[0], (0, 2.0));
        assert!((cps[1].1 - 0.5).abs() < 1e-15);
    }

    #[test]
    fn modulation_events_reproduce_factor_profile() {
        // Regression: a first breakpoint at phase > 0 with a non-unit
        // factor must be established by an event of its own — the
        // compiled events, applied cumulatively from the untouched
        // edge, must land exactly on factor_at at every phase.
        for m in [
            LatencyModulation::piecewise(vec![(3, 2.0), (6, 1.0)]),
            LatencyModulation::piecewise(vec![(0, 0.5), (4, 3.0), (9, 1.0)]),
            LatencyModulation::pulse(4.0, 2, 5),
        ] {
            let mut applied = 1.0;
            let mut cps = m.change_points().into_iter().peekable();
            for phase in 0..12 {
                while let Some(&(p, f)) = cps.peek() {
                    if p <= phase {
                        applied *= f;
                        cps.next();
                    } else {
                        break;
                    }
                }
                assert!(
                    (applied - m.factor_at(phase)).abs() < 1e-12,
                    "phase {phase}: applied {applied} vs factor_at {}",
                    m.factor_at(phase)
                );
            }
        }
    }

    #[test]
    fn modulation_factor_is_one_before_first_breakpoint() {
        let m = LatencyModulation::piecewise(vec![(3, 2.0), (6, 1.0)]);
        assert_eq!(m.factor_at(0), 1.0);
        assert_eq!(m.factor_at(2), 1.0);
        assert_eq!(m.factor_at(3), 2.0);
        assert_eq!(m.factor_at(6), 1.0);
        assert_eq!(m.change_points(), vec![(3, 2.0), (6, 0.5)]);
    }

    #[test]
    fn scenario_keeps_events_sorted() {
        let s = Scenario::new("test")
            .with_event(Event::at(
                20,
                "late",
                EventAction::ScaleLatency {
                    edge: EdgeId::from_index(0),
                    factor: 2.0,
                },
            ))
            .with_event(Event::at(
                5,
                "early",
                EventAction::ScaleLatency {
                    edge: EdgeId::from_index(1),
                    factor: 3.0,
                },
            ));
        let phases: Vec<_> = s.events().iter().map(|e| e.at_phase).collect();
        assert_eq!(phases, vec![5, 20]);
        assert_eq!(s.last_event_phase(), Some(20));
        assert!(!s.is_static());
        assert!(Scenario::new("empty").is_static());
    }

    #[test]
    fn actions_apply_to_instances() {
        let mut inst = builders::multi_commodity_grid(3, 3, 5);
        EventAction::SetDemand {
            commodity: 0,
            demand: 0.7,
        }
        .apply(&mut inst)
        .unwrap();
        assert!((inst.commodities()[0].demand - 0.7).abs() < 1e-12);
        let beta0 = inst.slope_bound();
        EventAction::ScaleLatency {
            edge: EdgeId::from_index(0),
            factor: 10.0,
        }
        .apply(&mut inst)
        .unwrap();
        assert!(inst.slope_bound() >= beta0);
        let bad = EventAction::SetDemand {
            commodity: 9,
            demand: 0.5,
        };
        assert!(bad.apply(&mut inst).is_err());
        assert!(!bad.describe().is_empty());
    }

    #[test]
    fn epoch_instances_replay_events() {
        let base = builders::multi_commodity_grid(3, 3, 5);
        let scenario = Scenario::new("two-shocks")
            .with_demand_schedule(0, &DemandSchedule::pulse(0.5, 0.8, 10, 10));
        let epochs = scenario.epoch_instances(&base).unwrap();
        assert_eq!(epochs.len(), 3);
        assert!((epochs[0].commodities()[0].demand - 0.5).abs() < 1e-12);
        assert!((epochs[1].commodities()[0].demand - 0.8).abs() < 1e-12);
        assert!((epochs[2].commodities()[0].demand - 0.5).abs() < 1e-12);
    }

    #[test]
    fn round_trip_latency_pulse_restores_instance() {
        let base = builders::grid_network(3, 3, 7);
        let scenario = Scenario::new("fail-repair")
            .with_latency_modulation(EdgeId::from_index(2), &LatencyModulation::pulse(25.0, 5, 5));
        let epochs = scenario.epoch_instances(&base).unwrap();
        let lmax0 = base.latency_upper_bound();
        assert!(epochs[1].latency_upper_bound() > lmax0);
        assert!((epochs[2].latency_upper_bound() - lmax0).abs() < 1e-9 * lmax0.max(1.0));
    }
}
