//! Path-flow vectors over an instance.
//!
//! A [`FlowVec`] is the population state of the Wardrop game: `f_P` is
//! the fraction of agents (volume of flow) on path `P`. This module
//! provides feasibility checks, the induced edge flows and latencies,
//! and the per-commodity average latency `L_i` used by the weak
//! equilibrium notion of Theorem 7.

use serde::{Deserialize, Serialize};

use crate::error::NetError;
use crate::instance::Instance;
use crate::path::PathId;

/// Default feasibility tolerance for flow checks.
pub const FLOW_TOLERANCE: f64 = 1e-9;

/// A path-flow vector `f = (f_P)_{P ∈ P}` over a fixed instance.
///
/// The vector does not hold a reference to its instance; all derived
/// quantities take the instance as an argument. Lengths are checked.
///
/// # Examples
///
/// ```
/// use wardrop_net::builders;
/// use wardrop_net::flow::FlowVec;
///
/// let inst = builders::pigou();
/// let f = FlowVec::uniform(&inst);
/// assert!(f.is_feasible(&inst, 1e-9));
/// let lat = f.path_latencies(&inst);
/// assert_eq!(lat.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowVec {
    values: Vec<f64>,
}

impl FlowVec {
    /// Creates a flow vector from raw path values.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InfeasibleFlow`] if the length does not match
    /// `instance.num_paths()`, any entry is negative/non-finite, or a
    /// commodity's demand is not met within [`FLOW_TOLERANCE`].
    pub fn from_values(instance: &Instance, values: Vec<f64>) -> Result<Self, NetError> {
        let f = FlowVec { values };
        f.check_feasible(instance, FLOW_TOLERANCE)?;
        Ok(f)
    }

    /// Creates a flow vector without feasibility checks.
    ///
    /// Intended for integrators that maintain feasibility as an
    /// invariant; prefer [`FlowVec::from_values`] at API boundaries.
    pub fn from_values_unchecked(values: Vec<f64>) -> Self {
        FlowVec { values }
    }

    /// The uniform flow: every path of commodity `i` carries
    /// `r_i / |P_i|`.
    pub fn uniform(instance: &Instance) -> Self {
        let mut values = vec![0.0; instance.num_paths()];
        for (i, c) in instance.commodities().iter().enumerate() {
            let range = instance.commodity_paths(i);
            let share = c.demand / range.len() as f64;
            for v in &mut values[range] {
                *v = share;
            }
        }
        FlowVec { values }
    }

    /// Puts each commodity's entire demand on a single path
    /// (the first path of each commodity by default ordering).
    pub fn concentrated(instance: &Instance) -> Self {
        let mut values = vec![0.0; instance.num_paths()];
        for (i, c) in instance.commodities().iter().enumerate() {
            let range = instance.commodity_paths(i);
            values[range.start] = c.demand;
        }
        FlowVec { values }
    }

    /// Number of path entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns true if the vector has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Flow on path `p`.
    #[inline]
    pub fn get(&self, p: PathId) -> f64 {
        self.values[p.index()]
    }

    /// Raw values, path-indexed.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable raw values. Callers must preserve feasibility.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consumes the vector, returning the raw values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Checks feasibility, returning a detailed error.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InfeasibleFlow`] describing the violation.
    pub fn check_feasible(&self, instance: &Instance, tol: f64) -> Result<(), NetError> {
        if self.values.len() != instance.num_paths() {
            return Err(NetError::InfeasibleFlow(format!(
                "flow has {} entries for {} paths",
                self.values.len(),
                instance.num_paths()
            )));
        }
        for (i, v) in self.values.iter().enumerate() {
            if !v.is_finite() || *v < -tol {
                return Err(NetError::InfeasibleFlow(format!(
                    "path {i} carries invalid flow {v}"
                )));
            }
        }
        for (i, c) in instance.commodities().iter().enumerate() {
            let total: f64 = self.values[instance.commodity_paths(i)].iter().sum();
            if (total - c.demand).abs() > tol.max(1e-12 * c.demand) {
                return Err(NetError::InfeasibleFlow(format!(
                    "commodity {i} routes {total}, demand is {}",
                    c.demand
                )));
            }
        }
        Ok(())
    }

    /// Returns true if the flow is feasible within `tol`.
    pub fn is_feasible(&self, instance: &Instance, tol: f64) -> bool {
        self.check_feasible(instance, tol).is_ok()
    }

    /// Induced edge flows `f_e = Σ_{P ∋ e} f_P`.
    pub fn edge_flows(&self, instance: &Instance) -> Vec<f64> {
        let mut fe = vec![0.0; instance.num_edges()];
        self.edge_flows_into(instance, &mut fe);
        fe
    }

    /// Writes the induced edge flows into `out` (allocation-free; `out`
    /// is overwritten).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != instance.num_edges()` or the flow length
    /// does not match the instance.
    pub fn edge_flows_into(&self, instance: &Instance, out: &mut [f64]) {
        assert_eq!(out.len(), instance.num_edges());
        assert_eq!(self.values.len(), instance.num_paths());
        out.fill(0.0);
        for (idx, &fp) in self.values.iter().enumerate() {
            if fp == 0.0 {
                continue;
            }
            for e in instance.path_edges(crate::path::PathId::from_index(idx)) {
                out[e.index()] += fp;
            }
        }
    }

    /// Edge latencies `ℓ_e(f_e)` under this flow.
    pub fn edge_latencies(&self, instance: &Instance) -> Vec<f64> {
        let fe = self.edge_flows(instance);
        instance
            .latencies()
            .iter()
            .zip(&fe)
            .map(|(l, x)| l.eval(*x))
            .collect()
    }

    /// Path latencies `ℓ_P(f) = Σ_{e ∈ P} ℓ_e(f_e)`.
    pub fn path_latencies(&self, instance: &Instance) -> Vec<f64> {
        let le = self.edge_latencies(instance);
        path_latencies_from_edge(instance, &le)
    }

    /// Per-commodity average latency `L_i = Σ_P (f_P / r_i) ℓ_P`.
    pub fn commodity_avg_latencies(&self, instance: &Instance) -> Vec<f64> {
        let lp = self.path_latencies(instance);
        instance
            .commodities()
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let range = instance.commodity_paths(i);
                let s: f64 = range.clone().map(|p| self.values[p] * lp[p]).sum();
                s / c.demand
            })
            .collect()
    }

    /// Overall average latency `L = Σ_P f_P ℓ_P`.
    pub fn avg_latency(&self, instance: &Instance) -> f64 {
        let lp = self.path_latencies(instance);
        self.values.iter().zip(&lp).map(|(f, l)| f * l).sum()
    }

    /// Per-commodity minimum path latency `ℓ^i_min`.
    pub fn commodity_min_latencies(&self, instance: &Instance) -> Vec<f64> {
        let lp = self.path_latencies(instance);
        (0..instance.num_commodities())
            .map(|i| {
                instance
                    .commodity_paths(i)
                    .map(|p| lp[p])
                    .fold(f64::INFINITY, f64::min)
            })
            .collect()
    }

    /// Maximum latency over paths actually carrying flow (> `tol`).
    pub fn max_used_latency(&self, instance: &Instance, tol: f64) -> f64 {
        let lp = self.path_latencies(instance);
        self.values
            .iter()
            .zip(&lp)
            .filter(|(f, _)| **f > tol)
            .map(|(_, l)| *l)
            .fold(0.0, f64::max)
    }

    /// L∞ distance to another flow vector.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn linf_distance(&self, other: &FlowVec) -> f64 {
        assert_eq!(self.values.len(), other.values.len());
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// L1 distance to another flow vector.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn l1_distance(&self, other: &FlowVec) -> f64 {
        assert_eq!(self.values.len(), other.values.len());
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).abs())
            .sum()
    }

    /// Clamps tiny negative entries (from floating-point integration) to
    /// zero and renormalises each commodity to its demand.
    ///
    /// Integrators call this after every phase so error never
    /// accumulates into infeasibility.
    pub fn renormalise(&mut self, instance: &Instance) {
        for v in &mut self.values {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        for (i, c) in instance.commodities().iter().enumerate() {
            let range = instance.commodity_paths(i);
            let total: f64 = self.values[range.clone()].iter().sum();
            if total > 0.0 {
                let scale = c.demand / total;
                for v in &mut self.values[range] {
                    *v *= scale;
                }
            } else {
                // Degenerate: all mass vanished numerically; reset uniform.
                let share = c.demand / range.len() as f64;
                for v in &mut self.values[range] {
                    *v = share;
                }
            }
        }
    }
}

/// Computes path latencies from precomputed edge latencies.
///
/// Exposed separately because the bulletin board stores *stale* edge
/// latencies and needs the same aggregation.
pub fn path_latencies_from_edge(instance: &Instance, edge_latencies: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; instance.num_paths()];
    path_latencies_from_edge_into(instance, edge_latencies, &mut out);
    out
}

/// Allocation-free variant of [`path_latencies_from_edge`]: writes the
/// path latencies into `out` using the instance's CSR incidence.
///
/// # Panics
///
/// Panics if slice lengths do not match the instance.
pub fn path_latencies_from_edge_into(instance: &Instance, edge_latencies: &[f64], out: &mut [f64]) {
    assert_eq!(edge_latencies.len(), instance.num_edges());
    assert_eq!(out.len(), instance.num_paths());
    for (idx, o) in out.iter_mut().enumerate() {
        *o = instance
            .path_edges(PathId::from_index(idx))
            .iter()
            .map(|e| edge_latencies[e.index()])
            .sum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn uniform_flow_is_feasible() {
        let inst = builders::braess();
        let f = FlowVec::uniform(&inst);
        assert!(f.is_feasible(&inst, 1e-12));
    }

    #[test]
    fn concentrated_flow_is_feasible() {
        let inst = builders::braess();
        let f = FlowVec::concentrated(&inst);
        assert!(f.is_feasible(&inst, 1e-12));
        assert_eq!(f.values().iter().filter(|v| **v > 0.0).count(), 1);
    }

    #[test]
    fn from_values_validates_length() {
        let inst = builders::pigou();
        assert!(FlowVec::from_values(&inst, vec![1.0]).is_err());
    }

    #[test]
    fn from_values_validates_demand() {
        let inst = builders::pigou();
        assert!(FlowVec::from_values(&inst, vec![0.3, 0.3]).is_err());
        assert!(FlowVec::from_values(&inst, vec![0.3, 0.7]).is_ok());
    }

    #[test]
    fn from_values_rejects_negative_and_nan() {
        let inst = builders::pigou();
        assert!(FlowVec::from_values(&inst, vec![-0.1, 1.1]).is_err());
        assert!(FlowVec::from_values(&inst, vec![f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn pigou_edge_flows_and_latencies() {
        // Pigou: edge 0 has ℓ(x) = x, edge 1 has ℓ(x) = 1.
        let inst = builders::pigou();
        let f = FlowVec::from_values(&inst, vec![0.25, 0.75]).unwrap();
        let fe = f.edge_flows(&inst);
        assert_eq!(fe, vec![0.25, 0.75]);
        let le = f.edge_latencies(&inst);
        assert!((le[0] - 0.25).abs() < 1e-12);
        assert!((le[1] - 1.0).abs() < 1e-12);
        let lp = f.path_latencies(&inst);
        assert_eq!(lp.len(), 2);
        assert!((lp[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn braess_edge_flows_aggregate_paths() {
        let inst = builders::braess();
        let f = FlowVec::uniform(&inst);
        let fe = f.edge_flows(&inst);
        // Total edge flow = Σ_P f_P |P|; Braess has 2 paths of length 2
        // and one (the zig-zag) of length 3.
        let total: f64 = fe.iter().sum();
        let expected: f64 = inst
            .paths()
            .iter()
            .zip(f.values())
            .map(|(p, v)| v * p.len() as f64)
            .sum();
        assert!((total - expected).abs() < 1e-12);
    }

    #[test]
    fn avg_latency_matches_weighted_sum() {
        let inst = builders::pigou();
        let f = FlowVec::from_values(&inst, vec![0.5, 0.5]).unwrap();
        // L = 0.5·0.5 + 0.5·1 = 0.75
        assert!((f.avg_latency(&inst) - 0.75).abs() < 1e-12);
        let li = f.commodity_avg_latencies(&inst);
        assert!((li[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn min_latency_per_commodity() {
        let inst = builders::pigou();
        let f = FlowVec::from_values(&inst, vec![0.25, 0.75]).unwrap();
        let mins = f.commodity_min_latencies(&inst);
        assert!((mins[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn max_used_latency_ignores_unused_paths() {
        let inst = builders::pigou();
        let f = FlowVec::from_values(&inst, vec![1.0, 0.0]).unwrap();
        // Only path 0 (ℓ = x) is used: latency 1. Path 1 (ℓ = 1) unused.
        assert!((f.max_used_latency(&inst, 1e-12) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distances() {
        let inst = builders::pigou();
        let a = FlowVec::from_values(&inst, vec![0.5, 0.5]).unwrap();
        let b = FlowVec::from_values(&inst, vec![0.25, 0.75]).unwrap();
        assert!((a.linf_distance(&b) - 0.25).abs() < 1e-12);
        assert!((a.l1_distance(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn renormalise_restores_feasibility() {
        let inst = builders::pigou();
        let mut f = FlowVec::from_values_unchecked(vec![-1e-12, 1.0]);
        f.renormalise(&inst);
        assert!(f.is_feasible(&inst, 1e-9));
        assert!(f.values().iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn renormalise_handles_vanished_mass() {
        let inst = builders::pigou();
        let mut f = FlowVec::from_values_unchecked(vec![0.0, 0.0]);
        f.renormalise(&inst);
        assert!(f.is_feasible(&inst, 1e-9));
    }

    #[test]
    fn into_variants_match_allocating_versions() {
        let inst = builders::braess();
        let f = FlowVec::uniform(&inst);
        let mut fe = vec![1.0; inst.num_edges()]; // stale contents overwritten
        f.edge_flows_into(&inst, &mut fe);
        assert_eq!(fe, f.edge_flows(&inst));
        let le = f.edge_latencies(&inst);
        let mut lp = vec![0.0; inst.num_paths()];
        path_latencies_from_edge_into(&inst, &le, &mut lp);
        assert_eq!(lp, f.path_latencies(&inst));
    }

    #[test]
    fn path_latencies_from_edge_matches_flow_version() {
        let inst = builders::braess();
        let f = FlowVec::uniform(&inst);
        let le = f.edge_latencies(&inst);
        assert_eq!(
            f.path_latencies(&inst),
            path_latencies_from_edge(&inst, &le)
        );
    }
}
