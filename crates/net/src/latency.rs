//! Latency functions `ℓ_e : [0, 1] → R≥0`.
//!
//! The paper assumes continuous, non-decreasing latency functions with
//! finite first derivatives on `[0, 1]` (flow demands are normalised so
//! edge flows never exceed 1). Three quantities beyond point evaluation
//! matter for the theory:
//!
//! * the **primitive** `∫₀^x ℓ(u) du`, which makes the
//!   Beckmann–McGuire–Winsten potential exact rather than quadrature-based;
//! * the **derivative** `ℓ'(x)`, needed for marginal-cost (system-optimum)
//!   computations;
//! * the **slope bound** `β = sup_{x ∈ [0,1]} ℓ'(x)`, which enters the
//!   safe update period `T* = 1/(4 D α β)` of Lemma 4 / Corollary 5.
//!
//! All variants provide these in closed form.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::NetError;

/// A latency function on `[0, 1]`.
///
/// Variants cover the instances used in the paper and the standard
/// traffic-modelling families. All variants are continuous and, once
/// [validated](Latency::validate), non-decreasing and non-negative on
/// `[0, 1]`.
///
/// # Examples
///
/// ```
/// use wardrop_net::latency::Latency;
///
/// // The two-link oscillator of Section 3.2: ℓ(x) = max{0, β(x − ½)}.
/// let l = Latency::oscillator(2.0);
/// assert_eq!(l.eval(0.25), 0.0);
/// assert_eq!(l.eval(0.75), 0.5);
/// assert_eq!(l.slope_bound(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Latency {
    /// Constant latency `ℓ(x) = a`.
    Constant(f64),
    /// Affine latency `ℓ(x) = a + b·x`.
    Affine {
        /// Constant offset `a ≥ 0`.
        a: f64,
        /// Slope `b ≥ 0`.
        b: f64,
    },
    /// Polynomial latency `ℓ(x) = Σ_i c_i x^i` with non-negative
    /// coefficients (ascending order, `coeffs[i]` multiplies `x^i`).
    Polynomial(Vec<f64>),
    /// Bureau-of-Public-Roads latency `ℓ(x) = t0 · (1 + coef · x^pow)`
    /// with integer power `pow ≥ 1`.
    Bpr {
        /// Free-flow travel time `t0 ≥ 0`.
        t0: f64,
        /// Congestion coefficient `coef ≥ 0`.
        coef: f64,
        /// Congestion exponent `pow ≥ 1`.
        pow: u32,
    },
    /// Continuous piecewise-linear latency given by breakpoints
    /// `(x_0, y_0), …, (x_n, y_n)` with `x_0 = 0`, `x_n = 1`, strictly
    /// increasing `x_i` and non-decreasing `y_i`.
    PiecewiseLinear(Vec<(f64, f64)>),
    /// M/M/1 queueing delay `ℓ(x) = 1/(c − x)` with capacity `c > 1`,
    /// so the delay stays finite on the whole flow range `[0, 1]`.
    ///
    /// The standard latency family for communication networks; its
    /// slope bound `β = 1/(c−1)²` explodes as `c → 1`, which is
    /// exactly the regime where the paper's `T* = 1/(4DαΒ)` forces
    /// long update periods to be unsafe.
    Mm1 {
        /// Service capacity `c > 1`.
        capacity: f64,
    },
    /// A uniformly scaled latency `ℓ(x) = factor · inner(x)`.
    ///
    /// Produced by [`Latency::scaled`] for families that have no
    /// closed-form scaled member (M/M/1). Scenario events use scaling to
    /// model link degradation and repair; scaling preserves every
    /// standing assumption and multiplies the slope bound by `factor`.
    Scaled {
        /// Non-negative scale factor.
        factor: f64,
        /// The unscaled latency function.
        inner: Box<Latency>,
    },
}

impl Latency {
    /// The zero latency function.
    pub fn zero() -> Self {
        Latency::Constant(0.0)
    }

    /// The identity latency `ℓ(x) = x` (Pigou's congestible link).
    pub fn identity() -> Self {
        Latency::Affine { a: 0.0, b: 1.0 }
    }

    /// The Section 3.2 oscillator latency `ℓ(x) = max{0, β(x − ½)}`.
    ///
    /// Both links of the paper's two-link counterexample use this
    /// function; its Wardrop equilibrium is `f₁ = f₂ = ½` with latency 0.
    pub fn oscillator(beta: f64) -> Self {
        Latency::PiecewiseLinear(vec![(0.0, 0.0), (0.5, 0.0), (1.0, beta / 2.0)])
    }

    /// The latency `x ↦ factor · ℓ(x)`, staying inside the closed-form
    /// family whenever one exists.
    ///
    /// Constant, affine, polynomial, BPR and piecewise-linear latencies
    /// scale coefficient-wise; M/M/1 (and already-scaled functions)
    /// wrap into / flatten the [`Latency::Scaled`] variant. Scenario
    /// events use this to degrade and repair links.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite (a scaled latency
    /// must stay non-negative and non-decreasing).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        match self {
            Latency::Constant(a) => Latency::Constant(a * factor),
            Latency::Affine { a, b } => Latency::Affine {
                a: a * factor,
                b: b * factor,
            },
            Latency::Polynomial(c) => Latency::Polynomial(c.iter().map(|ci| ci * factor).collect()),
            Latency::Bpr { t0, coef, pow } => Latency::Bpr {
                t0: t0 * factor,
                coef: *coef,
                pow: *pow,
            },
            Latency::PiecewiseLinear(pts) => {
                Latency::PiecewiseLinear(pts.iter().map(|(x, y)| (*x, y * factor)).collect())
            }
            Latency::Mm1 { .. } => Latency::Scaled {
                factor,
                inner: Box::new(self.clone()),
            },
            Latency::Scaled { factor: f0, inner } => Latency::Scaled {
                factor: f0 * factor,
                inner: inner.clone(),
            },
        }
    }

    /// Evaluates `ℓ(x)`.
    ///
    /// `x` is clamped to `[0, 1]`; latency functions are only specified
    /// on that range (demands are normalised to total 1).
    pub fn eval(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        match self {
            Latency::Constant(a) => *a,
            Latency::Affine { a, b } => a + b * x,
            Latency::Polynomial(c) => horner(c, x),
            Latency::Bpr { t0, coef, pow } => t0 * (1.0 + coef * x.powi(*pow as i32)),
            Latency::PiecewiseLinear(pts) => piecewise_eval(pts, x),
            Latency::Mm1 { capacity } => 1.0 / (capacity - x),
            Latency::Scaled { factor, inner } => factor * inner.eval(x),
        }
    }

    /// Evaluates the primitive `∫₀^x ℓ(u) du` in closed form.
    ///
    /// This is the per-edge contribution to the
    /// Beckmann–McGuire–Winsten potential.
    pub fn primitive(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        match self {
            Latency::Constant(a) => a * x,
            Latency::Affine { a, b } => a * x + 0.5 * b * x * x,
            Latency::Polynomial(c) => {
                // ∫ Σ c_i u^i du = Σ c_i x^{i+1}/(i+1)
                let mut acc = 0.0;
                for (i, ci) in c.iter().enumerate().rev() {
                    acc = acc * x + ci / (i as f64 + 1.0);
                }
                acc * x
            }
            Latency::Bpr { t0, coef, pow } => {
                t0 * x + t0 * coef * x.powi(*pow as i32 + 1) / (*pow as f64 + 1.0)
            }
            Latency::PiecewiseLinear(pts) => piecewise_primitive(pts, x),
            // ∫₀^x du/(c−u) = ln(c) − ln(c−x).
            Latency::Mm1 { capacity } => capacity.ln() - (capacity - x).ln(),
            Latency::Scaled { factor, inner } => factor * inner.primitive(x),
        }
    }

    /// Evaluates the derivative `ℓ'(x)`.
    ///
    /// For piecewise-linear functions the right derivative is returned at
    /// breakpoints (and the left derivative at `x = 1`).
    pub fn derivative(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        match self {
            Latency::Constant(_) => 0.0,
            Latency::Affine { b, .. } => *b,
            Latency::Polynomial(c) => {
                // d/dx Σ c_i x^i = Σ_{i≥1} i·c_i x^{i−1}
                let mut res = 0.0;
                let mut pw = 1.0;
                for (i, ci) in c.iter().enumerate().skip(1) {
                    res += ci * i as f64 * pw;
                    pw *= x;
                }
                res
            }
            Latency::Bpr { t0, coef, pow } => {
                if *pow == 0 {
                    0.0
                } else {
                    t0 * coef * *pow as f64 * x.powi(*pow as i32 - 1)
                }
            }
            Latency::PiecewiseLinear(pts) => piecewise_slope(pts, x),
            Latency::Mm1 { capacity } => {
                let d = capacity - x;
                1.0 / (d * d)
            }
            Latency::Scaled { factor, inner } => factor * inner.derivative(x),
        }
    }

    /// An upper bound `β_e ≥ sup_{x ∈ [0,1]} ℓ'(x)`.
    ///
    /// Exact for every variant: polynomial and BPR derivatives with
    /// non-negative coefficients are maximised at `x = 1`; piecewise
    /// functions take the maximum segment slope.
    pub fn slope_bound(&self) -> f64 {
        match self {
            Latency::Constant(_) => 0.0,
            Latency::Affine { b, .. } => *b,
            Latency::Polynomial(c) => c
                .iter()
                .enumerate()
                .skip(1)
                .map(|(i, ci)| ci * i as f64)
                .sum(),
            Latency::Bpr { t0, coef, pow } => t0 * coef * *pow as f64,
            Latency::PiecewiseLinear(pts) => pts
                .windows(2)
                .map(|w| (w[1].1 - w[0].1) / (w[1].0 - w[0].0))
                .fold(0.0, f64::max),
            // ℓ' is increasing; the maximum sits at x = 1.
            Latency::Mm1 { capacity } => {
                let d = capacity - 1.0;
                1.0 / (d * d)
            }
            Latency::Scaled { factor, inner } => factor * inner.slope_bound(),
        }
    }

    /// Checks the paper's standing assumptions: continuity (structural),
    /// non-negativity and monotonicity on `[0, 1]`, finite slope.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidLatency`] describing the violated
    /// assumption.
    pub fn validate(&self) -> Result<(), NetError> {
        let bad = |msg: &str| Err(NetError::InvalidLatency(msg.to_string()));
        let finite = |v: f64| v.is_finite();
        match self {
            Latency::Constant(a) => {
                if !finite(*a) || *a < 0.0 {
                    return bad("constant latency must be finite and non-negative");
                }
            }
            Latency::Affine { a, b } => {
                if !finite(*a) || !finite(*b) || *a < 0.0 || *b < 0.0 {
                    return bad("affine latency requires a ≥ 0 and b ≥ 0");
                }
            }
            Latency::Polynomial(c) => {
                if c.is_empty() {
                    return bad("polynomial latency requires at least one coefficient");
                }
                if c.iter().any(|ci| !finite(*ci) || *ci < 0.0) {
                    return bad("polynomial latency requires non-negative coefficients");
                }
            }
            Latency::Bpr { t0, coef, pow } => {
                if !finite(*t0) || !finite(*coef) || *t0 < 0.0 || *coef < 0.0 {
                    return bad("BPR latency requires t0 ≥ 0 and coef ≥ 0");
                }
                if *pow == 0 {
                    return bad("BPR latency requires pow ≥ 1 (use Constant otherwise)");
                }
            }
            Latency::Mm1 { capacity } => {
                if !finite(*capacity) || *capacity <= 1.0 {
                    return bad("M/M/1 latency requires capacity > 1 so ℓ(1) is finite");
                }
            }
            Latency::Scaled { factor, inner } => {
                if !finite(*factor) || *factor < 0.0 {
                    return bad("scaled latency requires a finite factor ≥ 0");
                }
                inner.validate()?;
            }
            Latency::PiecewiseLinear(pts) => {
                if pts.len() < 2 {
                    return bad("piecewise-linear latency requires at least two breakpoints");
                }
                if pts.iter().any(|(x, y)| !finite(*x) || !finite(*y)) {
                    return bad("piecewise-linear breakpoints must be finite");
                }
                if (pts[0].0 - 0.0).abs() > 1e-12 || (pts[pts.len() - 1].0 - 1.0).abs() > 1e-12 {
                    return bad("piecewise-linear breakpoints must span [0, 1]");
                }
                for w in pts.windows(2) {
                    if w[1].0 <= w[0].0 {
                        return bad("piecewise-linear x-breakpoints must be strictly increasing");
                    }
                    if w[1].1 < w[0].1 {
                        return bad("piecewise-linear latency must be non-decreasing");
                    }
                }
                if pts[0].1 < 0.0 {
                    return bad("piecewise-linear latency must be non-negative");
                }
            }
        }
        Ok(())
    }

    /// Latency at full load, `ℓ(1)` — the per-edge ingredient of `ℓmax`.
    pub fn at_capacity(&self) -> f64 {
        self.eval(1.0)
    }

    /// Grid estimate of the elasticity bound
    /// `d = sup_{x ∈ (0,1]} x·ℓ'(x)/ℓ(x)`.
    ///
    /// Elasticity is the parameter the follow-up work (Fischer, Räcke,
    /// Vöcking, STOC 2006 — reference \[10\] of the paper) replaces the
    /// slope bound with: polynomials of degree `d` have elasticity `d`
    /// regardless of their coefficients, whereas their slope is
    /// unbounded. Returns `+∞` when the latency vanishes somewhere its
    /// derivative does not (e.g. the §3.2 oscillator).
    ///
    /// # Panics
    ///
    /// Panics if `grid == 0`.
    pub fn elasticity_bound_estimate(&self, grid: usize) -> f64 {
        assert!(grid > 0, "grid must be positive");
        let mut worst = 0.0_f64;
        for i in 1..=grid {
            let x = i as f64 / grid as f64;
            let l = self.eval(x);
            let d = self.derivative(x);
            if l <= 1e-300 {
                if d > 0.0 {
                    return f64::INFINITY;
                }
            } else {
                worst = worst.max(x * d / l);
            }
        }
        worst
    }
}

impl Default for Latency {
    fn default() -> Self {
        Latency::zero()
    }
}

impl fmt::Display for Latency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Latency::Constant(a) => write!(f, "{a}"),
            Latency::Affine { a, b } => write!(f, "{a} + {b}x"),
            Latency::Polynomial(c) => {
                let terms: Vec<String> = c
                    .iter()
                    .enumerate()
                    .filter(|(_, ci)| **ci != 0.0)
                    .map(|(i, ci)| match i {
                        0 => format!("{ci}"),
                        1 => format!("{ci}x"),
                        _ => format!("{ci}x^{i}"),
                    })
                    .collect();
                if terms.is_empty() {
                    write!(f, "0")
                } else {
                    write!(f, "{}", terms.join(" + "))
                }
            }
            Latency::Bpr { t0, coef, pow } => write!(f, "{t0}(1 + {coef}x^{pow})"),
            Latency::PiecewiseLinear(pts) => write!(f, "pwl{pts:?}"),
            Latency::Mm1 { capacity } => write!(f, "1/({capacity} - x)"),
            Latency::Scaled { factor, inner } => write!(f, "{factor}·({inner})"),
        }
    }
}

fn horner(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().rev().fold(0.0, |acc, c| acc * x + c)
}

fn piecewise_eval(pts: &[(f64, f64)], x: f64) -> f64 {
    debug_assert!(pts.len() >= 2);
    // Find the segment containing x; segments are [x_i, x_{i+1}].
    let mut i = match pts.binary_search_by(|p| p.0.partial_cmp(&x).expect("finite breakpoints")) {
        Ok(i) => return pts[i].1,
        Err(i) => i,
    };
    if i == 0 {
        i = 1;
    }
    if i >= pts.len() {
        i = pts.len() - 1;
    }
    let (x0, y0) = pts[i - 1];
    let (x1, y1) = pts[i];
    y0 + (y1 - y0) * (x - x0) / (x1 - x0)
}

fn piecewise_slope(pts: &[(f64, f64)], x: f64) -> f64 {
    debug_assert!(pts.len() >= 2);
    for w in pts.windows(2) {
        if x < w[1].0 {
            return (w[1].1 - w[0].1) / (w[1].0 - w[0].0);
        }
    }
    let n = pts.len();
    (pts[n - 1].1 - pts[n - 2].1) / (pts[n - 1].0 - pts[n - 2].0)
}

fn piecewise_primitive(pts: &[(f64, f64)], x: f64) -> f64 {
    debug_assert!(pts.len() >= 2);
    let mut acc = 0.0;
    for w in pts.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if x <= x0 {
            break;
        }
        let hi = x.min(x1);
        // Trapezoid area from x0 to hi under the segment.
        let y_hi = y0 + (y1 - y0) * (hi - x0) / (x1 - x0);
        acc += 0.5 * (y0 + y_hi) * (hi - x0);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {a} ≈ {b} (tol {tol})");
    }

    #[test]
    fn constant_eval_primitive_derivative() {
        let l = Latency::Constant(3.0);
        assert_eq!(l.eval(0.3), 3.0);
        assert_close(l.primitive(0.5), 1.5, EPS);
        assert_eq!(l.derivative(0.7), 0.0);
        assert_eq!(l.slope_bound(), 0.0);
    }

    #[test]
    fn affine_matches_closed_forms() {
        let l = Latency::Affine { a: 1.0, b: 2.0 };
        assert_close(l.eval(0.5), 2.0, EPS);
        assert_close(l.primitive(0.5), 0.5 + 0.25, EPS); // x + x²
        assert_eq!(l.derivative(0.1), 2.0);
        assert_eq!(l.slope_bound(), 2.0);
    }

    #[test]
    fn polynomial_matches_closed_forms() {
        // ℓ(x) = 1 + 2x + 3x²
        let l = Latency::Polynomial(vec![1.0, 2.0, 3.0]);
        assert_close(l.eval(0.5), 1.0 + 1.0 + 0.75, EPS);
        // ∫ = x + x² + x³
        assert_close(l.primitive(0.5), 0.5 + 0.25 + 0.125, EPS);
        // ℓ' = 2 + 6x
        assert_close(l.derivative(0.5), 5.0, EPS);
        assert_close(l.slope_bound(), 2.0 + 6.0, EPS);
    }

    #[test]
    fn bpr_matches_closed_forms() {
        let l = Latency::Bpr {
            t0: 1.0,
            coef: 0.15,
            pow: 4,
        };
        assert_close(l.eval(1.0), 1.15, EPS);
        // ∫ = t0 x + t0 coef x⁵/5
        assert_close(l.primitive(1.0), 1.0 + 0.15 / 5.0, EPS);
        assert_close(l.derivative(1.0), 0.6, EPS);
        assert_close(l.slope_bound(), 0.6, EPS);
    }

    #[test]
    fn oscillator_shape_matches_paper() {
        // ℓ(x) = max{0, β(x − ½)} with β = 4.
        let l = Latency::oscillator(4.0);
        assert_eq!(l.eval(0.0), 0.0);
        assert_eq!(l.eval(0.5), 0.0);
        assert_close(l.eval(0.75), 1.0, EPS);
        assert_close(l.eval(1.0), 2.0, EPS);
        assert_eq!(l.slope_bound(), 4.0);
        // ∫₀^1 = ∫_{1/2}^1 4(u−½) du = 4 · (1/8) = 1/2.
        assert_close(l.primitive(1.0), 0.5, EPS);
        // Derivative is 0 before the kink, β after.
        assert_eq!(l.derivative(0.25), 0.0);
        assert_close(l.derivative(0.75), 4.0, EPS);
    }

    #[test]
    fn piecewise_primitive_matches_quadrature() {
        let l = Latency::PiecewiseLinear(vec![(0.0, 1.0), (0.25, 1.0), (0.75, 3.0), (1.0, 3.0)]);
        l.validate().unwrap();
        for &x in &[0.0, 0.1, 0.25, 0.3, 0.5, 0.75, 0.9, 1.0] {
            let quad = quadrature(&l, x);
            assert_close(l.primitive(x), quad, 1e-6);
        }
    }

    #[test]
    fn primitive_matches_quadrature_for_all_families() {
        let fns = vec![
            Latency::Constant(2.0),
            Latency::Affine { a: 0.5, b: 3.0 },
            Latency::Polynomial(vec![0.1, 0.0, 2.0, 1.0]),
            Latency::Bpr {
                t0: 2.0,
                coef: 0.5,
                pow: 3,
            },
            Latency::oscillator(2.0),
        ];
        for l in fns {
            for &x in &[0.0, 0.2, 0.5, 0.8, 1.0] {
                assert_close(l.primitive(x), quadrature(&l, x), 1e-6);
            }
        }
    }

    #[test]
    fn derivative_matches_finite_differences() {
        let fns = vec![
            Latency::Affine { a: 0.5, b: 3.0 },
            Latency::Polynomial(vec![0.1, 0.0, 2.0, 1.0]),
            Latency::Bpr {
                t0: 2.0,
                coef: 0.5,
                pow: 3,
            },
        ];
        for l in fns {
            for &x in &[0.1, 0.3, 0.5, 0.7, 0.9] {
                let h = 1e-6;
                let fd = (l.eval(x + h) - l.eval(x - h)) / (2.0 * h);
                assert_close(l.derivative(x), fd, 1e-4);
            }
        }
    }

    #[test]
    fn slope_bound_dominates_sampled_derivatives() {
        let fns = vec![
            Latency::Constant(1.0),
            Latency::Affine { a: 0.0, b: 5.0 },
            Latency::Polynomial(vec![1.0, 1.0, 1.0, 1.0]),
            Latency::Bpr {
                t0: 1.0,
                coef: 2.0,
                pow: 4,
            },
            Latency::oscillator(3.0),
        ];
        for l in fns {
            let bound = l.slope_bound();
            for i in 0..=100 {
                let x = i as f64 / 100.0;
                assert!(
                    l.derivative(x) <= bound + 1e-9,
                    "slope bound violated for {l}"
                );
            }
        }
    }

    #[test]
    fn mm1_matches_closed_forms() {
        let l = Latency::Mm1 { capacity: 2.0 };
        l.validate().unwrap();
        assert_close(l.eval(0.0), 0.5, EPS);
        assert_close(l.eval(1.0), 1.0, EPS);
        // ∫₀^1 du/(2−u) = ln 2.
        assert_close(l.primitive(1.0), 2.0_f64.ln(), EPS);
        assert_close(l.derivative(0.0), 0.25, EPS);
        assert_close(l.slope_bound(), 1.0, EPS);
        // Primitive against quadrature on interior points.
        for &x in &[0.2, 0.5, 0.8] {
            assert_close(l.primitive(x), quadrature(&l, x), 1e-6);
        }
    }

    #[test]
    fn mm1_validate_rejects_saturating_capacity() {
        assert!(Latency::Mm1 { capacity: 1.0 }.validate().is_err());
        assert!(Latency::Mm1 { capacity: 0.5 }.validate().is_err());
        assert!(Latency::Mm1 { capacity: f64::NAN }.validate().is_err());
        assert!(Latency::Mm1 { capacity: 1.01 }.validate().is_ok());
    }

    #[test]
    fn mm1_slope_bound_explodes_near_saturation() {
        let loose = Latency::Mm1 { capacity: 3.0 };
        let tight = Latency::Mm1 { capacity: 1.05 };
        assert!(tight.slope_bound() > 100.0 * loose.slope_bound());
    }

    #[test]
    fn elasticity_of_monomials_is_their_degree() {
        // Elasticity of x^d is exactly d, independent of coefficients.
        for d in 1..=4usize {
            let mut coeffs = vec![0.0; d + 1];
            coeffs[d] = 7.5; // arbitrary positive coefficient
            let l = Latency::Polynomial(coeffs);
            let e = l.elasticity_bound_estimate(64);
            assert_close(e, d as f64, 1e-9);
        }
    }

    #[test]
    fn elasticity_of_affine_below_one() {
        let l = Latency::Affine { a: 1.0, b: 3.0 };
        // x·b/(a+bx) maximised at x = 1: 3/4.
        assert_close(l.elasticity_bound_estimate(128), 0.75, 1e-9);
    }

    #[test]
    fn elasticity_infinite_for_oscillator() {
        // ℓ vanishes on [0, ½] while ℓ' = β beyond the kink.
        let l = Latency::oscillator(2.0);
        assert_eq!(l.elasticity_bound_estimate(64), f64::INFINITY);
    }

    #[test]
    fn elasticity_zero_for_constant() {
        assert_eq!(Latency::Constant(3.0).elasticity_bound_estimate(32), 0.0);
    }

    #[test]
    fn scaled_stays_in_family_for_closed_forms() {
        assert_eq!(Latency::Constant(2.0).scaled(3.0), Latency::Constant(6.0));
        assert_eq!(
            Latency::Affine { a: 1.0, b: 2.0 }.scaled(0.5),
            Latency::Affine { a: 0.5, b: 1.0 }
        );
        assert_eq!(
            Latency::Polynomial(vec![1.0, 2.0]).scaled(2.0),
            Latency::Polynomial(vec![2.0, 4.0])
        );
        assert_eq!(
            Latency::Bpr {
                t0: 1.0,
                coef: 0.15,
                pow: 4
            }
            .scaled(2.0),
            Latency::Bpr {
                t0: 2.0,
                coef: 0.15,
                pow: 4
            }
        );
        assert_eq!(
            Latency::oscillator(2.0).scaled(2.0),
            Latency::oscillator(4.0)
        );
    }

    #[test]
    fn scaled_matches_pointwise_product_for_all_families() {
        let fns = vec![
            Latency::Constant(2.0),
            Latency::Affine { a: 0.5, b: 3.0 },
            Latency::Polynomial(vec![0.1, 0.0, 2.0]),
            Latency::Bpr {
                t0: 2.0,
                coef: 0.5,
                pow: 3,
            },
            Latency::oscillator(2.0),
            Latency::Mm1 { capacity: 1.5 },
        ];
        for l in fns {
            let k = 2.5;
            let s = l.scaled(k);
            s.validate().unwrap();
            for &x in &[0.0, 0.25, 0.5, 0.75, 1.0] {
                assert_close(s.eval(x), k * l.eval(x), 1e-12);
                assert_close(s.primitive(x), k * l.primitive(x), 1e-12);
                assert_close(s.derivative(x), k * l.derivative(x), 1e-12);
            }
            assert_close(s.slope_bound(), k * l.slope_bound(), 1e-12);
            assert!(!format!("{s}").is_empty());
        }
    }

    #[test]
    fn scaling_a_scaled_latency_flattens() {
        let l = Latency::Mm1 { capacity: 2.0 }.scaled(2.0).scaled(3.0);
        match &l {
            Latency::Scaled { factor, inner } => {
                assert_close(*factor, 6.0, 1e-12);
                assert_eq!(**inner, Latency::Mm1 { capacity: 2.0 });
            }
            other => panic!("expected flattened Scaled, got {other:?}"),
        }
    }

    #[test]
    fn scaled_validate_rejects_bad_factor_and_inner() {
        assert!(Latency::Scaled {
            factor: f64::NAN,
            inner: Box::new(Latency::identity()),
        }
        .validate()
        .is_err());
        assert!(Latency::Scaled {
            factor: 1.0,
            inner: Box::new(Latency::Constant(-1.0)),
        }
        .validate()
        .is_err());
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaled_rejects_negative_factor() {
        let _ = Latency::identity().scaled(-1.0);
    }

    #[test]
    fn eval_clamps_to_unit_interval() {
        let l = Latency::identity();
        assert_eq!(l.eval(-0.5), 0.0);
        assert_eq!(l.eval(1.5), 1.0);
    }

    #[test]
    fn validate_accepts_paper_instances() {
        assert!(Latency::oscillator(1.0).validate().is_ok());
        assert!(Latency::identity().validate().is_ok());
        assert!(Latency::Constant(1.0).validate().is_ok());
    }

    #[test]
    fn validate_rejects_negative_constant() {
        assert!(Latency::Constant(-1.0).validate().is_err());
    }

    #[test]
    fn validate_rejects_decreasing_piecewise() {
        let l = Latency::PiecewiseLinear(vec![(0.0, 1.0), (1.0, 0.5)]);
        assert!(l.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_breakpoint_span() {
        let l = Latency::PiecewiseLinear(vec![(0.1, 0.0), (1.0, 1.0)]);
        assert!(l.validate().is_err());
        let l = Latency::PiecewiseLinear(vec![(0.0, 0.0), (0.9, 1.0)]);
        assert!(l.validate().is_err());
    }

    #[test]
    fn validate_rejects_empty_polynomial() {
        assert!(Latency::Polynomial(vec![]).validate().is_err());
    }

    #[test]
    fn validate_rejects_nan() {
        assert!(Latency::Constant(f64::NAN).validate().is_err());
        assert!(Latency::Affine {
            a: f64::INFINITY,
            b: 0.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn display_is_nonempty() {
        for l in [
            Latency::Constant(1.0),
            Latency::identity(),
            Latency::Polynomial(vec![1.0, 0.0, 2.0]),
            Latency::Bpr {
                t0: 1.0,
                coef: 1.0,
                pow: 2,
            },
            Latency::oscillator(1.0),
        ] {
            assert!(!format!("{l}").is_empty());
        }
    }

    /// Simpson-rule quadrature reference for primitives.
    fn quadrature(l: &Latency, x: f64) -> f64 {
        let n = 2000;
        let h = x / n as f64;
        if x == 0.0 {
            return 0.0;
        }
        let mut s = l.eval(0.0) + l.eval(x);
        for i in 1..n {
            let xi = i as f64 * h;
            s += if i % 2 == 1 { 4.0 } else { 2.0 } * l.eval(xi);
        }
        s * h / 3.0
    }
}
