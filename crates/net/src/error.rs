//! Error types for the Wardrop network substrate.

use std::error::Error;
use std::fmt;

/// Errors raised while constructing or validating Wardrop instances.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetError {
    /// A latency function violates the paper's standing assumptions
    /// (continuity, monotonicity, non-negativity, finite slope).
    InvalidLatency(String),
    /// A commodity is malformed (bad demand, identical endpoints, or
    /// endpoints outside the graph).
    InvalidCommodity(String),
    /// A commodity has no source–sink path.
    NoPath {
        /// Index of the offending commodity.
        commodity: usize,
    },
    /// Path enumeration exceeded the configured cap.
    TooManyPaths {
        /// Index of the offending commodity.
        commodity: usize,
        /// The cap that was exceeded.
        cap: usize,
    },
    /// The instance is structurally inconsistent (e.g. latency count
    /// differs from edge count).
    Inconsistent(String),
    /// A flow vector is infeasible for the instance.
    InfeasibleFlow(String),
    /// A fault-injection plan is malformed (NaN/negative probabilities,
    /// non-finite noise amplitudes, inverted outage windows, …).
    InvalidFault(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::InvalidLatency(msg) => write!(f, "invalid latency function: {msg}"),
            NetError::InvalidCommodity(msg) => write!(f, "invalid commodity: {msg}"),
            NetError::NoPath { commodity } => {
                write!(f, "commodity {commodity} has no source-sink path")
            }
            NetError::TooManyPaths { commodity, cap } => write!(
                f,
                "commodity {commodity} has more than {cap} simple paths; raise the cap or shrink the network"
            ),
            NetError::Inconsistent(msg) => write!(f, "inconsistent instance: {msg}"),
            NetError::InfeasibleFlow(msg) => write!(f, "infeasible flow: {msg}"),
            NetError::InvalidFault(msg) => write!(f, "invalid fault plan: {msg}"),
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(NetError, &str)> = vec![
            (NetError::InvalidLatency("x".into()), "latency"),
            (NetError::InvalidCommodity("x".into()), "commodity"),
            (NetError::NoPath { commodity: 3 }, "commodity 3"),
            (
                NetError::TooManyPaths {
                    commodity: 1,
                    cap: 10,
                },
                "10",
            ),
            (NetError::Inconsistent("x".into()), "inconsistent"),
            (NetError::InfeasibleFlow("x".into()), "infeasible"),
            (NetError::InvalidFault("x".into()), "fault"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg} should contain {needle}");
        }
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync>() {}
        assert_error::<NetError>();
    }
}
