//! Equilibrium notions: Wardrop, `(δ,ε)`, and weak `(δ,ε)` equilibria.
//!
//! * **Wardrop equilibrium** (Definition 1): every used path of a
//!   commodity has minimum latency within the commodity.
//! * **`(δ,ε)`-equilibrium** (Definition 3): the volume of agents on
//!   paths more than `δ` above their commodity's *minimum* latency is at
//!   most `ε`. This is the target of Theorem 6 (uniform sampling).
//! * **weak `(δ,ε)`-equilibrium** (Definition 4): the volume of agents on
//!   paths more than `δ` above their commodity's *average* latency `L_i`
//!   is at most `ε`. This is the target of Theorem 7 (proportional
//!   sampling); every `(δ,ε)`-equilibrium is also weak.

use crate::flow::FlowVec;
use crate::instance::Instance;

/// Volume of `δ`-unsatisfied agents: total flow on paths `P ∈ P_i` with
/// `ℓ_P(f) > ℓ^i_min + δ` (Definition 3).
pub fn unsatisfied_volume(instance: &Instance, flow: &FlowVec, delta: f64) -> f64 {
    let lp = flow.path_latencies(instance);
    let mins = flow.commodity_min_latencies(instance);
    unsatisfied_volume_from(instance, flow.values(), &lp, &mins, delta)
}

/// [`unsatisfied_volume`] from precomputed path latencies and
/// per-commodity minima (e.g. from an
/// [`EvalWorkspace`](crate::eval::EvalWorkspace)); allocation-free.
pub fn unsatisfied_volume_from(
    instance: &Instance,
    values: &[f64],
    path_latencies: &[f64],
    commodity_min: &[f64],
    delta: f64,
) -> f64 {
    let mut vol = 0.0;
    for (i, min_i) in commodity_min.iter().enumerate() {
        for p in instance.commodity_paths(i) {
            if path_latencies[p] > min_i + delta {
                vol += values[p];
            }
        }
    }
    vol
}

/// Volume of *weakly* `δ`-unsatisfied agents: total flow on paths with
/// `ℓ_P(f) > L_i(f) + δ` (Definition 4).
pub fn weakly_unsatisfied_volume(instance: &Instance, flow: &FlowVec, delta: f64) -> f64 {
    let lp = flow.path_latencies(instance);
    let avgs = flow.commodity_avg_latencies(instance);
    weakly_unsatisfied_volume_from(instance, flow.values(), &lp, &avgs, delta)
}

/// [`weakly_unsatisfied_volume`] from precomputed path latencies and
/// per-commodity averages; allocation-free.
pub fn weakly_unsatisfied_volume_from(
    instance: &Instance,
    values: &[f64],
    path_latencies: &[f64],
    commodity_avg: &[f64],
    delta: f64,
) -> f64 {
    let mut vol = 0.0;
    for (i, avg_i) in commodity_avg.iter().enumerate() {
        for p in instance.commodity_paths(i) {
            if path_latencies[p] > avg_i + delta {
                vol += values[p];
            }
        }
    }
    vol
}

/// Is `flow` at a `(δ, ε)`-equilibrium (Definition 3)?
pub fn is_approx_equilibrium(instance: &Instance, flow: &FlowVec, delta: f64, eps: f64) -> bool {
    unsatisfied_volume(instance, flow, delta) <= eps
}

/// Is `flow` at a weak `(δ, ε)`-equilibrium (Definition 4)?
pub fn is_weak_approx_equilibrium(
    instance: &Instance,
    flow: &FlowVec,
    delta: f64,
    eps: f64,
) -> bool {
    weakly_unsatisfied_volume(instance, flow, delta) <= eps
}

/// Is `flow` an (exact, up to `tol`) Wardrop equilibrium
/// (Definition 1)?
///
/// Checks that every path carrying more than `tol` flow has latency
/// within `tol` of its commodity's minimum.
pub fn is_wardrop_equilibrium(instance: &Instance, flow: &FlowVec, tol: f64) -> bool {
    let lp = flow.path_latencies(instance);
    let mins = flow.commodity_min_latencies(instance);
    for (i, min_i) in mins.iter().enumerate() {
        for p in instance.commodity_paths(i) {
            if flow.values()[p] > tol && lp[p] > min_i + tol {
                return false;
            }
        }
    }
    true
}

/// The maximum regret of any used path: `max_i max_{P: f_P > tol}
/// (ℓ_P − ℓ^i_min)`. Zero exactly at Wardrop equilibria.
pub fn max_regret(instance: &Instance, flow: &FlowVec, tol: f64) -> f64 {
    let lp = flow.path_latencies(instance);
    let mins = flow.commodity_min_latencies(instance);
    max_regret_from(instance, flow.values(), &lp, &mins, tol)
}

/// [`max_regret`] from precomputed path latencies and per-commodity
/// minima; allocation-free.
pub fn max_regret_from(
    instance: &Instance,
    values: &[f64],
    path_latencies: &[f64],
    commodity_min: &[f64],
    tol: f64,
) -> f64 {
    let mut worst = 0.0_f64;
    for (i, min_i) in commodity_min.iter().enumerate() {
        for p in instance.commodity_paths(i) {
            if values[p] > tol {
                worst = worst.max(path_latencies[p] - min_i);
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn pigou_equilibrium_detected() {
        let inst = builders::pigou();
        let eq = FlowVec::from_values(&inst, vec![1.0, 0.0]).unwrap();
        assert!(is_wardrop_equilibrium(&inst, &eq, 1e-9));
        assert_eq!(max_regret(&inst, &eq, 1e-9), 0.0);
    }

    #[test]
    fn pigou_non_equilibrium_detected() {
        let inst = builders::pigou();
        // Half the agents pay 1 while the x-link only costs 0.5.
        let f = FlowVec::from_values(&inst, vec![0.5, 0.5]).unwrap();
        assert!(!is_wardrop_equilibrium(&inst, &f, 1e-9));
        assert!((max_regret(&inst, &f, 1e-9) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unsatisfied_volume_counts_expensive_paths() {
        let inst = builders::pigou();
        let f = FlowVec::from_values(&inst, vec![0.5, 0.5]).unwrap();
        // ℓ₁ = 0.5, ℓ₂ = 1, min = 0.5. With δ = 0.4, path 2 (volume 0.5)
        // is unsatisfied; with δ = 0.6 nothing is.
        assert!((unsatisfied_volume(&inst, &f, 0.4) - 0.5).abs() < 1e-12);
        assert_eq!(unsatisfied_volume(&inst, &f, 0.6), 0.0);
    }

    #[test]
    fn approx_equilibrium_thresholds() {
        let inst = builders::pigou();
        let f = FlowVec::from_values(&inst, vec![0.5, 0.5]).unwrap();
        assert!(is_approx_equilibrium(&inst, &f, 0.4, 0.5));
        assert!(!is_approx_equilibrium(&inst, &f, 0.4, 0.4));
        assert!(is_approx_equilibrium(&inst, &f, 0.6, 0.0));
    }

    #[test]
    fn weak_equilibrium_is_weaker() {
        let inst = builders::pigou();
        let f = FlowVec::from_values(&inst, vec![0.5, 0.5]).unwrap();
        // L = 0.75; path 2 exceeds average by 0.25 only, so with
        // δ = 0.3 the flow is a weak (δ,0)-equilibrium but NOT a strict
        // (δ,ε)-one for ε < 0.5 (path 2 is 0.5 above the min).
        assert!(is_weak_approx_equilibrium(&inst, &f, 0.3, 0.0));
        assert!(!is_approx_equilibrium(&inst, &f, 0.3, 0.4));
    }

    #[test]
    fn strict_implies_weak() {
        let inst = builders::braess();
        for f in [FlowVec::uniform(&inst), FlowVec::concentrated(&inst)] {
            for delta in [0.0, 0.1, 0.5] {
                let strict = unsatisfied_volume(&inst, &f, delta);
                let weak = weakly_unsatisfied_volume(&inst, &f, delta);
                // ℓ^i_min ≤ L_i, so weakly unsatisfied ⊆ unsatisfied.
                assert!(weak <= strict + 1e-12);
            }
        }
    }

    #[test]
    fn unused_expensive_path_does_not_block_wardrop() {
        let inst = builders::pigou();
        // All flow on the constant link: ℓ₂ = 1, but ℓ₁(0) = 0 < 1, and
        // the used path is NOT minimal — not an equilibrium.
        let f = FlowVec::from_values(&inst, vec![0.0, 1.0]).unwrap();
        assert!(!is_wardrop_equilibrium(&inst, &f, 1e-9));
    }
}
