//! Shortest-path and random-path oracles over the graph.
//!
//! The best-reply oracle of the dynamics and the Frank–Wolfe linear
//! oracle both need minimum-latency source–sink paths. On the explicit
//! path arenas used everywhere else this is an argmin over enumerated
//! paths; this module provides the graph-side computation so results
//! can be cross-checked (and so callers with networks too large to
//! enumerate still have an oracle).
//!
//! Three oracles back the implicit-path engine
//! (`wardrop_core::edge_engine`):
//!
//! * [`dijkstra`] / [`DijkstraWorkspace`] — minimum-weight paths in
//!   `O(E log V)`; the workspace variant reuses its buffers so the
//!   per-phase best-reply probe of the edge-flow backend performs zero
//!   heap allocations in steady state;
//! * [`topological_order`] — Kahn's algorithm, doubling as the DAG
//!   check the implicit-path machinery requires;
//! * [`PathSampler`] — exact uniform sampling over *all* simple
//!   source–sink paths of a DAG via the path-counting DP, without ever
//!   materialising the path set.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::error::NetError;
use crate::graph::{EdgeId, Graph, NodeId};
use crate::rng::SplitMix64;

/// Result of a single-source Dijkstra run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<f64>,
    /// Incoming edge of each node on a shortest path tree (None for the
    /// source and unreachable nodes).
    pred: Vec<Option<EdgeId>>,
}

impl ShortestPaths {
    /// Distance from the source to `v` (`+∞` if unreachable).
    #[inline]
    pub fn distance(&self, v: NodeId) -> f64 {
        self.dist[v.index()]
    }

    /// The source node.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Returns true if `v` is reachable from the source.
    #[inline]
    pub fn is_reachable(&self, v: NodeId) -> bool {
        self.dist[v.index()].is_finite()
    }

    /// Reconstructs the shortest path to `sink` as an edge sequence.
    ///
    /// Returns `None` if `sink` is unreachable.
    pub fn path_to(&self, graph: &Graph, sink: NodeId) -> Option<Vec<EdgeId>> {
        if !self.is_reachable(sink) {
            return None;
        }
        let mut edges = Vec::new();
        let mut node = sink;
        while node != self.source {
            let e = self.pred[node.index()]?;
            edges.push(e);
            node = graph.edge(e).from;
        }
        edges.reverse();
        Some(edges)
    }
}

#[derive(Debug, PartialEq)]
struct HeapItem {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance (reverse), tie-break on node id for
        // determinism; distances are finite by construction.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("finite distances")
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Runs Dijkstra from `source` with per-edge weights.
///
/// # Panics
///
/// Panics if `weights.len() != graph.edge_count()`, or any weight is
/// negative or not finite.
pub fn dijkstra(graph: &Graph, source: NodeId, weights: &[f64]) -> ShortestPaths {
    assert_eq!(
        weights.len(),
        graph.edge_count(),
        "one weight per edge required"
    );
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be finite and non-negative"
    );
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<EdgeId>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapItem {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapItem { dist: d, node }) = heap.pop() {
        if settled[node.index()] {
            continue;
        }
        settled[node.index()] = true;
        for &e in graph.out_edges(node) {
            let edge = graph.edge(e);
            let nd = d + weights[e.index()];
            if nd < dist[edge.to.index()] {
                dist[edge.to.index()] = nd;
                pred[edge.to.index()] = Some(e);
                heap.push(HeapItem {
                    dist: nd,
                    node: edge.to,
                });
            }
        }
    }
    ShortestPaths { source, dist, pred }
}

/// Reusable Dijkstra state for repeated single-source runs.
///
/// [`dijkstra`] allocates its distance, predecessor and heap buffers on
/// every call; the implicit-path engine probes a best reply **every
/// phase**, so it keeps one workspace per simulation and reruns it
/// in-place. After the first [`run`](Self::run) on a given graph no
/// further heap allocations occur: the binary heap is pre-reserved for
/// the worst-case `E + 1` pushes (each edge relaxes at most once, plus
/// the source).
///
/// ```
/// use wardrop_net::builders;
/// use wardrop_net::shortest_path::DijkstraWorkspace;
///
/// let inst = builders::grid_network(3, 3, 7);
/// let weights = vec![1.0; inst.num_edges()];
/// let c = inst.commodities()[0];
/// let mut ws = DijkstraWorkspace::new();
/// ws.run(inst.graph(), c.source, &weights);
/// let mut path = Vec::new();
/// assert!(ws.path_into(inst.graph(), c.sink, &mut path));
/// assert_eq!(path.len(), 4); // 2+2 hops across the 3x3 grid
/// ```
#[derive(Debug, Default)]
pub struct DijkstraWorkspace {
    source: Option<NodeId>,
    dist: Vec<f64>,
    pred: Vec<Option<EdgeId>>,
    settled: Vec<bool>,
    heap: BinaryHeap<HeapItem>,
}

impl DijkstraWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs Dijkstra from `source`, reusing internal buffers.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != graph.edge_count()`, or any weight
    /// is negative or not finite — same contract as [`dijkstra`].
    pub fn run(&mut self, graph: &Graph, source: NodeId, weights: &[f64]) {
        assert_eq!(
            weights.len(),
            graph.edge_count(),
            "one weight per edge required"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let n = graph.node_count();
        self.dist.clear();
        self.dist.resize(n, f64::INFINITY);
        self.pred.clear();
        self.pred.resize(n, None);
        self.settled.clear();
        self.settled.resize(n, false);
        // At most one push per relaxed edge plus the source; reserving
        // up front keeps every subsequent push allocation-free.
        self.heap.reserve(graph.edge_count() + 1);
        self.source = Some(source);
        self.dist[source.index()] = 0.0;
        self.heap.push(HeapItem {
            dist: 0.0,
            node: source,
        });
        while let Some(HeapItem { dist: d, node }) = self.heap.pop() {
            if self.settled[node.index()] {
                continue;
            }
            self.settled[node.index()] = true;
            for &e in graph.out_edges(node) {
                let edge = graph.edge(e);
                let nd = d + weights[e.index()];
                if nd < self.dist[edge.to.index()] {
                    self.dist[edge.to.index()] = nd;
                    self.pred[edge.to.index()] = Some(e);
                    self.heap.push(HeapItem {
                        dist: nd,
                        node: edge.to,
                    });
                }
            }
        }
    }

    /// Distance from the last run's source to `v` (`+∞` if
    /// unreachable).
    ///
    /// # Panics
    ///
    /// Panics if no run has been performed yet.
    #[inline]
    pub fn distance(&self, v: NodeId) -> f64 {
        assert!(self.source.is_some(), "run the workspace first");
        self.dist[v.index()]
    }

    /// Returns true if `v` was reachable in the last run.
    #[inline]
    pub fn is_reachable(&self, v: NodeId) -> bool {
        self.source.is_some() && self.dist[v.index()].is_finite()
    }

    /// Writes the shortest path to `sink` into `out` (source-to-sink
    /// edge order), returning false if `sink` is unreachable.
    ///
    /// `out` is cleared first; with enough capacity the reconstruction
    /// performs no allocation.
    pub fn path_into(&self, graph: &Graph, sink: NodeId, out: &mut Vec<EdgeId>) -> bool {
        out.clear();
        let source = self.source.expect("run the workspace first");
        if !self.dist[sink.index()].is_finite() {
            return false;
        }
        let mut node = sink;
        while node != source {
            let Some(e) = self.pred[node.index()] else {
                return false;
            };
            out.push(e);
            node = graph.edge(e).from;
        }
        out.reverse();
        true
    }
}

/// Returns a topological order of the graph, or `None` if it contains
/// a directed cycle.
///
/// Kahn's algorithm with a LIFO frontier; the order is deterministic
/// for a given graph. This doubles as the acyclicity check required by
/// the implicit-path machinery ([`PathSampler`], edge-flow instances).
pub fn topological_order(graph: &Graph) -> Option<Vec<NodeId>> {
    let n = graph.node_count();
    let mut indegree = vec![0usize; n];
    for (_, edge) in graph.edges() {
        indegree[edge.to.index()] += 1;
    }
    let mut frontier: Vec<NodeId> = graph.nodes().filter(|v| indegree[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = frontier.pop() {
        order.push(v);
        for &e in graph.out_edges(v) {
            let head = graph.edge(e).to;
            indegree[head.index()] -= 1;
            if indegree[head.index()] == 0 {
                frontier.push(head);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Exact uniform sampling over all simple source–sink paths of a DAG.
///
/// The constructor runs the classic path-counting dynamic program —
/// `count(v)` = number of `v → sink` paths, computed in reverse
/// topological order — and sampling walks forward from the source,
/// choosing each out-edge `e` with probability
/// `count(head(e)) / count(tail(e))`. Every simple source–sink path is
/// produced with probability exactly `1 / count(source)`, without ever
/// materialising the path set (grid_14x14 has 10,400,600 of them).
///
/// Counts are held as `f64`: exact for any graph with fewer than 2⁵³
/// source–sink paths, which covers every grid this crate can
/// meaningfully simulate.
///
/// ```
/// use wardrop_net::builders;
/// use wardrop_net::rng::SplitMix64;
/// use wardrop_net::shortest_path::PathSampler;
///
/// let inst = builders::grid_network(3, 3, 7);
/// let c = inst.commodities()[0];
/// let sampler = PathSampler::new(inst.graph(), c.source, c.sink).unwrap();
/// assert_eq!(sampler.path_count(), 6.0); // C(4, 2)
/// let mut rng = SplitMix64::new(42);
/// let path = sampler.sample(inst.graph(), &mut rng);
/// assert_eq!(path.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct PathSampler {
    source: NodeId,
    sink: NodeId,
    counts: Vec<f64>,
}

impl PathSampler {
    /// Builds the path-counting table for `source → sink` sampling.
    ///
    /// Fails with [`NetError::Inconsistent`] if the graph has a
    /// directed cycle (uniform path sampling is only defined on DAGs).
    pub fn new(graph: &Graph, source: NodeId, sink: NodeId) -> Result<Self, NetError> {
        let order = topological_order(graph).ok_or_else(|| {
            NetError::Inconsistent("random-path sampling requires an acyclic graph".into())
        })?;
        let mut counts = vec![0.0; graph.node_count()];
        counts[sink.index()] = 1.0;
        for v in order.iter().rev() {
            if *v == sink {
                continue;
            }
            let mut c = 0.0;
            for &e in graph.out_edges(*v) {
                c += counts[graph.edge(e).to.index()];
            }
            counts[v.index()] = c;
        }
        Ok(PathSampler {
            source,
            sink,
            counts,
        })
    }

    /// Number of simple source–sink paths (0 if the sink is
    /// unreachable).
    #[inline]
    pub fn path_count(&self) -> f64 {
        self.counts[self.source.index()]
    }

    /// Number of simple `v → sink` paths.
    #[inline]
    pub fn count_from(&self, v: NodeId) -> f64 {
        self.counts[v.index()]
    }

    /// Samples a uniform source–sink path into `out` (cleared first).
    ///
    /// # Panics
    ///
    /// Panics if [`path_count`](Self::path_count) is zero.
    pub fn sample_into(&self, graph: &Graph, rng: &mut SplitMix64, out: &mut Vec<EdgeId>) {
        assert!(
            self.path_count() > 0.0,
            "no source-sink path to sample from"
        );
        out.clear();
        let mut node = self.source;
        while node != self.sink {
            let total = self.counts[node.index()];
            let mut u = rng.next_unit() * total;
            let mut chosen = None;
            for &e in graph.out_edges(node) {
                let c = self.counts[graph.edge(e).to.index()];
                if c <= 0.0 {
                    continue;
                }
                // Keep the last admissible edge as a round-off
                // fallback so the walk can never stall.
                chosen = Some(e);
                if u < c {
                    break;
                }
                u -= c;
            }
            let e = chosen.expect("positive path count guarantees an admissible edge");
            out.push(e);
            node = graph.edge(e).to;
        }
    }

    /// Samples a uniform source–sink path as a fresh vector.
    pub fn sample(&self, graph: &Graph, rng: &mut SplitMix64) -> Vec<EdgeId> {
        let mut out = Vec::new();
        self.sample_into(graph, rng, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Graph, NodeId, NodeId, Vec<f64>) {
        // s -> a -> t (1 + 1), s -> b -> t (3 + 1), a -> b chord (0.5).
        let mut g = Graph::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a); // 0: 1
        g.add_edge(s, b); // 1: 3
        g.add_edge(a, t); // 2: 1
        g.add_edge(b, t); // 3: 1
        g.add_edge(a, b); // 4: 0.5
        (g, s, t, vec![1.0, 3.0, 1.0, 1.0, 0.5])
    }

    #[test]
    fn finds_shortest_distances() {
        let (g, s, t, w) = diamond();
        let sp = dijkstra(&g, s, &w);
        assert_eq!(sp.distance(s), 0.0);
        assert_eq!(sp.distance(t), 2.0); // s-a-t
        assert_eq!(sp.distance(NodeId::from_index(2)), 1.5); // via chord
    }

    #[test]
    fn reconstructs_path() {
        let (g, s, t, w) = diamond();
        let sp = dijkstra(&g, s, &w);
        let path = sp.path_to(&g, t).unwrap();
        assert_eq!(path, vec![EdgeId::from_index(0), EdgeId::from_index(2)]);
    }

    #[test]
    fn unreachable_nodes_reported() {
        let mut g = Graph::new();
        let s = g.add_node();
        let island = g.add_node();
        let sp = dijkstra(&g, s, &[]);
        assert!(!sp.is_reachable(island));
        assert!(sp.path_to(&g, island).is_none());
        assert_eq!(sp.distance(island), f64::INFINITY);
    }

    #[test]
    fn zero_weight_edges_handled() {
        let (g, s, t, mut w) = diamond();
        w = w.iter().map(|_| 0.0).collect();
        let sp = dijkstra(&g, s, &w);
        assert_eq!(sp.distance(t), 0.0);
        assert!(sp.path_to(&g, t).is_some());
    }

    #[test]
    fn parallel_edges_pick_cheaper() {
        let mut g = Graph::new();
        let s = g.add_node();
        let t = g.add_node();
        let _e1 = g.add_edge(s, t);
        let e2 = g.add_edge(s, t);
        let sp = dijkstra(&g, s, &[5.0, 2.0]);
        assert_eq!(sp.distance(t), 2.0);
        assert_eq!(sp.path_to(&g, t).unwrap(), vec![e2]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        let (g, s, _, mut w) = diamond();
        w[0] = -1.0;
        let _ = dijkstra(&g, s, &w);
    }

    #[test]
    #[should_panic(expected = "one weight per edge")]
    fn weight_length_checked() {
        let (g, s, _, _) = diamond();
        let _ = dijkstra(&g, s, &[1.0]);
    }

    #[test]
    fn dijkstra_agrees_with_enumerated_paths() {
        // On an instance small enough to enumerate, the graph-side
        // shortest path must match the arena argmin.
        use crate::builders;
        use crate::flow::FlowVec;
        let inst = builders::grid_network(3, 3, 23);
        let f = FlowVec::uniform(&inst);
        let weights = f.edge_latencies(&inst);
        let lp = f.path_latencies(&inst);
        let c = inst.commodities()[0];
        let sp = dijkstra(inst.graph(), c.source, &weights);
        let best_enumerated = inst
            .commodity_paths(0)
            .map(|p| lp[p])
            .fold(f64::INFINITY, f64::min);
        assert!((sp.distance(c.sink) - best_enumerated).abs() < 1e-12);
    }

    #[test]
    fn workspace_matches_one_shot_dijkstra() {
        let (g, s, t, w) = diamond();
        let sp = dijkstra(&g, s, &w);
        let mut ws = DijkstraWorkspace::new();
        // Run twice with different weights to exercise buffer reuse.
        ws.run(&g, s, &[9.0; 5]);
        ws.run(&g, s, &w);
        for v in g.nodes() {
            assert_eq!(ws.distance(v).to_bits(), sp.distance(v).to_bits());
        }
        let mut path = Vec::new();
        assert!(ws.path_into(&g, t, &mut path));
        assert_eq!(path, sp.path_to(&g, t).unwrap());
    }

    #[test]
    fn workspace_reports_unreachable() {
        let mut g = Graph::new();
        let s = g.add_node();
        let island = g.add_node();
        let mut ws = DijkstraWorkspace::new();
        ws.run(&g, s, &[]);
        assert!(!ws.is_reachable(island));
        let mut path = vec![EdgeId::from_index(0)];
        assert!(!ws.path_into(&g, island, &mut path));
        assert!(path.is_empty());
    }

    #[test]
    fn topological_order_on_dag() {
        let (g, _, _, _) = diamond();
        let order = topological_order(&g).expect("diamond is a DAG");
        assert_eq!(order.len(), g.node_count());
        let mut position = vec![0usize; g.node_count()];
        for (i, v) in order.iter().enumerate() {
            position[v.index()] = i;
        }
        for (_, edge) in g.edges() {
            assert!(position[edge.from.index()] < position[edge.to.index()]);
        }
    }

    #[test]
    fn topological_order_rejects_cycles() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        g.add_edge(b, a);
        assert!(topological_order(&g).is_none());
    }

    #[test]
    fn sampler_counts_grid_paths() {
        use crate::builders;
        let inst = builders::grid_network(3, 4, 5);
        let c = inst.commodities()[0];
        let sampler = PathSampler::new(inst.graph(), c.source, c.sink).unwrap();
        // C(2+3, 2) = 10 monotone lattice paths; matches enumeration.
        assert_eq!(sampler.path_count(), inst.num_paths() as f64);
    }

    #[test]
    fn sampler_rejects_cycles() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        g.add_edge(b, a);
        assert!(matches!(
            PathSampler::new(&g, a, b),
            Err(NetError::Inconsistent(_))
        ));
    }

    #[test]
    fn sampler_paths_are_valid() {
        use crate::builders;
        use crate::path::Path;
        let inst = builders::grid_network(4, 4, 11);
        let c = inst.commodities()[0];
        let sampler = PathSampler::new(inst.graph(), c.source, c.sink).unwrap();
        let mut rng = SplitMix64::new(17);
        let mut buf = Vec::new();
        for _ in 0..50 {
            sampler.sample_into(inst.graph(), &mut rng, &mut buf);
            let p = Path::new(inst.graph(), buf.clone()).expect("sampled path is simple");
            assert_eq!(p.source(inst.graph()), c.source);
            assert_eq!(p.sink(inst.graph()), c.sink);
        }
    }
}
