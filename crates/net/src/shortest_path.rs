//! Dijkstra shortest paths under non-negative edge weights.
//!
//! The best-reply oracle of the dynamics and the Frank–Wolfe linear
//! oracle both need minimum-latency source–sink paths. On the explicit
//! path arenas used everywhere else this is an argmin over enumerated
//! paths; this module provides the graph-side computation so results
//! can be cross-checked (and so callers with networks too large to
//! enumerate still have an oracle).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{EdgeId, Graph, NodeId};

/// Result of a single-source Dijkstra run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<f64>,
    /// Incoming edge of each node on a shortest path tree (None for the
    /// source and unreachable nodes).
    pred: Vec<Option<EdgeId>>,
}

impl ShortestPaths {
    /// Distance from the source to `v` (`+∞` if unreachable).
    #[inline]
    pub fn distance(&self, v: NodeId) -> f64 {
        self.dist[v.index()]
    }

    /// The source node.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Returns true if `v` is reachable from the source.
    #[inline]
    pub fn is_reachable(&self, v: NodeId) -> bool {
        self.dist[v.index()].is_finite()
    }

    /// Reconstructs the shortest path to `sink` as an edge sequence.
    ///
    /// Returns `None` if `sink` is unreachable.
    pub fn path_to(&self, graph: &Graph, sink: NodeId) -> Option<Vec<EdgeId>> {
        if !self.is_reachable(sink) {
            return None;
        }
        let mut edges = Vec::new();
        let mut node = sink;
        while node != self.source {
            let e = self.pred[node.index()]?;
            edges.push(e);
            node = graph.edge(e).from;
        }
        edges.reverse();
        Some(edges)
    }
}

#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance (reverse), tie-break on node id for
        // determinism; distances are finite by construction.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("finite distances")
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Runs Dijkstra from `source` with per-edge weights.
///
/// # Panics
///
/// Panics if `weights.len() != graph.edge_count()`, or any weight is
/// negative or not finite.
pub fn dijkstra(graph: &Graph, source: NodeId, weights: &[f64]) -> ShortestPaths {
    assert_eq!(
        weights.len(),
        graph.edge_count(),
        "one weight per edge required"
    );
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be finite and non-negative"
    );
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<EdgeId>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapItem {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapItem { dist: d, node }) = heap.pop() {
        if settled[node.index()] {
            continue;
        }
        settled[node.index()] = true;
        for &e in graph.out_edges(node) {
            let edge = graph.edge(e);
            let nd = d + weights[e.index()];
            if nd < dist[edge.to.index()] {
                dist[edge.to.index()] = nd;
                pred[edge.to.index()] = Some(e);
                heap.push(HeapItem {
                    dist: nd,
                    node: edge.to,
                });
            }
        }
    }
    ShortestPaths { source, dist, pred }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Graph, NodeId, NodeId, Vec<f64>) {
        // s -> a -> t (1 + 1), s -> b -> t (3 + 1), a -> b chord (0.5).
        let mut g = Graph::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a); // 0: 1
        g.add_edge(s, b); // 1: 3
        g.add_edge(a, t); // 2: 1
        g.add_edge(b, t); // 3: 1
        g.add_edge(a, b); // 4: 0.5
        (g, s, t, vec![1.0, 3.0, 1.0, 1.0, 0.5])
    }

    #[test]
    fn finds_shortest_distances() {
        let (g, s, t, w) = diamond();
        let sp = dijkstra(&g, s, &w);
        assert_eq!(sp.distance(s), 0.0);
        assert_eq!(sp.distance(t), 2.0); // s-a-t
        assert_eq!(sp.distance(NodeId::from_index(2)), 1.5); // via chord
    }

    #[test]
    fn reconstructs_path() {
        let (g, s, t, w) = diamond();
        let sp = dijkstra(&g, s, &w);
        let path = sp.path_to(&g, t).unwrap();
        assert_eq!(path, vec![EdgeId::from_index(0), EdgeId::from_index(2)]);
    }

    #[test]
    fn unreachable_nodes_reported() {
        let mut g = Graph::new();
        let s = g.add_node();
        let island = g.add_node();
        let sp = dijkstra(&g, s, &[]);
        assert!(!sp.is_reachable(island));
        assert!(sp.path_to(&g, island).is_none());
        assert_eq!(sp.distance(island), f64::INFINITY);
    }

    #[test]
    fn zero_weight_edges_handled() {
        let (g, s, t, mut w) = diamond();
        w = w.iter().map(|_| 0.0).collect();
        let sp = dijkstra(&g, s, &w);
        assert_eq!(sp.distance(t), 0.0);
        assert!(sp.path_to(&g, t).is_some());
    }

    #[test]
    fn parallel_edges_pick_cheaper() {
        let mut g = Graph::new();
        let s = g.add_node();
        let t = g.add_node();
        let _e1 = g.add_edge(s, t);
        let e2 = g.add_edge(s, t);
        let sp = dijkstra(&g, s, &[5.0, 2.0]);
        assert_eq!(sp.distance(t), 2.0);
        assert_eq!(sp.path_to(&g, t).unwrap(), vec![e2]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        let (g, s, _, mut w) = diamond();
        w[0] = -1.0;
        let _ = dijkstra(&g, s, &w);
    }

    #[test]
    #[should_panic(expected = "one weight per edge")]
    fn weight_length_checked() {
        let (g, s, _, _) = diamond();
        let _ = dijkstra(&g, s, &[1.0]);
    }

    #[test]
    fn dijkstra_agrees_with_enumerated_paths() {
        // On an instance small enough to enumerate, the graph-side
        // shortest path must match the arena argmin.
        use crate::builders;
        use crate::flow::FlowVec;
        let inst = builders::grid_network(3, 3, 23);
        let f = FlowVec::uniform(&inst);
        let weights = f.edge_latencies(&inst);
        let lp = f.path_latencies(&inst);
        let c = inst.commodities()[0];
        let sp = dijkstra(inst.graph(), c.source, &weights);
        let best_enumerated = inst
            .commodity_paths(0)
            .map(|p| lp[p])
            .fold(f64::INFINITY, f64::min);
        assert!((sp.distance(c.sink) - best_enumerated).abs() < 1e-12);
    }
}
