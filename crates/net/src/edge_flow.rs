//! Path-free Wardrop instances for the implicit-path backend.
//!
//! An [`EdgeInstance`] carries the same data as an
//! [`Instance`] — graph, per-edge latency
//! functions, commodities — but performs **no path enumeration**: its
//! memory footprint is `O(V + E + k)` regardless of how many simple
//! source–sink paths the network admits. grid_14x14 has 364 edges but
//! 10,400,600 paths; the enumerated constructor cannot even allocate
//! its CSR arena, while the edge instance is a few kilobytes.
//!
//! The implicit-path engine (`wardrop_core::edge_engine`) works on top
//! of this type: it discovers a small *active* path set through the
//! oracles in [`crate::shortest_path`] and rebuilds restricted
//! enumerated instances around that set (column generation). The
//! validation performed here therefore mirrors `Instance` exactly —
//! plus two structural requirements of the oracles: the graph must be
//! **acyclic**, and every commodity's sink must be reachable from its
//! source.
//!
//! Mutation (`set_latency`, `scale_latency`, `set_demand`) follows the
//! semantics of the enumerated instance to the letter, so scenario
//! [`EventAction`]s apply identically on both backends.

use serde::{Deserialize, Serialize};

use crate::commodity::Commodity;
use crate::error::NetError;
use crate::graph::{EdgeId, Graph, NodeId};
use crate::instance::{Instance, DEMAND_TOLERANCE};
use crate::latency::Latency;
use crate::scenario::EventAction;
use crate::shortest_path::{topological_order, PathSampler};

/// A validated, path-free instance of the Wardrop routing game.
///
/// # Examples
///
/// ```
/// use wardrop_net::builders;
/// use wardrop_net::edge_flow::EdgeInstance;
///
/// // Same graph, latencies and commodity as grid_network(3, 3, 7) —
/// // but no path arena.
/// let edge = builders::grid_edge_network(3, 3, 7);
/// assert_eq!(edge.num_edges(), 12);
/// assert_eq!(edge.implicit_path_count(0), 6.0); // C(4, 2) paths
///
/// let enumerated = builders::grid_network(3, 3, 7);
/// let from_enum = EdgeInstance::from_instance(&enumerated).unwrap();
/// assert_eq!(from_enum.latencies(), edge.latencies());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdgeInstance {
    graph: Graph,
    latencies: Vec<Latency>,
    commodities: Vec<Commodity>,
    /// A topological order of the (acyclic) graph, cached for the
    /// longest-path bound and reusable by DAG consumers.
    topo: Vec<NodeId>,
    slope_bound: f64,
    latency_upper_bound: f64,
}

impl EdgeInstance {
    /// Builds and validates a path-free instance.
    ///
    /// # Errors
    ///
    /// * [`NetError::Inconsistent`] if `latencies.len() != edge count`,
    ///   there are no commodities, total demand is not 1 (within
    ///   [`DEMAND_TOLERANCE`]), or the graph has a directed cycle;
    /// * [`NetError::InvalidLatency`] / [`NetError::InvalidCommodity`]
    ///   as for [`Instance`];
    /// * [`NetError::NoPath`] if a commodity's sink is unreachable from
    ///   its source.
    pub fn new(
        graph: Graph,
        latencies: Vec<Latency>,
        commodities: Vec<Commodity>,
    ) -> Result<Self, NetError> {
        if latencies.len() != graph.edge_count() {
            return Err(NetError::Inconsistent(format!(
                "{} latencies for {} edges",
                latencies.len(),
                graph.edge_count()
            )));
        }
        for l in &latencies {
            l.validate()?;
        }
        if commodities.is_empty() {
            return Err(NetError::Inconsistent(
                "instance needs at least one commodity".into(),
            ));
        }
        for c in &commodities {
            c.validate(&graph)?;
        }
        let total_demand: f64 = commodities.iter().map(|c| c.demand).sum();
        if (total_demand - 1.0).abs() > DEMAND_TOLERANCE {
            return Err(NetError::Inconsistent(format!(
                "total demand must be 1 (paper normalisation), got {total_demand}"
            )));
        }
        let topo = topological_order(&graph).ok_or_else(|| {
            NetError::Inconsistent("implicit-path instances require an acyclic graph".into())
        })?;
        let slope_bound = latencies
            .iter()
            .map(Latency::slope_bound)
            .fold(0.0, f64::max);
        let latency_upper_bound =
            Self::longest_path_bound(&graph, &topo, &latencies, &commodities)?;
        Ok(EdgeInstance {
            graph,
            latencies,
            commodities,
            topo,
            slope_bound,
            latency_upper_bound,
        })
    }

    /// Converts an enumerated instance into its path-free counterpart.
    ///
    /// # Errors
    ///
    /// Fails if the enumerated instance's graph has a directed cycle
    /// (the path formulation tolerates cycles; the oracles do not).
    pub fn from_instance(instance: &Instance) -> Result<Self, NetError> {
        Self::new(
            instance.graph().clone(),
            instance.latencies().to_vec(),
            instance.commodities().to_vec(),
        )
    }

    /// `ℓmax` over implicit paths: for each commodity, the maximum
    /// weight of a source–sink path under at-capacity latencies
    /// `ℓ_e(1)`, computed by longest-path DP over the topological
    /// order; then the max over commodities. On a DAG this equals the
    /// enumerated `max_P Σ_{e ∈ P} ℓ_e(1)` restricted to commodity
    /// endpoints, and doubles as the reachability check.
    fn longest_path_bound(
        graph: &Graph,
        topo: &[NodeId],
        latencies: &[Latency],
        commodities: &[Commodity],
    ) -> Result<f64, NetError> {
        let mut bound = 0.0_f64;
        let mut best = vec![f64::NEG_INFINITY; graph.node_count()];
        for (i, c) in commodities.iter().enumerate() {
            best.fill(f64::NEG_INFINITY);
            best[c.source.index()] = 0.0;
            for v in topo {
                let b = best[v.index()];
                if b == f64::NEG_INFINITY {
                    continue;
                }
                for &e in graph.out_edges(*v) {
                    let head = graph.edge(e).to.index();
                    let cand = b + latencies[e.index()].at_capacity();
                    if cand > best[head] {
                        best[head] = cand;
                    }
                }
            }
            let sink_best = best[c.sink.index()];
            if sink_best == f64::NEG_INFINITY {
                return Err(NetError::NoPath { commodity: i });
            }
            bound = bound.max(sink_best);
        }
        Ok(bound)
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Latency function of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not an edge of the instance's graph.
    #[inline]
    pub fn latency(&self, e: EdgeId) -> &Latency {
        &self.latencies[e.index()]
    }

    /// All latency functions, indexed by edge.
    #[inline]
    pub fn latencies(&self) -> &[Latency] {
        &self.latencies
    }

    /// The commodities.
    #[inline]
    pub fn commodities(&self) -> &[Commodity] {
        &self.commodities
    }

    /// Number of commodities `k`.
    #[inline]
    pub fn num_commodities(&self) -> usize {
        self.commodities.len()
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.graph.edge_count()
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.graph.node_count()
    }

    /// The cached topological order of the graph.
    #[inline]
    pub fn topological_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Maximum latency slope `β = max_e sup ℓ'_e`.
    #[inline]
    pub fn slope_bound(&self) -> f64 {
        self.slope_bound
    }

    /// Upper bound `ℓmax` on any (implicit) path latency of any
    /// commodity, from the at-capacity longest-path DP.
    #[inline]
    pub fn latency_upper_bound(&self) -> f64 {
        self.latency_upper_bound
    }

    /// Number of simple source–sink paths of commodity `i`, counted by
    /// the DAG path-counting DP without enumeration (exact below 2⁵³).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn implicit_path_count(&self, i: usize) -> f64 {
        let c = self.commodities[i];
        PathSampler::new(&self.graph, c.source, c.sink)
            .expect("construction validated acyclicity")
            .path_count()
    }

    /// Total implicit path count across commodities.
    pub fn total_implicit_path_count(&self) -> f64 {
        (0..self.num_commodities())
            .map(|i| self.implicit_path_count(i))
            .sum()
    }

    /// Replaces the latency function of edge `e`, refreshing the slope
    /// and longest-path bounds. Same contract as
    /// [`Instance::set_latency`]; the refresh recomputes the DP (no
    /// cached per-path sums exist without a path arena).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidLatency`] for invalid latencies or
    /// [`NetError::Inconsistent`] for out-of-range edges; the instance
    /// is unchanged on error.
    pub fn set_latency(&mut self, e: EdgeId, latency: Latency) -> Result<(), NetError> {
        if e.index() >= self.graph.edge_count() {
            return Err(NetError::Inconsistent(format!(
                "edge {} out of range for {} edges",
                e.index(),
                self.graph.edge_count()
            )));
        }
        latency.validate()?;
        self.latencies[e.index()] = latency;
        self.slope_bound = self
            .latencies
            .iter()
            .map(Latency::slope_bound)
            .fold(0.0, f64::max);
        self.latency_upper_bound =
            Self::longest_path_bound(&self.graph, &self.topo, &self.latencies, &self.commodities)?;
        Ok(())
    }

    /// Scales the latency function of edge `e` by `factor` — same
    /// contract as [`Instance::scale_latency`].
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidLatency`] if `factor` is NaN,
    /// negative or non-finite; otherwise see
    /// [`EdgeInstance::set_latency`]. The instance is unchanged on
    /// error.
    pub fn scale_latency(&mut self, e: EdgeId, factor: f64) -> Result<(), NetError> {
        if e.index() >= self.graph.edge_count() {
            return Err(NetError::Inconsistent(format!(
                "edge {} out of range for {} edges",
                e.index(),
                self.graph.edge_count()
            )));
        }
        if !factor.is_finite() || factor < 0.0 {
            return Err(NetError::InvalidLatency(format!(
                "scale factor must be finite and non-negative, got {factor}"
            )));
        }
        let scaled = self.latencies[e.index()].scaled(factor);
        self.set_latency(e, scaled)
    }

    /// Sets the demand of commodity `i`, rescaling the others so
    /// `Σ_j r_j = 1` keeps holding — bit-for-bit the semantics of
    /// [`Instance::set_demand`], so scenario events applied to both
    /// backends produce identical demand vectors.
    ///
    /// # Errors
    ///
    /// See [`Instance::set_demand`].
    pub fn set_demand(&mut self, i: usize, demand: f64) -> Result<(), NetError> {
        let k = self.commodities.len();
        if i >= k {
            return Err(NetError::InvalidCommodity(format!(
                "commodity {i} out of range for {k} commodities"
            )));
        }
        if !demand.is_finite() || demand <= 0.0 {
            return Err(NetError::InvalidCommodity(format!(
                "demand must be positive and finite, got {demand}"
            )));
        }
        if k == 1 {
            if (demand - 1.0).abs() > DEMAND_TOLERANCE {
                return Err(NetError::InvalidCommodity(
                    "single-commodity demand is pinned to 1 by the paper's normalisation".into(),
                ));
            }
            self.commodities[0].demand = 1.0;
            return Ok(());
        }
        if demand >= 1.0 {
            return Err(NetError::InvalidCommodity(format!(
                "demand {demand} leaves no mass for the other {} commodities",
                k - 1
            )));
        }
        let old = self.commodities[i].demand;
        let others = 1.0 - old;
        debug_assert!(others > 0.0, "validated demands keep every r_j > 0");
        let scale = (1.0 - demand) / others;
        for (j, c) in self.commodities.iter_mut().enumerate() {
            if j == i {
                c.demand = demand;
            } else {
                c.demand *= scale;
            }
        }
        Ok(())
    }

    /// Applies a scenario event action — the edge-side mirror of
    /// [`EventAction::apply`], so the implicit-path engine can keep its
    /// `EdgeInstance` and its restricted enumerated instance in sync.
    ///
    /// # Errors
    ///
    /// Propagates the underlying mutator's error; the instance is
    /// unchanged on error.
    pub fn apply_action(&mut self, action: &EventAction) -> Result<(), NetError> {
        match action {
            EventAction::SetDemand { commodity, demand } => self.set_demand(*commodity, *demand),
            EventAction::SetLatency { edge, latency } => self.set_latency(*edge, latency.clone()),
            EventAction::ScaleLatency { edge, factor } => self.scale_latency(*edge, *factor),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn matches_enumerated_bounds_on_grids() {
        for seed in [3u64, 23, 99] {
            let inst = builders::grid_network(4, 4, seed);
            let edge = EdgeInstance::from_instance(&inst).unwrap();
            assert_eq!(edge.slope_bound().to_bits(), inst.slope_bound().to_bits());
            // Longest-path DP vs enumerated max over path sums: equal
            // up to summation order.
            assert!(
                (edge.latency_upper_bound() - inst.latency_upper_bound()).abs()
                    < 1e-12 * inst.latency_upper_bound().max(1.0)
            );
            assert_eq!(edge.implicit_path_count(0), inst.num_paths() as f64);
        }
    }

    #[test]
    fn rejects_cyclic_graphs() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        g.add_edge(b, a);
        let err = EdgeInstance::new(
            g,
            vec![Latency::identity(); 2],
            vec![Commodity::new(a, b, 1.0)],
        )
        .unwrap_err();
        assert!(matches!(err, NetError::Inconsistent(_)));
    }

    #[test]
    fn rejects_unreachable_sink() {
        let mut g = Graph::new();
        let s = g.add_node();
        let t = g.add_node();
        let u = g.add_node();
        g.add_edge(s, t);
        let err = EdgeInstance::new(
            g,
            vec![Latency::identity()],
            vec![Commodity::new(s, t, 0.5), Commodity::new(s, u, 0.5)],
        )
        .unwrap_err();
        assert_eq!(err, NetError::NoPath { commodity: 1 });
    }

    #[test]
    fn rejects_malformed_inputs_like_instance() {
        let mut g = Graph::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t);
        // Latency count mismatch.
        assert!(matches!(
            EdgeInstance::new(g.clone(), vec![], vec![Commodity::new(s, t, 1.0)]),
            Err(NetError::Inconsistent(_))
        ));
        // No commodities.
        assert!(matches!(
            EdgeInstance::new(g.clone(), vec![Latency::identity()], vec![]),
            Err(NetError::Inconsistent(_))
        ));
        // Demand normalisation.
        assert!(matches!(
            EdgeInstance::new(
                g,
                vec![Latency::identity()],
                vec![Commodity::new(s, t, 0.4)]
            ),
            Err(NetError::Inconsistent(_))
        ));
    }

    #[test]
    fn mutators_mirror_instance_semantics() {
        let mut inst = builders::multi_commodity_grid(3, 3, 5);
        let mut edge = EdgeInstance::from_instance(&inst).unwrap();
        let actions = [
            EventAction::ScaleLatency {
                edge: EdgeId::from_index(0),
                factor: 3.0,
            },
            EventAction::SetDemand {
                commodity: 0,
                demand: 0.7,
            },
            EventAction::SetLatency {
                edge: EdgeId::from_index(4),
                latency: Latency::Affine { a: 0.2, b: 2.0 },
            },
        ];
        for action in &actions {
            action.apply(&mut inst).unwrap();
            edge.apply_action(action).unwrap();
        }
        assert_eq!(edge.latencies(), inst.latencies());
        for (a, b) in edge.commodities().iter().zip(inst.commodities()) {
            assert_eq!(a.demand.to_bits(), b.demand.to_bits());
        }
        assert_eq!(edge.slope_bound().to_bits(), inst.slope_bound().to_bits());
        // Errors leave the edge instance untouched, matching Instance.
        assert!(edge.set_demand(0, 1.5).is_err());
        assert!(edge
            .set_latency(EdgeId::from_index(0), Latency::Constant(-1.0))
            .is_err());
        assert_eq!(edge.latencies(), inst.latencies());
    }

    #[test]
    fn grid_14x14_is_constructible() {
        // The acceptance-frontier topology: trivially cheap without a
        // path arena, unreachable for the enumerated constructor.
        let edge = builders::grid_edge_network(14, 14, 7);
        assert_eq!(edge.num_edges(), 2 * 14 * 13);
        assert_eq!(edge.implicit_path_count(0), 10_400_600.0); // C(26, 13)
    }
}
