//! The Beckmann–McGuire–Winsten potential and its phase decomposition.
//!
//! The potential `Φ(f) = Σ_e ∫₀^{f_e} ℓ_e(u) du` is the Lyapunov
//! function of the paper: its global minimisers are exactly the Wardrop
//! equilibria, and the convergence proofs (Lemmas 3 and 4) analyse how
//! `Φ` changes across one bulletin-board phase. This module computes
//!
//! * the exact potential (closed-form edge primitives),
//! * the **virtual potential gain** `V(f̂, f) = Σ_e ℓ_e(f̂) (f_e − f̂_e)`
//!   — the potential change agents "see" on the stale board (Eq. 8),
//! * the **error terms** `U_e = ∫_{f̂_e}^{f_e} (ℓ_e(u) − ℓ_e(f̂_e)) du`
//!   (Eq. 7), which account for latency drift within a phase,
//!
//! and verifies Lemma 3: `Φ(f) − Φ(f̂) = Σ_e U_e + V(f̂, f)` exactly.

use crate::flow::FlowVec;
use crate::instance::Instance;

/// The Beckmann–McGuire–Winsten potential `Φ(f)`.
///
/// # Examples
///
/// ```
/// use wardrop_net::{builders, flow::FlowVec, potential};
///
/// let inst = builders::pigou();
/// let f = FlowVec::from_values(&inst, vec![0.5, 0.5])?;
/// // Φ = ∫₀^½ u du + ∫₀^½ 1 du = 1/8 + 1/2
/// assert!((potential::potential(&inst, &f) - 0.625).abs() < 1e-12);
/// # Ok::<(), wardrop_net::error::NetError>(())
/// ```
pub fn potential(instance: &Instance, flow: &FlowVec) -> f64 {
    let fe = flow.edge_flows(instance);
    instance
        .latencies()
        .iter()
        .zip(&fe)
        .map(|(l, x)| l.primitive(*x))
        .sum()
}

/// Potential computed directly from edge flows.
pub fn potential_from_edge_flows(instance: &Instance, edge_flows: &[f64]) -> f64 {
    instance
        .latencies()
        .iter()
        .zip(edge_flows)
        .map(|(l, x)| l.primitive(*x))
        .sum()
}

/// The virtual potential gain `V(f̂, f) = Σ_e ℓ_e(f̂_e) (f_e − f̂_e)`.
///
/// This is the aggregate potential change *as seen on the stale bulletin
/// board* frozen at the phase start `f̂` (paper Eq. (8)). For the
/// α-smooth selfish policies of the paper it is always non-positive.
pub fn virtual_gain(instance: &Instance, start: &FlowVec, end: &FlowVec) -> f64 {
    let fe_hat = start.edge_flows(instance);
    let fe = end.edge_flows(instance);
    let le_hat: Vec<f64> = instance
        .latencies()
        .iter()
        .zip(&fe_hat)
        .map(|(l, x)| l.eval(*x))
        .collect();
    virtual_gain_from_edge(&fe_hat, &le_hat, &fe)
}

/// [`virtual_gain`] from precomputed edge quantities — `f̂_e`, the
/// posted latencies `ℓ_e(f̂_e)`, and the end-of-phase edge flows `f_e`;
/// allocation-free.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn virtual_gain_from_edge(
    start_edge_flows: &[f64],
    start_edge_latencies: &[f64],
    end_edge_flows: &[f64],
) -> f64 {
    assert_eq!(start_edge_flows.len(), end_edge_flows.len());
    assert_eq!(start_edge_flows.len(), start_edge_latencies.len());
    start_edge_latencies
        .iter()
        .zip(start_edge_flows.iter().zip(end_edge_flows))
        .map(|(lh, (xh, x))| lh * (x - xh))
        .sum()
}

/// The per-edge error terms `U_e = ∫_{f̂_e}^{f_e} (ℓ_e(u) − ℓ_e(f̂_e)) du`
/// of paper Eq. (7).
pub fn error_terms(instance: &Instance, start: &FlowVec, end: &FlowVec) -> Vec<f64> {
    let fe_hat = start.edge_flows(instance);
    let fe = end.edge_flows(instance);
    instance
        .latencies()
        .iter()
        .zip(fe_hat.iter().zip(&fe))
        .map(|(l, (xh, x))| l.primitive(*x) - l.primitive(*xh) - l.eval(*xh) * (x - xh))
        .collect()
}

/// Residual of the Lemma 3 identity
/// `Φ(f) − Φ(f̂) − Σ_e U_e − V(f̂, f)`.
///
/// Zero up to floating-point error for every pair of feasible flows;
/// exposed so tests and experiments can verify the decomposition
/// numerically.
pub fn lemma3_residual(instance: &Instance, start: &FlowVec, end: &FlowVec) -> f64 {
    let dphi = potential(instance, end) - potential(instance, start);
    let u: f64 = error_terms(instance, start, end).iter().sum();
    let v = virtual_gain(instance, start, end);
    dphi - u - v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn pigou_potential_closed_form() {
        let inst = builders::pigou();
        let f = FlowVec::from_values(&inst, vec![0.5, 0.5]).unwrap();
        assert!((potential(&inst, &f) - (0.125 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn potential_minimised_at_pigou_equilibrium() {
        // Pigou equilibrium routes everything on the ℓ(x) = x link
        // (latency 1 = constant link's latency). Potential at eq:
        // ∫₀¹ u du = 0.5. Any deviation increases... actually for Pigou
        // the potential minimiser is f₁ = 1: Φ(x) = x²/2 + (1 − x)·1,
        // dΦ/dx = x − 1 ≤ 0 on [0,1], so minimum at x = 1 with Φ = 0.5.
        let inst = builders::pigou();
        let eq = FlowVec::from_values(&inst, vec![1.0, 0.0]).unwrap();
        let phi_eq = potential(&inst, &eq);
        assert!((phi_eq - 0.5).abs() < 1e-12);
        for x in [0.0, 0.25, 0.5, 0.75, 0.99] {
            let f = FlowVec::from_values(&inst, vec![x, 1.0 - x]).unwrap();
            assert!(potential(&inst, &f) >= phi_eq - 1e-12);
        }
    }

    #[test]
    fn virtual_gain_zero_for_no_movement() {
        let inst = builders::braess();
        let f = FlowVec::uniform(&inst);
        assert_eq!(virtual_gain(&inst, &f, &f), 0.0);
    }

    #[test]
    fn virtual_gain_sign_matches_improvement_direction() {
        let inst = builders::pigou();
        // At f = (0.2, 0.8) the board shows ℓ₁ = 0.2 < ℓ₂ = 1. Moving
        // mass to link 1 is selfish and must have negative virtual gain.
        let start = FlowVec::from_values(&inst, vec![0.2, 0.8]).unwrap();
        let end = FlowVec::from_values(&inst, vec![0.5, 0.5]).unwrap();
        assert!(virtual_gain(&inst, &start, &end) < 0.0);
        // Moving mass the other way is anti-selfish: positive gain.
        let bad = FlowVec::from_values(&inst, vec![0.0, 1.0]).unwrap();
        assert!(virtual_gain(&inst, &start, &bad) > 0.0);
    }

    #[test]
    fn error_terms_nonnegative_for_nondecreasing_latencies() {
        // For monotone ℓ, ∫_{f̂}^{f} (ℓ(u) − ℓ(f̂)) du ≥ 0 in both
        // directions of movement (integrand and interval flip signs
        // together when f < f̂).
        let inst = builders::braess();
        let a = FlowVec::uniform(&inst);
        let b = FlowVec::concentrated(&inst);
        for u in error_terms(&inst, &a, &b) {
            assert!(u >= -1e-12);
        }
        for u in error_terms(&inst, &b, &a) {
            assert!(u >= -1e-12);
        }
    }

    #[test]
    fn lemma3_identity_holds_on_examples() {
        for inst in [
            builders::pigou(),
            builders::braess(),
            builders::two_link_oscillator(2.0),
        ] {
            let a = FlowVec::uniform(&inst);
            let b = FlowVec::concentrated(&inst);
            assert!(
                lemma3_residual(&inst, &a, &b).abs() < 1e-12,
                "Lemma 3 violated"
            );
            assert!(lemma3_residual(&inst, &b, &a).abs() < 1e-12);
        }
    }

    #[test]
    fn potential_from_edge_flows_agrees() {
        let inst = builders::braess();
        let f = FlowVec::uniform(&inst);
        let fe = f.edge_flows(&inst);
        assert!((potential(&inst, &f) - potential_from_edge_flows(&inst, &fe)).abs() < 1e-15);
    }
}
