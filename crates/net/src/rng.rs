//! Deterministic random-number utilities shared across the workspace.
//!
//! Every source of pseudo-randomness in the simulator is seeded and
//! reproducible: instance builders draw latencies from a seeded
//! [`StdRng`](rand::rngs::StdRng), and the engine's phase-length jitter
//! uses raw SplitMix64. Both bottom out in the single [`splitmix64`]
//! implementation (re-exported from the `rand` stand-in crate), so the
//! same seed always produces the same stream everywhere.

pub use rand::splitmix64;

/// A SplitMix64 output for `seed`, mapped to `[0, 1)` with 53 uniform
/// bits.
///
/// Stateless convenience for callers that index a virtual random
/// sequence directly (e.g. jitter for phase `i` uses
/// `splitmix_unit(seed + i)`), rather than advancing a stream.
#[inline]
pub fn splitmix_unit(seed: u64) -> f64 {
    let mut state = seed;
    (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64
}

/// A minimal SplitMix64 stream, for callers that want successive draws
/// without pulling in a full RNG.
///
/// # Examples
///
/// ```
/// use wardrop_net::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(9);
/// let mut b = SplitMix64::new(9);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let u = a.next_unit();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream seeded with `seed`.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// The next uniform sample in `[0, 1)`.
    #[inline]
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_samples_are_in_range_and_deterministic() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let u = splitmix_unit(seed);
            assert!((0.0..1.0).contains(&u), "seed {seed} gave {u}");
            assert_eq!(u, splitmix_unit(seed));
        }
    }

    #[test]
    fn unit_samples_vary_across_seeds() {
        let base = splitmix_unit(100);
        assert!((101..120).any(|s| (splitmix_unit(s) - base).abs() > 1e-6));
    }

    #[test]
    fn stream_matches_stateless_indexing() {
        // A stream from seed s produces the same first output as the
        // stateless helper (both advance the state once from s).
        let mut stream = SplitMix64::new(31);
        assert_eq!(stream.next_unit(), splitmix_unit(31));
    }

    #[test]
    fn stream_and_raw_function_agree() {
        let mut stream = SplitMix64::new(5);
        let mut state = 5u64;
        for _ in 0..10 {
            assert_eq!(stream.next_u64(), splitmix64(&mut state));
        }
    }
}
