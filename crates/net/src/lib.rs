//! # wardrop-net
//!
//! The Wardrop routing model substrate for the reproduction of
//! *Adaptive routing with stale information* (Fischer & Vöcking,
//! PODC 2005 / TCS 2009).
//!
//! This crate provides everything the paper's model assumes as given:
//!
//! * a directed [multigraph](graph::Graph) with latency functions
//!   [`ℓ_e : [0,1] → R≥0`](latency::Latency) that expose exact
//!   primitives, derivatives and slope bounds;
//! * [commodities](commodity::Commodity) and explicit
//!   [path](path::Path) sets (the path formulation of the game);
//! * validated [instances](instance::Instance) with the paper's derived
//!   constants `D`, `β` and `ℓmax`;
//! * path-[flow vectors](flow::FlowVec) with induced edge flows and
//!   latencies;
//! * a fused, allocation-free [evaluation workspace](eval::EvalWorkspace)
//!   over the instance's flat CSR path↔edge incidence, caching the
//!   `edge_flows → edge_latencies → path_latencies` chain for the
//!   simulation hot loop;
//! * shared [deterministic RNG utilities](rng) (SplitMix64);
//! * the Beckmann–McGuire–Winsten [potential] machinery with the
//!   virtual-gain / error-term decomposition of Lemma 3;
//! * the paper's [equilibrium notions](equilibrium) (Wardrop, `(δ,ε)`,
//!   weak `(δ,ε)`);
//! * canonical and random [instance builders](builders) (Pigou, Braess,
//!   the §3.2 oscillator, parallel links, grids, layered networks);
//! * non-stationary [scenarios](scenario): phase-indexed demand and
//!   latency [events](scenario::Event) applied through controlled
//!   instance mutation (`set_demand`, `set_latency`, `scale_latency`).
//!
//! # Examples
//!
//! ```
//! use wardrop_net::{builders, flow::FlowVec, potential, equilibrium};
//!
//! let inst = builders::pigou();
//! let f = FlowVec::from_values(&inst, vec![1.0, 0.0])?;
//! assert!(equilibrium::is_wardrop_equilibrium(&inst, &f, 1e-9));
//! assert!((potential::potential(&inst, &f) - 0.5).abs() < 1e-12);
//! # Ok::<(), wardrop_net::error::NetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builders;
pub mod commodity;
pub mod edge_flow;
pub mod equilibrium;
pub mod error;
pub mod eval;
pub mod flow;
pub mod graph;
pub mod instance;
pub mod latency;
pub mod path;
pub mod potential;
pub mod rng;
pub mod scenario;
pub mod shortest_path;

pub use commodity::Commodity;
pub use edge_flow::EdgeInstance;
pub use error::NetError;
pub use eval::{ChangeSet, DeltaEval, DeltaOutcome, DeltaStats, EvalWorkspace};
pub use flow::FlowVec;
pub use graph::{Edge, EdgeId, Graph, NodeId};
pub use instance::Instance;
pub use latency::Latency;
pub use path::{Path, PathId};
pub use scenario::{DemandSchedule, Event, EventAction, LatencyModulation, Scenario};
pub use shortest_path::{
    dijkstra, topological_order, DijkstraWorkspace, PathSampler, ShortestPaths,
};
