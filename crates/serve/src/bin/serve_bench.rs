//! Serve-layer benchmark: writes `BENCH_serve.json` (schema
//! `wardrop-serve/v1`) with the three staged measurements of
//! [`wardrop_serve::bench`] and enforces their acceptance invariants
//! in-binary:
//!
//! * nominal load: zero sheds, p99 present, checkpoint overhead < 1%
//!   of the phase budget;
//! * overload: typed shedding, zero crashes, the daemon answers after
//!   the storm;
//! * crash-recovery: exactly one crash and one restore, replay within
//!   two checkpoint intervals, trajectory bit-identical to an
//!   uninterrupted reference run.
//!
//! Usage:
//!
//! ```text
//! serve_bench [--smoke] [--out PATH] [--scratch DIR]
//! ```

use serde::Serialize;
use wardrop_serve::bench::{
    acceptance_failures, run_serve_bench, CrashStage, NominalStage, OverloadStage,
};

/// The schema version this binary emits.
const SCHEMA_VERSION: u32 = 1;

#[derive(Debug, Serialize)]
struct ServeBenchReport {
    schema: String,
    mode: String,
    nominal: NominalStage,
    overload: OverloadStage,
    crash: CrashStage,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let scratch = args
        .iter()
        .position(|a| a == "--scratch")
        .and_then(|i| args.get(i + 1))
        .map_or_else(std::env::temp_dir, std::path::PathBuf::from);

    let outcome = run_serve_bench(&scratch, smoke).expect("serve bench stages run cleanly");
    println!(
        "nominal    {:>8.0} queries/s  {:>10.0} events/s  p50 {:>6}µs  p99 {:>6}µs  \
         sheds {}  checkpoint overhead {:.3}%",
        outcome.nominal.queries_per_sec,
        outcome.nominal.events_per_sec,
        outcome.nominal.p50_us,
        outcome.nominal.p99_us,
        outcome.nominal.rejected,
        outcome.nominal.checkpoint_overhead_fraction * 100.0,
    );
    println!(
        "overload   offered {:<7} answered {:<7} shed {:<7} (queue-full {} / deadline {})  p99 {}µs",
        outcome.overload.offered,
        outcome.overload.answered,
        outcome.overload.rejected_total,
        outcome.overload.rejected_overload,
        outcome.overload.rejected_deadline,
        outcome.overload.p99_us,
    );
    println!(
        "crash      injected before phase {}  replayed {} phases (interval {})  \
         bit-identical: {}",
        outcome.crash.crash_phase,
        outcome.crash.replay_phases,
        outcome.crash.checkpoint_interval,
        outcome.crash.bit_identical,
    );

    let failures = acceptance_failures(&outcome);
    let report = ServeBenchReport {
        schema: format!("wardrop-serve/v{SCHEMA_VERSION}"),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        nominal: outcome.nominal,
        overload: outcome.overload,
        crash: outcome.crash,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write(&out_path, json + "\n").expect("write report");
    println!("wrote {out_path}");
    assert!(
        failures.is_empty(),
        "serve bench acceptance failed:\n  {}",
        failures.join("\n  ")
    );
}
