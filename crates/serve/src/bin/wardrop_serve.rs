//! `wardrop-serve` — the crash-safe routing-advice daemon.
//!
//! Serves batched route-advice queries for a registry scenario over a
//! Unix-domain socket (newline-delimited JSON, see
//! `wardrop_serve::protocol`), with checkpoint/restore, watchdog
//! supervision and graceful degradation. Runs until a `"Shutdown"`
//! request arrives on the socket (writing a final checkpoint) — or,
//! if the process is killed outright, resumes from the newest
//! checkpoint on the next start with the same `--checkpoint-dir`.
//!
//! Usage:
//!
//! ```text
//! wardrop_serve --socket PATH [--scenario NAME] [--checkpoint-dir DIR]
//!               [--smoke] [--pace-ms N] [--checkpoint-interval N]
//!               [--max-staleness N] [--queue-capacity N]
//!               [--crash-at PHASE]...
//! ```
//!
//! `--crash-at` injects a panic before the named phase (repeatable) —
//! the supervised recovery path, exercisable from the command line.

use std::path::PathBuf;
use std::time::Duration;

use wardrop_serve::daemon::{CrashPlan, Daemon, ServeConfig};
use wardrop_serve::{serve_unix, CheckpointStore, EngineSpec};

struct Args {
    socket: PathBuf,
    scenario: String,
    checkpoint_dir: PathBuf,
    smoke: bool,
    pace_ms: u64,
    checkpoint_interval: usize,
    max_staleness: usize,
    queue_capacity: usize,
    crash_at: Vec<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        socket: PathBuf::new(),
        scenario: "rush-hour".to_string(),
        checkpoint_dir: PathBuf::from("wardrop-serve-checkpoints"),
        smoke: false,
        pace_ms: 5,
        checkpoint_interval: 32,
        max_staleness: 8,
        queue_capacity: 256,
        crash_at: Vec::new(),
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        raw.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} needs a value", raw[*i - 1]))
    };
    while i < raw.len() {
        match raw[i].as_str() {
            "--socket" => args.socket = PathBuf::from(value(&mut i)?),
            "--scenario" => args.scenario = value(&mut i)?,
            "--checkpoint-dir" => args.checkpoint_dir = PathBuf::from(value(&mut i)?),
            "--smoke" => args.smoke = true,
            "--pace-ms" => {
                args.pace_ms = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--pace-ms: {e}"))?;
            }
            "--checkpoint-interval" => {
                args.checkpoint_interval = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--checkpoint-interval: {e}"))?;
            }
            "--max-staleness" => {
                args.max_staleness = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--max-staleness: {e}"))?;
            }
            "--queue-capacity" => {
                args.queue_capacity = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--queue-capacity: {e}"))?;
            }
            "--crash-at" => {
                args.crash_at.push(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--crash-at: {e}"))?,
                );
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    if args.socket.as_os_str().is_empty() {
        return Err("--socket PATH is required".to_string());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("wardrop_serve: {message}");
            std::process::exit(2);
        }
    };
    let spec = match EngineSpec::from_registry(&args.scenario, args.smoke) {
        Some(spec) => spec,
        None => {
            eprintln!("wardrop_serve: unknown scenario `{}`", args.scenario);
            std::process::exit(2);
        }
    };
    let config = ServeConfig {
        checkpoint_interval: args.checkpoint_interval,
        queue_capacity: args.queue_capacity,
        max_staleness: args.max_staleness,
        phase_pace: (args.pace_ms > 0).then(|| Duration::from_millis(args.pace_ms)),
        ..ServeConfig::default()
    };
    let store = match CheckpointStore::open(&args.checkpoint_dir, config.checkpoint_keep) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("wardrop_serve: cannot open checkpoint dir: {e}");
            std::process::exit(1);
        }
    };
    let resumed = store.sequences().map(|s| !s.is_empty()).unwrap_or(false);
    let daemon = match Daemon::start(spec, config, store, CrashPlan::at(&args.crash_at)) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("wardrop_serve: cannot start daemon: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "wardrop-serve: scenario `{}`{} on {}",
        args.scenario,
        if resumed {
            " (resumed from checkpoint)"
        } else {
            ""
        },
        args.socket.display()
    );
    if let Err(e) = serve_unix(&daemon, &args.socket) {
        eprintln!("wardrop_serve: socket server failed: {e}");
        daemon.finish();
        std::process::exit(1);
    }
    let report = daemon.finish();
    println!(
        "wardrop-serve: stopped in mode {:?} after {} phases ({} queries, {} crashes, {} recoveries)",
        report.status.mode,
        report.status.engine_phase,
        report.stats.queries,
        report.stats.crashes,
        report.stats.recoveries,
    );
    if let Some(failure) = report.failure {
        eprintln!("wardrop_serve: terminal failure: {failure}");
        std::process::exit(1);
    }
}
