//! The serve benchmark: three staged measurements shared by the
//! `serve_bench` binary (which writes `BENCH_serve.json`) and
//! `bench_report`'s `serve` section.
//!
//! 1. **Nominal** — a paced daemon under the calm load profile. The
//!    invariant: *zero* queries shed, and the checkpoint machinery
//!    costs less than 1% of the phase budget (pace × phases).
//! 2. **Overload** — a deliberately starved daemon (tiny queue, an
//!    emulated per-query downstream cost) under the flash-crowd
//!    profile. The invariant: shedding is *typed* (`Overloaded` /
//!    `DeadlineExpired`), the process survives, and a probe query
//!    still answers afterwards.
//! 3. **Crash-recovery** — one injected crash mid-run. The
//!    invariants: the daemon recovers within two checkpoint intervals
//!    of replay, and the completed trajectory is bit-identical to an
//!    uninterrupted reference run.

use std::path::Path;
use std::time::Duration;

use serde::{Deserialize, Serialize};
use wardrop_core::policy::ReroutingPolicy;
use wardrop_core::{PhaseRecord, Simulation};
use wardrop_net::flow::FlowVec;

use crate::checkpoint::CheckpointStore;
use crate::daemon::{CrashPlan, Daemon, Mode, ServeConfig};
use crate::load::{drive_load, LoadProfile};
use crate::query::QueryRequest;
use crate::{EngineSpec, ServeError};

/// The nominal stage's measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NominalStage {
    /// Scenario served.
    pub scenario: String,
    /// Phases the engine completed during the stage.
    pub phases: u64,
    /// Wall-clock pace per phase, microseconds.
    pub phase_pace_us: u64,
    /// Phases between checkpoints.
    pub checkpoint_interval: usize,
    /// Queries offered by the load generator.
    pub offered: u64,
    /// Queries answered with advice.
    pub answered: u64,
    /// Queries shed (must be 0 at nominal load).
    pub rejected: u64,
    /// Answered queries per second.
    pub queries_per_sec: f64,
    /// Commodity-advice entries served per second.
    pub events_per_sec: f64,
    /// Median answer latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile answer latency, microseconds.
    pub p99_us: u64,
    /// Worst answer latency, microseconds.
    pub max_us: u64,
    /// Checkpoints written during the stage.
    pub checkpoints: u64,
    /// Mean wall-clock cost of one checkpoint write, microseconds.
    pub checkpoint_mean_us: u64,
    /// Amortised checkpoint cost over the phase budget: mean save
    /// cost divided by one checkpoint interval's budget
    /// (`interval × pace`) — what one phase pays for checkpointing in
    /// steady state, independent of stage duration. Asserted < 1%.
    pub checkpoint_overhead_fraction: f64,
}

/// The overload stage's measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverloadStage {
    /// Scenario served.
    pub scenario: String,
    /// Queue capacity the stage starves the daemon down to.
    pub queue_capacity: usize,
    /// Emulated per-query downstream cost, microseconds.
    pub service_floor_us: u64,
    /// Queries offered by the flash-crowd profile.
    pub offered: u64,
    /// Queries still answered.
    pub answered: u64,
    /// Typed sheds: queue at capacity.
    pub rejected_overload: u64,
    /// Typed sheds: deadline expired in the queue.
    pub rejected_deadline: u64,
    /// All typed sheds.
    pub rejected_total: u64,
    /// 99th-percentile answer latency, microseconds.
    pub p99_us: u64,
    /// Engine crashes during the stage (must be 0 — overload is not
    /// allowed to become a panic).
    pub crashes: u64,
    /// Whether the daemon still answered a probe query after the
    /// storm.
    pub survived: bool,
}

/// The crash-recovery stage's measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrashStage {
    /// Scenario served.
    pub scenario: String,
    /// Phase the crash was injected before.
    pub crash_phase: usize,
    /// Phases between checkpoints.
    pub checkpoint_interval: usize,
    /// Phases the run completed.
    pub phases_completed: usize,
    /// Crashes the supervisor caught (expected: exactly 1).
    pub crashes: u64,
    /// Checkpoint restores (expected: exactly 1).
    pub recoveries: u64,
    /// Phases replayed by the recovery.
    pub replay_phases: u64,
    /// Whether `replay_phases ≤ 2 × checkpoint_interval`.
    pub recovery_within_two_intervals: bool,
    /// Whether the recovered trajectory (every phase record and the
    /// final flow) is bit-identical to an uninterrupted reference
    /// run.
    pub bit_identical: bool,
}

/// The complete serve benchmark outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeBenchOutcome {
    /// Nominal-load stage.
    pub nominal: NominalStage,
    /// Overload stage.
    pub overload: OverloadStage,
    /// Crash-recovery stage.
    pub crash: CrashStage,
}

/// Runs an uninterrupted reference of `spec` (the daemon's own event
/// cadence: drain events due at the phase start, then step) and
/// returns every phase record plus the final flow.
pub fn reference_run(spec: &EngineSpec) -> (Vec<PhaseRecord>, Vec<f64>) {
    let policy = spec.policy.build(&spec.instance);
    let dynamics: &dyn ReroutingPolicy = &*policy;
    let mut sim = Simulation::new(
        &spec.instance,
        dynamics,
        &FlowVec::uniform(&spec.instance),
        &spec.config,
    );
    let events = spec.scenario.events();
    let mut cursor = 0usize;
    let mut records = Vec::new();
    loop {
        while cursor < events.len() && events[cursor].at_phase <= sim.phases_run() {
            sim.apply_event(&events[cursor].actions)
                .expect("reference event application");
            cursor += 1;
        }
        match sim.step() {
            Some(record) => records.push(record),
            None => break,
        }
    }
    let flow = sim.flow().values().to_vec();
    (records, flow)
}

fn registry_spec(name: &str, phase_cap: usize) -> Result<EngineSpec, ServeError> {
    let mut spec = EngineSpec::from_registry(name, true)
        .ok_or_else(|| ServeError::Protocol(format!("unknown scenario `{name}`")))?;
    spec.config.num_phases = spec.config.num_phases.min(phase_cap);
    Ok(spec)
}

fn fresh_dir(scratch: &Path, stage: &str) -> Result<std::path::PathBuf, ServeError> {
    let dir = scratch.join(format!("serve-bench-{}-{stage}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir)?;
    }
    Ok(dir)
}

/// Nominal stage: paced daemon, calm load, zero sheds expected.
pub fn run_nominal(scratch: &Path, smoke: bool) -> Result<NominalStage, ServeError> {
    let scenario = "rush-hour";
    let spec = registry_spec(scenario, if smoke { 400 } else { 1200 })?;
    let pace = Duration::from_millis(2);
    let interval = 256;
    let config = ServeConfig {
        checkpoint_interval: interval,
        phase_pace: Some(pace),
        ..ServeConfig::default()
    };
    let commodities = spec.instance.num_commodities();
    let store = CheckpointStore::open(fresh_dir(scratch, "nominal")?, config.checkpoint_keep)?;
    let daemon = Daemon::start(spec, config, store, CrashPlan::none())?;
    daemon.wait_live(Duration::from_secs(10));
    let mut profile = LoadProfile::nominal(commodities);
    profile.duration_ms = if smoke { 600 } else { 1500 };
    let load = drive_load(&daemon, &profile);
    let report = daemon.finish();
    let rejected = load.rejected_overload
        + load.rejected_deadline
        + load.rejected_stale
        + load.rejected_unavailable
        + load.bad_requests;
    let mean_save_nanos =
        report.stats.checkpoint_nanos as f64 / (report.stats.checkpoints.max(1)) as f64;
    let interval_budget_nanos = interval as f64 * pace.as_nanos() as f64;
    Ok(NominalStage {
        scenario: scenario.to_string(),
        phases: report.stats.phases,
        phase_pace_us: pace.as_micros() as u64,
        checkpoint_interval: interval,
        offered: load.offered,
        answered: load.answered,
        rejected,
        queries_per_sec: load.queries_per_sec,
        events_per_sec: load.events_per_sec,
        p50_us: load.p50_us,
        p99_us: load.p99_us,
        max_us: load.max_us,
        checkpoints: report.stats.checkpoints,
        checkpoint_mean_us: (mean_save_nanos / 1_000.0) as u64,
        checkpoint_overhead_fraction: mean_save_nanos / interval_budget_nanos,
    })
}

/// Overload stage: starved daemon, flash-crowd load, typed shedding
/// expected — and the daemon must outlive the storm.
pub fn run_overload(scratch: &Path, smoke: bool) -> Result<OverloadStage, ServeError> {
    let scenario = "rush-hour";
    let spec = registry_spec(scenario, 100_000)?;
    // More clients than queue slots: with every client blocked behind
    // the service floor, admission overflows and the queue-full rung
    // (`Overloaded`) fires alongside the deadline rung.
    let queue_capacity = 4;
    let service_floor = Duration::from_millis(3);
    let config = ServeConfig {
        queue_capacity,
        service_floor: Some(service_floor),
        phase_pace: Some(Duration::from_millis(1)),
        ..ServeConfig::default()
    };
    let commodities = spec.instance.num_commodities();
    let store = CheckpointStore::open(fresh_dir(scratch, "overload")?, config.checkpoint_keep)?;
    let daemon = Daemon::start(spec, config, store, CrashPlan::none())?;
    daemon.wait_live(Duration::from_secs(10));
    let mut profile = LoadProfile::flash_crowd(commodities);
    profile.clients = 4 * queue_capacity;
    profile.duration_ms = if smoke { 300 } else { 800 };
    let load = drive_load(&daemon, &profile);
    // The recovery criterion: a plain probe query still answers.
    let survived = daemon
        .query(QueryRequest {
            commodities: vec![],
            deadline_us: None,
        })
        .is_ok()
        && daemon.status().mode != Mode::Failed;
    let report = daemon.finish();
    Ok(OverloadStage {
        scenario: scenario.to_string(),
        queue_capacity,
        service_floor_us: service_floor.as_micros() as u64,
        offered: load.offered,
        answered: load.answered,
        rejected_overload: load.rejected_overload,
        rejected_deadline: load.rejected_deadline,
        rejected_total: load.rejected_overload
            + load.rejected_deadline
            + load.rejected_stale
            + load.rejected_unavailable,
        p99_us: load.p99_us,
        crashes: report.stats.crashes,
        survived,
    })
}

/// Crash-recovery stage: one injected crash, recovery within two
/// checkpoint intervals, trajectory bit-identical to the reference.
pub fn run_crash(scratch: &Path, smoke: bool) -> Result<CrashStage, ServeError> {
    // flaky-rush-hour carries a fault plan, so the restore path
    // re-hydrates fault state too, not just flows.
    let scenario = "flaky-rush-hour";
    let spec = registry_spec(scenario, if smoke { 120 } else { 240 })?;
    let interval = 25;
    let crash_phase = 60;
    let config = ServeConfig {
        checkpoint_interval: interval,
        phase_pace: Some(Duration::from_millis(1)),
        backoff_base: Duration::from_millis(2),
        ..ServeConfig::default()
    };
    let (reference_records, reference_flow) = reference_run(&spec);
    let store = CheckpointStore::open(fresh_dir(scratch, "crash")?, config.checkpoint_keep)?;
    let daemon = Daemon::start(spec, config, store, CrashPlan::at(&[crash_phase]))?;
    let final_mode = daemon.wait_engine(Duration::from_secs(60));
    let report = daemon.finish();
    let bit_identical = final_mode == Mode::Done
        && !report.replay_diverged
        && report.missing_records == 0
        && report.records == reference_records
        && report.final_flow.as_deref() == Some(reference_flow.as_slice());
    Ok(CrashStage {
        scenario: scenario.to_string(),
        crash_phase,
        checkpoint_interval: interval,
        phases_completed: report.records.len(),
        crashes: report.stats.crashes,
        recoveries: report.stats.recoveries,
        replay_phases: report.stats.last_replay_phases,
        recovery_within_two_intervals: report.stats.last_replay_phases <= 2 * interval as u64,
        bit_identical,
    })
}

/// Runs all three stages into one outcome. `scratch` hosts the
/// per-stage checkpoint directories (cleaned before each stage).
pub fn run_serve_bench(scratch: &Path, smoke: bool) -> Result<ServeBenchOutcome, ServeError> {
    Ok(ServeBenchOutcome {
        nominal: run_nominal(scratch, smoke)?,
        overload: run_overload(scratch, smoke)?,
        crash: run_crash(scratch, smoke)?,
    })
}

/// Asserts the acceptance invariants of an outcome, returning the
/// failures (empty: all good). Shared by `serve_bench` and the CI
/// smoke job so the gate cannot drift between them.
pub fn acceptance_failures(outcome: &ServeBenchOutcome) -> Vec<String> {
    let mut failures = Vec::new();
    let nominal = &outcome.nominal;
    if nominal.rejected != 0 {
        failures.push(format!(
            "nominal: {} queries shed below nominal load",
            nominal.rejected
        ));
    }
    if nominal.answered == 0 {
        failures.push("nominal: no queries answered".into());
    }
    if nominal.p99_us == 0 {
        failures.push("nominal: p99 missing".into());
    }
    if nominal.checkpoint_overhead_fraction >= 0.01 {
        failures.push(format!(
            "nominal: checkpoint overhead {:.2}% ≥ 1% of the phase budget",
            nominal.checkpoint_overhead_fraction * 100.0
        ));
    }
    let overload = &outcome.overload;
    if overload.rejected_total == 0 {
        failures.push("overload: the flash crowd was never shed (stage under-loaded)".into());
    }
    if overload.rejected_overload == 0 {
        failures.push("overload: the queue-full rung (Overloaded) never fired".into());
    }
    if overload.crashes != 0 {
        failures.push(format!(
            "overload: {} engine crashes under load",
            overload.crashes
        ));
    }
    if !overload.survived {
        failures.push("overload: daemon did not answer after the storm".into());
    }
    let crash = &outcome.crash;
    if crash.crashes != 1 || crash.recoveries != 1 {
        failures.push(format!(
            "crash: expected exactly one crash and one recovery, saw {} / {}",
            crash.crashes, crash.recoveries
        ));
    }
    if !crash.recovery_within_two_intervals {
        failures.push(format!(
            "crash: replayed {} phases (> 2 × {} interval)",
            crash.replay_phases, crash.checkpoint_interval
        ));
    }
    if !crash.bit_identical {
        failures.push("crash: recovered trajectory diverged from the reference".into());
    }
    failures
}
