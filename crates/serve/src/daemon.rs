//! The supervised routing daemon.
//!
//! Three threads cooperate around a shared state block:
//!
//! * the **engine thread** owns the [`Simulation`] and is its own
//!   supervisor: the phase loop runs under `catch_unwind`, and on a
//!   panic (organic or injected via [`CrashPlan`]) the supervisor
//!   restores the latest checkpoint, backs off exponentially (capped)
//!   and replays — publication is monotone, so already-served phases
//!   are re-executed silently until the crash point is re-reached and
//!   the daemon goes [`Mode::Live`] again. After more than
//!   `max_consecutive_crashes` crashes without a single completed
//!   phase in between, it parks in [`Mode::Failed`] with a typed
//!   [`ServeError::GiveUp`];
//! * the **responder thread** drains the bounded query queue and
//!   walks the degradation ladder of [`crate::query`];
//! * the **watchdog thread** checks the engine's heartbeat against a
//!   deadline and flags the daemon as stalled — queries then take the
//!   stale rung even though the engine thread still *exists* (a hung
//!   phase is indistinguishable from a dead one to a client).
//!
//! Determinism note: replay after a restore is bit-identical to the
//! original execution (pinned by `crash_resume_is_bit_identical` in
//! `wardrop-core` and re-checked live — every re-executed phase is
//! compared against the record it produced before the crash, and any
//! mismatch latches a `replay_diverged` flag in the report).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use wardrop_core::policy::ReroutingPolicy;
use wardrop_core::{PhaseRecord, Simulation};
use wardrop_net::flow::FlowVec;
use wardrop_net::scenario::EventAction;

use crate::checkpoint::CheckpointStore;
use crate::query::{CommodityAdvice, Freshness, QueryRequest, QueryResponse, Rejection};
use crate::{EngineSpec, ServeError};

/// Lock acquisition that survives a poisoned mutex — a crashed engine
/// thread must never take the query path down with it.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Service tuning. Durations are wall-clock; phase-indexed knobs
/// count bulletin-board refreshes.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Checkpoint every this many phases (≥ 1).
    pub checkpoint_interval: usize,
    /// Checkpoints retained on disk (≥ 2).
    pub checkpoint_keep: usize,
    /// Bounded query-queue capacity; admission beyond it sheds
    /// [`Rejection::Overloaded`].
    pub queue_capacity: usize,
    /// Give up (typed, not panicking) after more than this many
    /// consecutive crashes with no completed phase in between.
    pub max_consecutive_crashes: usize,
    /// First post-crash backoff; doubles per consecutive crash.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Staleness budget: answers may lag live by at most this many
    /// whole refresh intervals before shedding
    /// [`Rejection::TooStale`].
    pub max_staleness: usize,
    /// Wall-clock pacing per phase while live (`None`: free-run).
    /// Replay after a crash never paces — recovery runs at full
    /// speed. This is also the staleness unit: one phase of wall
    /// clock corresponds to one board refresh interval `T`.
    pub phase_pace: Option<Duration>,
    /// Watchdog deadline on the engine heartbeat; also the staleness
    /// unit when free-running.
    pub heartbeat_deadline: Duration,
    /// Emulated per-query downstream cost in the responder — a bench
    /// hook to push offered load past service capacity without
    /// needing planet-scale client fleets. `None` in production.
    pub service_floor: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            checkpoint_interval: 32,
            checkpoint_keep: 3,
            queue_capacity: 256,
            max_consecutive_crashes: 3,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(500),
            max_staleness: 8,
            phase_pace: None,
            heartbeat_deadline: Duration::from_millis(500),
            service_floor: None,
        }
    }
}

impl ServeConfig {
    /// Range-checks every knob.
    ///
    /// # Errors
    ///
    /// A message naming the first out-of-range knob.
    pub fn validate(&self) -> Result<(), String> {
        if self.checkpoint_interval == 0 {
            return Err("checkpoint interval must be ≥ 1 phase".into());
        }
        if self.queue_capacity == 0 {
            return Err("queue capacity must be ≥ 1".into());
        }
        if self.max_consecutive_crashes == 0 {
            return Err("crash budget must be ≥ 1".into());
        }
        if self.backoff_cap < self.backoff_base {
            return Err("backoff cap must be ≥ backoff base".into());
        }
        if self.heartbeat_deadline.is_zero() {
            return Err("heartbeat deadline must be positive".into());
        }
        if self.max_staleness == 0 {
            return Err("staleness budget must be ≥ 1 refresh".into());
        }
        Ok(())
    }
}

/// Seeded crash injection: the engine panics immediately before
/// executing each listed phase, **once per list entry** — the plan is
/// tracked outside the checkpointed state, exactly like an external
/// `kill -9`, so a replayed phase does not re-trigger a consumed
/// entry. Repeating a phase index crashes the daemon again at the
/// same spot after recovery (the give-up path's test harness).
#[derive(Debug, Clone, Default)]
pub struct CrashPlan {
    /// Phase indices to crash before, consumed front to back.
    pub at_phases: Vec<usize>,
}

impl CrashPlan {
    /// No injected crashes.
    pub fn none() -> Self {
        CrashPlan::default()
    }

    /// Crash before each listed phase (repeats allowed).
    pub fn at(phases: &[usize]) -> Self {
        CrashPlan {
            at_phases: phases.to_vec(),
        }
    }
}

/// The daemon's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// No phase has completed yet.
    Starting,
    /// Serving fresh boards at the configured pace.
    Live,
    /// Crashed and replaying from the latest checkpoint.
    Recovering,
    /// The run completed; the final board keeps answering.
    Done,
    /// The supervisor gave up; queries shed as unavailable.
    Failed,
}

impl Mode {
    fn as_u8(self) -> u8 {
        match self {
            Mode::Starting => 0,
            Mode::Live => 1,
            Mode::Recovering => 2,
            Mode::Done => 3,
            Mode::Failed => 4,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            1 => Mode::Live,
            2 => Mode::Recovering,
            3 => Mode::Done,
            4 => Mode::Failed,
            _ => Mode::Starting,
        }
    }
}

#[derive(Debug, Default)]
struct Stats {
    queries: AtomicU64,
    fresh: AtomicU64,
    stale: AtomicU64,
    shed_overload: AtomicU64,
    shed_deadline: AtomicU64,
    shed_stale: AtomicU64,
    shed_unavailable: AtomicU64,
    bad_requests: AtomicU64,
    crashes: AtomicU64,
    recoveries: AtomicU64,
    checkpoints: AtomicU64,
    checkpoint_nanos: AtomicU64,
    phases: AtomicU64,
    engine_nanos: AtomicU64,
    events_applied: AtomicU64,
    watchdog_trips: AtomicU64,
    last_replay_phases: AtomicU64,
}

/// A point-in-time copy of the daemon's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StatsReport {
    /// Queries that reached the responder.
    pub queries: u64,
    /// Answers served from a fresh board.
    pub fresh: u64,
    /// Answers served from a stale board (with a reported bound).
    pub stale: u64,
    /// Sheds: queue at capacity.
    pub shed_overload: u64,
    /// Sheds: deadline expired while queued.
    pub shed_deadline: u64,
    /// Sheds: board beyond the staleness budget.
    pub shed_stale: u64,
    /// Sheds: daemon unavailable (failed / not started / shut down).
    pub shed_unavailable: u64,
    /// Requests naming unknown commodities.
    pub bad_requests: u64,
    /// Engine crashes caught by the supervisor.
    pub crashes: u64,
    /// Successful checkpoint restores.
    pub recoveries: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Wall-clock nanoseconds spent writing checkpoints.
    pub checkpoint_nanos: u64,
    /// Phases executed (replays re-count).
    pub phases: u64,
    /// Wall-clock nanoseconds inside `Simulation::step`.
    pub engine_nanos: u64,
    /// Scenario + injected events applied (replays re-count).
    pub events_applied: u64,
    /// Times the watchdog flagged a missed heartbeat.
    pub watchdog_trips: u64,
    /// Phases replayed by the most recent recovery.
    pub last_replay_phases: u64,
}

/// A point-in-time view of the daemon's lifecycle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DaemonStatus {
    /// Lifecycle state.
    pub mode: Mode,
    /// Phases completed by the engine (monotone except across
    /// restores).
    pub engine_phase: usize,
    /// Phase of the most recently published board.
    pub published_phase: usize,
    /// Queries currently queued.
    pub queue_depth: usize,
    /// Whether the watchdog currently flags a missed heartbeat.
    pub stalled: bool,
}

/// The daemon's final accounting, returned by [`Daemon::finish`].
#[derive(Debug, Clone)]
pub struct DaemonReport {
    /// Final status.
    pub status: DaemonStatus,
    /// Final counters.
    pub stats: StatsReport,
    /// Every phase record produced, in phase order (replayed phases
    /// appear once — re-execution overwrites in place after the
    /// equality check).
    pub records: Vec<PhaseRecord>,
    /// Phase indices that never produced a record (empty on a
    /// completed run).
    pub missing_records: usize,
    /// Whether any replayed phase differed from its pre-crash record
    /// — `false` is the live half of the bit-identical-resume
    /// guarantee.
    pub replay_diverged: bool,
    /// Final path flows (present once the run completed).
    pub final_flow: Option<Vec<f64>>,
    /// The terminal error when the daemon failed.
    pub failure: Option<ServeError>,
}

struct Published {
    valid: bool,
    phase: usize,
    time: f64,
    at: Option<Instant>,
    advice: Vec<CommodityAdvice>,
}

struct Shared {
    config: ServeConfig,
    update_period: f64,
    published: Mutex<Published>,
    records: Mutex<Vec<Option<PhaseRecord>>>,
    external: Mutex<VecDeque<Vec<EventAction>>>,
    crash_plan: Mutex<Vec<usize>>,
    mode: AtomicU8,
    stalled: AtomicBool,
    shutdown: AtomicBool,
    replay_diverged: AtomicBool,
    engine_phase: AtomicUsize,
    replay_target: AtomicUsize,
    heartbeat_ms: AtomicU64,
    started: Instant,
    queue_depth: AtomicUsize,
    stats: Stats,
    failure: Mutex<Option<ServeError>>,
    final_flow: Mutex<Option<Vec<f64>>>,
}

impl Shared {
    fn mode(&self) -> Mode {
        Mode::from_u8(self.mode.load(Ordering::Acquire))
    }

    fn set_mode(&self, mode: Mode) {
        self.mode.store(mode.as_u8(), Ordering::Release);
    }

    fn staleness_unit(&self) -> Duration {
        self.config
            .phase_pace
            .unwrap_or(self.config.heartbeat_deadline)
    }

    fn beat(&self) {
        self.heartbeat_ms
            .store(self.started.elapsed().as_millis() as u64, Ordering::Release);
        self.stalled.store(false, Ordering::Release);
    }

    fn stats_report(&self) -> StatsReport {
        let s = &self.stats;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        StatsReport {
            queries: load(&s.queries),
            fresh: load(&s.fresh),
            stale: load(&s.stale),
            shed_overload: load(&s.shed_overload),
            shed_deadline: load(&s.shed_deadline),
            shed_stale: load(&s.shed_stale),
            shed_unavailable: load(&s.shed_unavailable),
            bad_requests: load(&s.bad_requests),
            crashes: load(&s.crashes),
            recoveries: load(&s.recoveries),
            checkpoints: load(&s.checkpoints),
            checkpoint_nanos: load(&s.checkpoint_nanos),
            phases: load(&s.phases),
            engine_nanos: load(&s.engine_nanos),
            events_applied: load(&s.events_applied),
            watchdog_trips: load(&s.watchdog_trips),
            last_replay_phases: load(&s.last_replay_phases),
        }
    }

    fn status(&self) -> DaemonStatus {
        DaemonStatus {
            mode: self.mode(),
            engine_phase: self.engine_phase.load(Ordering::Acquire),
            published_phase: lock(&self.published).phase,
            queue_depth: self.queue_depth.load(Ordering::Acquire),
            stalled: self.stalled.load(Ordering::Acquire),
        }
    }
}

struct Queued {
    request: QueryRequest,
    enqueued: Instant,
    reply: SyncSender<Result<QueryResponse, Rejection>>,
}

/// The running daemon: one engine, one responder, one watchdog.
pub struct Daemon {
    shared: Arc<Shared>,
    sender: Mutex<Option<SyncSender<Queued>>>,
    engine: Mutex<Option<JoinHandle<()>>>,
    responder: Mutex<Option<JoinHandle<()>>>,
    watchdog: Mutex<Option<JoinHandle<()>>>,
}

impl Daemon {
    /// Starts the daemon: spawns the supervised engine, the responder
    /// and the watchdog. If `store` already holds checkpoints (a
    /// previous *process* died), the run resumes from the newest
    /// readable one.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] for out-of-range configuration.
    pub fn start(
        spec: EngineSpec,
        config: ServeConfig,
        store: CheckpointStore,
        crash_plan: CrashPlan,
    ) -> Result<Daemon, ServeError> {
        config.validate().map_err(ServeError::Protocol)?;
        spec.config
            .check()
            .map_err(|m| ServeError::Protocol(format!("engine config: {m}")))?;
        let commodities = spec.instance.num_commodities();
        let shared = Arc::new(Shared {
            config: config.clone(),
            update_period: spec.config.update_period,
            published: Mutex::new(Published {
                valid: false,
                phase: 0,
                time: 0.0,
                at: None,
                advice: (0..commodities)
                    .map(|c| CommodityAdvice {
                        commodity: c,
                        best_path: 0,
                        latency: f64::NAN,
                    })
                    .collect(),
            }),
            records: Mutex::new(Vec::new()),
            external: Mutex::new(VecDeque::new()),
            crash_plan: Mutex::new(crash_plan.at_phases),
            mode: AtomicU8::new(Mode::Starting.as_u8()),
            stalled: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            replay_diverged: AtomicBool::new(false),
            engine_phase: AtomicUsize::new(0),
            replay_target: AtomicUsize::new(0),
            heartbeat_ms: AtomicU64::new(0),
            started: Instant::now(),
            queue_depth: AtomicUsize::new(0),
            stats: Stats::default(),
            failure: Mutex::new(None),
            final_flow: Mutex::new(None),
        });
        let (sender, receiver) = sync_channel::<Queued>(config.queue_capacity);

        let engine_shared = Arc::clone(&shared);
        let engine = thread::Builder::new()
            .name("wardrop-serve-engine".into())
            .spawn(move || engine_main(&engine_shared, &spec, &store))?;
        let responder_shared = Arc::clone(&shared);
        let responder = thread::Builder::new()
            .name("wardrop-serve-responder".into())
            .spawn(move || responder_main(&responder_shared, receiver))?;
        let watchdog_shared = Arc::clone(&shared);
        let watchdog = thread::Builder::new()
            .name("wardrop-serve-watchdog".into())
            .spawn(move || watchdog_main(&watchdog_shared))?;

        Ok(Daemon {
            shared,
            sender: Mutex::new(Some(sender)),
            engine: Mutex::new(Some(engine)),
            responder: Mutex::new(Some(responder)),
            watchdog: Mutex::new(Some(watchdog)),
        })
    }

    /// Submits a query and blocks for the answer (or typed shed).
    /// Admission is the queue: a full queue sheds immediately as
    /// [`Rejection::Overloaded`] without blocking the caller.
    pub fn query(&self, request: QueryRequest) -> Result<QueryResponse, Rejection> {
        let sender = lock(&self.sender).clone();
        let Some(sender) = sender else {
            self.shared
                .stats
                .shed_unavailable
                .fetch_add(1, Ordering::Relaxed);
            return Err(Rejection::Unavailable {
                reason: "daemon is shut down".into(),
            });
        };
        let (reply, answer) = sync_channel(1);
        let queued = Queued {
            request,
            enqueued: Instant::now(),
            reply,
        };
        match sender.try_send(queued) {
            Ok(()) => {
                self.shared.queue_depth.fetch_add(1, Ordering::AcqRel);
            }
            Err(TrySendError::Full(_)) => {
                self.shared
                    .stats
                    .shed_overload
                    .fetch_add(1, Ordering::Relaxed);
                return Err(Rejection::Overloaded {
                    capacity: self.shared.config.queue_capacity,
                });
            }
            Err(TrySendError::Disconnected(_)) => {
                self.shared
                    .stats
                    .shed_unavailable
                    .fetch_add(1, Ordering::Relaxed);
                return Err(Rejection::Unavailable {
                    reason: "responder terminated".into(),
                });
            }
        }
        answer.recv().unwrap_or(Err(Rejection::Unavailable {
            reason: "responder terminated".into(),
        }))
    }

    /// Queues a scenario event for application at the next phase
    /// boundary (only once live — events are not applied during
    /// replay). The engine checkpoints immediately after applying
    /// injected events so post-crash replays include them.
    pub fn inject_event(&self, actions: Vec<EventAction>) {
        lock(&self.shared.external).push_back(actions);
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> StatsReport {
        self.shared.stats_report()
    }

    /// Point-in-time lifecycle view.
    pub fn status(&self) -> DaemonStatus {
        self.shared.status()
    }

    /// Asks the engine to stop at the next phase boundary (a final
    /// checkpoint is written). Queries keep being answered from the
    /// last board until [`Daemon::finish`].
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    /// Blocks until the engine reaches [`Mode::Done`] or
    /// [`Mode::Failed`], or the timeout elapses. Returns the mode
    /// observed last.
    pub fn wait_engine(&self, timeout: Duration) -> Mode {
        let deadline = Instant::now() + timeout;
        loop {
            let mode = self.shared.mode();
            if matches!(mode, Mode::Done | Mode::Failed) || Instant::now() >= deadline {
                return mode;
            }
            thread::sleep(Duration::from_millis(1));
        }
    }

    /// Blocks until the daemon has published a board and gone live
    /// (also satisfied by `Done`/`Failed`), or the timeout elapses.
    pub fn wait_live(&self, timeout: Duration) -> Mode {
        let deadline = Instant::now() + timeout;
        loop {
            let mode = self.shared.mode();
            if !matches!(mode, Mode::Starting) || Instant::now() >= deadline {
                return mode;
            }
            thread::sleep(Duration::from_millis(1));
        }
    }

    /// Stops everything and returns the final accounting: requests
    /// shutdown, joins the engine, closes the queue, joins responder
    /// and watchdog.
    pub fn finish(&self) -> DaemonReport {
        self.request_shutdown();
        if let Some(handle) = lock(&self.engine).take() {
            let _ = handle.join();
        }
        // Dropping the last sender disconnects the responder's
        // receiver once the queue drains.
        *lock(&self.sender) = None;
        if let Some(handle) = lock(&self.responder).take() {
            let _ = handle.join();
        }
        if let Some(handle) = lock(&self.watchdog).take() {
            let _ = handle.join();
        }
        let slots = lock(&self.shared.records);
        let missing_records = slots.iter().filter(|r| r.is_none()).count();
        let records: Vec<PhaseRecord> = slots.iter().filter_map(|r| r.clone()).collect();
        drop(slots);
        DaemonReport {
            status: self.shared.status(),
            stats: self.shared.stats_report(),
            records,
            missing_records,
            replay_diverged: self.shared.replay_diverged.load(Ordering::Acquire),
            final_flow: lock(&self.shared.final_flow).clone(),
            failure: lock(&self.shared.failure).clone(),
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// The supervisor: runs the phase loop under `catch_unwind`,
/// restoring and replaying on crashes with capped exponential
/// backoff.
fn engine_main(shared: &Arc<Shared>, spec: &EngineSpec, store: &CheckpointStore) {
    let mut consecutive = 0usize;
    // A store left behind by a previous *process* resumes too.
    let mut resume = store.load_latest().ok().flatten().map(|(_, s)| s);
    loop {
        let phases_before = shared.stats.phases.load(Ordering::Relaxed);
        let attempt = resume.take();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_engine(shared, spec, store, attempt)
        }));
        match outcome {
            Ok(Ok(())) => {
                shared.set_mode(Mode::Done);
                return;
            }
            Ok(Err(error)) => {
                *lock(&shared.failure) = Some(error);
                shared.set_mode(Mode::Failed);
                return;
            }
            Err(payload) => {
                let message = panic_message(payload);
                shared.stats.crashes.fetch_add(1, Ordering::Relaxed);
                let progressed = shared.stats.phases.load(Ordering::Relaxed) > phases_before;
                consecutive = if progressed { 1 } else { consecutive + 1 };
                if consecutive > shared.config.max_consecutive_crashes {
                    *lock(&shared.failure) = Some(ServeError::GiveUp {
                        crashes: consecutive,
                        last: message,
                    });
                    shared.set_mode(Mode::Failed);
                    return;
                }
                shared.set_mode(Mode::Recovering);
                // Everything completed before the crash must be
                // re-reached before the daemon calls itself live.
                shared.replay_target.store(
                    shared.engine_phase.load(Ordering::Acquire),
                    Ordering::Release,
                );
                let backoff = shared
                    .config
                    .backoff_base
                    .saturating_mul(1u32 << (consecutive - 1).min(16))
                    .min(shared.config.backoff_cap);
                thread::sleep(backoff);
                match store.load_latest() {
                    Ok(found) => {
                        if let Some((seq, snapshot)) = found {
                            shared.stats.recoveries.fetch_add(1, Ordering::Relaxed);
                            shared.stats.last_replay_phases.store(
                                (shared.replay_target.load(Ordering::Acquire) as u64)
                                    .saturating_sub(seq as u64),
                                Ordering::Relaxed,
                            );
                            resume = Some(snapshot);
                        }
                        // Empty store: restart from scratch (the
                        // initial state *is* the phase-0 checkpoint).
                    }
                    Err(error) => {
                        *lock(&shared.failure) = Some(error);
                        shared.set_mode(Mode::Failed);
                        return;
                    }
                }
            }
        }
    }
}

/// One engine incarnation: build (or restore) the simulation, then
/// step phases until completion or shutdown, publishing advice and
/// writing checkpoints.
fn run_engine(
    shared: &Arc<Shared>,
    spec: &EngineSpec,
    store: &CheckpointStore,
    resume: Option<wardrop_core::snapshot::EngineSnapshot>,
) -> Result<(), ServeError> {
    // The policy is always built from the pristine instance — batch
    // runs construct it once at phase 0 and never rebuild it, so a
    // restore must not derive it from the event-mutated instance.
    let policy = spec.policy.build(&spec.instance);
    let dynamics: &dyn ReroutingPolicy = &*policy;
    let mut sim = match &resume {
        Some(snapshot) => Simulation::from_snapshot(dynamics, snapshot)?,
        None => Simulation::new(
            &spec.instance,
            dynamics,
            &FlowVec::uniform(&spec.instance),
            &spec.config,
        ),
    };
    let events = spec.scenario.events();
    // Scenario events with `at_phase < index` were applied before the
    // checkpoint at `index` was taken (the boundary drain applies
    // everything due before stepping). Injected events also bump the
    // engine epoch, so the cursor is recovered from the event list,
    // not from the epoch counter.
    let mut cursor = events
        .iter()
        .take_while(|e| e.at_phase < sim.phases_run())
        .count();
    if store.sequences()?.is_empty() {
        write_checkpoint(shared, store, &sim)?;
    }
    maybe_go_live(shared, sim.phases_run());
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            write_checkpoint(shared, store, &sim)?;
            return Ok(());
        }
        while cursor < events.len() && events[cursor].at_phase <= sim.phases_run() {
            sim.apply_event(&events[cursor].actions)
                .map_err(|e| ServeError::Event(e.to_string()))?;
            cursor += 1;
            shared.stats.events_applied.fetch_add(1, Ordering::Relaxed);
        }
        if shared.mode() == Mode::Live {
            let pending: Vec<Vec<EventAction>> = lock(&shared.external).drain(..).collect();
            if !pending.is_empty() {
                for actions in &pending {
                    sim.apply_event(actions)
                        .map_err(|e| ServeError::Event(e.to_string()))?;
                    shared.stats.events_applied.fetch_add(1, Ordering::Relaxed);
                }
                // Persist immediately: a replay that skipped an
                // injected event would diverge from served history.
                write_checkpoint(shared, store, &sim)?;
            }
        }
        let phase = sim.phases_run();
        {
            let mut plan = lock(&shared.crash_plan);
            if let Some(position) = plan.iter().position(|&p| p == phase) {
                plan.remove(position);
                drop(plan);
                panic!("injected crash before phase {phase}");
            }
        }
        let step_started = Instant::now();
        let Some(record) = sim.step() else {
            write_checkpoint(shared, store, &sim)?;
            *lock(&shared.final_flow) = Some(sim.flow().values().to_vec());
            return Ok(());
        };
        shared
            .stats
            .engine_nanos
            .fetch_add(step_started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        shared.stats.phases.fetch_add(1, Ordering::Relaxed);
        publish(shared, &sim, &record);
        shared
            .engine_phase
            .store(sim.phases_run(), Ordering::Release);
        shared.beat();
        maybe_go_live(shared, sim.phases_run());
        if sim.phases_run() % shared.config.checkpoint_interval == 0 {
            write_checkpoint(shared, store, &sim)?;
        }
        if shared.mode() == Mode::Live {
            if let Some(pace) = shared.config.phase_pace {
                thread::sleep(pace);
            }
        }
    }
}

fn maybe_go_live(shared: &Shared, phases_run: usize) {
    let mode = shared.mode();
    if matches!(mode, Mode::Starting | Mode::Recovering)
        && phases_run >= shared.replay_target.load(Ordering::Acquire)
    {
        shared.set_mode(Mode::Live);
    }
}

fn write_checkpoint(
    shared: &Shared,
    store: &CheckpointStore,
    sim: &Simulation<'_, dyn ReroutingPolicy>,
) -> Result<(), ServeError> {
    let started = Instant::now();
    store.save(sim.phases_run(), &sim.snapshot())?;
    shared.stats.checkpoints.fetch_add(1, Ordering::Relaxed);
    shared
        .stats
        .checkpoint_nanos
        .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
    Ok(())
}

fn publish(shared: &Shared, sim: &Simulation<'_, dyn ReroutingPolicy>, record: &PhaseRecord) {
    {
        let mut records = lock(&shared.records);
        if records.len() <= record.index {
            records.resize(record.index + 1, None);
        }
        if let Some(existing) = &records[record.index] {
            if existing != record {
                shared.replay_diverged.store(true, Ordering::Release);
            }
        }
        records[record.index] = Some(record.clone());
    }
    let mut published = lock(&shared.published);
    if published.valid && record.index < published.phase {
        // Replaying history: publication is monotone.
        return;
    }
    published.valid = true;
    published.phase = record.index;
    published.time = record.start_time;
    published.at = Some(Instant::now());
    let board = sim.board();
    let instance = sim.instance();
    for (commodity, slot) in published.advice.iter_mut().enumerate() {
        *slot = CommodityAdvice {
            commodity,
            best_path: board.best_reply(instance, commodity),
            latency: board.min_latency(instance, commodity),
        };
    }
}

fn responder_main(shared: &Arc<Shared>, receiver: Receiver<Queued>) {
    while let Ok(queued) = receiver.recv() {
        shared.queue_depth.fetch_sub(1, Ordering::AcqRel);
        if let Some(floor) = shared.config.service_floor {
            thread::sleep(floor);
        }
        let result = answer(shared, &queued);
        let _ = queued.reply.send(result);
    }
}

/// The degradation ladder (see [`crate::query`]).
fn answer(shared: &Shared, queued: &Queued) -> Result<QueryResponse, Rejection> {
    let shed = |counter: &AtomicU64, rejection: Rejection| {
        counter.fetch_add(1, Ordering::Relaxed);
        Err(rejection)
    };
    shared.stats.queries.fetch_add(1, Ordering::Relaxed);
    let waited = queued.enqueued.elapsed();
    let waited_us = waited.as_micros() as u64;
    if let Some(deadline_us) = queued.request.deadline_us {
        if waited_us > deadline_us {
            return shed(
                &shared.stats.shed_deadline,
                Rejection::DeadlineExpired { waited_us },
            );
        }
    }
    let mode = shared.mode();
    if mode == Mode::Failed {
        let reason = lock(&shared.failure)
            .as_ref()
            .map_or_else(|| "engine failed".to_string(), ToString::to_string);
        return shed(
            &shared.stats.shed_unavailable,
            Rejection::Unavailable { reason },
        );
    }
    let published = lock(&shared.published);
    if !published.valid {
        return shed(
            &shared.stats.shed_unavailable,
            Rejection::Unavailable {
                reason: "no board published yet".into(),
            },
        );
    }
    let missed_refreshes = match mode {
        // A completed run's final board is the converged answer.
        Mode::Done => 0,
        _ => {
            let unit = shared.staleness_unit();
            let elapsed = published.at.map(|at| at.elapsed()).unwrap_or_default();
            let mut behind = (elapsed.as_secs_f64() / unit.as_secs_f64()) as usize;
            if behind == 0 && shared.stalled.load(Ordering::Acquire) {
                behind = 1;
            }
            behind
        }
    };
    if missed_refreshes > shared.config.max_staleness {
        return shed(
            &shared.stats.shed_stale,
            Rejection::TooStale {
                missed_refreshes,
                budget: shared.config.max_staleness,
            },
        );
    }
    let advice = if queued.request.commodities.is_empty() {
        published.advice.clone()
    } else {
        let mut out = Vec::with_capacity(queued.request.commodities.len());
        for &commodity in &queued.request.commodities {
            match published.advice.get(commodity) {
                Some(slot) => out.push(*slot),
                None => {
                    return shed(
                        &shared.stats.bad_requests,
                        Rejection::BadRequest {
                            reason: format!(
                                "commodity {commodity} out of range ({} commodities)",
                                published.advice.len()
                            ),
                        },
                    )
                }
            }
        }
        out
    };
    let freshness = if missed_refreshes == 0 {
        shared.stats.fresh.fetch_add(1, Ordering::Relaxed);
        Freshness::Fresh
    } else {
        shared.stats.stale.fetch_add(1, Ordering::Relaxed);
        Freshness::Stale { missed_refreshes }
    };
    Ok(QueryResponse {
        advice,
        freshness,
        board_phase: published.phase,
        board_time: published.time,
        staleness_bound: (missed_refreshes as f64 + 1.0) * shared.update_period,
        queue_wait_us: waited_us,
    })
}

fn watchdog_main(shared: &Arc<Shared>) {
    let deadline_ms = shared.config.heartbeat_deadline.as_millis() as u64;
    let period = (shared.config.heartbeat_deadline / 4).max(Duration::from_millis(1));
    loop {
        if shared.shutdown.load(Ordering::Acquire)
            || matches!(shared.mode(), Mode::Done | Mode::Failed)
        {
            return;
        }
        thread::sleep(period);
        if shared.mode() != Mode::Live {
            continue;
        }
        let now_ms = shared.started.elapsed().as_millis() as u64;
        let beat = shared.heartbeat_ms.load(Ordering::Acquire);
        if now_ms.saturating_sub(beat) > deadline_ms && !shared.stalled.swap(true, Ordering::AcqRel)
        {
            shared.stats.watchdog_trips.fetch_add(1, Ordering::Relaxed);
        }
    }
}
