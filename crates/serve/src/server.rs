//! Unix-domain-socket front end.
//!
//! [`serve_unix`] binds a socket and serves the newline-delimited
//! JSON protocol of [`crate::protocol`] until a
//! [`crate::protocol::WireRequest::Shutdown`] arrives: the engine is
//! asked to stop (a
//! final checkpoint is written), the listener closes, and the call
//! returns. One thread per connection; reads run with a short timeout
//! so every handler notices shutdown within ~100 ms — the daemon
//! never needs to be killed to be stopped.

use crate::daemon::Daemon;
use crate::ServeError;

#[cfg(unix)]
mod unix_impl {
    use std::fs;
    use std::io::{BufRead, BufReader, ErrorKind, Write};
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::Path;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::thread;
    use std::time::Duration;

    use crate::daemon::Daemon;
    use crate::protocol::{decode_request, encode, WireRequest, WireResponse};
    use crate::ServeError;

    pub fn serve_unix(daemon: &Daemon, socket_path: &Path) -> Result<(), ServeError> {
        // A stale socket file from a crashed predecessor would make
        // bind fail; replacing it is part of the crash-safety story.
        let _ = fs::remove_file(socket_path);
        let listener = UnixListener::bind(socket_path)?;
        listener.set_nonblocking(true)?;
        let stop = AtomicBool::new(false);
        let outcome = thread::scope(|scope| -> Result<(), ServeError> {
            loop {
                if stop.load(Ordering::Acquire) {
                    return Ok(());
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let stop = &stop;
                        scope.spawn(move || handle_connection(daemon, stream, stop));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => {
                        stop.store(true, Ordering::Release);
                        return Err(e.into());
                    }
                }
            }
        });
        let _ = fs::remove_file(socket_path);
        outcome
    }

    fn handle_connection(daemon: &Daemon, stream: UnixStream, stop: &AtomicBool) {
        // Blocking reads poll the stop flag at this cadence.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = stream;
        let mut line = String::new();
        loop {
            if stop.load(Ordering::Acquire) {
                return;
            }
            match reader.read_line(&mut line) {
                Ok(0) => return,
                Ok(_) => {
                    let response = handle_line(daemon, &line, stop);
                    line.clear();
                    let encoded = match encode(&response) {
                        Ok(encoded) => encoded,
                        Err(_) => continue,
                    };
                    if writer.write_all(encoded.as_bytes()).is_err() || writer.flush().is_err() {
                        return;
                    }
                }
                // Timeout: keep any partial line buffered and poll
                // the stop flag again.
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(_) => return,
            }
        }
    }

    fn handle_line(daemon: &Daemon, line: &str, stop: &AtomicBool) -> WireResponse {
        if line.trim().is_empty() {
            return WireResponse::Error("empty request line".into());
        }
        match decode_request(line) {
            Ok(WireRequest::Route(request)) => match daemon.query(request) {
                Ok(response) => WireResponse::Route(response),
                Err(rejection) => WireResponse::Rejected(rejection),
            },
            Ok(WireRequest::Event { actions }) => {
                daemon.inject_event(actions);
                WireResponse::Ok
            }
            Ok(WireRequest::Stats) => WireResponse::Stats(daemon.stats()),
            Ok(WireRequest::Status) => WireResponse::Status(daemon.status()),
            Ok(WireRequest::Shutdown) => {
                daemon.request_shutdown();
                stop.store(true, Ordering::Release);
                WireResponse::Ok
            }
            Err(e) => WireResponse::Error(e.to_string()),
        }
    }
}

/// Serves the wire protocol on a Unix-domain socket until a
/// `Shutdown` request arrives, then closes the listener and returns.
/// The socket file is (re)created on entry and removed on exit.
///
/// # Errors
///
/// [`ServeError::Io`] if the socket cannot be bound or the accept
/// loop fails.
#[cfg(unix)]
pub fn serve_unix(daemon: &Daemon, socket_path: &std::path::Path) -> Result<(), ServeError> {
    unix_impl::serve_unix(daemon, socket_path)
}

/// Unix-domain sockets are unavailable on this platform; returns a
/// typed [`ServeError::Protocol`].
///
/// # Errors
///
/// Always.
#[cfg(not(unix))]
pub fn serve_unix(_daemon: &Daemon, _socket_path: &std::path::Path) -> Result<(), ServeError> {
    Err(ServeError::Protocol(
        "unix-domain sockets are not available on this platform".into(),
    ))
}
