//! Query types and the degradation ladder.
//!
//! A route-advice query is *batched* (one request may name several
//! commodities) and *deadline-tagged*. The daemon answers from the
//! most recently published board through an explicit ladder:
//!
//! 1. **Fresh** — the board is within one staleness unit of live;
//!    the answer carries the paper's intrinsic bound (agents always
//!    act on a board up to `T` old).
//! 2. **Stale** — the engine is behind (recovering from a crash, or
//!    stalled past its heartbeat deadline), but within the configured
//!    staleness budget; the answer reports exactly how stale.
//! 3. **Shed** — a typed [`Rejection`], never a panic: queue full,
//!    deadline blown in the queue, board too stale to be principled
//!    about, or the daemon failed outright.

use serde::{Deserialize, Serialize};

/// A batched, deadline-tagged route-advice request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryRequest {
    /// Commodities to advise (empty means *all* commodities).
    pub commodities: Vec<usize>,
    /// Total patience in microseconds from enqueue to answer; waiting
    /// longer in the queue sheds the query as
    /// [`Rejection::DeadlineExpired`]. `None`: wait indefinitely.
    pub deadline_us: Option<u64>,
}

/// Advice for one commodity, read off the published board.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommodityAdvice {
    /// The commodity.
    pub commodity: usize,
    /// Global path index of the board's best reply `β(f̂)`.
    pub best_path: usize,
    /// The board's minimum latency for this commodity.
    pub latency: f64,
}

/// How stale the answering board was, in staleness units (the phase
/// pace — one bulletin-board refresh interval).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Freshness {
    /// Within one refresh of live — the paper's normal operating
    /// regime (information is *always* up to `T` old).
    Fresh,
    /// Behind live by `missed_refreshes` whole refresh intervals
    /// (engine recovering or stalled), still within budget.
    Stale {
        /// Whole refresh intervals elapsed since the board was
        /// published, beyond the intrinsic one.
        missed_refreshes: usize,
    },
}

/// A served answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResponse {
    /// Per-commodity advice, in request order.
    pub advice: Vec<CommodityAdvice>,
    /// Which rung of the ladder answered.
    pub freshness: Freshness,
    /// Phase index whose start posted the answering board.
    pub board_phase: usize,
    /// Simulation time of the answering board's post.
    pub board_time: f64,
    /// Upper bound on the board's age in *simulation time units*:
    /// `(missed_refreshes + 1) · T`. The `+1` is the paper's intrinsic
    /// staleness — even a live board is up to one update period old.
    pub staleness_bound: f64,
    /// Microseconds the request waited in the queue.
    pub queue_wait_us: u64,
}

/// A typed load-shed — the bottom rung of the degradation ladder.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rejection {
    /// The bounded query queue was full at admission.
    Overloaded {
        /// Configured queue capacity.
        capacity: usize,
    },
    /// The request's deadline elapsed while it sat in the queue.
    DeadlineExpired {
        /// Microseconds it had waited when shed.
        waited_us: u64,
    },
    /// The published board is older than the configured staleness
    /// budget — an answer would no longer be principled.
    TooStale {
        /// Whole refresh intervals the board is behind.
        missed_refreshes: usize,
        /// The configured budget it exceeded.
        budget: usize,
    },
    /// The daemon cannot answer at all (engine gave up, no board
    /// published yet, or the daemon is shut down).
    Unavailable {
        /// Human-readable cause.
        reason: String,
    },
    /// The request named a commodity the instance does not have.
    BadRequest {
        /// Human-readable cause.
        reason: String,
    },
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::Overloaded { capacity } => {
                write!(f, "load shed: queue at capacity {capacity}")
            }
            Rejection::DeadlineExpired { waited_us } => {
                write!(f, "load shed: deadline expired after {waited_us}µs queued")
            }
            Rejection::TooStale {
                missed_refreshes,
                budget,
            } => write!(
                f,
                "load shed: board {missed_refreshes} refreshes behind (budget {budget})"
            ),
            Rejection::Unavailable { reason } => write!(f, "unavailable: {reason}"),
            Rejection::BadRequest { reason } => write!(f, "bad request: {reason}"),
        }
    }
}
