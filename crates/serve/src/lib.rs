//! # wardrop-serve
//!
//! Routing advice as a *service*: a crash-safe daemon around the
//! fluid-limit engine of `wardrop-core`, closing the loop on the
//! paper's premise — agents querying a periodically refreshed,
//! possibly stale bulletin board (Fischer & Vöcking, PODC 2005).
//!
//! The daemon owns a live [`Simulation`](wardrop_core::Simulation),
//! drives it phase by phase through a scenario from the experiment
//! registry, and answers batched route-advice queries from the posted
//! board. Three robustness layers wrap the phase loop:
//!
//! 1. **Checkpoint/restore** ([`checkpoint`]): the engine state is
//!    serialized through [`wardrop_core::snapshot`] and written
//!    atomically (tmp + fsync + rename), so a resumed run is
//!    bit-identical to an uninterrupted one and a crash mid-write can
//!    never clobber the latest good checkpoint.
//! 2. **Watchdog supervision** ([`daemon`]): the phase loop runs on a
//!    supervised thread under `catch_unwind` with a heartbeat
//!    deadline; on a panic (or a seeded [`CrashPlan`] injection) the
//!    supervisor restores the latest checkpoint and replays, with
//!    capped exponential backoff and a typed
//!    [`ServeError::GiveUp`] after too many consecutive crashes.
//! 3. **Graceful degradation** ([`query`]): a bounded queue of
//!    deadline-tagged requests and an explicit ladder — fresh board →
//!    stale board with a reported staleness bound (multiples of the
//!    update period `T`, the paper's own unit of staleness) → typed
//!    load-shed [`Rejection`], never a panic.
//!
//! A Unix-domain-socket front end ([`server`], newline-delimited JSON
//! — see [`protocol`]) and a seeded heavy-tailed load generator
//! ([`load`]) complete the service: `serve_bench` measures sustained
//! events/sec and p50/p99 query latency into `BENCH_serve.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use wardrop_core::policy::{fast_relative_slack, replicator, uniform_linear, ReroutingPolicy};
use wardrop_core::snapshot::SnapshotError;
use wardrop_core::SimulationConfig;
use wardrop_net::instance::Instance;
use wardrop_net::scenario::Scenario;

pub mod bench;
pub mod checkpoint;
pub mod daemon;
pub mod load;
pub mod protocol;
pub mod query;
pub mod server;

pub use checkpoint::CheckpointStore;
pub use daemon::{CrashPlan, Daemon, DaemonReport, DaemonStatus, Mode, ServeConfig, StatsReport};
pub use load::{drive_load, LoadProfile, LoadReport};
pub use query::{CommodityAdvice, Freshness, QueryRequest, QueryResponse, Rejection};
pub use server::serve_unix;

/// Typed failure of the service layer. String-backed (including I/O)
/// so errors clone across the supervisor/report boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Filesystem failure in the checkpoint store.
    Io(String),
    /// A checkpoint failed to decode or restore.
    Snapshot(SnapshotError),
    /// A scenario event failed to apply.
    Event(String),
    /// The supervisor gave up after too many consecutive crashes.
    GiveUp {
        /// Consecutive crashes observed without forward progress.
        crashes: usize,
        /// The last crash's panic payload.
        last: String,
    },
    /// Every checkpoint in the store was unreadable.
    NoUsableCheckpoint(String),
    /// A malformed wire request, unknown scenario, or socket failure.
    Protocol(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(msg) => write!(f, "checkpoint I/O: {msg}"),
            ServeError::Snapshot(e) => write!(f, "{e}"),
            ServeError::Event(msg) => write!(f, "event application failed: {msg}"),
            ServeError::GiveUp { crashes, last } => {
                write!(
                    f,
                    "gave up after {crashes} consecutive crashes (last: {last})"
                )
            }
            ServeError::NoUsableCheckpoint(msg) => {
                write!(f, "no usable checkpoint: {msg}")
            }
            ServeError::Protocol(msg) => write!(f, "protocol: {msg}"),
        }
    }
}

impl Error for ServeError {}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::Snapshot(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

/// The rerouting policy a served run uses. The daemon rebuilds the
/// policy from the *original* spec instance on every (re)start —
/// policies are constructed once per run in batch mode too, so a
/// restore must not rebuild them from the event-mutated instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Uniform sampling + linear migration (the registry default).
    UniformLinear,
    /// Proportional sampling + linear migration (replicator dynamics).
    Replicator,
    /// Uniform sampling + relative-slack migration.
    FastRelativeSlack,
}

impl PolicyKind {
    /// Builds the policy for `instance`.
    pub fn build(self, instance: &Instance) -> Box<dyn ReroutingPolicy> {
        match self {
            PolicyKind::UniformLinear => Box::new(uniform_linear(instance)),
            PolicyKind::Replicator => Box::new(replicator(instance)),
            PolicyKind::FastRelativeSlack => Box::new(fast_relative_slack()),
        }
    }
}

/// Everything the daemon needs to (re)start a run: the pristine
/// instance, the scenario's event list, the engine configuration and
/// the policy. Restarts rebuild the policy from `instance` (not from
/// a checkpoint's mutated instance) so a resumed run drives the exact
/// dynamics of the original.
#[derive(Debug, Clone)]
pub struct EngineSpec {
    /// Human-readable name (registry scenario name).
    pub name: String,
    /// The pristine (epoch-0) instance.
    pub instance: Instance,
    /// The scenario whose events the daemon ingests at phase
    /// boundaries.
    pub scenario: Scenario,
    /// Engine configuration (update period, phase budget, faults,
    /// guard, ...).
    pub config: SimulationConfig,
    /// The rerouting policy.
    pub policy: PolicyKind,
}

impl EngineSpec {
    /// Builds a spec from the experiment scenario registry
    /// ([`wardrop_experiments::scenarios::by_name`]), under the
    /// registry's own engine configuration — a served scenario is
    /// phase-for-phase the batch run.
    pub fn from_registry(name: &str, smoke: bool) -> Option<Self> {
        let named = wardrop_experiments::scenarios::by_name(name, smoke)?;
        Some(EngineSpec {
            name: named.name.to_string(),
            config: named.config(),
            instance: named.instance,
            scenario: named.scenario,
            policy: PolicyKind::UniformLinear,
        })
    }
}
