//! The daemon's wire protocol: newline-delimited JSON over a
//! Unix-domain socket.
//!
//! One request per line, one response per line, in order. The
//! framing is deliberately primitive — the protocol's robustness
//! story lives in the *types*: a malformed line comes back as
//! [`WireResponse::Error`], a load shed as
//! [`WireResponse::Rejected`] with the full typed [`Rejection`],
//! never a dropped connection mid-answer.

use serde::{Deserialize, Serialize};
use wardrop_net::scenario::EventAction;

use crate::daemon::{DaemonStatus, StatsReport};
use crate::query::{QueryRequest, QueryResponse, Rejection};
use crate::ServeError;

/// One client request line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireRequest {
    /// Route-advice query.
    Route(QueryRequest),
    /// Inject scenario events at the next live phase boundary.
    Event {
        /// Actions applied atomically as one event.
        actions: Vec<EventAction>,
    },
    /// Fetch the daemon's counters.
    Stats,
    /// Fetch the daemon's lifecycle status.
    Status,
    /// Ask the engine to stop at the next phase boundary (a final
    /// checkpoint is written); the socket stays up for queries.
    Shutdown,
}

/// One server response line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireResponse {
    /// The advice for a [`WireRequest::Route`].
    Route(QueryResponse),
    /// The query was shed — typed, with the ladder rung that shed it.
    Rejected(Rejection),
    /// Acknowledgement for event injection / shutdown.
    Ok,
    /// Counters for [`WireRequest::Stats`].
    Stats(StatsReport),
    /// Status for [`WireRequest::Status`].
    Status(DaemonStatus),
    /// The request line could not be understood.
    Error(String),
}

/// Encodes a value as one protocol line (JSON + `'\n'`).
///
/// # Errors
///
/// [`ServeError::Protocol`] if serialisation fails.
pub fn encode<T: Serialize>(value: &T) -> Result<String, ServeError> {
    let mut line = serde_json::to_string(value).map_err(|e| ServeError::Protocol(e.to_string()))?;
    line.push('\n');
    Ok(line)
}

/// Decodes one request line.
///
/// # Errors
///
/// [`ServeError::Protocol`] for malformed JSON or an unknown request
/// shape.
pub fn decode_request(line: &str) -> Result<WireRequest, ServeError> {
    serde_json::from_str(line.trim()).map_err(|e| ServeError::Protocol(e.to_string()))
}

/// Decodes one response line (the client side of the protocol).
///
/// # Errors
///
/// [`ServeError::Protocol`] for malformed JSON or an unknown response
/// shape.
pub fn decode_response(line: &str) -> Result<WireResponse, ServeError> {
    serde_json::from_str(line.trim()).map_err(|e| ServeError::Protocol(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Freshness;

    #[test]
    fn request_round_trip() {
        let requests = vec![
            WireRequest::Route(QueryRequest {
                commodities: vec![0, 2],
                deadline_us: Some(5_000),
            }),
            WireRequest::Event {
                actions: vec![EventAction::ScaleLatency {
                    edge: wardrop_net::graph::EdgeId::from_index(1),
                    factor: 2.5,
                }],
            },
            WireRequest::Stats,
            WireRequest::Status,
            WireRequest::Shutdown,
        ];
        for request in requests {
            let line = encode(&request).unwrap();
            assert!(line.ends_with('\n'));
            assert_eq!(decode_request(&line).unwrap(), request);
        }
    }

    #[test]
    fn response_round_trip() {
        let responses = vec![
            WireResponse::Route(QueryResponse {
                advice: vec![crate::query::CommodityAdvice {
                    commodity: 0,
                    best_path: 3,
                    latency: 1.25,
                }],
                freshness: Freshness::Stale {
                    missed_refreshes: 2,
                },
                board_phase: 41,
                board_time: 10.25,
                staleness_bound: 0.75,
                queue_wait_us: 120,
            }),
            WireResponse::Rejected(Rejection::Overloaded { capacity: 64 }),
            WireResponse::Ok,
            WireResponse::Error("bad line".into()),
        ];
        for response in responses {
            let line = encode(&response).unwrap();
            assert_eq!(decode_response(&line).unwrap(), response);
        }
    }

    #[test]
    fn malformed_line_is_typed_error() {
        assert!(matches!(
            decode_request("{not json"),
            Err(ServeError::Protocol(_))
        ));
    }
}
