//! Seeded, heavy-tailed load generation.
//!
//! [`drive_load`] runs a fleet of client threads against a
//! [`Daemon`], mimicking a flash crowd: each client alternates calm
//! stretches (exponential inter-arrival gaps) with bursts whose
//! lengths are Pareto-distributed — the heavy tail is what actually
//! exercises the bounded queue, because mean-rate sizing says nothing
//! about a p99 burst. All randomness is SplitMix64 seeded from
//! [`LoadProfile::seed`] and the client index, so a profile generates
//! the same request *sequence* every run (timing, of course, is the
//! operating system's).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::daemon::Daemon;
use crate::query::{Freshness, QueryRequest, Rejection};

/// Deterministic SplitMix64 stream.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `(0, 1]` (safe as a log/power argument).
    fn next_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }
}

/// A seeded description of offered load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadProfile {
    /// Root seed; client `i` uses stream `seed ^ hash(i)`.
    pub seed: u64,
    /// Wall-clock duration to keep offering load, in milliseconds.
    pub duration_ms: u64,
    /// Concurrent client threads.
    pub clients: usize,
    /// Per-client calm-phase request rate (requests/second);
    /// inter-arrival gaps are exponential at this rate.
    pub rate_hz: f64,
    /// Probability that an arrival grows into a burst.
    pub burst_probability: f64,
    /// Pareto tail index for burst lengths — smaller is heavier;
    /// `alpha ≤ 1` has unbounded mean, so bursts are clipped at
    /// [`LoadProfile::burst_cap`].
    pub pareto_alpha: f64,
    /// Hard cap on one burst's length.
    pub burst_cap: usize,
    /// Commodities in the served instance (requests sample subsets).
    pub commodities: usize,
    /// Largest per-request commodity batch.
    pub batch_max: usize,
    /// Deadline attached to every request, if any.
    pub deadline_us: Option<u64>,
}

impl LoadProfile {
    /// A nominal profile the default daemon configuration must serve
    /// with zero sheds: a few calm clients, mild bursts.
    pub fn nominal(commodities: usize) -> Self {
        LoadProfile {
            seed: 0x57AD_0001,
            duration_ms: 300,
            clients: 4,
            rate_hz: 200.0,
            burst_probability: 0.05,
            pareto_alpha: 1.5,
            burst_cap: 16,
            commodities,
            batch_max: commodities.max(1),
            deadline_us: None,
        }
    }

    /// A flash-crowd profile meant to exceed service capacity: many
    /// clients, hot rate, heavy-tailed bursts, tight deadlines.
    pub fn flash_crowd(commodities: usize) -> Self {
        LoadProfile {
            seed: 0x57AD_0002,
            duration_ms: 300,
            clients: 8,
            rate_hz: 2_000.0,
            burst_probability: 0.25,
            pareto_alpha: 1.1,
            burst_cap: 64,
            commodities,
            batch_max: commodities.max(1),
            deadline_us: Some(5_000),
        }
    }
}

/// What a load run observed, aggregated over all clients.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LoadReport {
    /// Requests offered (admitted or not).
    pub offered: u64,
    /// Requests answered with advice.
    pub answered: u64,
    /// Answers from a fresh board.
    pub fresh: u64,
    /// Answers from a stale board.
    pub stale: u64,
    /// Sheds: queue at capacity.
    pub rejected_overload: u64,
    /// Sheds: deadline expired in the queue.
    pub rejected_deadline: u64,
    /// Sheds: board beyond the staleness budget.
    pub rejected_stale: u64,
    /// Sheds: daemon unavailable.
    pub rejected_unavailable: u64,
    /// Requests the daemon called malformed.
    pub bad_requests: u64,
    /// Median answer latency, microseconds (enqueue to answer).
    pub p50_us: u64,
    /// 99th-percentile answer latency, microseconds.
    pub p99_us: u64,
    /// Worst answer latency, microseconds.
    pub max_us: u64,
    /// Answered queries per wall-clock second.
    pub queries_per_sec: f64,
    /// Commodity-advice entries served per wall-clock second (the
    /// "events/sec" a routing service actually bills by).
    pub events_per_sec: f64,
    /// Measured wall-clock duration, milliseconds.
    pub duration_ms: u64,
}

struct ClientTally {
    report: LoadReport,
    latencies_us: Vec<u64>,
    advice_served: u64,
}

fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn client_main(daemon: &Daemon, profile: &LoadProfile, index: usize) -> ClientTally {
    let mut rng = SplitMix64(profile.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut tally = ClientTally {
        report: LoadReport::default(),
        latencies_us: Vec::new(),
        advice_served: 0,
    };
    let deadline = Instant::now() + Duration::from_millis(profile.duration_ms);
    while Instant::now() < deadline {
        // One arrival, possibly fattened into a Pareto burst.
        let burst = if rng.next_f64() < profile.burst_probability {
            let raw = 1.0 / rng.next_open().powf(1.0 / profile.pareto_alpha);
            (raw as usize).clamp(1, profile.burst_cap)
        } else {
            1
        };
        for _ in 0..burst {
            if Instant::now() >= deadline {
                break;
            }
            let batch = 1 + (rng.next_u64() as usize) % profile.batch_max.max(1);
            let commodities: Vec<usize> = (0..batch)
                .map(|_| (rng.next_u64() as usize) % profile.commodities.max(1))
                .collect();
            let request = QueryRequest {
                commodities,
                deadline_us: profile.deadline_us,
            };
            let issued = Instant::now();
            tally.report.offered += 1;
            match daemon.query(request) {
                Ok(response) => {
                    tally.report.answered += 1;
                    tally.advice_served += response.advice.len() as u64;
                    match response.freshness {
                        Freshness::Fresh => tally.report.fresh += 1,
                        Freshness::Stale { .. } => tally.report.stale += 1,
                    }
                    tally.latencies_us.push(issued.elapsed().as_micros() as u64);
                }
                Err(Rejection::Overloaded { .. }) => tally.report.rejected_overload += 1,
                Err(Rejection::DeadlineExpired { .. }) => tally.report.rejected_deadline += 1,
                Err(Rejection::TooStale { .. }) => tally.report.rejected_stale += 1,
                Err(Rejection::Unavailable { .. }) => tally.report.rejected_unavailable += 1,
                Err(Rejection::BadRequest { .. }) => tally.report.bad_requests += 1,
            }
        }
        let gap = -rng.next_open().ln() / profile.rate_hz.max(1e-9);
        let remaining = deadline.saturating_duration_since(Instant::now());
        thread::sleep(Duration::from_secs_f64(gap.max(0.0)).min(remaining));
    }
    tally
}

/// Runs `profile` against `daemon` from a fleet of client threads and
/// aggregates the outcome. Blocks for roughly
/// [`LoadProfile::duration_ms`].
pub fn drive_load(daemon: &Daemon, profile: &LoadProfile) -> LoadReport {
    let started = Instant::now();
    let all_latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let advice_total = AtomicU64::new(0);
    let merged: Mutex<LoadReport> = Mutex::new(LoadReport::default());
    thread::scope(|scope| {
        for index in 0..profile.clients {
            let all_latencies = &all_latencies;
            let advice_total = &advice_total;
            let merged = &merged;
            scope.spawn(move || {
                let tally = client_main(daemon, profile, index);
                let mut report = merged.lock().unwrap();
                report.offered += tally.report.offered;
                report.answered += tally.report.answered;
                report.fresh += tally.report.fresh;
                report.stale += tally.report.stale;
                report.rejected_overload += tally.report.rejected_overload;
                report.rejected_deadline += tally.report.rejected_deadline;
                report.rejected_stale += tally.report.rejected_stale;
                report.rejected_unavailable += tally.report.rejected_unavailable;
                report.bad_requests += tally.report.bad_requests;
                advice_total.fetch_add(tally.advice_served, Ordering::Relaxed);
                all_latencies.lock().unwrap().extend(tally.latencies_us);
            });
        }
    });
    let elapsed = started.elapsed();
    let mut latencies = all_latencies.into_inner().unwrap();
    latencies.sort_unstable();
    let mut report = merged.into_inner().unwrap();
    report.p50_us = percentile(&latencies, 50.0);
    report.p99_us = percentile(&latencies, 99.0);
    report.max_us = latencies.last().copied().unwrap_or(0);
    let secs = elapsed.as_secs_f64().max(1e-9);
    report.queries_per_sec = report.answered as f64 / secs;
    report.events_per_sec = advice_total.load(Ordering::Relaxed) as f64 / secs;
    report.duration_ms = elapsed.as_millis() as u64;
    report
}
