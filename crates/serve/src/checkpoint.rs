//! Atomic, self-pruning checkpoint storage.
//!
//! A [`CheckpointStore`] keeps engine snapshots in one directory as
//! `checkpoint-<phase>.snap` files (the sequence number is the phase
//! index the snapshot was taken at, so ordering is lexicographic and
//! resumable by inspection). Writes are **atomic**: the encoded bytes
//! go to a `*.tmp` sibling, are fsynced, and only then renamed over
//! the final name (with a best-effort directory fsync) — a crash
//! mid-write leaves at worst a dangling `*.tmp`, never a damaged
//! checkpoint under the real name.
//!
//! Loading walks the sequence numbers newest-first and returns the
//! first checkpoint that decodes ([`EngineSnapshot::from_bytes`]) —
//! a torn or bit-flipped newest file is *skipped*, falling back to
//! the previous good one, which is why the store keeps the last
//! [`CheckpointStore::keep`] files instead of only the newest.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use wardrop_core::snapshot::EngineSnapshot;

use crate::ServeError;

const PREFIX: &str = "checkpoint-";
const SUFFIX: &str = ".snap";

/// A directory of atomically written engine checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory, retaining
    /// the newest `keep` checkpoints (clamped to at least 2 — the
    /// whole point of retention is surviving a damaged newest file).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>, keep: usize) -> Result<Self, ServeError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore {
            dir,
            keep: keep.max(2),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// How many checkpoints the store retains.
    pub fn keep(&self) -> usize {
        self.keep
    }

    fn path_for(&self, seq: usize) -> PathBuf {
        self.dir.join(format!("{PREFIX}{seq:010}{SUFFIX}"))
    }

    /// Sequence numbers of every checkpoint currently present,
    /// ascending.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the directory cannot be listed.
    pub fn sequences(&self) -> Result<Vec<usize>, ServeError> {
        let mut seqs = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(stem) = name
                .strip_prefix(PREFIX)
                .and_then(|s| s.strip_suffix(SUFFIX))
            {
                if let Ok(seq) = stem.parse::<usize>() {
                    seqs.push(seq);
                }
            }
        }
        seqs.sort_unstable();
        Ok(seqs)
    }

    /// Atomically writes `snapshot` under sequence number `seq`
    /// (tmp + fsync + rename + best-effort directory fsync), then
    /// prunes checkpoints beyond the retention window. Returns the
    /// final path.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on any filesystem failure (pruning failures
    /// included — a store that cannot prune will eventually fill the
    /// disk, which is not a condition to ignore silently).
    pub fn save(&self, seq: usize, snapshot: &EngineSnapshot) -> Result<PathBuf, ServeError> {
        let final_path = self.path_for(seq);
        let tmp_path = final_path.with_extension("tmp");
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(&snapshot.to_bytes())?;
            tmp.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        // Persist the rename itself; not all filesystems support
        // opening a directory for sync, hence best-effort.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        let seqs = self.sequences()?;
        if seqs.len() > self.keep {
            for old in &seqs[..seqs.len() - self.keep] {
                fs::remove_file(self.path_for(*old))?;
            }
        }
        Ok(final_path)
    }

    /// Loads the newest checkpoint that decodes cleanly, skipping
    /// (and reporting) damaged ones — the fallback path a torn write
    /// or bit flip takes. Returns `Ok(None)` for an empty store.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoUsableCheckpoint`] when files exist but none
    /// decodes; [`ServeError::Io`] if the directory cannot be read.
    pub fn load_latest(&self) -> Result<Option<(usize, EngineSnapshot)>, ServeError> {
        let seqs = self.sequences()?;
        if seqs.is_empty() {
            return Ok(None);
        }
        let mut failures = Vec::new();
        for &seq in seqs.iter().rev() {
            match fs::read(self.path_for(seq)) {
                Ok(bytes) => match EngineSnapshot::from_bytes(&bytes) {
                    Ok(snapshot) => return Ok(Some((seq, snapshot))),
                    Err(e) => failures.push(format!("seq {seq}: {e}")),
                },
                Err(e) => failures.push(format!("seq {seq}: {e}")),
            }
        }
        Err(ServeError::NoUsableCheckpoint(failures.join("; ")))
    }
}
