//! Daemon lifecycle: clean runs, crash recovery, give-up, the
//! degradation ladder, and event injection.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use wardrop_core::engine::SimulationConfig;
use wardrop_net::builders;
use wardrop_net::graph::EdgeId;
use wardrop_net::scenario::{Event, EventAction, Scenario};
use wardrop_serve::bench::reference_run;
use wardrop_serve::daemon::{CrashPlan, Daemon, Mode, ServeConfig};
use wardrop_serve::{
    CheckpointStore, EngineSpec, Freshness, PolicyKind, QueryRequest, Rejection, ServeError,
};

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("daemon-{name}"));
    if dir.exists() {
        fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

/// A small, fast spec with one mid-run shock.
fn small_spec(phases: usize) -> EngineSpec {
    let instance = builders::braess();
    let scenario = Scenario::new("test-shock").with_event(Event::at(
        phases / 2,
        "degrade",
        EventAction::ScaleLatency {
            edge: EdgeId::from_index(0),
            factor: 1.5,
        },
    ));
    EngineSpec {
        name: "test-braess".to_string(),
        instance,
        scenario,
        config: SimulationConfig::new(0.1, phases),
        policy: PolicyKind::UniformLinear,
    }
}

fn store(name: &str, keep: usize) -> CheckpointStore {
    CheckpointStore::open(scratch(name), keep).unwrap()
}

#[test]
fn clean_run_matches_the_reference_exactly() {
    let spec = small_spec(60);
    let (reference_records, reference_flow) = reference_run(&spec);
    let daemon = Daemon::start(
        spec,
        ServeConfig::default(),
        store("clean", 3),
        CrashPlan::none(),
    )
    .unwrap();
    assert_eq!(daemon.wait_engine(Duration::from_secs(60)), Mode::Done);
    let report = daemon.finish();
    assert_eq!(report.stats.crashes, 0);
    assert_eq!(report.missing_records, 0);
    assert!(!report.replay_diverged);
    assert_eq!(report.records, reference_records);
    assert_eq!(
        report.final_flow.as_deref(),
        Some(reference_flow.as_slice())
    );
}

#[test]
fn crash_recovery_is_bit_identical_and_bounded() {
    let spec = small_spec(80);
    let (reference_records, reference_flow) = reference_run(&spec);
    let interval = 10;
    let config = ServeConfig {
        checkpoint_interval: interval,
        backoff_base: Duration::from_millis(1),
        ..ServeConfig::default()
    };
    // Crash after the shock (phase 40), past the phase-40 checkpoint.
    let daemon = Daemon::start(spec, config, store("crash", 3), CrashPlan::at(&[47])).unwrap();
    assert_eq!(daemon.wait_engine(Duration::from_secs(60)), Mode::Done);
    let report = daemon.finish();
    assert_eq!(report.stats.crashes, 1);
    assert_eq!(report.stats.recoveries, 1);
    assert!(
        report.stats.last_replay_phases <= 2 * interval as u64,
        "replayed {} phases, budget {}",
        report.stats.last_replay_phases,
        2 * interval
    );
    assert!(!report.replay_diverged, "replayed phases diverged");
    assert_eq!(report.missing_records, 0);
    assert_eq!(report.records, reference_records);
    assert_eq!(
        report.final_flow.as_deref(),
        Some(reference_flow.as_slice())
    );
}

#[test]
fn repeated_crashes_at_the_same_phase_give_up_typed() {
    let spec = small_spec(40);
    let config = ServeConfig {
        max_consecutive_crashes: 3,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
        ..ServeConfig::default()
    };
    // Crashing before phase 0 four times: the only checkpoint is the
    // initial one, so no crash makes progress and the budget (3) is
    // exhausted on the fourth.
    let daemon = Daemon::start(
        spec,
        config,
        store("give-up", 3),
        CrashPlan::at(&[0, 0, 0, 0]),
    )
    .unwrap();
    assert_eq!(daemon.wait_engine(Duration::from_secs(60)), Mode::Failed);
    // Queries after give-up shed typed, they do not panic or hang.
    let rejection = daemon
        .query(QueryRequest {
            commodities: vec![],
            deadline_us: None,
        })
        .unwrap_err();
    assert!(matches!(rejection, Rejection::Unavailable { .. }));
    let report = daemon.finish();
    assert_eq!(report.stats.crashes, 4);
    match report.failure {
        Some(ServeError::GiveUp { crashes, ref last }) => {
            assert_eq!(crashes, 4);
            assert!(last.contains("injected crash"), "payload: {last}");
        }
        ref other => panic!("expected GiveUp, got {other:?}"),
    }
}

#[test]
fn fewer_crashes_than_the_budget_still_complete() {
    let spec = small_spec(40);
    let (reference_records, _) = reference_run(&spec);
    let config = ServeConfig {
        max_consecutive_crashes: 3,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
        ..ServeConfig::default()
    };
    let daemon = Daemon::start(
        spec,
        config,
        store("within-budget", 3),
        CrashPlan::at(&[0, 0]),
    )
    .unwrap();
    assert_eq!(daemon.wait_engine(Duration::from_secs(60)), Mode::Done);
    let report = daemon.finish();
    assert_eq!(report.stats.crashes, 2);
    assert_eq!(report.records, reference_records);
}

#[test]
fn completed_run_answers_queries_as_fresh() {
    let spec = small_spec(30);
    let commodities = spec.instance.num_commodities();
    let update_period = spec.config.update_period;
    let daemon = Daemon::start(
        spec,
        ServeConfig::default(),
        store("done-query", 3),
        CrashPlan::none(),
    )
    .unwrap();
    assert_eq!(daemon.wait_engine(Duration::from_secs(60)), Mode::Done);
    let response = daemon
        .query(QueryRequest {
            commodities: vec![],
            deadline_us: None,
        })
        .unwrap();
    // A completed run's board is the converged answer — always fresh,
    // with the paper's intrinsic one-period staleness bound.
    assert_eq!(response.freshness, Freshness::Fresh);
    assert_eq!(response.advice.len(), commodities);
    assert!((response.staleness_bound - update_period).abs() < 1e-12);
    for (i, advice) in response.advice.iter().enumerate() {
        assert_eq!(advice.commodity, i);
        assert!(advice.latency.is_finite());
    }
    daemon.finish();
}

#[test]
fn unknown_commodity_is_a_bad_request() {
    let spec = small_spec(30);
    let daemon = Daemon::start(
        spec,
        ServeConfig::default(),
        store("bad-request", 3),
        CrashPlan::none(),
    )
    .unwrap();
    daemon.wait_engine(Duration::from_secs(60));
    let rejection = daemon
        .query(QueryRequest {
            commodities: vec![999],
            deadline_us: None,
        })
        .unwrap_err();
    assert!(matches!(rejection, Rejection::BadRequest { .. }));
    daemon.finish();
}

#[test]
fn overload_sheds_typed_not_panicking() {
    let spec = small_spec(30);
    // Capacity 1 and a 50 ms responder floor: with three queries in
    // flight, at least one is admitted and at least one overflows.
    let config = ServeConfig {
        queue_capacity: 1,
        service_floor: Some(Duration::from_millis(50)),
        ..ServeConfig::default()
    };
    let daemon = Daemon::start(spec, config, store("overload", 3), CrashPlan::none()).unwrap();
    daemon.wait_engine(Duration::from_secs(60));
    let outcomes: Vec<Result<_, _>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let daemon = &daemon;
                scope.spawn(move || {
                    daemon.query(QueryRequest {
                        commodities: vec![],
                        deadline_us: None,
                    })
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let answered = outcomes.iter().filter(|o| o.is_ok()).count();
    let overloaded = outcomes
        .iter()
        .filter(|o| matches!(o, Err(Rejection::Overloaded { .. })))
        .count();
    assert!(answered >= 1, "someone must be served");
    assert!(overloaded >= 1, "the queue must overflow typed");
    let report = daemon.finish();
    assert_eq!(report.stats.crashes, 0);
    assert!(report.stats.shed_overload >= 1);
}

#[test]
fn expired_deadline_sheds_typed() {
    let spec = small_spec(30);
    let config = ServeConfig {
        // The responder floor guarantees the queue wait exceeds a
        // zero-microsecond deadline.
        service_floor: Some(Duration::from_millis(2)),
        ..ServeConfig::default()
    };
    let daemon = Daemon::start(spec, config, store("deadline", 3), CrashPlan::none()).unwrap();
    daemon.wait_engine(Duration::from_secs(60));
    let rejection = daemon
        .query(QueryRequest {
            commodities: vec![],
            deadline_us: Some(0),
        })
        .unwrap_err();
    assert!(matches!(rejection, Rejection::DeadlineExpired { .. }));
    daemon.finish();
}

#[test]
fn injected_events_apply_and_force_a_checkpoint() {
    // Long enough that the run cannot reach Done before the event is
    // injected, even if this thread is descheduled for seconds on a
    // loaded machine — external events are only drained while live.
    let spec = small_spec(100_000);
    let scenario_events = spec.scenario.events().len() as u64;
    let config = ServeConfig {
        // Paced so the run is still live when the event arrives, with
        // a huge interval so the only mid-run checkpoint is the
        // event-forced one.
        phase_pace: Some(Duration::from_millis(1)),
        checkpoint_interval: 1_000_000,
        ..ServeConfig::default()
    };
    let daemon = Daemon::start(spec, config, store("inject", 3), CrashPlan::none()).unwrap();
    daemon.wait_live(Duration::from_secs(10));
    let checkpoints_before = daemon.stats().checkpoints;
    daemon.inject_event(vec![EventAction::ScaleLatency {
        edge: EdgeId::from_index(1),
        factor: 2.0,
    }]);
    // Wait for the engine to pick the event up at a phase boundary.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while daemon.stats().events_applied < 1 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let stats = daemon.stats();
    daemon.request_shutdown();
    let report = daemon.finish();
    assert!(
        stats.events_applied >= 1,
        "injected event was never applied (scenario events due: {scenario_events})"
    );
    assert!(
        stats.checkpoints > checkpoints_before,
        "an injected event must force a checkpoint"
    );
    assert_eq!(report.stats.crashes, 0);
}

#[test]
fn process_restart_resumes_from_the_store() {
    let spec = small_spec(60);
    let (reference_records, reference_flow) = reference_run(&spec);
    let dir = scratch("process-restart");
    let config = ServeConfig {
        checkpoint_interval: 10,
        phase_pace: Some(Duration::from_millis(2)),
        ..ServeConfig::default()
    };

    // First "process": run paced, stop abruptly mid-run (finish()
    // writes a final checkpoint — emulating a clean stop; the torn
    // variants are covered in checkpoint.rs).
    let first = Daemon::start(
        spec.clone(),
        config.clone(),
        CheckpointStore::open(&dir, 3).unwrap(),
        CrashPlan::none(),
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(40));
    first.request_shutdown();
    let mid_report = first.finish();
    let resumed_from = mid_report.status.engine_phase;
    assert!(
        resumed_from > 0 && resumed_from < 60,
        "first process should stop mid-run, stopped at {resumed_from}"
    );

    // Second "process": same store, free-running to completion.
    let second = Daemon::start(
        spec,
        ServeConfig::default(),
        CheckpointStore::open(&dir, 3).unwrap(),
        CrashPlan::none(),
    )
    .unwrap();
    assert_eq!(second.wait_engine(Duration::from_secs(60)), Mode::Done);
    let report = second.finish();
    // The second process only holds records from its resume point on;
    // they must match the reference's tail exactly.
    assert!(!report.records.is_empty());
    let first_index = reference_records
        .iter()
        .position(|r| Some(r) == report.records.first())
        .expect("resumed records must appear in the reference");
    assert_eq!(report.records, reference_records[first_index..]);
    assert_eq!(
        report.final_flow.as_deref(),
        Some(reference_flow.as_slice())
    );
}

#[test]
fn invalid_config_is_rejected_typed() {
    let spec = small_spec(10);
    let config = ServeConfig {
        checkpoint_interval: 0,
        ..ServeConfig::default()
    };
    match Daemon::start(spec, config, store("bad-config", 3), CrashPlan::none()) {
        Err(ServeError::Protocol(message)) => {
            assert!(message.contains("checkpoint interval"));
        }
        Err(other) => panic!("expected Protocol error, got {other:?}"),
        Ok(_) => panic!("expected Protocol error, got a running daemon"),
    }
}
