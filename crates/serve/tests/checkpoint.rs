//! Checkpoint-store robustness: atomic writes, torn-write fallback,
//! corruption fallback, typed all-corrupt failure, pruning.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use wardrop_core::engine::{Simulation, SimulationConfig};
use wardrop_core::policy::uniform_linear;
use wardrop_core::snapshot::EngineSnapshot;
use wardrop_net::builders;
use wardrop_net::flow::FlowVec;
use wardrop_serve::{CheckpointStore, ServeError};

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("checkpoint-{name}"));
    if dir.exists() {
        fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

/// A real engine snapshot a few phases into a run.
fn sample_snapshot(phases: usize) -> EngineSnapshot {
    let instance = builders::braess();
    let policy = uniform_linear(&instance);
    let config = SimulationConfig::new(0.1, 50);
    let mut sim = Simulation::new(&instance, &policy, &FlowVec::uniform(&instance), &config);
    for _ in 0..phases {
        sim.step().unwrap();
    }
    sim.snapshot()
}

#[test]
fn save_then_load_round_trips_bit_exactly() {
    let store = CheckpointStore::open(scratch("round-trip"), 3).unwrap();
    let snapshot = sample_snapshot(5);
    let path = store.save(5, &snapshot).unwrap();
    assert!(path.ends_with("checkpoint-0000000005.snap"));
    let (seq, loaded) = store.load_latest().unwrap().unwrap();
    assert_eq!(seq, 5);
    // Byte-level equality is the bit-identical-restore contract.
    assert_eq!(loaded.to_bytes(), snapshot.to_bytes());
    // No temporary file may survive a completed save.
    let leftovers: Vec<_> = fs::read_dir(store.dir())
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
        .collect();
    assert!(leftovers.is_empty(), "dangling tmp files: {leftovers:?}");
}

#[test]
fn torn_write_falls_back_to_previous_checkpoint() {
    let store = CheckpointStore::open(scratch("torn"), 3).unwrap();
    let older = sample_snapshot(3);
    let newer = sample_snapshot(6);
    store.save(3, &older).unwrap();
    let newest_path = store.save(6, &newer).unwrap();
    // Simulate a torn write: the newest checkpoint is cut in half.
    let bytes = fs::read(&newest_path).unwrap();
    fs::write(&newest_path, &bytes[..bytes.len() / 2]).unwrap();
    let (seq, loaded) = store.load_latest().unwrap().unwrap();
    assert_eq!(seq, 3, "must fall back to the previous good checkpoint");
    assert_eq!(loaded.to_bytes(), older.to_bytes());
}

#[test]
fn bit_flip_falls_back_to_previous_checkpoint() {
    let store = CheckpointStore::open(scratch("bit-flip"), 3).unwrap();
    let older = sample_snapshot(2);
    let newer = sample_snapshot(4);
    store.save(2, &older).unwrap();
    let newest_path = store.save(4, &newer).unwrap();
    let mut bytes = fs::read(&newest_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    fs::write(&newest_path, &bytes).unwrap();
    let (seq, _) = store.load_latest().unwrap().unwrap();
    assert_eq!(seq, 2, "checksum must catch the flip and fall back");
}

#[test]
fn all_corrupt_is_a_typed_error() {
    let store = CheckpointStore::open(scratch("all-corrupt"), 3).unwrap();
    let snapshot = sample_snapshot(2);
    let p1 = store.save(1, &snapshot).unwrap();
    let p2 = store.save(2, &snapshot).unwrap();
    fs::write(&p1, b"garbage").unwrap();
    fs::write(&p2, b"more garbage").unwrap();
    match store.load_latest() {
        Err(ServeError::NoUsableCheckpoint(detail)) => {
            assert!(detail.contains("seq 1") && detail.contains("seq 2"));
        }
        other => panic!("expected NoUsableCheckpoint, got {other:?}"),
    }
}

#[test]
fn empty_store_loads_none() {
    let store = CheckpointStore::open(scratch("empty"), 3).unwrap();
    assert!(store.load_latest().unwrap().is_none());
    assert!(store.sequences().unwrap().is_empty());
}

#[test]
fn pruning_keeps_only_the_newest() {
    let store = CheckpointStore::open(scratch("prune"), 2).unwrap();
    let snapshot = sample_snapshot(1);
    for seq in 1..=5 {
        store.save(seq, &snapshot).unwrap();
    }
    assert_eq!(store.sequences().unwrap(), vec![4, 5]);
}

#[test]
fn keep_is_clamped_to_two() {
    // Retention below 2 would defeat the fallback: a torn newest file
    // with nothing older is unrecoverable.
    let store = CheckpointStore::open(scratch("clamp"), 0).unwrap();
    assert_eq!(store.keep(), 2);
}

#[test]
fn saved_snapshot_resumes_bit_identically() {
    let instance = builders::braess();
    let policy = uniform_linear(&instance);
    let config = SimulationConfig::new(0.1, 40);
    let f0 = FlowVec::uniform(&instance);

    // Uninterrupted reference.
    let mut reference = Simulation::new(&instance, &policy, &f0, &config);
    let mut reference_records = Vec::new();
    while let Some(record) = reference.step() {
        reference_records.push(record);
    }

    // Interrupted run: persist through the store at phase 17, reload,
    // resume.
    let store = CheckpointStore::open(scratch("resume"), 3).unwrap();
    let mut first = Simulation::new(&instance, &policy, &f0, &config);
    let mut records = Vec::new();
    for _ in 0..17 {
        records.push(first.step().unwrap());
    }
    store.save(17, &first.snapshot()).unwrap();
    drop(first);
    let (_, loaded) = store.load_latest().unwrap().unwrap();
    let mut resumed = Simulation::from_snapshot(&policy, &loaded).unwrap();
    while let Some(record) = resumed.step() {
        records.push(record);
    }
    assert_eq!(records, reference_records);
    assert_eq!(resumed.flow().values(), reference.flow().values());
}

#[test]
fn checkpoint_interval_pacing_is_cheap_relative_to_io() {
    // Not a timing assertion — just pins that save() returns the path
    // it claims and the directory listing agrees, under a burst of
    // saves (the pattern the daemon produces).
    let store = CheckpointStore::open(scratch("burst"), 4).unwrap();
    let snapshot = sample_snapshot(1);
    let started = std::time::Instant::now();
    for seq in 0..8 {
        let path = store.save(seq * 10, &snapshot).unwrap();
        assert!(path.exists());
    }
    assert!(started.elapsed() < Duration::from_secs(30));
    assert_eq!(store.sequences().unwrap(), vec![40, 50, 60, 70]);
}
