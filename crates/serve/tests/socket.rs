//! Wire round-trip over the Unix-domain socket front end.
#![cfg(unix)]

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

use wardrop_core::engine::SimulationConfig;
use wardrop_net::builders;
use wardrop_net::graph::EdgeId;
use wardrop_net::scenario::{EventAction, Scenario};
use wardrop_serve::daemon::{CrashPlan, Daemon, Mode, ServeConfig};
use wardrop_serve::protocol::{decode_response, encode, WireRequest, WireResponse};
use wardrop_serve::{serve_unix, CheckpointStore, EngineSpec, PolicyKind, QueryRequest};

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("socket-{name}"));
    if dir.exists() {
        fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

struct Client {
    reader: BufReader<UnixStream>,
}

impl Client {
    fn connect(path: &PathBuf) -> Self {
        // The server removes a stale socket file and binds shortly
        // after the spawn; retry until it is accepting.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match UnixStream::connect(path) {
                Ok(stream) => {
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .unwrap();
                    return Client {
                        reader: BufReader::new(stream),
                    };
                }
                Err(e) if std::time::Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => panic!("cannot connect to {}: {e}", path.display()),
            }
        }
    }

    fn round_trip(&mut self, request: &WireRequest) -> WireResponse {
        let line = encode(request).unwrap();
        self.reader.get_mut().write_all(line.as_bytes()).unwrap();
        let mut answer = String::new();
        self.reader.read_line(&mut answer).unwrap();
        decode_response(&answer).unwrap()
    }
}

#[test]
fn socket_serves_the_full_protocol() {
    let instance = builders::braess();
    let num_commodities = instance.num_commodities();
    let spec = EngineSpec {
        name: "socket-test".to_string(),
        instance,
        scenario: Scenario::new("socket-test"),
        config: SimulationConfig::new(0.1, 100_000),
        policy: PolicyKind::UniformLinear,
    };
    let config = ServeConfig {
        // Paced so the daemon is still live while the client talks.
        phase_pace: Some(Duration::from_millis(1)),
        ..ServeConfig::default()
    };
    let store = CheckpointStore::open(scratch("protocol"), 3).unwrap();
    let daemon = Daemon::start(spec, config, store, CrashPlan::none()).unwrap();
    assert_eq!(daemon.wait_live(Duration::from_secs(30)), Mode::Live);

    let socket_dir = scratch("protocol-socket");
    fs::create_dir_all(&socket_dir).unwrap();
    let socket_path = socket_dir.join("wardrop.sock");
    let server = std::thread::scope(|scope| {
        let server_daemon = &daemon;
        let server_path = socket_path.clone();
        let server = scope.spawn(move || serve_unix(server_daemon, &server_path));
        let mut client = Client::connect(&socket_path);

        match client.round_trip(&WireRequest::Status) {
            WireResponse::Status(status) => {
                assert_eq!(status.mode, Mode::Live);
                assert!(!status.stalled);
            }
            other => panic!("expected Status, got {other:?}"),
        }

        match client.round_trip(&WireRequest::Route(QueryRequest {
            commodities: vec![],
            deadline_us: None,
        })) {
            WireResponse::Route(response) => {
                assert_eq!(response.advice.len(), num_commodities);
                assert!(response.staleness_bound > 0.0);
            }
            other => panic!("expected Route, got {other:?}"),
        }

        match client.round_trip(&WireRequest::Event {
            actions: vec![EventAction::ScaleLatency {
                edge: EdgeId::from_index(0),
                factor: 1.25,
            }],
        }) {
            WireResponse::Ok => {}
            other => panic!("expected Ok, got {other:?}"),
        }

        // Poll stats until the injected event is applied at a phase
        // boundary (the engine is paced at 1 ms).
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match client.round_trip(&WireRequest::Stats) {
                WireResponse::Stats(stats) => {
                    assert!(stats.queries >= 1, "the route query must be counted");
                    assert_eq!(stats.crashes, 0);
                    if stats.events_applied >= 1 {
                        break;
                    }
                }
                other => panic!("expected Stats, got {other:?}"),
            }
            assert!(
                std::time::Instant::now() < deadline,
                "injected event never applied"
            );
            std::thread::sleep(Duration::from_millis(5));
        }

        // A malformed line must come back typed, on the same
        // connection, without dropping it.
        client
            .reader
            .get_mut()
            .write_all(b"{definitely not json\n")
            .unwrap();
        let mut answer = String::new();
        client.reader.read_line(&mut answer).unwrap();
        match decode_response(&answer).unwrap() {
            WireResponse::Error(message) => assert!(!message.is_empty()),
            other => panic!("expected Error, got {other:?}"),
        }

        match client.round_trip(&WireRequest::Shutdown) {
            WireResponse::Ok => {}
            other => panic!("expected Ok, got {other:?}"),
        }
        server.join().unwrap()
    });
    server.unwrap();
    // The server removes its socket file on exit.
    assert!(!socket_path.exists(), "socket file must be cleaned up");

    let report = daemon.finish();
    assert_eq!(report.stats.crashes, 0);
    assert!(
        report.stats.events_applied >= 1,
        "the injected event must have been applied"
    );
}
