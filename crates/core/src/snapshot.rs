//! Checkpoint snapshots of a running [`Simulation`].
//!
//! A long-lived routing daemon (`wardrop-serve`) must survive its own
//! process dying mid-run. [`EngineSnapshot`] captures the *complete*
//! dynamic state of the phase loop — flow, posted board, phase/epoch
//! counters, wall-clock time, the AIMD governor's throttle and log,
//! and the fault layer's refresh bookkeeping — so that
//! [`Simulation::from_snapshot`] resumes a run **bit-identically** to
//! one that was never interrupted. Everything recomputable is *not*
//! stored: the evaluation workspace is rebuilt deterministically from
//! the flow, and the delta evaluator's scratch is invalidated (the
//! first phase after a restore performs a full re-sync).
//!
//! # On-disk format
//!
//! [`EngineSnapshot::to_bytes`] encodes a one-line ASCII header
//! followed by the JSON payload:
//!
//! ```text
//! WARDROP-SNAPSHOT v1 len=<payload bytes> fnv=<16-hex FNV-1a of payload>
//! {"instance": ..., "config": ..., "flow": [...], ...}
//! ```
//!
//! The header makes the three failure modes of checkpoint files
//! distinguishable *before* touching the payload: a version token
//! mismatch is a [`SnapshotError::SchemaMismatch`], a payload shorter
//! than `len` is a [`SnapshotError::Truncated`] torn write, and a
//! checksum or parse failure is [`SnapshotError::Corrupt`] bit rot.
//! Restores additionally re-validate every structural invariant
//! ([`SnapshotError::Shape`]) — a checkpoint is untrusted input.
//!
//! Floating-point values survive the JSON round trip exactly: the
//! writer emits the shortest decimal form that parses back to the
//! same `f64` (and bare `NaN`/`Infinity` tokens), so a decoded
//! snapshot is bitwise equal to the encoded one.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};
use wardrop_net::flow::FlowVec;
use wardrop_net::instance::Instance;

use crate::board::BulletinBoard;
#[allow(unused_imports)] // doc links
use crate::engine::Simulation;
use crate::engine::SimulationConfig;
use crate::fault::FaultSnapshot;
use crate::guard::GuardSnapshot;

/// Version token of the snapshot encoding. Bump on any change to the
/// header or payload schema; [`EngineSnapshot::from_bytes`] rejects
/// other versions with [`SnapshotError::SchemaMismatch`].
pub const SNAPSHOT_VERSION: u32 = 1;

/// Magic token opening every snapshot header.
const MAGIC: &str = "WARDROP-SNAPSHOT";

/// Typed decode/restore failure — bad checkpoint bytes never panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The payload is shorter than the header's declared length — the
    /// classic torn write of a process dying mid-`write(2)`.
    Truncated {
        /// Payload bytes the header promised.
        expected: usize,
        /// Payload bytes actually present.
        got: usize,
    },
    /// The bytes are damaged: missing/garbled header, checksum
    /// mismatch (bit rot), trailing garbage, or unparseable payload.
    Corrupt(String),
    /// The snapshot was written by a different encoding version.
    SchemaMismatch {
        /// Version token found in the header.
        found: u32,
        /// The version this build reads.
        supported: u32,
    },
    /// The payload decoded, but its state is internally inconsistent
    /// (shape mismatches, infeasible flow, out-of-range config).
    Shape(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { expected, got } => {
                write!(
                    f,
                    "truncated snapshot: header declares {expected} payload bytes, found {got}"
                )
            }
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            SnapshotError::SchemaMismatch { found, supported } => {
                write!(f, "snapshot schema v{found} is not readable by this build (supports v{supported})")
            }
            SnapshotError::Shape(msg) => write!(f, "inconsistent snapshot state: {msg}"),
        }
    }
}

impl Error for SnapshotError {}

/// FNV-1a over `bytes` — the checkpoint payload checksum. Not
/// cryptographic; it exists to catch bit flips and torn rewrites, not
/// adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The complete dynamic state of a [`Simulation`] at a phase boundary.
///
/// Taken between steps by [`Simulation::snapshot`]; a fresh engine
/// built from it with [`Simulation::from_snapshot`] continues the run
/// bit-identically (records, flows, guard log, fault counters). The
/// scenario epoch counter doubles as the resume cursor into the event
/// list: `epoch` events have been applied, so a driver resumes at
/// `events[epoch..]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// The owned (possibly event-mutated) instance.
    pub instance: Instance,
    /// The active configuration, including fault plan and guard tuning.
    pub config: SimulationConfig,
    /// Path flow values at the upcoming phase start.
    pub flow: Vec<f64>,
    /// The posted bulletin board (under faults this may be older than
    /// the flow — dropped posts leave it stale, and that staleness is
    /// part of the state).
    pub board: BulletinBoard,
    /// Phases executed so far.
    pub index: usize,
    /// Scenario events applied so far.
    pub epoch: usize,
    /// Wall-clock start time of the upcoming phase.
    pub start_time: f64,
    /// Whether an early stop has latched.
    pub stopped: bool,
    /// AIMD governor state (present iff `config.guard` is).
    pub guard: Option<GuardSnapshot>,
    /// Fault-layer bookkeeping (present iff `config.faults` is).
    pub fault: Option<FaultSnapshot>,
}

impl EngineSnapshot {
    /// Encodes the snapshot as header + JSON payload (see the
    /// [module docs](self) for the format).
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = serde_json::to_string(self).expect("snapshot state is always serialisable");
        let mut out = format!(
            "{MAGIC} v{SNAPSHOT_VERSION} len={} fnv={:016x}\n",
            payload.len(),
            fnv1a64(payload.as_bytes())
        );
        out.push_str(&payload);
        out.into_bytes()
    }

    /// Decodes a snapshot, classifying every failure mode as a typed
    /// [`SnapshotError`] — truncation, corruption and version skew are
    /// recoverable conditions for a checkpoint store, not panics.
    ///
    /// # Errors
    ///
    /// See [`SnapshotError`]. Structural consistency of the decoded
    /// state is *not* checked here — that happens on restore
    /// ([`EngineSnapshot::check`]), so a store can cheaply probe files
    /// for decodability.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let newline = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| SnapshotError::Corrupt("missing header line".into()))?;
        let header = std::str::from_utf8(&bytes[..newline])
            .map_err(|_| SnapshotError::Corrupt("header is not UTF-8".into()))?;
        let mut parts = header.split_ascii_whitespace();
        if parts.next() != Some(MAGIC) {
            return Err(SnapshotError::Corrupt("bad magic token".into()));
        }
        let version = parts
            .next()
            .and_then(|t| t.strip_prefix('v'))
            .and_then(|t| t.parse::<u32>().ok())
            .ok_or_else(|| SnapshotError::Corrupt("missing version token".into()))?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::SchemaMismatch {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let expected = parts
            .next()
            .and_then(|t| t.strip_prefix("len="))
            .and_then(|t| t.parse::<usize>().ok())
            .ok_or_else(|| SnapshotError::Corrupt("missing length token".into()))?;
        let checksum = parts
            .next()
            .and_then(|t| t.strip_prefix("fnv="))
            .and_then(|t| u64::from_str_radix(t, 16).ok())
            .ok_or_else(|| SnapshotError::Corrupt("missing checksum token".into()))?;
        let payload = &bytes[newline + 1..];
        if payload.len() < expected {
            return Err(SnapshotError::Truncated {
                expected,
                got: payload.len(),
            });
        }
        if payload.len() > expected {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after declared payload",
                payload.len() - expected
            )));
        }
        if fnv1a64(payload) != checksum {
            return Err(SnapshotError::Corrupt("payload checksum mismatch".into()));
        }
        let text = std::str::from_utf8(payload)
            .map_err(|_| SnapshotError::Corrupt("payload is not UTF-8".into()))?;
        serde_json::from_str(text).map_err(|e| SnapshotError::Corrupt(e.to_string()))
    }

    /// Validates the structural invariants a restore relies on: the
    /// instance's derived arenas are consistent, the configuration is
    /// in range, the flow is feasible, board buffers match the
    /// instance shape, and guard/fault state agrees with the config.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Shape`] naming the first violated invariant.
    pub fn check(&self) -> Result<(), SnapshotError> {
        self.instance
            .check_consistent()
            .map_err(|e| SnapshotError::Shape(format!("instance: {e}")))?;
        self.config
            .check()
            .map_err(|m| SnapshotError::Shape(format!("config: {m}")))?;
        FlowVec::from_values(&self.instance, self.flow.clone())
            .map_err(|e| SnapshotError::Shape(format!("flow: {e}")))?;
        if self.board.edge_flows().len() != self.instance.num_edges()
            || self.board.path_latencies().len() != self.instance.num_paths()
            || self.board.path_flows().len() != self.instance.num_paths()
        {
            return Err(SnapshotError::Shape(format!(
                "board sized for {} edges / {} paths, instance has {} / {}",
                self.board.edge_flows().len(),
                self.board.path_latencies().len(),
                self.instance.num_edges(),
                self.instance.num_paths()
            )));
        }
        if !self.start_time.is_finite() {
            return Err(SnapshotError::Shape(format!(
                "non-finite start time {}",
                self.start_time
            )));
        }
        if self.index > self.config.num_phases {
            return Err(SnapshotError::Shape(format!(
                "phase index {} exceeds the {}-phase budget",
                self.index, self.config.num_phases
            )));
        }
        match (&self.config.guard, &self.guard) {
            (Some(_), Some(g)) => g
                .check()
                .map_err(|m| SnapshotError::Shape(format!("guard: {m}")))?,
            (None, None) => {}
            (cfg, state) => {
                return Err(SnapshotError::Shape(format!(
                    "guard config {} but guard state {}",
                    if cfg.is_some() { "present" } else { "absent" },
                    if state.is_some() { "present" } else { "absent" },
                )))
            }
        }
        match (&self.config.faults, &self.fault) {
            (Some(_), Some(f)) => {
                if f.last_refresh.len() != self.instance.num_commodities() {
                    return Err(SnapshotError::Shape(format!(
                        "fault refresh table has {} rows for {} commodities",
                        f.last_refresh.len(),
                        self.instance.num_commodities()
                    )));
                }
            }
            (None, None) => {}
            (cfg, state) => {
                return Err(SnapshotError::Shape(format!(
                    "fault plan {} but fault state {}",
                    if cfg.is_some() { "present" } else { "absent" },
                    if state.is_some() { "present" } else { "absent" },
                )))
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn header_failure_modes_are_typed() {
        assert_eq!(
            EngineSnapshot::from_bytes(b"no newline at all").unwrap_err(),
            SnapshotError::Corrupt("missing header line".into())
        );
        assert!(matches!(
            EngineSnapshot::from_bytes(b"NOT-A-SNAPSHOT v1 len=0 fnv=0\n"),
            Err(SnapshotError::Corrupt(_))
        ));
        assert_eq!(
            EngineSnapshot::from_bytes(format!("{MAGIC} v999 len=0 fnv=0\n").as_bytes())
                .unwrap_err(),
            SnapshotError::SchemaMismatch {
                found: 999,
                supported: SNAPSHOT_VERSION
            }
        );
        assert_eq!(
            EngineSnapshot::from_bytes(format!("{MAGIC} v1 len=100 fnv=0\nshort").as_bytes())
                .unwrap_err(),
            SnapshotError::Truncated {
                expected: 100,
                got: 5
            }
        );
    }
}
