//! Sampling rules `σ_PQ` (§2.2, step 1 of the two-step policies).
//!
//! When an agent of commodity `i` is activated, it first *samples* a
//! candidate path `Q ∈ P_i` with probability `σ_PQ(f̂)`. All rules from
//! the paper are origin-independent — the sampled path does not depend
//! on the agent's current path — so a rule is represented as a
//! probability distribution over the commodity's paths, computed from
//! the bulletin board:
//!
//! * [`Uniform`]: `σ_Q = 1/|P_i|`;
//! * [`Proportional`]: `σ_Q = f̂_Q / r_i` ("imitate a random agent" —
//!   combined with linear migration this is the replicator dynamics);
//! * [`Logit`]: `σ_Q ∝ exp(−c · ℓ̂_Q)`, the smoothed-best-response
//!   sampler; as `c → ∞` it concentrates on best replies.

use std::fmt;

use crate::board::BulletinBoard;
use wardrop_net::instance::Instance;

/// A (origin-independent) sampling rule.
///
/// Implementors fill `weights` — indexed like
/// `instance.commodity_paths(commodity)` — with a probability
/// distribution (non-negative, summing to 1 whenever the commodity has
/// at least one path).
pub trait SamplingRule: fmt::Debug + Send + Sync {
    /// Writes the sampling distribution of `commodity` into `weights`.
    ///
    /// `weights.len()` equals the commodity's path count; entries are
    /// overwritten.
    fn fill_weights(
        &self,
        instance: &Instance,
        board: &BulletinBoard,
        commodity: usize,
        weights: &mut [f64],
    );

    /// Human-readable rule name for reports.
    fn name(&self) -> String;

    /// Whether the rule guarantees `σ_Q > 0` for every path — a premise
    /// of the convergence theorem (Theorem 2 / Corollary 5).
    ///
    /// Proportional sampling violates it on paths with zero board flow.
    fn strictly_positive(&self) -> bool;

    /// Opt-in to the matrix-free phase rates (see [`crate::kernel`]):
    /// the weights written by [`SamplingRule::fill_weights`] are used
    /// as the target-side factor `σ_Q` of the separable generator
    /// `c_PQ = σ_Q µ(ℓ̂_P, ℓ̂_Q)`.
    ///
    /// The trait contract already makes every rule origin-independent
    /// (`fill_weights` never sees the agent's current path), so the
    /// default is `true` and all stock rules keep it. Override to
    /// `false` only as an escape hatch for experimental rules that
    /// deliberately bend the contract and need the dense Θ(P²) path.
    fn target_separable(&self) -> bool {
        true
    }

    /// Convenience wrapper allocating the weight vector.
    fn weights(&self, instance: &Instance, board: &BulletinBoard, commodity: usize) -> Vec<f64> {
        let n = instance.commodity_path_count(commodity);
        let mut w = vec![0.0; n];
        self.fill_weights(instance, board, commodity, &mut w);
        w
    }
}

/// Uniform sampling: `σ_Q = 1/|P_i|` (Theorem 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Uniform;

impl SamplingRule for Uniform {
    fn fill_weights(
        &self,
        _instance: &Instance,
        _board: &BulletinBoard,
        _commodity: usize,
        weights: &mut [f64],
    ) {
        let w = 1.0 / weights.len() as f64;
        weights.fill(w);
    }

    fn name(&self) -> String {
        "uniform".to_string()
    }

    fn strictly_positive(&self) -> bool {
        true
    }
}

/// Proportional sampling: `σ_Q = f̂_Q / r_i` (Theorem 7; replicator
/// dynamics when combined with [`Linear`](crate::migration::Linear)
/// migration).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Proportional;

impl SamplingRule for Proportional {
    fn fill_weights(
        &self,
        instance: &Instance,
        board: &BulletinBoard,
        commodity: usize,
        weights: &mut [f64],
    ) {
        let range = instance.commodity_paths(commodity);
        let demand = instance.commodities()[commodity].demand;
        for (w, p) in weights.iter_mut().zip(range) {
            *w = board.path_flows()[p] / demand;
        }
    }

    fn name(&self) -> String {
        "proportional".to_string()
    }

    fn strictly_positive(&self) -> bool {
        false
    }
}

/// Logit (smoothed best response) sampling:
/// `σ_Q = exp(−c ℓ̂_Q) / Σ_{Q'} exp(−c ℓ̂_{Q'})` (§2.2).
///
/// Large `c` approximates best response (and inherits its poor behaviour
/// under staleness); small `c` approaches uniform sampling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Logit {
    /// Inverse-temperature parameter `c ≥ 0`.
    pub c: f64,
}

impl Logit {
    /// Creates a logit sampler with inverse temperature `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is negative or non-finite.
    pub fn new(c: f64) -> Self {
        assert!(c.is_finite() && c >= 0.0, "logit parameter must be ≥ 0");
        Logit { c }
    }
}

impl SamplingRule for Logit {
    fn fill_weights(
        &self,
        instance: &Instance,
        board: &BulletinBoard,
        commodity: usize,
        weights: &mut [f64],
    ) {
        let range = instance.commodity_paths(commodity);
        // Numerically stable softmax over −c·ℓ̂.
        let min_lat = board.min_latency(instance, commodity);
        let mut total = 0.0;
        for (w, p) in weights.iter_mut().zip(range) {
            let e = (-self.c * (board.path_latencies()[p] - min_lat)).exp();
            *w = e;
            total += e;
        }
        for w in weights.iter_mut() {
            *w /= total;
        }
    }

    fn name(&self) -> String {
        format!("logit(c={})", self.c)
    }

    fn strictly_positive(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wardrop_net::builders;
    use wardrop_net::flow::FlowVec;

    fn board_for(values: Vec<f64>) -> (wardrop_net::Instance, BulletinBoard) {
        let inst = builders::pigou();
        let f = FlowVec::from_values(&inst, values).unwrap();
        let board = BulletinBoard::post(&inst, &f, 0.0);
        (inst, board)
    }

    #[test]
    fn uniform_weights_are_uniform() {
        let (inst, board) = board_for(vec![0.3, 0.7]);
        let w = Uniform.weights(&inst, &board, 0);
        assert_eq!(w, vec![0.5, 0.5]);
    }

    #[test]
    fn proportional_weights_match_board_flow() {
        let (inst, board) = board_for(vec![0.3, 0.7]);
        let w = Proportional.weights(&inst, &board, 0);
        assert!((w[0] - 0.3).abs() < 1e-12);
        assert!((w[1] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn proportional_is_zero_on_extinct_paths() {
        let (inst, board) = board_for(vec![0.0, 1.0]);
        let w = Proportional.weights(&inst, &board, 0);
        assert_eq!(w[0], 0.0);
        assert!(!Proportional.strictly_positive());
    }

    #[test]
    fn logit_prefers_low_latency() {
        // At f = (0.3, 0.7): ℓ₁ = 0.3 < ℓ₂ = 1.
        let (inst, board) = board_for(vec![0.3, 0.7]);
        let w = Logit::new(5.0).weights(&inst, &board, 0);
        assert!(w[0] > w[1]);
        assert!((w[0] + w[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn logit_zero_temperature_is_uniform() {
        let (inst, board) = board_for(vec![0.3, 0.7]);
        let w = Logit::new(0.0).weights(&inst, &board, 0);
        assert!((w[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn logit_large_c_concentrates_on_best_reply() {
        let (inst, board) = board_for(vec![0.3, 0.7]);
        let w = Logit::new(1e4).weights(&inst, &board, 0);
        assert!(w[0] > 0.999);
    }

    #[test]
    fn logit_is_stable_for_huge_latencies() {
        let inst = builders::parallel_links(vec![
            wardrop_net::Latency::Constant(1e6),
            wardrop_net::Latency::Constant(2e6),
        ]);
        let f = FlowVec::uniform(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let w = Logit::new(10.0).weights(&inst, &board, 0);
        assert!(w.iter().all(|x| x.is_finite()));
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_rules_sum_to_one() {
        let inst = builders::braess();
        let f = FlowVec::uniform(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let rules: Vec<Box<dyn SamplingRule>> = vec![
            Box::new(Uniform),
            Box::new(Proportional),
            Box::new(Logit::new(2.0)),
        ];
        for r in &rules {
            let w = r.weights(&inst, &board, 0);
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12, "{}", r.name());
            assert!(w.iter().all(|x| *x >= 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "logit parameter")]
    fn logit_rejects_negative_c() {
        let _ = Logit::new(-1.0);
    }
}
