//! The implicit-path (edge-flow) simulation backend.
//!
//! Every other component of this workspace works on an
//! [`Instance`] whose path arena was enumerated up front. That is
//! faithful to the paper's path formulation but caps the reachable
//! topologies: grid_12x12 already needs 705,432 paths and ~15.5 M CSR
//! incidences, and grid_14x14 (10,400,600 paths) cannot even be
//! allocated. The paper's polynomial bounds (Theorems 6/7) hold
//! precisely because the rerouting dynamics never *need* explicit path
//! sets — agents only ever compare their own path against sampled
//! alternatives under the posted edge latencies.
//!
//! This module exploits that via **column generation** over a path-free
//! [`EdgeInstance`]: an [`EdgeSimulation`] keeps a small per-commodity
//! *active* path set, builds a **restricted** enumerated instance over
//! exactly those columns
//! ([`Instance::with_explicit_paths`]), and runs the
//! unchanged phase machinery — fused evaluation, matrix-free
//! [`PhaseRates`](crate::policy::PhaseRates), integrators,
//! [`BulletinBoard`] — over the restriction. Between phases a
//! shortest-path oracle ([`DijkstraWorkspace`], `O(E log V)` per probe)
//! checks the posted edge latencies for a best reply outside the active
//! set and admits it as a fresh zero-flow column; a seeded
//! [`PathSampler`] provides uniform random paths for the
//! initial column pool. Per-commodity state therefore lives on **edge
//! flows**: the board posts edge latencies, the oracle reads only
//! edges, and the active path set is merely the basis currently
//! carrying flow.
//!
//! Two properties make this backend testable against the enumerated
//! engine:
//!
//! * **Exact equivalence on small instances** — seeding the active set
//!   with the full enumerated path set (in enumeration order) makes
//!   the restricted instance *bit-identical* to the enumerated one, so
//!   both engines produce bit-identical trajectories
//!   (`tests/backend_equivalence.rs`).
//! * **Zero-allocation steady state** — when no new column is
//!   discovered, a phase performs no heap allocation: the Dijkstra
//!   workspace, path buffer and hash lookups all reuse pre-sized
//!   buffers (`crates/core/tests/zero_alloc.rs`). Discovery steps and
//!   scenario events are the sanctioned allocation points, exactly
//!   like `apply_event` on the enumerated engine.
//!
//! # Worked example: a grid beyond the enumerated frontier
//!
//! ```
//! use wardrop_core::edge_engine::{run_edge, PathSeeding};
//! use wardrop_core::engine::SimulationConfig;
//! use wardrop_core::migration::Linear;
//! use wardrop_core::policy::SmoothPolicy;
//! use wardrop_core::sampling::Uniform;
//! use wardrop_net::builders;
//!
//! // A 6x6 grid: 252 implicit paths, but the engine only ever carries
//! // the columns the oracles discover.
//! let edge = builders::grid_edge_network(6, 6, 7);
//! let policy = SmoothPolicy::new(Uniform, Linear::new(edge.latency_upper_bound()));
//! let config = SimulationConfig::new(0.5, 40);
//! let seeding = PathSeeding::default(); // shortest path + 8 random columns
//! let traj = run_edge(&edge, &policy, &config, &seeding).unwrap();
//! assert_eq!(traj.len(), 40);
//! // The potential never increases for a smooth policy within the
//! // safe period — same Lemma 4 behaviour as the enumerated engine.
//! assert!(traj.phases.last().unwrap().potential_end
//!     <= traj.phases[0].potential_start + 1e-9);
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use wardrop_net::edge_flow::EdgeInstance;
use wardrop_net::error::NetError;
use wardrop_net::flow::FlowVec;
use wardrop_net::graph::EdgeId;
use wardrop_net::instance::Instance;
use wardrop_net::path::Path;
use wardrop_net::rng::SplitMix64;
use wardrop_net::scenario::{Event, EventAction, Scenario};
use wardrop_net::shortest_path::{DijkstraWorkspace, PathSampler};
use wardrop_pool::WorkerPool;

use crate::board::BulletinBoard;
use crate::engine::{Dynamics, EngineWorkspace, SimulationConfig};
use crate::fault::{FaultState, FaultStats};
use crate::guard::{GuardLog, SmoothnessGuard};
use crate::trajectory::{PhaseRecord, Trajectory};

/// How the initial active path set of an [`EdgeSimulation`] is built.
#[derive(Debug, Clone)]
pub enum PathSeeding {
    /// Oracle seeding: per commodity, the shortest path under free-flow
    /// latencies `ℓ_e(0)` plus up to `random_paths` distinct uniform
    /// random paths drawn by a seeded [`PathSampler`]. The default
    /// (`random_paths: 8, seed: 0`).
    Oracle {
        /// Number of uniform random columns sampled per commodity
        /// (duplicates are dropped, so fewer may be admitted).
        random_paths: usize,
        /// Seed of the deterministic sampling stream.
        seed: u64,
    },
    /// Explicit seeding: `paths[i]` becomes commodity `i`'s initial
    /// active set, in order. Seeding with the full enumerated path set
    /// makes the backend bit-identical to the enumerated engine — the
    /// lever of the differential test suite.
    Explicit(Vec<Vec<Path>>),
}

impl Default for PathSeeding {
    fn default() -> Self {
        PathSeeding::Oracle {
            random_paths: 8,
            seed: 0,
        }
    }
}

/// FNV-1a over the edge indices of a path — the cheap, allocation-free
/// fingerprint the active-set membership index buckets on. Collisions
/// are resolved by exact edge-sequence comparison.
fn path_fingerprint(edges: &[EdgeId]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for e in edges {
        let mut bytes = e.index() as u32;
        for _ in 0..4 {
            hash ^= u64::from(bytes & 0xff);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            bytes >>= 8;
        }
    }
    hash
}

/// An in-flight implicit-path simulation.
///
/// Mirrors [`Simulation`](crate::engine::Simulation) — same phase
/// pipeline, same [`PhaseRecord`]s, same scenario-event semantics —
/// but owns an [`EdgeInstance`] plus a dynamically *restricted*
/// enumerated instance over the active path set, rebuilt whenever the
/// per-phase best-reply probe discovers a new column. See the
/// [module docs](self) for the design.
#[derive(Debug)]
pub struct EdgeSimulation<'a, D: Dynamics + ?Sized> {
    edge: EdgeInstance,
    restricted: Instance,
    dynamics: &'a D,
    config: SimulationConfig,
    flow: FlowVec,
    board: BulletinBoard,
    workspace: EngineWorkspace,
    /// Owned copy of the pool so restricted-instance rebuilds can
    /// re-attach the same parked workers.
    pool: Option<Arc<WorkerPool>>,
    /// Active path set per commodity (the restricted instance's arena).
    active: Vec<Vec<Path>>,
    /// Membership index: fingerprint → (commodity, local index)
    /// candidates, verified by exact edge comparison.
    seen: HashMap<u64, Vec<(u32, u32)>>,
    oracle: DijkstraWorkspace,
    path_buf: Vec<EdgeId>,
    fault: Option<FaultState>,
    guard: Option<SmoothnessGuard>,
    discoveries: usize,
    index: usize,
    epoch: usize,
    start_time: f64,
    stopped: bool,
}

impl<'a, D: Dynamics + ?Sized> EdgeSimulation<'a, D> {
    /// Prepares an implicit-path simulation: seeds the active path set,
    /// builds the restricted instance and starts from the uniform flow
    /// over the active columns.
    ///
    /// # Errors
    ///
    /// Propagates restricted-instance construction failures — in
    /// particular explicit seed paths with wrong endpoints or an empty
    /// per-commodity list.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (non-positive update
    /// period), like [`Simulation::new`](crate::engine::Simulation::new).
    pub fn new(
        edge: &EdgeInstance,
        dynamics: &'a D,
        config: &SimulationConfig,
        seeding: &PathSeeding,
    ) -> Result<Self, NetError> {
        config.validate();
        let graph = edge.graph();
        let mut active: Vec<Vec<Path>> = vec![Vec::new(); edge.num_commodities()];
        let mut seen: HashMap<u64, Vec<(u32, u32)>> = HashMap::new();
        let register = |seen: &mut HashMap<u64, Vec<(u32, u32)>>,
                        active: &mut Vec<Vec<Path>>,
                        commodity: usize,
                        path: Path|
         -> bool {
            let hash = path_fingerprint(path.edges());
            let bucket = seen.entry(hash).or_default();
            let duplicate = bucket.iter().any(|&(c, l)| {
                c as usize == commodity && active[commodity][l as usize].edges() == path.edges()
            });
            if duplicate {
                return false;
            }
            bucket.push((commodity as u32, active[commodity].len() as u32));
            active[commodity].push(path);
            true
        };
        match seeding {
            PathSeeding::Explicit(lists) => {
                if lists.len() != edge.num_commodities() {
                    return Err(NetError::Inconsistent(format!(
                        "{} seed path lists for {} commodities",
                        lists.len(),
                        edge.num_commodities()
                    )));
                }
                for (i, list) in lists.iter().enumerate() {
                    for p in list {
                        register(&mut seen, &mut active, i, p.clone());
                    }
                }
            }
            PathSeeding::Oracle { random_paths, seed } => {
                let free_flow: Vec<f64> = edge.latencies().iter().map(|l| l.eval(0.0)).collect();
                let mut oracle = DijkstraWorkspace::new();
                let mut rng = SplitMix64::new(*seed);
                let mut buf = Vec::with_capacity(graph.node_count());
                for (i, c) in edge.commodities().iter().enumerate() {
                    oracle.run(graph, c.source, &free_flow);
                    let reachable = oracle.path_into(graph, c.sink, &mut buf);
                    debug_assert!(reachable, "EdgeInstance validated reachability");
                    let shortest = Path::new(graph, buf.clone()).expect("oracle paths are simple");
                    register(&mut seen, &mut active, i, shortest);
                    if *random_paths > 0 {
                        let sampler = PathSampler::new(graph, c.source, c.sink)
                            .expect("EdgeInstance validated acyclicity");
                        for _ in 0..*random_paths {
                            sampler.sample_into(graph, &mut rng, &mut buf);
                            let p =
                                Path::new(graph, buf.clone()).expect("sampled paths are simple");
                            register(&mut seen, &mut active, i, p);
                        }
                    }
                }
            }
        }

        let restricted = Instance::with_explicit_paths(
            graph.clone(),
            edge.latencies().to_vec(),
            edge.commodities().to_vec(),
            &active,
        )?;
        let pool = config.parallelism.build_pool();
        let flow = FlowVec::uniform(&restricted);
        let mut workspace = EngineWorkspace::with_pool(&restricted, pool.clone());
        workspace.configure_delta(&restricted, config);
        workspace
            .eval
            .evaluate_with(&restricted, &flow, pool.as_deref());
        // Warm the oracle buffers on the real weights so the per-phase
        // probe never allocates in steady state.
        let mut oracle = DijkstraWorkspace::new();
        let mut path_buf = Vec::with_capacity(graph.node_count());
        oracle.run(
            graph,
            edge.commodities()[0].source,
            workspace.eval.edge_latencies(),
        );
        let _ = oracle.path_into(graph, edge.commodities()[0].sink, &mut path_buf);

        let fault = match config.faults.clone() {
            Some(plan) => Some(FaultState::new(plan, &restricted)?),
            None => None,
        };
        let guard = config.guard.clone().map(SmoothnessGuard::new);
        Ok(EdgeSimulation {
            board: BulletinBoard::for_instance(&restricted),
            edge: edge.clone(),
            restricted,
            dynamics,
            config: config.clone(),
            flow,
            workspace,
            pool,
            active,
            seen,
            oracle,
            path_buf,
            fault,
            guard,
            discoveries: 0,
            index: 0,
            epoch: 0,
            start_time: 0.0,
            stopped: false,
        })
    }

    /// The current flow over the **active** path set.
    #[inline]
    pub fn flow(&self) -> &FlowVec {
        &self.flow
    }

    /// The path-free instance driving the run (possibly event-mutated).
    #[inline]
    pub fn edge_instance(&self) -> &EdgeInstance {
        &self.edge
    }

    /// The restricted enumerated instance over the active path set.
    #[inline]
    pub fn restricted(&self) -> &Instance {
        &self.restricted
    }

    /// The active configuration.
    #[inline]
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The current scenario epoch.
    #[inline]
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// The fused evaluation of the current flow (edge flows, edge
    /// latencies, potential — all on the restricted instance).
    #[inline]
    pub fn eval(&self) -> &wardrop_net::eval::EvalWorkspace {
        &self.workspace.eval
    }

    /// Number of phases executed so far.
    #[inline]
    pub fn phases_run(&self) -> usize {
        self.index
    }

    /// Total number of currently active columns across commodities.
    #[inline]
    pub fn active_path_count(&self) -> usize {
        self.restricted.num_paths()
    }

    /// Number of columns admitted by the per-phase best-reply probe
    /// (excluding the seeds).
    #[inline]
    pub fn discoveries(&self) -> usize {
        self.discoveries
    }

    /// Whether the workspace carries a worker pool.
    #[inline]
    pub fn uses_worker_pool(&self) -> bool {
        self.pool.is_some()
    }

    /// The AIMD governor's intervention log, when one is attached.
    #[inline]
    pub fn guard_log(&self) -> Option<&GuardLog> {
        self.guard.as_ref().map(SmoothnessGuard::log)
    }

    /// The fault layer's running counters, when a plan is attached.
    #[inline]
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.fault.as_ref().map(FaultState::stats)
    }

    /// True once the simulation has finished.
    #[inline]
    pub fn is_finished(&self) -> bool {
        self.stopped || self.index >= self.config.num_phases
    }

    /// Consumes the simulation, returning the final active-set flow.
    pub fn into_flow(self) -> FlowVec {
        self.flow
    }

    /// Probes the current edge latencies for an out-of-basis best
    /// reply per commodity; admits every new shortest path as a
    /// zero-flow column and rebuilds the restricted instance around
    /// the grown basis. Allocation-free when nothing is discovered.
    fn discover(&mut self) {
        let mut added = false;
        for i in 0..self.edge.num_commodities() {
            let c = self.edge.commodities()[i];
            self.oracle.run(
                self.edge.graph(),
                c.source,
                self.workspace.eval.edge_latencies(),
            );
            let reachable = self
                .oracle
                .path_into(self.edge.graph(), c.sink, &mut self.path_buf);
            debug_assert!(reachable, "EdgeInstance validated reachability");
            let hash = path_fingerprint(&self.path_buf);
            let known = self.seen.get(&hash).is_some_and(|bucket| {
                bucket.iter().any(|&(cm, l)| {
                    cm as usize == i
                        && self.active[i][l as usize].edges() == self.path_buf.as_slice()
                })
            });
            if known {
                continue;
            }
            let path = Path::new(self.edge.graph(), self.path_buf.clone())
                .expect("oracle paths are simple");
            self.seen
                .entry(hash)
                .or_default()
                .push((i as u32, self.active[i].len() as u32));
            self.active[i].push(path);
            self.discoveries += 1;
            added = true;
        }
        if added {
            self.rebuild();
        }
    }

    /// Rebuilds the restricted instance, flow and workspace after the
    /// active set grew. Existing columns keep their flow values (new
    /// columns start at zero), so feasibility — and the induced edge
    /// flows — are preserved exactly.
    fn rebuild(&mut self) {
        let restricted = Instance::with_explicit_paths(
            self.edge.graph().clone(),
            self.edge.latencies().to_vec(),
            self.edge.commodities().to_vec(),
            &self.active,
        )
        .expect("active path sets stay valid for their commodities");
        let mut values = Vec::with_capacity(restricted.num_paths());
        for i in 0..self.restricted.num_commodities() {
            let range = self.restricted.commodity_paths(i);
            let old_len = range.len();
            values.extend_from_slice(&self.flow.values()[range]);
            values.resize(values.len() + self.active[i].len() - old_len, 0.0);
        }
        self.flow = FlowVec::from_values_unchecked(values);
        self.workspace = EngineWorkspace::with_pool(&restricted, self.pool.clone());
        // The fresh delta scratch starts un-primed, so discovery
        // forces a full re-sync at the next phase boundary — strictly
        // stronger than marking the admitted columns changed.
        self.workspace.configure_delta(&restricted, &self.config);
        self.board = BulletinBoard::for_instance(&restricted);
        self.restricted = restricted;
        if let Some(fault) = &mut self.fault {
            // The grown basis re-sizes the board; the next post must
            // bootstrap the blank buffers cleanly.
            fault.rebind(&self.restricted);
        }
        self.workspace
            .eval
            .evaluate_with(&self.restricted, &self.flow, self.pool.as_deref());
    }

    /// Applies a scenario event between phases — identical semantics to
    /// [`Simulation::apply_event`](crate::engine::Simulation::apply_event),
    /// applied to *both* the restricted instance and the path-free edge
    /// instance so the oracles keep probing the mutated latencies.
    ///
    /// # Errors
    ///
    /// Propagates the first failing action (the two instances validate
    /// identically, so they never diverge).
    pub fn apply_event(&mut self, actions: &[EventAction]) -> Result<(), NetError> {
        let old_demands: Vec<f64> = self
            .restricted
            .commodities()
            .iter()
            .map(|c| c.demand)
            .collect();
        for action in actions {
            action.apply(&mut self.restricted)?;
            self.edge.apply_action(action)?;
        }
        for (i, &old) in old_demands.iter().enumerate() {
            let new = self.restricted.commodities()[i].demand;
            if new != old {
                let scale = new / old;
                let range = self.restricted.commodity_paths(i);
                for v in &mut self.flow.values_mut()[range] {
                    *v *= scale;
                }
            }
        }
        self.workspace
            .eval
            .evaluate_with(&self.restricted, &self.flow, self.pool.as_deref());
        // The event mutated state under the delta shadow — re-sync at
        // the next phase boundary.
        self.workspace.invalidate_delta();
        // Events move the potential legitimately; don't let the
        // governor read the jump as a Lemma-4 violation.
        if let Some(guard) = &mut self.guard {
            guard.reset_baseline();
        }
        self.epoch += 1;
        Ok(())
    }

    /// Executes one phase and returns its record, or `None` when the
    /// phase budget is exhausted or the early-stop threshold fires.
    ///
    /// The pipeline mirrors
    /// [`Simulation::step`](crate::engine::Simulation::step) exactly —
    /// post, relax, renormalise, evaluate once — preceded by the
    /// best-reply probe that may grow the basis.
    pub fn step(&mut self) -> Option<PhaseRecord> {
        if self.is_finished() {
            self.stopped = true;
            return None;
        }
        self.discover();

        let potential_start = self.workspace.eval.potential();
        let avg_latency_start = self.workspace.eval.avg_latency();
        let max_regret_start = self
            .workspace
            .eval
            .max_regret(&self.restricted, &self.flow, 1e-12);
        if let Some(threshold) = self.config.stop_when_regret_below {
            if max_regret_start < threshold {
                self.stopped = true;
                return None;
            }
        }
        let unsatisfied: Vec<f64> = self
            .config
            .deltas
            .iter()
            .map(|d| {
                self.workspace
                    .eval
                    .unsatisfied_volume(&self.restricted, &self.flow, *d)
            })
            .collect();
        let weakly_unsatisfied: Vec<f64> = self
            .config
            .deltas
            .iter()
            .map(|d| {
                self.workspace
                    .eval
                    .weakly_unsatisfied_volume(&self.restricted, &self.flow, *d)
            })
            .collect();

        // Snapshot the true phase-start edges for the virtual gain —
        // the board cannot serve as the snapshot once the fault layer
        // may degrade (or skip) the post. Delta mode snapshots the
        // phase-start path flows and watches the fault counters, same
        // as the enumerated engine.
        self.workspace.snapshot_start_edges();
        if let Some(delta) = &mut self.workspace.delta {
            delta.start_flow.copy_from_slice(self.flow.values());
        }
        let post_clean = match &mut self.fault {
            Some(state) => {
                let before = {
                    let s = state.stats();
                    (s.dropped, s.degraded)
                };
                state.post(
                    &mut self.board,
                    &self.restricted,
                    &self.workspace.eval,
                    &self.flow,
                    self.index,
                    self.start_time,
                );
                let s = state.stats();
                (s.dropped, s.degraded) == before
            }
            None => {
                self.board
                    .post_from_eval(&self.workspace.eval, &self.flow, self.start_time);
                true
            }
        };
        self.board.quantize(self.config.board_precision);
        debug_assert_eq!(self.board.edge_flows().len(), self.edge.num_edges());

        let tau = self
            .config
            .schedule
            .phase_length(self.config.update_period, self.index);
        // Governor throttle as time dilation of the board-frozen
        // dynamics — identical mechanism to the enumerated engine.
        let tau_dynamics = match &mut self.guard {
            Some(guard) => tau * guard.observe(self.index, self.start_time, potential_start),
            None => tau,
        };
        self.dynamics.advance_phase(
            &self.restricted,
            &self.board,
            &mut self.flow,
            tau_dynamics,
            &self.config.integrator,
            &mut self.workspace,
        );
        self.flow.renormalise(&self.restricted);

        {
            let EngineWorkspace {
                eval, rates, delta, ..
            } = &mut self.workspace;
            match delta {
                Some(d) => {
                    d.last_phase_delta = rates.changed_paths_into(
                        &d.start_flow,
                        self.flow.values(),
                        crate::engine::PATH_CHANGE_THRESHOLD,
                        &mut d.changes,
                    );
                    if !post_clean {
                        d.changes.mark_all();
                    }
                    if d.sparse {
                        let outcome = eval.evaluate_delta_with(
                            &self.restricted,
                            &self.flow,
                            &d.changes,
                            &mut d.scratch,
                            self.pool.as_deref(),
                        );
                        d.last_resync = outcome == wardrop_net::DeltaOutcome::Resync;
                    } else {
                        eval.evaluate_with(&self.restricted, &self.flow, self.pool.as_deref());
                    }
                }
                None => eval.evaluate_with(&self.restricted, &self.flow, self.pool.as_deref()),
            }
        }
        if let Some(threshold) = self.config.stop_when_phase_delta_below {
            let moved = self
                .workspace
                .delta
                .as_ref()
                .map(|d| d.last_phase_delta)
                .unwrap_or(f64::INFINITY);
            if moved < threshold {
                self.stopped = true;
            }
        }
        let potential_end = self.workspace.eval.potential();
        let (start_flows, start_latencies) = self.workspace.start_edges();
        let virtual_gain = self
            .workspace
            .eval
            .virtual_gain_from(start_flows, start_latencies);

        let record = PhaseRecord {
            index: self.index,
            epoch: self.epoch,
            start_time: self.start_time,
            potential_start,
            potential_end,
            virtual_gain,
            avg_latency_start,
            max_regret_start,
            unsatisfied,
            weakly_unsatisfied,
        };
        self.start_time += tau;
        self.index += 1;
        Some(record)
    }
}

/// Runs `dynamics` on the implicit-path backend. The edge-flow
/// counterpart of [`run`](crate::engine::run); the initial flow is
/// uniform over the seeded active columns.
///
/// # Errors
///
/// Propagates seed validation failures (see [`EdgeSimulation::new`]).
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn run_edge<D: Dynamics + ?Sized>(
    edge: &EdgeInstance,
    dynamics: &D,
    config: &SimulationConfig,
    seeding: &PathSeeding,
) -> Result<Trajectory, NetError> {
    let mut sim = EdgeSimulation::new(edge, dynamics, config, seeding)?;
    drive_edge(&mut sim, &[])
}

/// Runs `dynamics` on the implicit-path backend through a
/// non-stationary [`Scenario`] — the edge-flow counterpart of
/// [`run_scenario`](crate::engine::run_scenario), with identical event
/// semantics.
///
/// # Errors
///
/// Propagates seed validation failures and the first failing event.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn run_edge_scenario<D: Dynamics + ?Sized>(
    edge: &EdgeInstance,
    dynamics: &D,
    config: &SimulationConfig,
    seeding: &PathSeeding,
    scenario: &Scenario,
) -> Result<Trajectory, NetError> {
    let mut sim = EdgeSimulation::new(edge, dynamics, config, seeding)?;
    drive_edge(&mut sim, scenario.events())
}

/// Drives an edge simulation to completion against a sorted event
/// list — the implicit-path twin of the enumerated engine's driver,
/// producing the same [`Trajectory`] shape (recorded flows live on the
/// active path set of their phase).
fn drive_edge<D: Dynamics + ?Sized>(
    sim: &mut EdgeSimulation<'_, D>,
    events: &[Event],
) -> Result<Trajectory, NetError> {
    let config = sim.config().clone();
    let stride = config.effective_stride();
    let mut phases = Vec::with_capacity(config.num_phases.min(1 << 20));
    let mut flows = Vec::new();
    let mut next_event = 0usize;
    loop {
        while next_event < events.len() && events[next_event].at_phase <= sim.phases_run() {
            sim.apply_event(&events[next_event].actions)?;
            next_event += 1;
        }
        let snapshot = if config.record_flows && sim.phases_run().is_multiple_of(stride) {
            Some(sim.flow().clone())
        } else {
            None
        };
        match sim.step() {
            Some(record) => {
                if let Some(start_flow) = snapshot {
                    flows.push(start_flow);
                }
                phases.push(record);
            }
            None => break,
        }
    }

    Ok(Trajectory {
        update_period: config.update_period,
        deltas: config.deltas.clone(),
        phases,
        flows,
        flow_stride: stride,
        final_flow: sim.flow().clone(),
        dynamics: sim.dynamics.dynamics_name(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, SimulationConfig};
    use crate::policy::uniform_linear;
    use wardrop_net::builders;

    /// The full enumerated path set of an instance, split per
    /// commodity — the explicit seeding that makes the backends
    /// bit-identical.
    fn full_seed(inst: &Instance) -> PathSeeding {
        PathSeeding::Explicit(
            (0..inst.num_commodities())
                .map(|i| inst.paths()[inst.commodity_paths(i)].to_vec())
                .collect(),
        )
    }

    #[test]
    fn full_seed_matches_enumerated_engine_bitwise() {
        let inst = builders::grid_network(4, 4, 23);
        let edge = EdgeInstance::from_instance(&inst).unwrap();
        let policy = uniform_linear(&inst);
        let config = SimulationConfig::new(0.4, 12).with_flows();
        let reference = run(&inst, &policy, &FlowVec::uniform(&inst), &config);
        let traj = run_edge(&edge, &policy, &config, &full_seed(&inst)).unwrap();
        assert_eq!(traj.phases, reference.phases);
        assert_eq!(traj.flows, reference.flows);
        assert_eq!(traj.final_flow, reference.final_flow);
    }

    #[test]
    fn oracle_seeding_grows_the_basis_and_converges() {
        let edge = builders::grid_edge_network(5, 5, 11);
        let policy = uniform_linear_for_edge(&edge);
        let config = SimulationConfig::new(0.4, 120);
        let seeding = PathSeeding::Oracle {
            random_paths: 4,
            seed: 3,
        };
        let mut sim = EdgeSimulation::new(&edge, &policy, &config, &seeding).unwrap();
        let initial = sim.active_path_count();
        // C(8, 4) = 70 implicit paths; the seeds are a strict subset.
        assert!(initial <= 1 + 4);
        let mut records = Vec::new();
        while let Some(r) = sim.step() {
            records.push(r);
        }
        assert_eq!(records.len(), 120);
        assert!(sim.active_path_count() >= initial);
        assert_eq!(
            sim.active_path_count(),
            initial + sim.discoveries(),
            "every admitted column is counted once"
        );
        // Smooth policy within a conservative period: the potential is
        // monotone across basis growth too.
        for w in records.windows(2) {
            assert!(w[1].potential_start <= w[0].potential_start + 1e-9);
        }
        assert!(sim.flow().is_feasible(sim.restricted(), 1e-9));
    }

    #[test]
    fn discovery_admits_the_best_reply_column() {
        // Seed with only one deliberately poor random column; the first
        // probe must admit the true shortest path.
        let edge = builders::grid_edge_network(4, 4, 5);
        let policy = uniform_linear_for_edge(&edge);
        let config = SimulationConfig::new(0.3, 5);
        let seeding = PathSeeding::Oracle {
            random_paths: 1,
            seed: 99,
        };
        let mut sim = EdgeSimulation::new(&edge, &policy, &config, &seeding).unwrap();
        let before = sim.active_path_count();
        sim.step().unwrap();
        // Either the free-flow shortest path is still the loaded best
        // reply (no growth) or one column was admitted.
        assert!(sim.active_path_count() <= before + 1);
    }

    #[test]
    fn explicit_seed_shape_is_validated() {
        let edge = builders::grid_edge_network(3, 3, 7);
        let policy = uniform_linear_for_edge(&edge);
        let config = SimulationConfig::new(0.5, 2);
        let err = EdgeSimulation::new(&edge, &policy, &config, &PathSeeding::Explicit(vec![]))
            .unwrap_err();
        assert!(matches!(err, NetError::Inconsistent(_)));
    }

    #[test]
    fn duplicate_seeds_are_dropped() {
        let inst = builders::braess();
        let edge = EdgeInstance::from_instance(&inst).unwrap();
        let policy = uniform_linear(&inst);
        let config = SimulationConfig::new(0.2, 3);
        let doubled = PathSeeding::Explicit(vec![[inst.paths(), inst.paths()].concat()]);
        let sim = EdgeSimulation::new(&edge, &policy, &config, &doubled).unwrap();
        assert_eq!(sim.active_path_count(), inst.num_paths());
    }

    fn uniform_linear_for_edge(
        edge: &EdgeInstance,
    ) -> crate::policy::SmoothPolicy<crate::sampling::Uniform, crate::migration::Linear> {
        crate::policy::SmoothPolicy::new(
            crate::sampling::Uniform,
            crate::migration::Linear::new(edge.latency_upper_bound().max(f64::MIN_POSITIVE)),
        )
    }

    #[test]
    fn scenario_events_mirror_enumerated_engine() {
        let inst = builders::multi_commodity_grid(3, 3, 5);
        let edge = EdgeInstance::from_instance(&inst).unwrap();
        let policy = uniform_linear(&inst);
        let config = SimulationConfig::new(0.2, 20).with_flows();
        let scenario = Scenario::new("shock")
            .with_event(Event::at(
                3,
                "degrade",
                EventAction::ScaleLatency {
                    edge: EdgeId::from_index(0),
                    factor: 2.5,
                },
            ))
            .with_event(Event::at(
                7,
                "surge",
                EventAction::SetDemand {
                    commodity: 0,
                    demand: 0.7,
                },
            ));
        let reference = crate::engine::run_scenario(
            &inst,
            &policy,
            &FlowVec::uniform(&inst),
            &config,
            &scenario,
        )
        .unwrap();
        let traj =
            run_edge_scenario(&edge, &policy, &config, &full_seed(&inst), &scenario).unwrap();
        assert_eq!(traj.phases, reference.phases);
        assert_eq!(traj.flows, reference.flows);
        assert_eq!(traj.final_flow, reference.final_flow);
    }

    #[test]
    fn grid_14x14_runs_forty_phases() {
        // The acceptance-criterion frontier: 10,400,600 implicit paths,
        // impossible to enumerate, cheap on the implicit backend.
        let edge = builders::grid_edge_network(14, 14, 7);
        let policy = uniform_linear_for_edge(&edge);
        let config = SimulationConfig::new(0.25, 40);
        let seeding = PathSeeding::Oracle {
            random_paths: 8,
            seed: 0,
        };
        let traj = run_edge(&edge, &policy, &config, &seeding).unwrap();
        assert_eq!(traj.len(), 40);
        assert!(traj.phases.last().unwrap().potential_end.is_finite());
    }
}
