//! The phase-wise simulation engine for Eq. (3) — the fluid-limit
//! dynamics in the bulletin board model.
//!
//! The engine alternates two steps, exactly as the model prescribes:
//!
//! 1. **Post**: at the phase start `t̂`, a [`BulletinBoard`] snapshot of
//!    the current flow is published.
//! 2. **Relax**: for `τ ∈ [0, T)` agents react to the *board* only.
//!    For [smooth policies](crate::policy::ReroutingPolicy) the
//!    within-phase dynamics is the linear ODE of
//!    [`PhaseRates`]; for best response it
//!    is the differential inclusion Eq. (4) with an exponential
//!    closed-form solution (see [`crate::best_response`]).
//!
//! The engine records the per-phase quantities the paper's lemmas and
//! theorems are stated in (potential, virtual gain, unsatisfied
//! volumes) into a [`Trajectory`].
//!
//! The loop is built on a fused evaluation pipeline: a [`Simulation`]
//! owns an [`EngineWorkspace`] (evaluation buffers, reusable rate
//! blocks, integrator scratch) and evaluates the flow exactly once per
//! phase boundary — the phase-end evaluation doubles as the next
//! phase's start, boards are posted by copying cached arrays, and in
//! steady state a phase performs zero heap allocations.

use std::fmt;

use serde::{Deserialize, Serialize};
use wardrop_net::eval::EvalWorkspace;
use wardrop_net::flow::FlowVec;
use wardrop_net::instance::Instance;
use wardrop_net::rng::splitmix_unit;

use crate::board::BulletinBoard;
use crate::integrator::{Integrator, IntegratorScratch};
use crate::policy::{PhaseRates, ReroutingPolicy};
use crate::trajectory::{PhaseRecord, Trajectory};

/// All reusable state of the phase loop: the fused evaluation buffers,
/// the per-phase rate structure, integration scratch, and the
/// phase-start edge snapshot used for the virtual gain.
///
/// Built once per simulation ([`Simulation::new`]); after that a
/// steady-state phase performs zero heap allocations (verified by the
/// counting-allocator test in `crates/core/tests/zero_alloc.rs`).
#[derive(Debug, Clone)]
pub struct EngineWorkspace {
    /// Fused evaluation of the *current* flow (kept up to date at every
    /// phase boundary, so phase-start metrics are free).
    pub eval: EvalWorkspace,
    /// Reusable migration-rate blocks for smooth policies.
    pub rates: PhaseRates,
    /// Reusable integrator buffers.
    pub scratch: IntegratorScratch,
    /// Edge flows `f̂_e` snapshotted at the phase start.
    start_edge_flows: Vec<f64>,
    /// Edge latencies `ℓ_e(f̂_e)` snapshotted at the phase start.
    start_edge_latencies: Vec<f64>,
}

impl EngineWorkspace {
    /// Allocates all buffers for `instance`.
    pub fn new(instance: &Instance) -> Self {
        EngineWorkspace {
            eval: EvalWorkspace::new(instance),
            rates: PhaseRates::for_instance(instance),
            scratch: IntegratorScratch::for_len(instance.num_paths()),
            start_edge_flows: vec![0.0; instance.num_edges()],
            start_edge_latencies: vec![0.0; instance.num_edges()],
        }
    }
}

/// A dynamics that can advance the population through one phase given a
/// frozen bulletin board.
///
/// Implemented for every [`ReroutingPolicy`] (via its rate matrix and
/// the configured integrator) and by
/// [`BestResponse`](crate::best_response::BestResponse) (closed form).
pub trait Dynamics: fmt::Debug {
    /// Advances `flow` by `tau` time units against the frozen `board`,
    /// using (only) the reusable buffers in `workspace` for scratch —
    /// implementations must not rely on `workspace.eval`, which the
    /// engine owns.
    fn advance_phase(
        &self,
        instance: &Instance,
        board: &BulletinBoard,
        flow: &mut FlowVec,
        tau: f64,
        integrator: &Integrator,
        workspace: &mut EngineWorkspace,
    );

    /// Human-readable name for reports.
    fn dynamics_name(&self) -> String;
}

impl<P: ReroutingPolicy + ?Sized> Dynamics for P {
    fn advance_phase(
        &self,
        instance: &Instance,
        board: &BulletinBoard,
        flow: &mut FlowVec,
        tau: f64,
        integrator: &Integrator,
        workspace: &mut EngineWorkspace,
    ) {
        self.phase_rates_into(instance, board, &mut workspace.rates);
        integrator.advance_with(
            &workspace.rates,
            flow.values_mut(),
            tau,
            &mut workspace.scratch,
        );
    }

    fn dynamics_name(&self) -> String {
        self.name()
    }
}

/// How bulletin-board phase lengths are generated.
///
/// The paper's model refreshes the board at *regular* intervals of
/// length `T`; real systems broadcast metrics with jitter. The
/// Lemma 4 argument is per-phase — it only needs every individual
/// phase to satisfy `τ ≤ T*` — so convergence survives jitter as long
/// as the longest phase stays within the safe period (exercised by the
/// integration tests).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum PhaseSchedule {
    /// Every phase has length exactly `update_period`.
    #[default]
    Fixed,
    /// Phase `i` has length `update_period · (1 + u_i · amplitude)`
    /// with `u_i ∈ [−1, 1)` drawn from a deterministic per-run
    /// generator (SplitMix64 on `seed`).
    Jittered {
        /// Relative jitter amplitude in `[0, 1)`.
        amplitude: f64,
        /// Seed of the deterministic jitter sequence.
        seed: u64,
    },
}

impl PhaseSchedule {
    /// Length of phase `index` for base period `t`.
    pub fn phase_length(&self, t: f64, index: usize) -> f64 {
        match *self {
            PhaseSchedule::Fixed => t,
            PhaseSchedule::Jittered { amplitude, seed } => {
                let u = splitmix_unit(seed.wrapping_add(index as u64)) * 2.0 - 1.0;
                t * (1.0 + amplitude * u)
            }
        }
    }

    /// The longest phase the schedule can produce for base period `t`
    /// — the quantity that must stay below `T*` for the Corollary 5
    /// guarantee.
    pub fn max_phase_length(&self, t: f64) -> f64 {
        match *self {
            PhaseSchedule::Fixed => t,
            PhaseSchedule::Jittered { amplitude, .. } => t * (1.0 + amplitude),
        }
    }
}

/// Configuration of a phase-wise simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Bulletin-board update period `T > 0`.
    pub update_period: f64,
    /// Number of phases to simulate.
    pub num_phases: usize,
    /// Within-phase integrator (ignored by closed-form dynamics).
    pub integrator: Integrator,
    /// Record full phase-start flow vectors (memory: one `|P|` vector
    /// per phase).
    pub record_flows: bool,
    /// `δ` thresholds for the per-phase unsatisfied-volume columns.
    pub deltas: Vec<f64>,
    /// Stop early once the phase-start max regret drops below this
    /// value (`None`: always run `num_phases`).
    pub stop_when_regret_below: Option<f64>,
    /// Phase-length schedule (regular by default).
    #[serde(default)]
    pub schedule: PhaseSchedule,
}

impl SimulationConfig {
    /// A reasonable default configuration: exact integration, no flow
    /// recording, a single `δ = 0.05` column.
    pub fn new(update_period: f64, num_phases: usize) -> Self {
        SimulationConfig {
            update_period,
            num_phases,
            integrator: Integrator::default(),
            record_flows: false,
            deltas: vec![0.05],
            stop_when_regret_below: None,
            schedule: PhaseSchedule::Fixed,
        }
    }

    /// Sets a jittered phase schedule (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ amplitude < 1`.
    pub fn with_jitter(mut self, amplitude: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&amplitude),
            "jitter amplitude must be in [0, 1)"
        );
        self.schedule = PhaseSchedule::Jittered { amplitude, seed };
        self
    }

    /// Enables flow recording (builder style).
    pub fn with_flows(mut self) -> Self {
        self.record_flows = true;
        self
    }

    /// Sets the `δ` thresholds (builder style).
    pub fn with_deltas(mut self, deltas: Vec<f64>) -> Self {
        self.deltas = deltas;
        self
    }

    /// Sets the integrator (builder style).
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }

    /// Sets the early-stop regret threshold (builder style).
    pub fn with_stop_regret(mut self, regret: f64) -> Self {
        self.stop_when_regret_below = Some(regret);
        self
    }

    fn validate(&self) {
        assert!(
            self.update_period.is_finite() && self.update_period > 0.0,
            "update period must be positive"
        );
    }
}

/// An in-flight phase-wise simulation with all buffers pre-allocated.
///
/// [`Simulation::step`] executes one bulletin-board phase through the
/// fused pipeline: every metric of the phase start is read from the
/// single [`EvalWorkspace`] evaluation left behind by the previous
/// step, the board is posted by copying those cached arrays, and the
/// phase end is evaluated exactly once (becoming the next phase's
/// start). In steady state a step performs **zero heap allocations**
/// when no `δ` columns are configured.
///
/// [`run`] drives a `Simulation` to completion; use this type directly
/// for streaming consumption of phases without materialising a
/// [`Trajectory`].
#[derive(Debug)]
pub struct Simulation<'a, D: Dynamics + ?Sized> {
    instance: &'a Instance,
    dynamics: &'a D,
    config: &'a SimulationConfig,
    flow: FlowVec,
    board: BulletinBoard,
    workspace: EngineWorkspace,
    index: usize,
    start_time: f64,
    stopped: bool,
}

impl<'a, D: Dynamics + ?Sized> Simulation<'a, D> {
    /// Prepares a simulation from `f0`, allocating every buffer the
    /// phase loop needs and evaluating the initial flow.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (non-positive update
    /// period) or `f0` is infeasible for `instance`.
    pub fn new(
        instance: &'a Instance,
        dynamics: &'a D,
        f0: &FlowVec,
        config: &'a SimulationConfig,
    ) -> Self {
        config.validate();
        assert!(
            f0.is_feasible(instance, 1e-6),
            "initial flow must be feasible"
        );
        let flow = f0.clone();
        let mut workspace = EngineWorkspace::new(instance);
        workspace.eval.evaluate(instance, &flow);
        Simulation {
            instance,
            dynamics,
            config,
            flow,
            board: BulletinBoard::for_instance(instance),
            workspace,
            index: 0,
            start_time: 0.0,
            stopped: false,
        }
    }

    /// The current flow (the start of the next phase, or the final flow
    /// once stepping has finished).
    #[inline]
    pub fn flow(&self) -> &FlowVec {
        &self.flow
    }

    /// The fused evaluation of the current flow.
    #[inline]
    pub fn eval(&self) -> &EvalWorkspace {
        &self.workspace.eval
    }

    /// Number of phases executed so far.
    #[inline]
    pub fn phases_run(&self) -> usize {
        self.index
    }

    /// True once the simulation has finished (phase budget exhausted or
    /// early stop triggered).
    #[inline]
    pub fn is_finished(&self) -> bool {
        self.stopped || self.index >= self.config.num_phases
    }

    /// Consumes the simulation, returning the current flow.
    pub fn into_flow(self) -> FlowVec {
        self.flow
    }

    /// Executes one phase and returns its record, or `None` when the
    /// phase budget is exhausted or the early-stop regret threshold is
    /// met at the phase start (in which case the phase does not run).
    pub fn step(&mut self) -> Option<PhaseRecord> {
        if self.is_finished() {
            self.stopped = true;
            return None;
        }

        // Phase-start metrics: all read off the one evaluation of the
        // current flow maintained across steps.
        let potential_start = self.workspace.eval.potential();
        let avg_latency_start = self.workspace.eval.avg_latency();
        let max_regret_start = self
            .workspace
            .eval
            .max_regret(self.instance, &self.flow, 1e-12);
        if let Some(threshold) = self.config.stop_when_regret_below {
            if max_regret_start < threshold {
                self.stopped = true;
                return None;
            }
        }
        let unsatisfied: Vec<f64> = self
            .config
            .deltas
            .iter()
            .map(|d| {
                self.workspace
                    .eval
                    .unsatisfied_volume(self.instance, &self.flow, *d)
            })
            .collect();
        let weakly_unsatisfied: Vec<f64> = self
            .config
            .deltas
            .iter()
            .map(|d| {
                self.workspace
                    .eval
                    .weakly_unsatisfied_volume(self.instance, &self.flow, *d)
            })
            .collect();

        // Snapshot f̂_e and ℓ_e(f̂_e) for the end-of-phase virtual gain,
        // and post the board by copying the cached arrays.
        self.workspace
            .start_edge_flows
            .copy_from_slice(self.workspace.eval.edge_flows());
        self.workspace
            .start_edge_latencies
            .copy_from_slice(self.workspace.eval.edge_latencies());
        self.board
            .post_from_eval(&self.workspace.eval, &self.flow, self.start_time);

        let tau = self
            .config
            .schedule
            .phase_length(self.config.update_period, self.index);
        self.dynamics.advance_phase(
            self.instance,
            &self.board,
            &mut self.flow,
            tau,
            &self.config.integrator,
            &mut self.workspace,
        );
        self.flow.renormalise(self.instance);

        // One evaluation per phase boundary: the phase end doubles as
        // the next phase's start.
        self.workspace.eval.evaluate(self.instance, &self.flow);
        let potential_end = self.workspace.eval.potential();
        let virtual_gain = self.workspace.eval.virtual_gain_from(
            &self.workspace.start_edge_flows,
            &self.workspace.start_edge_latencies,
        );

        let record = PhaseRecord {
            index: self.index,
            start_time: self.start_time,
            potential_start,
            potential_end,
            virtual_gain,
            avg_latency_start,
            max_regret_start,
            unsatisfied,
            weakly_unsatisfied,
        };
        self.start_time += tau;
        self.index += 1;
        Some(record)
    }
}

/// Runs `dynamics` from `f0` under the bulletin board model.
///
/// Returns the per-phase [`Trajectory`]. The flow is renormalised after
/// every phase so floating-point drift never violates feasibility.
/// When the early-stop threshold triggers, no bookkeeping is done for
/// the phase that never ran — `trajectory.flows` (when recording) has
/// exactly one entry per executed phase.
///
/// # Panics
///
/// Panics if the configuration is invalid (non-positive update period)
/// or `f0` is infeasible for `instance`.
pub fn run<D: Dynamics + ?Sized>(
    instance: &Instance,
    dynamics: &D,
    f0: &FlowVec,
    config: &SimulationConfig,
) -> Trajectory {
    let mut sim = Simulation::new(instance, dynamics, f0, config);
    let mut phases = Vec::with_capacity(config.num_phases.min(1 << 20));
    let mut flows = Vec::new();
    loop {
        let snapshot = if config.record_flows {
            Some(sim.flow().clone())
        } else {
            None
        };
        match sim.step() {
            Some(record) => {
                if let Some(start_flow) = snapshot {
                    flows.push(start_flow);
                }
                phases.push(record);
            }
            None => break,
        }
    }

    Trajectory {
        update_period: config.update_period,
        deltas: config.deltas.clone(),
        phases,
        flows,
        final_flow: sim.into_flow(),
        dynamics: dynamics.dynamics_name(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{replicator, uniform_linear};
    use wardrop_net::builders;
    use wardrop_net::equilibrium::{is_wardrop_equilibrium, max_regret};

    #[test]
    fn pigou_converges_to_equilibrium_under_uniform_linear() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(0.25, 2000);
        let traj = run(&inst, &policy, &f0, &config);
        // Equilibrium: all flow on the x-link (both latencies 1).
        let f = &traj.final_flow;
        assert!(
            is_wardrop_equilibrium(&inst, f, 1e-2),
            "final flow {:?} not an equilibrium",
            f.values()
        );
        assert!(f.get(wardrop_net::PathId::from_index(0)) > 0.95);
    }

    #[test]
    fn potential_is_monotone_for_smooth_policy_within_safe_period() {
        let inst = builders::braess();
        let policy = uniform_linear(&inst);
        let alpha = policy.smoothness().unwrap();
        let t_star = crate::theory::safe_update_period(&inst, alpha);
        let f0 = FlowVec::concentrated(&inst);
        let config = SimulationConfig::new(t_star, 300);
        let traj = run(&inst, &policy, &f0, &config);
        assert_eq!(traj.monotonicity_violations(1e-10), 0);
        assert_eq!(traj.lemma4_violations(1e-10), 0);
    }

    #[test]
    fn replicator_converges_on_braess() {
        let inst = builders::braess();
        let policy = replicator(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(0.1, 4000);
        let traj = run(&inst, &policy, &f0, &config);
        // Braess equilibrium: everyone on the zig-zag path, latency 2.
        let lat = traj.final_flow.path_latencies(&inst);
        let regret = max_regret(&inst, &traj.final_flow, 1e-6);
        assert!(regret < 0.05, "regret {regret}, latencies {lat:?}");
    }

    #[test]
    fn early_stop_truncates_run() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(0.25, 5000).with_stop_regret(0.05);
        let traj = run(&inst, &policy, &f0, &config);
        assert!(traj.len() < 5000);
        assert!(max_regret(&inst, &traj.final_flow, 1e-12) < 0.06);
    }

    #[test]
    fn early_stop_keeps_flow_and_phase_counts_consistent() {
        // Regression: the pre-fused loop pushed a recorded flow before
        // checking the stop threshold, leaving flows.len() ==
        // phases.len() + 1 when the early stop triggered.
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(0.25, 5000)
            .with_stop_regret(0.05)
            .with_flows();
        let traj = run(&inst, &policy, &f0, &config);
        assert!(traj.len() < 5000, "must stop early");
        assert_eq!(
            traj.flows.len(),
            traj.phases.len(),
            "one recorded flow per executed phase"
        );
        // The recorded flows are exactly the phase starts.
        assert_eq!(traj.flows[0], f0);
    }

    #[test]
    fn stepping_matches_run() {
        let inst = builders::braess();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::concentrated(&inst);
        let config = SimulationConfig::new(0.2, 25);
        let traj = run(&inst, &policy, &f0, &config);
        let mut sim = Simulation::new(&inst, &policy, &f0, &config);
        let mut records = Vec::new();
        while let Some(r) = sim.step() {
            records.push(r);
        }
        assert!(sim.is_finished());
        assert_eq!(sim.phases_run(), 25);
        assert_eq!(records, traj.phases);
        assert_eq!(sim.flow(), &traj.final_flow);
    }

    #[test]
    fn record_flows_stores_phase_starts() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(0.5, 10).with_flows();
        let traj = run(&inst, &policy, &f0, &config);
        assert_eq!(traj.flows.len(), 10);
        assert_eq!(traj.flows[0], f0);
    }

    #[test]
    fn unsatisfied_columns_match_deltas() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(0.5, 5).with_deltas(vec![0.01, 0.2]);
        let traj = run(&inst, &policy, &f0, &config);
        for p in &traj.phases {
            assert_eq!(p.unsatisfied.len(), 2);
            // Larger δ never increases unsatisfied volume.
            assert!(p.unsatisfied[1] <= p.unsatisfied[0] + 1e-12);
        }
    }

    #[test]
    fn virtual_gain_is_nonpositive_for_smooth_policies() {
        let inst = builders::braess();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::concentrated(&inst);
        let config = SimulationConfig::new(0.2, 100);
        let traj = run(&inst, &policy, &f0, &config);
        for p in &traj.phases {
            assert!(
                p.virtual_gain <= 1e-10,
                "phase {} has V = {}",
                p.index,
                p.virtual_gain
            );
        }
    }

    #[test]
    fn jittered_schedule_lengths_are_deterministic_and_bounded() {
        let s = PhaseSchedule::Jittered {
            amplitude: 0.3,
            seed: 42,
        };
        for i in 0..100 {
            let a = s.phase_length(0.5, i);
            let b = s.phase_length(0.5, i);
            assert_eq!(a, b);
            assert!((0.5 * 0.7 - 1e-12..0.5 * 1.3 + 1e-12).contains(&a));
        }
        assert!((s.max_phase_length(0.5) - 0.65).abs() < 1e-12);
        assert_eq!(PhaseSchedule::Fixed.phase_length(0.5, 7), 0.5);
        // Jitter actually varies across phases.
        let l0 = s.phase_length(0.5, 0);
        let distinct = (1..20).any(|i| (s.phase_length(0.5, i) - l0).abs() > 1e-6);
        assert!(distinct);
    }

    #[test]
    fn jittered_run_accumulates_start_times() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(0.5, 20).with_jitter(0.4, 9);
        let traj = run(&inst, &policy, &f0, &config);
        for w in traj.phases.windows(2) {
            let tau = w[1].start_time - w[0].start_time;
            assert!((0.5 * 0.6 - 1e-12..0.5 * 1.4 + 1e-12).contains(&tau));
        }
    }

    #[test]
    fn jitter_within_safe_period_keeps_monotonicity() {
        // Base period chosen so even the longest jittered phase stays
        // below T*: T(1 + amp) ≤ T*.
        let inst = builders::braess();
        let policy = uniform_linear(&inst);
        let alpha = policy.smoothness().unwrap();
        let t_star = crate::theory::safe_update_period(&inst, alpha);
        let amp = 0.5;
        let config = SimulationConfig::new(t_star / (1.0 + amp), 400).with_jitter(amp, 3);
        assert!(config.schedule.max_phase_length(config.update_period) <= t_star + 1e-12);
        let traj = run(&inst, &policy, &FlowVec::concentrated(&inst), &config);
        assert_eq!(traj.monotonicity_violations(1e-10), 0);
        assert_eq!(traj.lemma4_violations(1e-10), 0);
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn jitter_amplitude_validated() {
        let _ = SimulationConfig::new(0.5, 10).with_jitter(1.5, 1);
    }

    #[test]
    #[should_panic(expected = "update period")]
    fn zero_period_rejected() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        run(&inst, &policy, &f0, &SimulationConfig::new(0.0, 1));
    }

    #[test]
    #[should_panic(expected = "feasible")]
    fn infeasible_initial_flow_rejected() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::from_values_unchecked(vec![0.0, 0.0]);
        run(&inst, &policy, &f0, &SimulationConfig::new(1.0, 1));
    }
}
