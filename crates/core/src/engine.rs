//! The phase-wise simulation engine for Eq. (3) — the fluid-limit
//! dynamics in the bulletin board model.
//!
//! The engine alternates two steps, exactly as the model prescribes:
//!
//! 1. **Post**: at the phase start `t̂`, a [`BulletinBoard`] snapshot of
//!    the current flow is published.
//! 2. **Relax**: for `τ ∈ [0, T)` agents react to the *board* only.
//!    For [smooth policies](crate::policy::ReroutingPolicy) the
//!    within-phase dynamics is the linear ODE of
//!    [`PhaseRates`](crate::policy::PhaseRates); for best response it
//!    is the differential inclusion Eq. (4) with an exponential
//!    closed-form solution (see [`crate::best_response`]).
//!
//! The engine records the per-phase quantities the paper's lemmas and
//! theorems are stated in (potential, virtual gain, unsatisfied
//! volumes) into a [`Trajectory`].

use std::fmt;

use serde::{Deserialize, Serialize};
use wardrop_net::equilibrium::{max_regret, unsatisfied_volume, weakly_unsatisfied_volume};
use wardrop_net::flow::FlowVec;
use wardrop_net::instance::Instance;
use wardrop_net::potential::{potential, virtual_gain};

use crate::board::BulletinBoard;
use crate::integrator::Integrator;
use crate::policy::ReroutingPolicy;
use crate::trajectory::{PhaseRecord, Trajectory};

/// A dynamics that can advance the population through one phase given a
/// frozen bulletin board.
///
/// Implemented for every [`ReroutingPolicy`] (via its rate matrix and
/// the configured integrator) and by
/// [`BestResponse`](crate::best_response::BestResponse) (closed form).
pub trait Dynamics: fmt::Debug {
    /// Advances `flow` by `tau` time units against the frozen `board`.
    fn advance_phase(
        &self,
        instance: &Instance,
        board: &BulletinBoard,
        flow: &mut FlowVec,
        tau: f64,
        integrator: &Integrator,
    );

    /// Human-readable name for reports.
    fn dynamics_name(&self) -> String;
}

impl<P: ReroutingPolicy + ?Sized> Dynamics for P {
    fn advance_phase(
        &self,
        instance: &Instance,
        board: &BulletinBoard,
        flow: &mut FlowVec,
        tau: f64,
        integrator: &Integrator,
    ) {
        let rates = self.phase_rates(instance, board);
        integrator.advance(&rates, flow.values_mut(), tau);
    }

    fn dynamics_name(&self) -> String {
        self.name()
    }
}

/// How bulletin-board phase lengths are generated.
///
/// The paper's model refreshes the board at *regular* intervals of
/// length `T`; real systems broadcast metrics with jitter. The
/// Lemma 4 argument is per-phase — it only needs every individual
/// phase to satisfy `τ ≤ T*` — so convergence survives jitter as long
/// as the longest phase stays within the safe period (exercised by the
/// integration tests).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum PhaseSchedule {
    /// Every phase has length exactly `update_period`.
    #[default]
    Fixed,
    /// Phase `i` has length `update_period · (1 + u_i · amplitude)`
    /// with `u_i ∈ [−1, 1)` drawn from a deterministic per-run
    /// generator (SplitMix64 on `seed`).
    Jittered {
        /// Relative jitter amplitude in `[0, 1)`.
        amplitude: f64,
        /// Seed of the deterministic jitter sequence.
        seed: u64,
    },
}

impl PhaseSchedule {
    /// Length of phase `index` for base period `t`.
    pub fn phase_length(&self, t: f64, index: usize) -> f64 {
        match *self {
            PhaseSchedule::Fixed => t,
            PhaseSchedule::Jittered { amplitude, seed } => {
                let u = splitmix_unit(seed.wrapping_add(index as u64)) * 2.0 - 1.0;
                t * (1.0 + amplitude * u)
            }
        }
    }

    /// The longest phase the schedule can produce for base period `t`
    /// — the quantity that must stay below `T*` for the Corollary 5
    /// guarantee.
    pub fn max_phase_length(&self, t: f64) -> f64 {
        match *self {
            PhaseSchedule::Fixed => t,
            PhaseSchedule::Jittered { amplitude, .. } => t * (1.0 + amplitude),
        }
    }
}

/// SplitMix64 mapped to `[0, 1)` — a tiny deterministic generator so
/// the engine stays free of RNG dependencies.
fn splitmix_unit(seed: u64) -> f64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Configuration of a phase-wise simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Bulletin-board update period `T > 0`.
    pub update_period: f64,
    /// Number of phases to simulate.
    pub num_phases: usize,
    /// Within-phase integrator (ignored by closed-form dynamics).
    pub integrator: Integrator,
    /// Record full phase-start flow vectors (memory: one `|P|` vector
    /// per phase).
    pub record_flows: bool,
    /// `δ` thresholds for the per-phase unsatisfied-volume columns.
    pub deltas: Vec<f64>,
    /// Stop early once the phase-start max regret drops below this
    /// value (`None`: always run `num_phases`).
    pub stop_when_regret_below: Option<f64>,
    /// Phase-length schedule (regular by default).
    #[serde(default)]
    pub schedule: PhaseSchedule,
}

impl SimulationConfig {
    /// A reasonable default configuration: exact integration, no flow
    /// recording, a single `δ = 0.05` column.
    pub fn new(update_period: f64, num_phases: usize) -> Self {
        SimulationConfig {
            update_period,
            num_phases,
            integrator: Integrator::default(),
            record_flows: false,
            deltas: vec![0.05],
            stop_when_regret_below: None,
            schedule: PhaseSchedule::Fixed,
        }
    }

    /// Sets a jittered phase schedule (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ amplitude < 1`.
    pub fn with_jitter(mut self, amplitude: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&amplitude),
            "jitter amplitude must be in [0, 1)"
        );
        self.schedule = PhaseSchedule::Jittered { amplitude, seed };
        self
    }

    /// Enables flow recording (builder style).
    pub fn with_flows(mut self) -> Self {
        self.record_flows = true;
        self
    }

    /// Sets the `δ` thresholds (builder style).
    pub fn with_deltas(mut self, deltas: Vec<f64>) -> Self {
        self.deltas = deltas;
        self
    }

    /// Sets the integrator (builder style).
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }

    /// Sets the early-stop regret threshold (builder style).
    pub fn with_stop_regret(mut self, regret: f64) -> Self {
        self.stop_when_regret_below = Some(regret);
        self
    }

    fn validate(&self) {
        assert!(
            self.update_period.is_finite() && self.update_period > 0.0,
            "update period must be positive"
        );
    }
}

/// Runs `dynamics` from `f0` under the bulletin board model.
///
/// Returns the per-phase [`Trajectory`]. The flow is renormalised after
/// every phase so floating-point drift never violates feasibility.
///
/// # Panics
///
/// Panics if the configuration is invalid (non-positive update period)
/// or `f0` is infeasible for `instance`.
pub fn run<D: Dynamics + ?Sized>(
    instance: &Instance,
    dynamics: &D,
    f0: &FlowVec,
    config: &SimulationConfig,
) -> Trajectory {
    config.validate();
    assert!(
        f0.is_feasible(instance, 1e-6),
        "initial flow must be feasible"
    );

    let mut flow = f0.clone();
    let mut phases = Vec::with_capacity(config.num_phases.min(1 << 20));
    let mut flows = Vec::new();
    let t_period = config.update_period;
    let mut start_time = 0.0;

    for index in 0..config.num_phases {
        let tau = config.schedule.phase_length(t_period, index);
        let board = BulletinBoard::post(instance, &flow, start_time);
        let potential_start = potential(instance, &flow);
        let avg_latency_start = flow.avg_latency(instance);
        let max_regret_start = max_regret(instance, &flow, 1e-12);
        let unsatisfied: Vec<f64> = config
            .deltas
            .iter()
            .map(|d| unsatisfied_volume(instance, &flow, *d))
            .collect();
        let weakly_unsatisfied: Vec<f64> = config
            .deltas
            .iter()
            .map(|d| weakly_unsatisfied_volume(instance, &flow, *d))
            .collect();
        if config.record_flows {
            flows.push(flow.clone());
        }
        if let Some(threshold) = config.stop_when_regret_below {
            if max_regret_start < threshold {
                break;
            }
        }

        let phase_start_flow = flow.clone();
        dynamics.advance_phase(instance, &board, &mut flow, tau, &config.integrator);
        flow.renormalise(instance);

        let potential_end = potential(instance, &flow);
        let vgain = virtual_gain(instance, &phase_start_flow, &flow);
        phases.push(PhaseRecord {
            index,
            start_time,
            potential_start,
            potential_end,
            virtual_gain: vgain,
            avg_latency_start,
            max_regret_start,
            unsatisfied,
            weakly_unsatisfied,
        });
        start_time += tau;
    }

    Trajectory {
        update_period: t_period,
        deltas: config.deltas.clone(),
        phases,
        flows,
        final_flow: flow,
        dynamics: dynamics.dynamics_name(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{replicator, uniform_linear};
    use wardrop_net::builders;
    use wardrop_net::equilibrium::is_wardrop_equilibrium;

    #[test]
    fn pigou_converges_to_equilibrium_under_uniform_linear() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(0.25, 2000);
        let traj = run(&inst, &policy, &f0, &config);
        // Equilibrium: all flow on the x-link (both latencies 1).
        let f = &traj.final_flow;
        assert!(
            is_wardrop_equilibrium(&inst, f, 1e-2),
            "final flow {:?} not an equilibrium",
            f.values()
        );
        assert!(f.get(wardrop_net::PathId::from_index(0)) > 0.95);
    }

    #[test]
    fn potential_is_monotone_for_smooth_policy_within_safe_period() {
        let inst = builders::braess();
        let policy = uniform_linear(&inst);
        let alpha = policy.smoothness().unwrap();
        let t_star = crate::theory::safe_update_period(&inst, alpha);
        let f0 = FlowVec::concentrated(&inst);
        let config = SimulationConfig::new(t_star, 300);
        let traj = run(&inst, &policy, &f0, &config);
        assert_eq!(traj.monotonicity_violations(1e-10), 0);
        assert_eq!(traj.lemma4_violations(1e-10), 0);
    }

    #[test]
    fn replicator_converges_on_braess() {
        let inst = builders::braess();
        let policy = replicator(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(0.1, 4000);
        let traj = run(&inst, &policy, &f0, &config);
        // Braess equilibrium: everyone on the zig-zag path, latency 2.
        let lat = traj.final_flow.path_latencies(&inst);
        let regret = max_regret(&inst, &traj.final_flow, 1e-6);
        assert!(regret < 0.05, "regret {regret}, latencies {lat:?}");
    }

    #[test]
    fn early_stop_truncates_run() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(0.25, 5000).with_stop_regret(0.05);
        let traj = run(&inst, &policy, &f0, &config);
        assert!(traj.len() < 5000);
        assert!(max_regret(&inst, &traj.final_flow, 1e-12) < 0.06);
    }

    #[test]
    fn record_flows_stores_phase_starts() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(0.5, 10).with_flows();
        let traj = run(&inst, &policy, &f0, &config);
        assert_eq!(traj.flows.len(), 10);
        assert_eq!(traj.flows[0], f0);
    }

    #[test]
    fn unsatisfied_columns_match_deltas() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(0.5, 5).with_deltas(vec![0.01, 0.2]);
        let traj = run(&inst, &policy, &f0, &config);
        for p in &traj.phases {
            assert_eq!(p.unsatisfied.len(), 2);
            // Larger δ never increases unsatisfied volume.
            assert!(p.unsatisfied[1] <= p.unsatisfied[0] + 1e-12);
        }
    }

    #[test]
    fn virtual_gain_is_nonpositive_for_smooth_policies() {
        let inst = builders::braess();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::concentrated(&inst);
        let config = SimulationConfig::new(0.2, 100);
        let traj = run(&inst, &policy, &f0, &config);
        for p in &traj.phases {
            assert!(
                p.virtual_gain <= 1e-10,
                "phase {} has V = {}",
                p.index,
                p.virtual_gain
            );
        }
    }

    #[test]
    fn jittered_schedule_lengths_are_deterministic_and_bounded() {
        let s = PhaseSchedule::Jittered {
            amplitude: 0.3,
            seed: 42,
        };
        for i in 0..100 {
            let a = s.phase_length(0.5, i);
            let b = s.phase_length(0.5, i);
            assert_eq!(a, b);
            assert!((0.5 * 0.7 - 1e-12..0.5 * 1.3 + 1e-12).contains(&a));
        }
        assert!((s.max_phase_length(0.5) - 0.65).abs() < 1e-12);
        assert_eq!(PhaseSchedule::Fixed.phase_length(0.5, 7), 0.5);
        // Jitter actually varies across phases.
        let l0 = s.phase_length(0.5, 0);
        let distinct = (1..20).any(|i| (s.phase_length(0.5, i) - l0).abs() > 1e-6);
        assert!(distinct);
    }

    #[test]
    fn jittered_run_accumulates_start_times() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(0.5, 20).with_jitter(0.4, 9);
        let traj = run(&inst, &policy, &f0, &config);
        for w in traj.phases.windows(2) {
            let tau = w[1].start_time - w[0].start_time;
            assert!((0.5 * 0.6 - 1e-12..0.5 * 1.4 + 1e-12).contains(&tau));
        }
    }

    #[test]
    fn jitter_within_safe_period_keeps_monotonicity() {
        // Base period chosen so even the longest jittered phase stays
        // below T*: T(1 + amp) ≤ T*.
        let inst = builders::braess();
        let policy = uniform_linear(&inst);
        let alpha = policy.smoothness().unwrap();
        let t_star = crate::theory::safe_update_period(&inst, alpha);
        let amp = 0.5;
        let config = SimulationConfig::new(t_star / (1.0 + amp), 400).with_jitter(amp, 3);
        assert!(config.schedule.max_phase_length(config.update_period) <= t_star + 1e-12);
        let traj = run(&inst, &policy, &FlowVec::concentrated(&inst), &config);
        assert_eq!(traj.monotonicity_violations(1e-10), 0);
        assert_eq!(traj.lemma4_violations(1e-10), 0);
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn jitter_amplitude_validated() {
        let _ = SimulationConfig::new(0.5, 10).with_jitter(1.5, 1);
    }

    #[test]
    #[should_panic(expected = "update period")]
    fn zero_period_rejected() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        run(&inst, &policy, &f0, &SimulationConfig::new(0.0, 1));
    }

    #[test]
    #[should_panic(expected = "feasible")]
    fn infeasible_initial_flow_rejected() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::from_values_unchecked(vec![0.0, 0.0]);
        run(&inst, &policy, &f0, &SimulationConfig::new(1.0, 1));
    }
}
