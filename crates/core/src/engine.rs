//! The phase-wise simulation engine for Eq. (3) — the fluid-limit
//! dynamics in the bulletin board model.
//!
//! The engine alternates two steps, exactly as the model prescribes:
//!
//! 1. **Post**: at the phase start `t̂`, a [`BulletinBoard`] snapshot of
//!    the current flow is published.
//! 2. **Relax**: for `τ ∈ [0, T)` agents react to the *board* only.
//!    For [smooth policies](crate::policy::ReroutingPolicy) the
//!    within-phase dynamics is the linear ODE of
//!    [`PhaseRates`]; for best response it
//!    is the differential inclusion Eq. (4) with an exponential
//!    closed-form solution (see [`crate::best_response`]).
//!
//! The engine records the per-phase quantities the paper's lemmas and
//! theorems are stated in (potential, virtual gain, unsatisfied
//! volumes) into a [`Trajectory`].
//!
//! The loop is built on a fused evaluation pipeline: a [`Simulation`]
//! owns an [`EngineWorkspace`] (evaluation buffers, a reusable rate
//! structure, integrator scratch) and evaluates the flow exactly once
//! per phase boundary — the phase-end evaluation doubles as the next
//! phase's start, boards are posted by copying cached arrays, and in
//! steady state a phase performs zero heap allocations. For the stock
//! policy zoo the rates are [matrix-free](crate::kernel): O(P log P)
//! per phase and O(P) memory, never a dense rate matrix.
//!
//! The engine also speaks the scenario language of
//! [`wardrop_net::scenario`]: [`run_scenario`] applies demand and
//! latency [events](wardrop_net::scenario::Event) between phases
//! ([`Simulation::apply_event`]), opening a new *epoch* per event while
//! preserving the zero-allocation property within each epoch.
//!
//! Finally, the loop can run **multi-threaded without changing a
//! single bit of any trajectory**: [`Parallelism`] attaches a
//! persistent [`WorkerPool`] whose lanes fan out the fused evaluation,
//! the per-commodity rate fills and the within-phase generator
//! applies, with every cross-chunk float reduction kept on the
//! dispatching thread (see the [pool docs](wardrop_pool) for the
//! determinism argument). Independent runs fan out one level higher
//! through [`crate::ensemble`].

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use wardrop_net::error::NetError;
use wardrop_net::eval::{ChangeSet, DeltaEval, DeltaOutcome, DeltaStats, EvalWorkspace};
use wardrop_net::flow::FlowVec;
use wardrop_net::instance::Instance;
use wardrop_net::rng::splitmix_unit;
use wardrop_net::scenario::{EventAction, Scenario};
use wardrop_pool::WorkerPool;

use crate::board::{BoardPrecision, BulletinBoard};
use crate::fault::{FaultPlan, FaultState, FaultStats};
use crate::guard::{GuardConfig, GuardLog, SmoothnessGuard};
use crate::integrator::{Integrator, IntegratorScratch};
use crate::policy::{PhaseRates, ReroutingPolicy};
use crate::snapshot::{EngineSnapshot, SnapshotError};
use crate::trajectory::{PhaseRecord, Trajectory};

/// Environment variable overriding the configured [`Parallelism`]:
/// when set to a positive integer `n`, every simulation resolves to
/// `n` lanes regardless of its configuration (`1` forces serial).
pub const THREADS_ENV: &str = "WARDROP_THREADS";

/// Execution mode of a simulation's phase loop.
///
/// The parallel mode fans the fused evaluation, the per-commodity
/// phase-rate fills and the within-phase generator applications across
/// a persistent [`WorkerPool`] whose workers park between phases. Every
/// parallel stage is element-wise with all cross-chunk float reductions
/// kept on the dispatching thread, so `Threads(n)` produces
/// **bit-identical trajectories** to `Serial` for every policy —
/// pinned by the `parallel_matches_serial_bitwise` proptest and CI's
/// bench-smoke assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Parallelism {
    /// Single-threaded (the default): the original fused loop, no pool.
    #[default]
    Serial,
    /// Exactly `n` lanes: the calling thread plus `n − 1` pool workers.
    Threads(usize),
    /// One lane per available CPU ([`std::thread::available_parallelism`]).
    Auto,
}

impl Parallelism {
    /// The lane count this mode resolves to, after applying the
    /// [`THREADS_ENV`] override (always ≥ 1).
    pub fn resolved_threads(self) -> usize {
        if let Ok(value) = std::env::var(THREADS_ENV) {
            if let Ok(n) = value.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// Builds the worker pool this mode calls for: `None` when it
    /// resolves to a single lane (the serial loop needs no pool).
    ///
    /// The lane count is clamped at the available CPU count:
    /// oversubscribed lanes cannot help (the pool's spin-then-park
    /// dispatch degrades badly when lanes outnumber cores) and cannot
    /// change results (trajectories are lane-count independent), so
    /// `Threads(8)` on a 2-core box runs 2 lanes.
    pub fn build_pool(self) -> Option<Arc<WorkerPool>> {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let lanes = self.resolved_threads().min(cores);
        (lanes > 1).then(|| Arc::new(WorkerPool::new(lanes)))
    }
}

/// Per-phase path-flow movement below which a path is *not* listed in
/// the change set — its (exact) movement is charged against the delta
/// evaluator's drift budget instead. At `1e-15` a machine-converged
/// phase lists essentially nothing while any real migration exceeds it
/// by orders of magnitude; the tight threshold keeps the per-phase
/// residual far below the drift budget, so budget re-syncs stay rare
/// even mid-convergence (at `1e-13` the residual of a large grid
/// tripped the budget every few phases).
pub(crate) const PATH_CHANGE_THRESHOLD: f64 = 1e-15;

/// State of the incremental (delta) evaluation mode: the change-set
/// scratch, the [`DeltaEval`] drift machine, and the phase-start flow
/// snapshot the change scan diffs against. Boxed in the workspace so
/// the default full-evaluation loop pays one pointer of overhead.
#[derive(Debug, Clone)]
pub(crate) struct DeltaState {
    pub(crate) changes: ChangeSet,
    pub(crate) scratch: DeltaEval,
    /// Phase-start path flows (diff base for the change scan).
    pub(crate) start_flow: Vec<f64>,
    /// Whether the sparse evaluation path is active (`delta_eval`), as
    /// opposed to movement tracking only (`stop_when_phase_delta_below`
    /// without `delta_eval`).
    pub(crate) sparse: bool,
    /// `‖f_end − f_start‖₁` of the last executed phase.
    pub(crate) last_phase_delta: f64,
    /// Whether the last phase-end evaluation was a full re-sync.
    pub(crate) last_resync: bool,
}

/// All reusable state of the phase loop: the fused evaluation buffers,
/// the per-phase rate structure, integration scratch, and the
/// phase-start edge snapshot used for the virtual gain.
///
/// Built once per simulation ([`Simulation::new`]); after that a
/// steady-state phase performs zero heap allocations (verified by the
/// counting-allocator test in `crates/core/tests/zero_alloc.rs`).
#[derive(Debug, Clone)]
pub struct EngineWorkspace {
    /// Fused evaluation of the *current* flow (kept up to date at every
    /// phase boundary, so phase-start metrics are free).
    pub eval: EvalWorkspace,
    /// Reusable migration-rate structure for smooth policies. Shaped
    /// O(P): separable policies refill the matrix-free factors every
    /// phase; dense Θ(P²) blocks are allocated lazily only if a
    /// non-separable custom policy fills them.
    pub rates: PhaseRates,
    /// Reusable integrator buffers.
    pub scratch: IntegratorScratch,
    /// Edge flows `f̂_e` snapshotted at the phase start.
    start_edge_flows: Vec<f64>,
    /// Edge latencies `ℓ_e(f̂_e)` snapshotted at the phase start.
    start_edge_latencies: Vec<f64>,
    /// The worker pool of the parallel mode (`None`: serial loop).
    /// Shared so cloned workspaces reuse the same parked workers.
    pool: Option<Arc<WorkerPool>>,
    /// Delta-evaluation state (`None` unless the configuration opts
    /// into `delta_eval` or `stop_when_phase_delta_below`).
    pub(crate) delta: Option<Box<DeltaState>>,
}

impl EngineWorkspace {
    /// Allocates all buffers for `instance` (serial mode — no pool).
    pub fn new(instance: &Instance) -> Self {
        Self::with_pool(instance, None)
    }

    /// Allocates all buffers for `instance`, attaching a worker pool
    /// for the parallel phase loop.
    pub fn with_pool(instance: &Instance, pool: Option<Arc<WorkerPool>>) -> Self {
        EngineWorkspace {
            eval: EvalWorkspace::new(instance),
            rates: PhaseRates::for_instance(instance),
            scratch: IntegratorScratch::for_len(instance.num_paths()),
            start_edge_flows: vec![0.0; instance.num_edges()],
            start_edge_latencies: vec![0.0; instance.num_edges()],
            pool,
            delta: None,
        }
    }

    /// (Re)configures the delta-evaluation state for `config`: drops it
    /// when neither `delta_eval` nor `stop_when_phase_delta_below` is
    /// set, reuses the existing buffers (cleared and un-primed) when
    /// the shapes still match, and allocates fresh state otherwise.
    pub(crate) fn configure_delta(&mut self, instance: &Instance, config: &SimulationConfig) {
        if !config.delta_eval && config.stop_when_phase_delta_below.is_none() {
            self.delta = None;
            return;
        }
        match &mut self.delta {
            Some(d) if d.start_flow.len() == instance.num_paths() => {
                d.scratch.clear();
                d.changes.clear();
                d.changes.mark_all();
                d.sparse = config.delta_eval;
                d.last_phase_delta = f64::INFINITY;
                d.last_resync = false;
            }
            _ => {
                self.delta = Some(Box::new(DeltaState {
                    changes: ChangeSet::for_instance(instance),
                    scratch: DeltaEval::new(instance),
                    start_flow: vec![0.0; instance.num_paths()],
                    sparse: config.delta_eval,
                    last_phase_delta: f64::INFINITY,
                    last_resync: false,
                }));
            }
        }
    }

    /// Un-primes the delta scratch (if any): the next phase-end
    /// evaluation re-syncs fully. Called after scenario events mutate
    /// the instance under the shadow state.
    pub(crate) fn invalidate_delta(&mut self) {
        if let Some(d) = &mut self.delta {
            d.scratch.invalidate();
        }
    }

    /// The attached worker pool, if the workspace runs in parallel
    /// mode.
    pub fn pool(&self) -> Option<&WorkerPool> {
        self.pool.as_deref()
    }

    /// Snapshots `f̂_e` and `ℓ_e(f̂_e)` from the current evaluation into
    /// the phase-start buffers. Taken *before* the board is posted, so
    /// the virtual gain always measures against the **true** phase
    /// start even when the fault layer degrades the board.
    pub(crate) fn snapshot_start_edges(&mut self) {
        self.start_edge_flows
            .copy_from_slice(self.eval.edge_flows());
        self.start_edge_latencies
            .copy_from_slice(self.eval.edge_latencies());
    }

    /// The true phase-start edge snapshot `(f̂_e, ℓ_e(f̂_e))`.
    pub(crate) fn start_edges(&self) -> (&[f64], &[f64]) {
        (&self.start_edge_flows, &self.start_edge_latencies)
    }
}

/// A dynamics that can advance the population through one phase given a
/// frozen bulletin board.
///
/// Implemented for every [`ReroutingPolicy`] (via its rate matrix and
/// the configured integrator) and by
/// [`BestResponse`](crate::best_response::BestResponse) (closed form).
///
/// `Send + Sync` so ensemble sweeps can drive independent simulations
/// against a shared dynamics from several lanes (every in-tree
/// implementor is a plain value type).
pub trait Dynamics: fmt::Debug + Send + Sync {
    /// Advances `flow` by `tau` time units against the frozen `board`,
    /// using (only) the reusable buffers in `workspace` for scratch —
    /// implementations must not rely on `workspace.eval`, which the
    /// engine owns.
    fn advance_phase(
        &self,
        instance: &Instance,
        board: &BulletinBoard,
        flow: &mut FlowVec,
        tau: f64,
        integrator: &Integrator,
        workspace: &mut EngineWorkspace,
    );

    /// Human-readable name for reports.
    fn dynamics_name(&self) -> String;
}

impl<P: ReroutingPolicy + ?Sized> Dynamics for P {
    fn advance_phase(
        &self,
        instance: &Instance,
        board: &BulletinBoard,
        flow: &mut FlowVec,
        tau: f64,
        integrator: &Integrator,
        workspace: &mut EngineWorkspace,
    ) {
        let EngineWorkspace {
            rates,
            scratch,
            pool,
            ..
        } = workspace;
        let pool = pool.as_deref();
        self.phase_rates_into_with(instance, board, rates, pool);
        integrator.advance_pooled(rates, flow.values_mut(), tau, scratch, pool);
    }

    fn dynamics_name(&self) -> String {
        self.name()
    }
}

/// How bulletin-board phase lengths are generated.
///
/// The paper's model refreshes the board at *regular* intervals of
/// length `T`; real systems broadcast metrics with jitter. The
/// Lemma 4 argument is per-phase — it only needs every individual
/// phase to satisfy `τ ≤ T*` — so convergence survives jitter as long
/// as the longest phase stays within the safe period (exercised by the
/// integration tests).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum PhaseSchedule {
    /// Every phase has length exactly `update_period`.
    #[default]
    Fixed,
    /// Phase `i` has length `update_period · (1 + u_i · amplitude)`
    /// with `u_i ∈ [−1, 1)` drawn from a deterministic per-run
    /// generator (SplitMix64 on `seed`).
    Jittered {
        /// Relative jitter amplitude in `[0, 1)`.
        amplitude: f64,
        /// Seed of the deterministic jitter sequence.
        seed: u64,
    },
}

impl PhaseSchedule {
    /// Length of phase `index` for base period `t`.
    pub fn phase_length(&self, t: f64, index: usize) -> f64 {
        match *self {
            PhaseSchedule::Fixed => t,
            PhaseSchedule::Jittered { amplitude, seed } => {
                let u = splitmix_unit(seed.wrapping_add(index as u64)) * 2.0 - 1.0;
                t * (1.0 + amplitude * u)
            }
        }
    }

    /// The longest phase the schedule can produce for base period `t`
    /// — the quantity that must stay below `T*` for the Corollary 5
    /// guarantee.
    pub fn max_phase_length(&self, t: f64) -> f64 {
        match *self {
            PhaseSchedule::Fixed => t,
            PhaseSchedule::Jittered { amplitude, .. } => t * (1.0 + amplitude),
        }
    }
}

/// Configuration of a phase-wise simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Bulletin-board update period `T > 0`.
    pub update_period: f64,
    /// Number of phases to simulate.
    pub num_phases: usize,
    /// Within-phase integrator (ignored by closed-form dynamics).
    pub integrator: Integrator,
    /// Record full phase-start flow vectors (memory: one `|P|` vector
    /// per recorded phase — see `record_stride`).
    pub record_flows: bool,
    /// Record only every `record_stride`-th phase-start flow (0 and 1
    /// both mean "every phase"), bounding `Trajectory::flows` at
    /// `O(num_phases / stride)` on long runs. Ignored unless
    /// `record_flows` is set.
    #[serde(default)]
    pub record_stride: usize,
    /// `δ` thresholds for the per-phase unsatisfied-volume columns.
    pub deltas: Vec<f64>,
    /// Stop early once the phase-start max regret drops below this
    /// value (`None`: always run `num_phases`).
    pub stop_when_regret_below: Option<f64>,
    /// Phase-length schedule (regular by default).
    #[serde(default)]
    pub schedule: PhaseSchedule,
    /// Execution mode of the phase loop (serial by default; the
    /// [`THREADS_ENV`] environment variable overrides it). Parallel
    /// runs are bit-identical to serial ones — see [`Parallelism`].
    #[serde(default)]
    pub parallelism: Parallelism,
    /// Bulletin-board fault plan (`None` or a
    /// [trivial](FaultPlan::is_trivial) plan: the lossless board of the
    /// paper, bit-identical to the unfaulted loop).
    #[serde(default)]
    pub faults: Option<FaultPlan>,
    /// AIMD smoothness governor (`None`: fixed α — the dynamics runs
    /// open-loop even if the potential climbs).
    #[serde(default)]
    pub guard: Option<GuardConfig>,
    /// Incremental delta evaluation: phase-boundary evaluations apply
    /// only the paths whose flow moved, with drift-bounded full
    /// re-syncs (off by default — the full fused evaluation runs every
    /// phase, bit-identical to builds that predate this knob).
    #[serde(default)]
    pub delta_eval: bool,
    /// Error-bounded early-out, distinct from the regret stop: finish
    /// once a phase's total flow movement `‖f_end − f_start‖₁` drops
    /// below this value (`None`: never). The phase that crosses the
    /// threshold still completes and is recorded.
    #[serde(default)]
    pub stop_when_phase_delta_below: Option<f64>,
    /// Precision of the posted bulletin-board snapshot (full `f64` by
    /// default; see [`BoardPrecision::F32`] for the quantised board).
    #[serde(default)]
    pub board_precision: BoardPrecision,
}

impl SimulationConfig {
    /// A reasonable default configuration: exact integration, no flow
    /// recording, a single `δ = 0.05` column.
    pub fn new(update_period: f64, num_phases: usize) -> Self {
        SimulationConfig {
            update_period,
            num_phases,
            integrator: Integrator::default(),
            record_flows: false,
            record_stride: 1,
            deltas: vec![0.05],
            stop_when_regret_below: None,
            schedule: PhaseSchedule::Fixed,
            parallelism: Parallelism::Serial,
            faults: None,
            guard: None,
            delta_eval: false,
            stop_when_phase_delta_below: None,
            board_precision: BoardPrecision::F64,
        }
    }

    /// Enables incremental delta evaluation (builder style).
    pub fn with_delta_eval(mut self) -> Self {
        self.delta_eval = true;
        self
    }

    /// Sets the phase-movement early-out threshold (builder style).
    pub fn with_stop_phase_delta(mut self, movement: f64) -> Self {
        self.stop_when_phase_delta_below = Some(movement);
        self
    }

    /// Sets the posted-board precision (builder style).
    pub fn with_board_precision(mut self, precision: BoardPrecision) -> Self {
        self.board_precision = precision;
        self
    }

    /// Attaches a bulletin-board fault plan (builder style). A trivial
    /// plan leaves the run bit-identical to an unfaulted one.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Attaches the AIMD smoothness governor (builder style).
    pub fn with_guard(mut self, guard: GuardConfig) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Sets the execution mode of the phase loop (builder style).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets a jittered phase schedule (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ amplitude < 1`.
    pub fn with_jitter(mut self, amplitude: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&amplitude),
            "jitter amplitude must be in [0, 1)"
        );
        self.schedule = PhaseSchedule::Jittered { amplitude, seed };
        self
    }

    /// Enables flow recording (builder style).
    pub fn with_flows(mut self) -> Self {
        self.record_flows = true;
        self
    }

    /// Records only every `stride`-th phase-start flow (builder style),
    /// keeping `with_flows` runs over millions of phases at
    /// `O(num_phases / stride)` memory. Implies flow recording.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn with_record_stride(mut self, stride: usize) -> Self {
        assert!(stride > 0, "record stride must be positive");
        self.record_flows = true;
        self.record_stride = stride;
        self
    }

    /// The effective flow-recording stride (`record_stride`, with the
    /// serde-default 0 normalised to 1).
    pub fn effective_stride(&self) -> usize {
        self.record_stride.max(1)
    }

    /// Sets the `δ` thresholds (builder style).
    pub fn with_deltas(mut self, deltas: Vec<f64>) -> Self {
        self.deltas = deltas;
        self
    }

    /// Sets the integrator (builder style).
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }

    /// Sets the early-stop regret threshold (builder style).
    pub fn with_stop_regret(mut self, regret: f64) -> Self {
        self.stop_when_regret_below = Some(regret);
        self
    }

    pub(crate) fn validate(&self) {
        if let Err(msg) = self.check() {
            panic!("{msg}");
        }
    }

    /// Non-panicking validation of every knob — shared by the
    /// construction-time `validate` (which panics, like every other
    /// configuration error) and the checkpoint-restore path (which
    /// must treat a decoded configuration as untrusted input).
    ///
    /// # Errors
    ///
    /// A message naming the first out-of-range knob.
    pub fn check(&self) -> Result<(), String> {
        if !(self.update_period.is_finite() && self.update_period > 0.0) {
            return Err("update period must be positive".into());
        }
        if let Some(movement) = self.stop_when_phase_delta_below {
            if !(movement.is_finite() && movement >= 0.0) {
                return Err("phase-delta stop threshold must be finite and non-negative".into());
            }
        }
        if let Some(guard) = &self.guard {
            guard.check()?;
        }
        if let Some(plan) = &self.faults {
            plan.validate().map_err(|e| e.to_string())?;
        }
        Ok(())
    }
}

/// An in-flight phase-wise simulation with all buffers pre-allocated.
///
/// [`Simulation::step`] executes one bulletin-board phase through the
/// fused pipeline: every metric of the phase start is read from the
/// single [`EvalWorkspace`] evaluation left behind by the previous
/// step, the board is posted by copying those cached arrays, and the
/// phase end is evaluated exactly once (becoming the next phase's
/// start). In steady state a step performs **zero heap allocations**
/// when no `δ` columns are configured.
///
/// The simulation *owns* a copy of the instance and the configuration,
/// which enables two things beyond the static phase loop:
///
/// * **scenario epochs** — [`Simulation::apply_event`] mutates the
///   owned instance (demand surges, link degradations) between phases,
///   rescales the per-commodity flows and refreshes the evaluation in
///   place; the zero-allocation property keeps holding between events
///   because mutation never changes buffer shapes;
/// * **reuse across runs** — [`Simulation::reset`] and
///   [`Simulation::rebind`] start a fresh run inside the already
///   allocated [`EngineWorkspace`], which parameter sweeps (E4/E5) use
///   to avoid rebuilding the O(P) rate/evaluation buffers per run
///   (plus the lazily allocated dense blocks, for non-separable
///   custom policies).
///
/// [`run`] drives a `Simulation` to completion; use this type directly
/// for streaming consumption of phases without materialising a
/// [`Trajectory`].
#[derive(Debug)]
pub struct Simulation<'a, D: Dynamics + ?Sized> {
    instance: Instance,
    dynamics: &'a D,
    config: SimulationConfig,
    flow: FlowVec,
    board: BulletinBoard,
    workspace: EngineWorkspace,
    fault: Option<FaultState>,
    guard: Option<SmoothnessGuard>,
    index: usize,
    epoch: usize,
    start_time: f64,
    stopped: bool,
    /// Wall-clock nanoseconds spent in phase-end evaluation (change
    /// scan + evaluate), accumulated across steps — the bench's
    /// like-for-like basis for the delta-vs-full comparison.
    eval_nanos: u64,
}

impl<'a, D: Dynamics + ?Sized> Simulation<'a, D> {
    /// Prepares a simulation from `f0`, allocating every buffer the
    /// phase loop needs and evaluating the initial flow. The instance
    /// and configuration are cloned into the simulation so scenario
    /// events can mutate them without aliasing the caller's copies.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (non-positive update
    /// period) or `f0` is infeasible for `instance`.
    pub fn new(
        instance: &Instance,
        dynamics: &'a D,
        f0: &FlowVec,
        config: &SimulationConfig,
    ) -> Self {
        let pool = config.parallelism.build_pool();
        Self::with_worker_pool(instance, dynamics, f0, config, pool)
    }

    /// As [`Simulation::new`], but with an explicit worker pool instead
    /// of resolving `config.parallelism` (and the [`THREADS_ENV`]
    /// override). Pass `None` to force the serial loop — the ensemble
    /// runner does this for its inner simulations so lane counts never
    /// multiply — or share one [`Arc`]ed pool across simulations.
    pub fn with_worker_pool(
        instance: &Instance,
        dynamics: &'a D,
        f0: &FlowVec,
        config: &SimulationConfig,
        pool: Option<Arc<WorkerPool>>,
    ) -> Self {
        config.validate();
        assert!(
            f0.is_feasible(instance, 1e-6),
            "initial flow must be feasible"
        );
        let flow = f0.clone();
        let mut workspace = EngineWorkspace::with_pool(instance, pool);
        workspace.configure_delta(instance, config);
        let EngineWorkspace { eval, pool, .. } = &mut workspace;
        eval.evaluate_with(instance, &flow, pool.as_deref());
        let fault = config.faults.clone().map(|plan| {
            FaultState::new(plan, instance).expect("invalid fault plan for this instance")
        });
        let guard = config.guard.clone().map(SmoothnessGuard::new);
        Simulation {
            board: BulletinBoard::for_instance(instance),
            instance: instance.clone(),
            dynamics,
            config: config.clone(),
            flow,
            workspace,
            fault,
            guard,
            index: 0,
            epoch: 0,
            start_time: 0.0,
            stopped: false,
            eval_nanos: 0,
        }
    }

    /// The current flow (the start of the next phase, or the final flow
    /// once stepping has finished).
    #[inline]
    pub fn flow(&self) -> &FlowVec {
        &self.flow
    }

    /// The simulation's (possibly event-mutated) instance.
    #[inline]
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The active configuration.
    #[inline]
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The current scenario epoch: the number of events applied so far.
    #[inline]
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// The posted bulletin board — what agents (and route-advice
    /// queries) see. Before the first phase this is the unposted
    /// all-zero board; after a step it holds the post of the last
    /// phase start (which, under faults, may be older still).
    #[inline]
    pub fn board(&self) -> &BulletinBoard {
        &self.board
    }

    /// The fused evaluation of the current flow.
    #[inline]
    pub fn eval(&self) -> &EvalWorkspace {
        &self.workspace.eval
    }

    /// Whether the workspace carries a worker pool — the parallel
    /// phase loop is active (subject to the per-stage size gates).
    #[inline]
    pub fn uses_worker_pool(&self) -> bool {
        self.workspace.pool.is_some()
    }

    /// The AIMD governor's intervention log, when one is attached.
    #[inline]
    pub fn guard_log(&self) -> Option<&GuardLog> {
        self.guard.as_ref().map(SmoothnessGuard::log)
    }

    /// The governor's current α throttle (`1.0` when no guard is
    /// attached or it has not intervened).
    #[inline]
    pub fn guard_scale(&self) -> f64 {
        self.guard.as_ref().map_or(1.0, SmoothnessGuard::scale)
    }

    /// The fault layer's running counters, when a plan is attached.
    #[inline]
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.fault.as_ref().map(FaultState::stats)
    }

    /// Wall-clock nanoseconds spent in phase-end evaluation (including
    /// the change scan in delta mode), accumulated since construction
    /// or the last [`Simulation::reset`].
    #[inline]
    pub fn eval_nanos(&self) -> u64 {
        self.eval_nanos
    }

    /// The delta evaluator's lifetime counters, when `delta_eval` is
    /// active.
    #[inline]
    pub fn delta_stats(&self) -> Option<DeltaStats> {
        self.workspace
            .delta
            .as_ref()
            .filter(|d| d.sparse)
            .map(|d| d.scratch.stats())
    }

    /// Whether the last phase-end evaluation was a full re-sync
    /// (`None` unless `delta_eval` is active).
    #[inline]
    pub fn last_eval_resynced(&self) -> Option<bool> {
        self.workspace
            .delta
            .as_ref()
            .filter(|d| d.sparse)
            .map(|d| d.last_resync)
    }

    /// `‖f_end − f_start‖₁` of the last executed phase — the quantity
    /// `stop_when_phase_delta_below` tests. `None` unless delta
    /// tracking is active (either knob) and a phase has run.
    #[inline]
    pub fn last_phase_delta(&self) -> Option<f64> {
        self.workspace
            .delta
            .as_ref()
            .map(|d| d.last_phase_delta)
            .filter(|m| m.is_finite())
    }

    /// Number of phases executed so far.
    #[inline]
    pub fn phases_run(&self) -> usize {
        self.index
    }

    /// True once the simulation has finished (phase budget exhausted or
    /// early stop triggered).
    #[inline]
    pub fn is_finished(&self) -> bool {
        self.stopped || self.index >= self.config.num_phases
    }

    /// Consumes the simulation, returning the current flow.
    pub fn into_flow(self) -> FlowVec {
        self.flow
    }

    /// Captures the complete dynamic state at the current phase
    /// boundary. Taken between [`Simulation::step`] calls; a fresh
    /// engine restored with [`Simulation::from_snapshot`] continues
    /// the run bit-identically — see [`crate::snapshot`].
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            instance: self.instance.clone(),
            config: self.config.clone(),
            flow: self.flow.values().to_vec(),
            board: self.board.clone(),
            index: self.index,
            epoch: self.epoch,
            start_time: self.start_time,
            stopped: self.stopped,
            guard: self.guard.as_ref().map(SmoothnessGuard::snapshot),
            fault: self.fault.as_ref().map(FaultState::snapshot),
        }
    }

    /// Rebuilds a simulation from a checkpoint, resolving the worker
    /// pool from the checkpointed `config.parallelism` (and the
    /// [`THREADS_ENV`] override), exactly as [`Simulation::new`] does.
    ///
    /// Everything recomputable is recomputed rather than trusted: the
    /// evaluation workspace is rebuilt from the restored flow, and the
    /// delta evaluator's scratch starts invalidated, so the first
    /// phase-end evaluation after a restore is a full re-sync.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Shape`] / [`SnapshotError::Corrupt`] when the
    /// decoded state violates a structural invariant
    /// ([`EngineSnapshot::check`]) — a checkpoint is untrusted input
    /// and never panics the restore path.
    pub fn from_snapshot(
        dynamics: &'a D,
        snapshot: &EngineSnapshot,
    ) -> Result<Self, SnapshotError> {
        let pool = snapshot.config.parallelism.build_pool();
        Self::from_snapshot_with_pool(dynamics, snapshot, pool)
    }

    /// As [`Simulation::from_snapshot`], but with an explicit worker
    /// pool (pass `None` to force the serial loop).
    ///
    /// # Errors
    ///
    /// See [`Simulation::from_snapshot`].
    pub fn from_snapshot_with_pool(
        dynamics: &'a D,
        snapshot: &EngineSnapshot,
        pool: Option<Arc<WorkerPool>>,
    ) -> Result<Self, SnapshotError> {
        snapshot.check()?;
        let instance = snapshot.instance.clone();
        let flow = FlowVec::from_values(&instance, snapshot.flow.clone())
            .map_err(|e| SnapshotError::Shape(e.to_string()))?;
        let mut workspace = EngineWorkspace::with_pool(&instance, pool);
        workspace.configure_delta(&instance, &snapshot.config);
        // The checkpoint deliberately omits the delta scratch: force a
        // full re-sync at the first phase boundary after the restore.
        workspace.invalidate_delta();
        let EngineWorkspace { eval, pool, .. } = &mut workspace;
        eval.evaluate_with(&instance, &flow, pool.as_deref());
        let fault = match (&snapshot.config.faults, &snapshot.fault) {
            (Some(plan), Some(captured)) => {
                let mut state = FaultState::new(plan.clone(), &instance)
                    .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
                state.restore(captured).map_err(SnapshotError::Shape)?;
                Some(state)
            }
            // check() already rejected mixed presence.
            _ => None,
        };
        let guard = match (&snapshot.config.guard, &snapshot.guard) {
            (Some(config), Some(captured)) => Some(
                SmoothnessGuard::from_snapshot(config.clone(), captured)
                    .map_err(SnapshotError::Shape)?,
            ),
            _ => None,
        };
        Ok(Simulation {
            board: snapshot.board.clone(),
            instance,
            dynamics,
            config: snapshot.config.clone(),
            flow,
            workspace,
            fault,
            guard,
            index: snapshot.index,
            epoch: snapshot.epoch,
            start_time: snapshot.start_time,
            stopped: snapshot.stopped,
            eval_nanos: 0,
        })
    }

    /// Applies a scenario event between phases: mutates the owned
    /// instance through its controlled setters, rescales each
    /// commodity's flow block to its (possibly renormalised) new
    /// demand, refreshes the evaluation in place, and opens a new
    /// epoch.
    ///
    /// Event application may allocate (this is the one sanctioned
    /// point); the phases *between* events stay allocation-free because
    /// instance mutation never changes the shapes of the pre-allocated
    /// buffers (path sets and CSR incidences are immutable). Verified
    /// by `crates/core/tests/zero_alloc.rs`.
    ///
    /// # Errors
    ///
    /// Propagates the first failing action. Actions are applied in
    /// order, so on error the instance may hold a prefix of the event;
    /// each individual action is atomic.
    pub fn apply_event(&mut self, actions: &[EventAction]) -> Result<(), NetError> {
        let old_demands: Vec<f64> = self
            .instance
            .commodities()
            .iter()
            .map(|c| c.demand)
            .collect();
        for action in actions {
            action.apply(&mut self.instance)?;
        }
        // Demand events renormalise every commodity; rescale each
        // commodity's flow block so it remains feasible (the within-
        // block split — the interesting state — is preserved).
        for (i, &old) in old_demands.iter().enumerate() {
            let new = self.instance.commodities()[i].demand;
            if new != old {
                let scale = new / old;
                let range = self.instance.commodity_paths(i);
                for v in &mut self.flow.values_mut()[range] {
                    *v *= scale;
                }
            }
        }
        let EngineWorkspace { eval, pool, .. } = &mut self.workspace;
        eval.evaluate_with(&self.instance, &self.flow, pool.as_deref());
        // The event mutated latencies/demands under the delta shadow
        // state — force a full re-sync at the next phase boundary.
        self.workspace.invalidate_delta();
        // The event legitimately moves the potential; the governor must
        // not read the jump as a Lemma-4 violation.
        if let Some(guard) = &mut self.guard {
            guard.reset_baseline();
        }
        self.epoch += 1;
        Ok(())
    }

    /// Starts a fresh run from `f0` under `config`, reusing every
    /// buffer of the existing [`EngineWorkspace`] (and the owned,
    /// possibly event-mutated instance). Parameter sweeps use this to
    /// amortise the workspace allocations across runs — O(P) rate and
    /// evaluation buffers, plus any lazily allocated dense blocks when
    /// the policy is a non-separable custom rule.
    ///
    /// The worker pool (if any) keeps its identity across resets —
    /// `config.parallelism` is not re-resolved; build a new
    /// [`Simulation`] to change lane counts.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid or `f0` is infeasible for the
    /// *current* instance.
    pub fn reset(&mut self, f0: &FlowVec, config: &SimulationConfig) {
        config.validate();
        assert!(
            f0.is_feasible(&self.instance, 1e-6),
            "initial flow must be feasible"
        );
        self.config = config.clone();
        self.flow.values_mut().copy_from_slice(f0.values());
        self.workspace.configure_delta(&self.instance, config);
        let EngineWorkspace { eval, pool, .. } = &mut self.workspace;
        eval.evaluate_with(&self.instance, &self.flow, pool.as_deref());
        self.fault = config.faults.clone().map(|plan| {
            FaultState::new(plan, &self.instance).expect("invalid fault plan for this instance")
        });
        self.guard = config.guard.clone().map(SmoothnessGuard::new);
        self.index = 0;
        self.epoch = 0;
        self.start_time = 0.0;
        self.stopped = false;
        self.eval_nanos = 0;
    }

    /// Whether `instance` has the exact shape this simulation's buffers
    /// were allocated for — the precondition of
    /// [`Simulation::rebind`]. Ensemble sweeps use this to decide
    /// between rebinding a per-lane simulation and rebuilding it.
    pub fn shape_matches(&self, instance: &Instance) -> bool {
        instance.num_paths() == self.instance.num_paths()
            && instance.num_edges() == self.instance.num_edges()
            && instance.num_commodities() == self.instance.num_commodities()
            && (0..instance.num_commodities())
                .all(|i| instance.commodity_paths(i) == self.instance.commodity_paths(i))
    }

    /// Swaps the dynamics reference driving this simulation. The
    /// workspace is dynamics-agnostic (rate shapes depend on the
    /// instance only), so this composes with [`Simulation::reset`] /
    /// [`Simulation::rebind`] for sweeps that vary the policy per run.
    pub fn set_dynamics(&mut self, dynamics: &'a D) {
        self.dynamics = dynamics;
    }

    /// Runs the simulation to completion from its current state,
    /// materialising the [`Trajectory`] of the remaining phases. The
    /// simulation (and its workspace, including any worker pool) stays
    /// usable afterwards — [`Simulation::reset`] / [`Simulation::rebind`]
    /// start the next run in the same buffers.
    pub fn drive(&mut self) -> Trajectory {
        try_drive(self, &[]).expect("static runs cannot fail event application")
    }

    /// Rebinds the simulation to a different instance of the **same
    /// shape** (equal path, edge and commodity counts — e.g. another
    /// seed of the same builder family) and starts a fresh run,
    /// reusing the workspace buffers.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ, `config` is invalid, or `f0` is
    /// infeasible for `instance`.
    pub fn rebind(&mut self, instance: &Instance, f0: &FlowVec, config: &SimulationConfig) {
        assert!(
            self.shape_matches(instance),
            "rebind requires an instance of identical shape"
        );
        self.instance.clone_from(instance);
        self.reset(f0, config);
    }

    /// Executes one phase and returns its record, or `None` when the
    /// phase budget is exhausted or the early-stop regret threshold is
    /// met at the phase start (in which case the phase does not run).
    pub fn step(&mut self) -> Option<PhaseRecord> {
        if self.is_finished() {
            self.stopped = true;
            return None;
        }

        // Phase-start metrics: all read off the one evaluation of the
        // current flow maintained across steps.
        let potential_start = self.workspace.eval.potential();
        let avg_latency_start = self.workspace.eval.avg_latency();
        let max_regret_start = self
            .workspace
            .eval
            .max_regret(&self.instance, &self.flow, 1e-12);
        if let Some(threshold) = self.config.stop_when_regret_below {
            if max_regret_start < threshold {
                self.stopped = true;
                return None;
            }
        }
        let unsatisfied: Vec<f64> = self
            .config
            .deltas
            .iter()
            .map(|d| {
                self.workspace
                    .eval
                    .unsatisfied_volume(&self.instance, &self.flow, *d)
            })
            .collect();
        let weakly_unsatisfied: Vec<f64> = self
            .config
            .deltas
            .iter()
            .map(|d| {
                self.workspace
                    .eval
                    .weakly_unsatisfied_volume(&self.instance, &self.flow, *d)
            })
            .collect();

        // Snapshot f̂_e and ℓ_e(f̂_e) for the end-of-phase virtual gain
        // — from the *true* evaluation, before any board fault — and
        // post the board by copying the cached arrays (through the
        // fault layer when a plan is attached). Delta mode also
        // snapshots the phase-start path flows as the change-scan diff
        // base, and watches the fault counters: a dropped or degraded
        // post widens the change set (stale boards steer the dynamics
        // off the predicted sparse support, so the evaluator must not
        // trust the scan alone).
        self.workspace.snapshot_start_edges();
        if let Some(delta) = &mut self.workspace.delta {
            delta.start_flow.copy_from_slice(self.flow.values());
        }
        let post_clean = match &mut self.fault {
            Some(state) => {
                let before = {
                    let s = state.stats();
                    (s.dropped, s.degraded)
                };
                state.post(
                    &mut self.board,
                    &self.instance,
                    &self.workspace.eval,
                    &self.flow,
                    self.index,
                    self.start_time,
                );
                let s = state.stats();
                (s.dropped, s.degraded) == before
            }
            None => {
                self.board
                    .post_from_eval(&self.workspace.eval, &self.flow, self.start_time);
                true
            }
        };
        self.board.quantize(self.config.board_precision);

        let tau = self
            .config
            .schedule
            .phase_length(self.config.update_period, self.index);
        // The governor throttles the effective α by time dilation:
        // advancing the board-frozen linear dynamics for `s·τ` is
        // exactly the trajectory of `s`-scaled migration rates over τ
        // (see the guard module docs). Wall-clock time still advances
        // by the full τ below.
        let tau_dynamics = match &mut self.guard {
            Some(guard) => tau * guard.observe(self.index, self.start_time, potential_start),
            None => tau,
        };
        self.dynamics.advance_phase(
            &self.instance,
            &self.board,
            &mut self.flow,
            tau_dynamics,
            &self.config.integrator,
            &mut self.workspace,
        );
        self.flow.renormalise(&self.instance);

        // One evaluation per phase boundary: the phase end doubles as
        // the next phase's start. In delta mode the rate blocks scan
        // the start→end diff into the change set first, and the sparse
        // evaluator applies only what moved (re-syncs run through the
        // pooled full evaluation).
        let eval_started = Instant::now();
        {
            let EngineWorkspace {
                eval,
                rates,
                pool,
                delta,
                ..
            } = &mut self.workspace;
            match delta {
                Some(d) => {
                    d.last_phase_delta = rates.changed_paths_into(
                        &d.start_flow,
                        self.flow.values(),
                        PATH_CHANGE_THRESHOLD,
                        &mut d.changes,
                    );
                    if !post_clean {
                        d.changes.mark_all();
                    }
                    if d.sparse {
                        let outcome = eval.evaluate_delta_with(
                            &self.instance,
                            &self.flow,
                            &d.changes,
                            &mut d.scratch,
                            pool.as_deref(),
                        );
                        d.last_resync = outcome == DeltaOutcome::Resync;
                    } else {
                        eval.evaluate_with(&self.instance, &self.flow, pool.as_deref());
                    }
                }
                None => eval.evaluate_with(&self.instance, &self.flow, pool.as_deref()),
            }
        }
        self.eval_nanos += eval_started.elapsed().as_nanos() as u64;
        if let Some(threshold) = self.config.stop_when_phase_delta_below {
            let moved = self
                .workspace
                .delta
                .as_ref()
                .map(|d| d.last_phase_delta)
                .unwrap_or(f64::INFINITY);
            if moved < threshold {
                self.stopped = true;
            }
        }
        let potential_end = self.workspace.eval.potential();
        let virtual_gain = self.workspace.eval.virtual_gain_from(
            &self.workspace.start_edge_flows,
            &self.workspace.start_edge_latencies,
        );

        let record = PhaseRecord {
            index: self.index,
            epoch: self.epoch,
            start_time: self.start_time,
            potential_start,
            potential_end,
            virtual_gain,
            avg_latency_start,
            max_regret_start,
            unsatisfied,
            weakly_unsatisfied,
        };
        self.start_time += tau;
        self.index += 1;
        Some(record)
    }
}

/// Runs `dynamics` from `f0` under the bulletin board model.
///
/// Returns the per-phase [`Trajectory`]. The flow is renormalised after
/// every phase so floating-point drift never violates feasibility.
/// When the early-stop threshold triggers, no bookkeeping is done for
/// the phase that never ran — `trajectory.flows` (when recording) has
/// exactly one entry per *recorded* phase (every
/// `config.record_stride`-th executed phase).
///
/// # Panics
///
/// Panics if the configuration is invalid (non-positive update period)
/// or `f0` is infeasible for `instance`.
pub fn run<D: Dynamics + ?Sized>(
    instance: &Instance,
    dynamics: &D,
    f0: &FlowVec,
    config: &SimulationConfig,
) -> Trajectory {
    let mut sim = Simulation::new(instance, dynamics, f0, config);
    sim.drive()
}

/// Runs `dynamics` from `f0` through a non-stationary [`Scenario`]:
/// before each phase, every event scheduled at that phase index is
/// applied ([`Simulation::apply_event`]) — demands surge, links degrade
/// — and the run continues against the mutated instance in a new
/// epoch. [`PhaseRecord::epoch`] marks the segments.
///
/// Events scheduled at or beyond `config.num_phases` (or beyond an
/// early stop) never fire. Scenario runs normally leave
/// `stop_when_regret_below` unset so the run survives quiet stretches
/// between shocks.
///
/// # Errors
///
/// Propagates the first failing event application.
///
/// # Panics
///
/// Panics if the configuration is invalid or `f0` is infeasible.
pub fn run_scenario<D: Dynamics + ?Sized>(
    instance: &Instance,
    dynamics: &D,
    f0: &FlowVec,
    config: &SimulationConfig,
    scenario: &Scenario,
) -> Result<Trajectory, NetError> {
    let mut sim = Simulation::new(instance, dynamics, f0, config);
    try_drive(&mut sim, scenario.events())
}

/// Like [`run_scenario`], but also returns the run's audit trail: the
/// [`FaultStats`] of an attached fault plan and the [`GuardLog`] of an
/// attached smoothness governor (each `None` when not configured).
///
/// # Errors
///
/// Propagates the first failing event application.
///
/// # Panics
///
/// Panics if the configuration is invalid or `f0` is infeasible.
#[allow(clippy::type_complexity)]
pub fn run_scenario_audited<D: Dynamics + ?Sized>(
    instance: &Instance,
    dynamics: &D,
    f0: &FlowVec,
    config: &SimulationConfig,
    scenario: &Scenario,
) -> Result<(Trajectory, Option<FaultStats>, Option<GuardLog>), NetError> {
    let mut sim = Simulation::new(instance, dynamics, f0, config);
    let traj = try_drive(&mut sim, scenario.events())?;
    let stats = sim.fault_stats().copied();
    let log = sim.guard_log().cloned();
    Ok((traj, stats, log))
}

/// Drives a simulation to completion against a (possibly empty) sorted
/// event list, materialising the [`Trajectory`]. Leaves the simulation
/// — and its pre-allocated workspace — reusable via
/// [`Simulation::reset`] / [`Simulation::rebind`].
fn try_drive<D: Dynamics + ?Sized>(
    sim: &mut Simulation<'_, D>,
    events: &[wardrop_net::scenario::Event],
) -> Result<Trajectory, NetError> {
    let config = sim.config().clone();
    let stride = config.effective_stride();
    let mut phases = Vec::with_capacity(config.num_phases.min(1 << 20));
    let mut flows = Vec::new();
    let mut next_event = 0usize;
    loop {
        while next_event < events.len() && events[next_event].at_phase <= sim.phases_run() {
            sim.apply_event(&events[next_event].actions)?;
            next_event += 1;
        }
        let snapshot = if config.record_flows && sim.phases_run().is_multiple_of(stride) {
            Some(sim.flow().clone())
        } else {
            None
        };
        match sim.step() {
            Some(record) => {
                if let Some(start_flow) = snapshot {
                    flows.push(start_flow);
                }
                phases.push(record);
            }
            None => break,
        }
    }

    Ok(Trajectory {
        update_period: config.update_period,
        deltas: config.deltas.clone(),
        phases,
        flows,
        flow_stride: stride,
        final_flow: sim.flow().clone(),
        dynamics: sim.dynamics.dynamics_name(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{replicator, uniform_linear};
    use wardrop_net::builders;
    use wardrop_net::equilibrium::{is_wardrop_equilibrium, max_regret};

    #[test]
    fn pigou_converges_to_equilibrium_under_uniform_linear() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(0.25, 2000);
        let traj = run(&inst, &policy, &f0, &config);
        // Equilibrium: all flow on the x-link (both latencies 1).
        let f = &traj.final_flow;
        assert!(
            is_wardrop_equilibrium(&inst, f, 1e-2),
            "final flow {:?} not an equilibrium",
            f.values()
        );
        assert!(f.get(wardrop_net::PathId::from_index(0)) > 0.95);
    }

    #[test]
    fn potential_is_monotone_for_smooth_policy_within_safe_period() {
        let inst = builders::braess();
        let policy = uniform_linear(&inst);
        let alpha = policy.smoothness().unwrap();
        let t_star = crate::theory::safe_update_period(&inst, alpha);
        let f0 = FlowVec::concentrated(&inst);
        let config = SimulationConfig::new(t_star, 300);
        let traj = run(&inst, &policy, &f0, &config);
        assert_eq!(traj.monotonicity_violations(1e-10), 0);
        assert_eq!(traj.lemma4_violations(1e-10), 0);
    }

    #[test]
    fn replicator_converges_on_braess() {
        let inst = builders::braess();
        let policy = replicator(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(0.1, 4000);
        let traj = run(&inst, &policy, &f0, &config);
        // Braess equilibrium: everyone on the zig-zag path, latency 2.
        let lat = traj.final_flow.path_latencies(&inst);
        let regret = max_regret(&inst, &traj.final_flow, 1e-6);
        assert!(regret < 0.05, "regret {regret}, latencies {lat:?}");
    }

    #[test]
    fn early_stop_truncates_run() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(0.25, 5000).with_stop_regret(0.05);
        let traj = run(&inst, &policy, &f0, &config);
        assert!(traj.len() < 5000);
        assert!(max_regret(&inst, &traj.final_flow, 1e-12) < 0.06);
    }

    #[test]
    fn early_stop_keeps_flow_and_phase_counts_consistent() {
        // Regression: the pre-fused loop pushed a recorded flow before
        // checking the stop threshold, leaving flows.len() ==
        // phases.len() + 1 when the early stop triggered.
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(0.25, 5000)
            .with_stop_regret(0.05)
            .with_flows();
        let traj = run(&inst, &policy, &f0, &config);
        assert!(traj.len() < 5000, "must stop early");
        assert_eq!(
            traj.flows.len(),
            traj.phases.len(),
            "one recorded flow per executed phase"
        );
        // The recorded flows are exactly the phase starts.
        assert_eq!(traj.flows[0], f0);
    }

    #[test]
    fn stepping_matches_run() {
        let inst = builders::braess();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::concentrated(&inst);
        let config = SimulationConfig::new(0.2, 25);
        let traj = run(&inst, &policy, &f0, &config);
        let mut sim = Simulation::new(&inst, &policy, &f0, &config);
        let mut records = Vec::new();
        while let Some(r) = sim.step() {
            records.push(r);
        }
        assert!(sim.is_finished());
        assert_eq!(sim.phases_run(), 25);
        assert_eq!(records, traj.phases);
        assert_eq!(sim.flow(), &traj.final_flow);
    }

    #[test]
    fn threads_mode_is_bit_identical_to_serial() {
        // Large enough that the parallel gates (eval, rate fill,
        // apply) genuinely engage — grid_8x8 crosses all thresholds.
        let inst = builders::grid_network(8, 8, 7);
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let serial_config = SimulationConfig::new(1.0, 4).with_flows();
        let serial = run(&inst, &policy, &f0, &serial_config);
        for n in [2usize, 4] {
            let config = serial_config
                .clone()
                .with_parallelism(Parallelism::Threads(n));
            let par = run(&inst, &policy, &f0, &config);
            assert_eq!(par.phases, serial.phases, "records diverged at {n} threads");
            assert_eq!(par.flows, serial.flows, "flows diverged at {n} threads");
            assert_eq!(par.final_flow, serial.final_flow, "{n} threads");
        }
    }

    #[test]
    fn parallelism_resolves_threads_and_env_override() {
        // The resolution asserts below only hold when the environment
        // override is absent (a developer shell may export it).
        if std::env::var(THREADS_ENV).is_err() {
            assert_eq!(Parallelism::Serial.resolved_threads(), 1);
            assert_eq!(Parallelism::Threads(3).resolved_threads(), 3);
            assert_eq!(Parallelism::Threads(0).resolved_threads(), 1);
            assert!(Parallelism::Auto.resolved_threads() >= 1);
            assert!(Parallelism::Serial.build_pool().is_none());
            let cores = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1);
            match Parallelism::Threads(2).build_pool() {
                // Clamped at the CPU count: a pool exists iff ≥ 2
                // lanes resolve, and never more than requested.
                Some(pool) => assert_eq!(pool.lanes(), 2.min(cores)),
                None => assert_eq!(cores, 1),
            }
        }
        // Serde round-trip of the new config field.
        let config = SimulationConfig::new(0.5, 3).with_parallelism(Parallelism::Threads(4));
        let json = serde_json::to_string(&config).expect("serialise");
        let back: SimulationConfig = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back.parallelism, Parallelism::Threads(4));
        // Configs serialised before the field existed still load.
        let legacy: SimulationConfig = serde_json::from_str(
            &json
                .replace("\"parallelism\":{\"Threads\":4},", "")
                .replace(",\"parallelism\":{\"Threads\":4}", ""),
        )
        .expect("legacy config");
        assert_eq!(legacy.parallelism, Parallelism::Serial);
    }

    #[test]
    fn record_flows_stores_phase_starts() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(0.5, 10).with_flows();
        let traj = run(&inst, &policy, &f0, &config);
        assert_eq!(traj.flows.len(), 10);
        assert_eq!(traj.flows[0], f0);
    }

    #[test]
    fn unsatisfied_columns_match_deltas() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(0.5, 5).with_deltas(vec![0.01, 0.2]);
        let traj = run(&inst, &policy, &f0, &config);
        for p in &traj.phases {
            assert_eq!(p.unsatisfied.len(), 2);
            // Larger δ never increases unsatisfied volume.
            assert!(p.unsatisfied[1] <= p.unsatisfied[0] + 1e-12);
        }
    }

    #[test]
    fn virtual_gain_is_nonpositive_for_smooth_policies() {
        let inst = builders::braess();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::concentrated(&inst);
        let config = SimulationConfig::new(0.2, 100);
        let traj = run(&inst, &policy, &f0, &config);
        for p in &traj.phases {
            assert!(
                p.virtual_gain <= 1e-10,
                "phase {} has V = {}",
                p.index,
                p.virtual_gain
            );
        }
    }

    #[test]
    fn jittered_schedule_lengths_are_deterministic_and_bounded() {
        let s = PhaseSchedule::Jittered {
            amplitude: 0.3,
            seed: 42,
        };
        for i in 0..100 {
            let a = s.phase_length(0.5, i);
            let b = s.phase_length(0.5, i);
            assert_eq!(a, b);
            assert!((0.5 * 0.7 - 1e-12..0.5 * 1.3 + 1e-12).contains(&a));
        }
        assert!((s.max_phase_length(0.5) - 0.65).abs() < 1e-12);
        assert_eq!(PhaseSchedule::Fixed.phase_length(0.5, 7), 0.5);
        // Jitter actually varies across phases.
        let l0 = s.phase_length(0.5, 0);
        let distinct = (1..20).any(|i| (s.phase_length(0.5, i) - l0).abs() > 1e-6);
        assert!(distinct);
    }

    #[test]
    fn jittered_run_accumulates_start_times() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(0.5, 20).with_jitter(0.4, 9);
        let traj = run(&inst, &policy, &f0, &config);
        for w in traj.phases.windows(2) {
            let tau = w[1].start_time - w[0].start_time;
            assert!((0.5 * 0.6 - 1e-12..0.5 * 1.4 + 1e-12).contains(&tau));
        }
    }

    #[test]
    fn jitter_within_safe_period_keeps_monotonicity() {
        // Base period chosen so even the longest jittered phase stays
        // below T*: T(1 + amp) ≤ T*.
        let inst = builders::braess();
        let policy = uniform_linear(&inst);
        let alpha = policy.smoothness().unwrap();
        let t_star = crate::theory::safe_update_period(&inst, alpha);
        let amp = 0.5;
        let config = SimulationConfig::new(t_star / (1.0 + amp), 400).with_jitter(amp, 3);
        assert!(config.schedule.max_phase_length(config.update_period) <= t_star + 1e-12);
        let traj = run(&inst, &policy, &FlowVec::concentrated(&inst), &config);
        assert_eq!(traj.monotonicity_violations(1e-10), 0);
        assert_eq!(traj.lemma4_violations(1e-10), 0);
    }

    #[test]
    fn record_stride_bounds_flow_memory() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let dense = run(
            &inst,
            &policy,
            &f0,
            &SimulationConfig::new(0.25, 100).with_flows(),
        );
        let strided_config = SimulationConfig::new(0.25, 100).with_record_stride(10);
        let strided = run(&inst, &policy, &f0, &strided_config);
        assert_eq!(strided.flows.len(), 10);
        assert_eq!(strided.flow_stride, 10);
        // Strided flows are exactly the dense phase starts.
        for (i, f) in strided.flows.iter().enumerate() {
            assert_eq!(f, &dense.flows[strided.flow_phase(i)]);
        }
        // Phase records — and the metrics built on them — are complete.
        assert_eq!(strided.phases.len(), 100);
        assert_eq!(
            strided.bad_phase_count(0, 0.01),
            dense.bad_phase_count(0, 0.01)
        );
        assert_eq!(strided.potential_series(), dense.potential_series());
    }

    #[test]
    fn apply_event_rescales_flows_and_opens_epoch() {
        let inst = builders::multi_commodity_grid(3, 3, 5);
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(0.1, 50);
        let mut sim = Simulation::new(&inst, &policy, &f0, &config);
        for _ in 0..5 {
            sim.step().unwrap();
        }
        assert_eq!(sim.epoch(), 0);
        sim.apply_event(&[wardrop_net::EventAction::SetDemand {
            commodity: 0,
            demand: 0.8,
        }])
        .unwrap();
        assert_eq!(sim.epoch(), 1);
        // The rescaled flow is feasible for the mutated demands...
        assert!(sim.flow().is_feasible(sim.instance(), 1e-9));
        assert!((sim.instance().commodities()[0].demand - 0.8).abs() < 1e-12);
        // ...and the refreshed evaluation matches a from-scratch one.
        assert_eq!(
            sim.eval().path_latencies(),
            sim.flow().path_latencies(sim.instance()).as_slice()
        );
        let record = sim.step().unwrap();
        assert_eq!(record.epoch, 1);
    }

    #[test]
    fn run_scenario_segments_epochs_at_events() {
        let inst = builders::multi_commodity_grid(3, 3, 5);
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(0.1, 60);
        let scenario = wardrop_net::Scenario::new("pulse")
            .with_demand_schedule(0, &wardrop_net::DemandSchedule::pulse(0.5, 0.8, 20, 20));
        let traj = run_scenario(&inst, &policy, &f0, &config, &scenario).unwrap();
        assert_eq!(traj.len(), 60);
        assert_eq!(traj.num_epochs(), 3);
        assert_eq!(
            traj.epoch_ranges(),
            vec![(0, 0..20), (1, 20..40), (2, 40..60)]
        );
        assert!(traj.final_flow.is_feasible(&inst, 1e-6));
        // Events at or beyond the horizon never fire.
        let late = wardrop_net::Scenario::new("late").with_event(wardrop_net::Event::at(
            90,
            "never",
            wardrop_net::EventAction::SetDemand {
                commodity: 0,
                demand: 0.7,
            },
        ));
        let traj = run_scenario(&inst, &policy, &f0, &config, &late).unwrap();
        assert_eq!(traj.num_epochs(), 1);
    }

    #[test]
    fn run_scenario_propagates_event_errors() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(0.25, 10);
        let bad = wardrop_net::Scenario::new("bad").with_event(wardrop_net::Event::at(
            2,
            "impossible",
            wardrop_net::EventAction::SetDemand {
                commodity: 0,
                demand: 0.5, // single commodity: pinned to 1
            },
        ));
        assert!(run_scenario(&inst, &policy, &f0, &config, &bad).is_err());
    }

    #[test]
    fn reset_replays_identically_and_reuses_buffers() {
        let inst = builders::braess();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::concentrated(&inst);
        let config_a = SimulationConfig::new(0.2, 30);
        let config_b = SimulationConfig::new(0.05, 40);
        let fresh_a = run(&inst, &policy, &f0, &config_a);
        let fresh_b = run(&inst, &policy, &f0, &config_b);

        let mut sim = Simulation::new(&inst, &policy, &f0, &config_a);
        let mut records = Vec::new();
        while let Some(r) = sim.step() {
            records.push(r);
        }
        assert_eq!(records, fresh_a.phases);
        // Re-run with a different period inside the same workspace.
        sim.reset(&f0, &config_b);
        assert_eq!(sim.phases_run(), 0);
        assert!(!sim.is_finished());
        let mut records = Vec::new();
        while let Some(r) = sim.step() {
            records.push(r);
        }
        assert_eq!(records, fresh_b.phases);
        assert_eq!(sim.flow(), &fresh_b.final_flow);
    }

    #[test]
    fn rebind_switches_to_same_shape_instance() {
        let a = builders::standard_random_links(6, 11);
        let b = builders::standard_random_links(6, 22);
        let policy = uniform_linear(&a);
        let f0 = FlowVec::uniform(&a);
        let config = SimulationConfig::new(0.1, 25);
        let fresh_b = run(&b, &policy, &f0, &config);

        let mut sim = Simulation::new(&a, &policy, &f0, &config);
        while sim.step().is_some() {}
        sim.rebind(&b, &f0, &config);
        let mut records = Vec::new();
        while let Some(r) = sim.step() {
            records.push(r);
        }
        assert_eq!(records, fresh_b.phases);
    }

    #[test]
    #[should_panic(expected = "identical shape")]
    fn rebind_rejects_shape_mismatch() {
        let a = builders::standard_random_links(6, 11);
        let b = builders::standard_random_links(7, 11);
        let policy = uniform_linear(&a);
        let f0 = FlowVec::uniform(&a);
        let config = SimulationConfig::new(0.1, 5);
        let mut sim = Simulation::new(&a, &policy, &f0, &config);
        sim.rebind(&b, &FlowVec::uniform(&b), &config);
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn jitter_amplitude_validated() {
        let _ = SimulationConfig::new(0.5, 10).with_jitter(1.5, 1);
    }

    #[test]
    #[should_panic(expected = "update period")]
    fn zero_period_rejected() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::uniform(&inst);
        run(&inst, &policy, &f0, &SimulationConfig::new(0.0, 1));
    }

    #[test]
    #[should_panic(expected = "feasible")]
    fn infeasible_initial_flow_rejected() {
        let inst = builders::pigou();
        let policy = uniform_linear(&inst);
        let f0 = FlowVec::from_values_unchecked(vec![0.0, 0.0]);
        run(&inst, &policy, &f0, &SimulationConfig::new(1.0, 1));
    }
}
