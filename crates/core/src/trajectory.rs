//! Per-phase records of a simulation run.
//!
//! A [`Trajectory`] stores, for every bulletin-board phase, the
//! quantities the paper's analysis is about: the potential at the phase
//! boundaries, the virtual potential gain `V` of the phase (Eq. (8)),
//! average latency, and the `(δ,ε)`-unsatisfied volumes at the phase
//! start for a configurable list of `δ` thresholds. Optionally the full
//! phase-start flow vectors are kept for orbit analysis.

use serde::{Deserialize, Serialize};
use wardrop_net::flow::FlowVec;

/// Summary of one bulletin-board phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Phase index (0-based).
    pub index: usize,
    /// Scenario epoch the phase belongs to: the number of scenario
    /// events applied before the phase started (0 for static runs).
    #[serde(default)]
    pub epoch: usize,
    /// Phase start time `t̂`.
    pub start_time: f64,
    /// Potential `Φ(f(t̂))` at the phase start.
    pub potential_start: f64,
    /// Potential `Φ(f(t̂ + T))` at the phase end.
    pub potential_end: f64,
    /// Virtual potential gain `V(f̂, f)` of the phase (Eq. (8)).
    pub virtual_gain: f64,
    /// Average latency `L` at the phase start.
    pub avg_latency_start: f64,
    /// Maximum regret (used-path latency minus commodity minimum) at
    /// the phase start.
    pub max_regret_start: f64,
    /// `δ`-unsatisfied volume at the phase start, one entry per
    /// configured `δ` (Definition 3).
    pub unsatisfied: Vec<f64>,
    /// Weakly `δ`-unsatisfied volume at the phase start, one entry per
    /// configured `δ` (Definition 4).
    pub weakly_unsatisfied: Vec<f64>,
}

impl PhaseRecord {
    /// The true potential change `ΔΦ = Φ(end) − Φ(start)` of the phase.
    pub fn delta_phi(&self) -> f64 {
        self.potential_end - self.potential_start
    }
}

/// The full record of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    /// Bulletin-board update period `T`.
    pub update_period: f64,
    /// The `δ` thresholds used for the unsatisfied-volume columns.
    pub deltas: Vec<f64>,
    /// One record per executed phase.
    pub phases: Vec<PhaseRecord>,
    /// Phase-start flows (only when flow recording was enabled).
    /// Strided: `flows[i]` is the start of phase `i · flow_stride`.
    pub flows: Vec<FlowVec>,
    /// Stride of the recorded `flows` (1 = every phase). Long runs set
    /// `SimulationConfig::with_record_stride` to bound memory at
    /// `O(num_phases / stride)`.
    #[serde(default)]
    pub flow_stride: usize,
    /// The final flow after the last phase.
    pub final_flow: FlowVec,
    /// Name of the dynamics that produced the run.
    pub dynamics: String,
}

impl Trajectory {
    /// Number of executed phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Returns true if no phase was executed.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// The sequence of phase-start potentials (plus the final
    /// potential as last element).
    pub fn potential_series(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.phases.iter().map(|p| p.potential_start).collect();
        if let Some(last) = self.phases.last() {
            v.push(last.potential_end);
        }
        v
    }

    /// Number of phases whose potential increased by more than `tol` —
    /// zero for α-smooth policies within the safe update period
    /// (Lemma 4), typically positive for greedy policies.
    pub fn monotonicity_violations(&self, tol: f64) -> usize {
        self.phases.iter().filter(|p| p.delta_phi() > tol).count()
    }

    /// Number of phases *not starting* at a `(δ,ε)`-equilibrium for the
    /// `delta_idx`-th configured `δ` — the quantity bounded by
    /// Theorem 6.
    ///
    /// # Panics
    ///
    /// Panics if `delta_idx` is out of range.
    pub fn bad_phase_count(&self, delta_idx: usize, eps: f64) -> usize {
        self.phases
            .iter()
            .filter(|p| p.unsatisfied[delta_idx] > eps)
            .count()
    }

    /// Number of phases not starting at a *weak* `(δ,ε)`-equilibrium —
    /// the quantity bounded by Theorem 7.
    ///
    /// # Panics
    ///
    /// Panics if `delta_idx` is out of range.
    pub fn weak_bad_phase_count(&self, delta_idx: usize, eps: f64) -> usize {
        self.phases
            .iter()
            .filter(|p| p.weakly_unsatisfied[delta_idx] > eps)
            .count()
    }

    /// Index of the first phase starting at a `(δ,ε)`-equilibrium, if
    /// any.
    pub fn first_good_phase(&self, delta_idx: usize, eps: f64) -> Option<usize> {
        self.phases
            .iter()
            .position(|p| p.unsatisfied[delta_idx] <= eps)
    }

    /// Per-phase Lemma 4 check: `ΔΦ ≤ ½ V + tol`.
    ///
    /// Returns the number of violating phases (0 is the theorem's
    /// guarantee for α-smooth policies with `T ≤ T*`).
    pub fn lemma4_violations(&self, tol: f64) -> usize {
        self.phases
            .iter()
            .filter(|p| p.delta_phi() > 0.5 * p.virtual_gain + tol)
            .count()
    }

    /// The worst (largest) value of `ΔΦ − ½V` across phases.
    pub fn lemma4_worst_slack(&self) -> f64 {
        self.phases
            .iter()
            .map(|p| p.delta_phi() - 0.5 * p.virtual_gain)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The phase index whose start `flows[i]` records, accounting for
    /// the record stride.
    pub fn flow_phase(&self, i: usize) -> usize {
        i * self.flow_stride.max(1)
    }

    /// Number of scenario epochs spanned by the run (1 for static
    /// runs; empty trajectories report 0).
    pub fn num_epochs(&self) -> usize {
        self.phases.last().map_or(0, |p| p.epoch + 1)
    }

    /// The contiguous phase-index ranges of each epoch, as
    /// `(epoch, range)` pairs in epoch order. Epochs whose events fired
    /// back-to-back (no phase in between) are skipped.
    pub fn epoch_ranges(&self) -> Vec<(usize, std::ops::Range<usize>)> {
        let mut out: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
        for (i, p) in self.phases.iter().enumerate() {
            match out.last_mut() {
                Some((epoch, range)) if *epoch == p.epoch => range.end = i + 1,
                _ => out.push((p.epoch, i..i + 1)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(index: usize, phi0: f64, phi1: f64, v: f64) -> PhaseRecord {
        PhaseRecord {
            index,
            epoch: 0,
            start_time: index as f64,
            potential_start: phi0,
            potential_end: phi1,
            virtual_gain: v,
            avg_latency_start: 0.0,
            max_regret_start: 0.0,
            unsatisfied: vec![if index < 3 { 1.0 } else { 0.0 }],
            weakly_unsatisfied: vec![0.0],
        }
    }

    fn traj(phases: Vec<PhaseRecord>) -> Trajectory {
        Trajectory {
            update_period: 1.0,
            deltas: vec![0.1],
            phases,
            flows: vec![],
            flow_stride: 1,
            final_flow: FlowVec::from_values_unchecked(vec![1.0]),
            dynamics: "test".into(),
        }
    }

    #[test]
    fn potential_series_appends_final() {
        let t = traj(vec![record(0, 1.0, 0.8, -0.5), record(1, 0.8, 0.7, -0.2)]);
        assert_eq!(t.potential_series(), vec![1.0, 0.8, 0.7]);
    }

    #[test]
    fn monotonicity_violations_counted() {
        let t = traj(vec![
            record(0, 1.0, 0.8, -0.5),
            record(1, 0.8, 0.9, 0.1), // increase
            record(2, 0.9, 0.85, -0.1),
        ]);
        assert_eq!(t.monotonicity_violations(1e-12), 1);
        assert_eq!(t.monotonicity_violations(0.2), 0);
    }

    #[test]
    fn bad_phase_count_uses_eps_threshold() {
        let t = traj((0..5).map(|i| record(i, 1.0, 1.0, 0.0)).collect());
        // unsatisfied = 1.0 for phases 0..3, then 0.
        assert_eq!(t.bad_phase_count(0, 0.5), 3);
        assert_eq!(t.first_good_phase(0, 0.5), Some(3));
    }

    #[test]
    fn lemma4_checks() {
        // ΔΦ = −0.2, ½V = −0.25: ΔΦ > ½V → violation.
        let bad = record(0, 1.0, 0.8, -0.5);
        // ΔΦ = −0.3, ½V = −0.1: fine.
        let good = record(1, 0.8, 0.5, -0.2);
        let t = traj(vec![bad, good]);
        assert_eq!(t.lemma4_violations(1e-12), 1);
        assert!((t.lemma4_worst_slack() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn empty_trajectory_behaves() {
        let t = traj(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.potential_series().is_empty());
        assert_eq!(t.lemma4_worst_slack(), f64::NEG_INFINITY);
        assert_eq!(t.num_epochs(), 0);
        assert!(t.epoch_ranges().is_empty());
    }

    #[test]
    fn epoch_ranges_group_consecutive_records() {
        let mut phases: Vec<PhaseRecord> = (0..6).map(|i| record(i, 1.0, 1.0, 0.0)).collect();
        for p in &mut phases[2..5] {
            p.epoch = 1;
        }
        phases[5].epoch = 3; // epoch 2 had no phases (back-to-back events)
        let t = traj(phases);
        assert_eq!(t.num_epochs(), 4);
        assert_eq!(t.epoch_ranges(), vec![(0, 0..2), (1, 2..5), (3, 5..6)]);
    }

    #[test]
    fn flow_phase_accounts_for_stride() {
        let mut t = traj(vec![record(0, 1.0, 1.0, 0.0)]);
        assert_eq!(t.flow_phase(3), 3);
        t.flow_stride = 10;
        assert_eq!(t.flow_phase(3), 30);
        // Stride 0 (legacy deserialised trajectories) behaves as 1.
        t.flow_stride = 0;
        assert_eq!(t.flow_phase(3), 3);
    }
}
