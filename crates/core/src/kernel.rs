//! Separable closed forms of the stock migration rules — the engine's
//! matrix-free fast path.
//!
//! Theorems 6 and 7 of the paper are exactly about convergence time
//! being polynomial in the *network* parameters rather than the number
//! of paths `P`, which can be exponential. A dense per-phase rate
//! matrix (`Θ(P²)` time and memory per commodity) squanders that: the
//! matrix entries of every stock policy factor as
//!
//! ```text
//! c_PQ = σ_Q(f̂) · µ(ℓ̂_P, ℓ̂_Q)
//! ```
//!
//! where the sampling weight `σ_Q` depends only on the *target* path
//! (all sampling rules are origin-independent, see
//! [`SamplingRule`](crate::sampling::SamplingRule)) and the migration
//! probability `µ` depends only on the two board latencies. After
//! sorting a commodity's paths by board latency once per phase, both
//! the exit rates `Σ_Q c_PQ` and the generator product `(A f)_Q` reduce
//! to running prefix/suffix sums of `{f_P, f_P ℓ_P, f_P/ℓ_P, σ_Q,
//! σ_Q ℓ_Q}` — **O(P log P) time and O(P) memory per phase, no rate
//! matrix at all**.
//!
//! [`SeparableKernel`] enumerates the closed forms; migration rules
//! advertise theirs via [`MigrationRule::kernel`](crate::migration::MigrationRule::kernel)
//! and [`PhaseRates`](crate::policy::PhaseRates) stores the factors
//! (weights, latencies, sorted permutation) instead of the matrix.
//! Policies without a kernel fall back to lazily allocated dense
//! blocks, so custom non-separable rules keep working unchanged.
//!
//! # A worked example: the linear kernel
//!
//! The paper's linear migration policy `µ = max{0, ℓ_P − ℓ_Q}/ℓmax` is
//! the kernel `ClampedLinear { alpha: 1/ℓmax }`. For a target path `Q`
//! the inflow sum splits over the paths sorted by latency:
//!
//! ```text
//! Σ_P f_P µ(ℓ_P, ℓ_Q)  =  α · [ Σ_{ℓ_Q < ℓ_P < ℓ_Q + 1/α} f_P ℓ_P  −  ℓ_Q Σ_{…} f_P ]
//!                          +  Σ_{ℓ_P ≥ ℓ_Q + 1/α} f_P
//! ```
//!
//! — two suffix sums per split point, and the split points advance
//! monotonically as `ℓ_Q` grows, so one sweep over the sorted order
//! evaluates every target in O(P) total. The matrix-free result is the
//! dense one, entry for entry:
//!
//! ```
//! use wardrop_core::kernel::SeparableKernel;
//! use wardrop_core::migration::{Linear, MigrationRule};
//! use wardrop_core::policy::{uniform_linear, ReroutingPolicy};
//! use wardrop_core::board::BulletinBoard;
//! use wardrop_net::{builders, flow::FlowVec};
//!
//! // The linear rule advertises its closed form…
//! let lin = Linear::new(2.0);
//! assert_eq!(lin.kernel(), Some(SeparableKernel::ClampedLinear { alpha: 0.5 }));
//! // …whose pointwise evaluation matches the rule exactly.
//! assert_eq!(lin.kernel().unwrap().probability(1.7, 0.4), lin.probability(1.7, 0.4));
//!
//! // The matrix-free phase rates agree with the dense reference.
//! let inst = builders::braess();
//! let f = FlowVec::uniform(&inst);
//! let board = BulletinBoard::post(&inst, &f, 0.0);
//! let policy = uniform_linear(&inst);
//! let fast = policy.phase_rates(&inst, &board);        // matrix-free
//! let dense = policy.phase_rates_dense(&inst, &board); // Θ(P²) oracle
//! assert!(fast.is_matrix_free() && !dense.is_matrix_free());
//! let (mut a, mut b) = (vec![0.0; 3], vec![0.0; 3]);
//! fast.apply(f.values(), &mut a);
//! dense.apply(f.values(), &mut b);
//! for (x, y) in a.iter().zip(&b) {
//!     assert!((x - y).abs() < 1e-12);
//! }
//! ```

use wardrop_net::ChangeSet;

/// A migration rule in separable closed form.
///
/// All variants are zero for `ℓ_Q ≥ ℓ_P` (agents only make selfish
/// moves), matching the [`MigrationRule`](crate::migration::MigrationRule)
/// convention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SeparableKernel {
    /// `µ = min{1, α (ℓ_P − ℓ_Q)}` — [`Linear`](crate::migration::Linear)
    /// (with `α = 1/ℓmax`) and
    /// [`ScaledLinear`](crate::migration::ScaledLinear).
    ClampedLinear {
        /// Smoothness parameter `α > 0`.
        alpha: f64,
    },
    /// `µ = 1[ℓ_Q < ℓ_P]` —
    /// [`BetterResponse`](crate::migration::BetterResponse).
    Indicator,
    /// `µ = (ℓ_P − ℓ_Q)/ℓ_P` —
    /// [`RelativeSlack`](crate::migration::RelativeSlack).
    RelativeSlack,
}

impl SeparableKernel {
    /// Pointwise evaluation of the kernel — identical to the
    /// originating rule's
    /// [`probability`](crate::migration::MigrationRule::probability).
    ///
    /// Used by [`CommodityRates::rate`](crate::policy::CommodityRates::rate)
    /// to answer entry queries on matrix-free blocks, and by tests to
    /// cross-check the prefix-sum evaluation.
    #[inline]
    pub fn probability(&self, l_from: f64, l_to: f64) -> f64 {
        match *self {
            SeparableKernel::ClampedLinear { alpha } => (alpha * (l_from - l_to)).clamp(0.0, 1.0),
            SeparableKernel::Indicator => {
                if l_from > l_to {
                    1.0
                } else {
                    0.0
                }
            }
            SeparableKernel::RelativeSlack => {
                if l_from > l_to && l_from > 0.0 {
                    (l_from - l_to) / l_from
                } else {
                    0.0
                }
            }
        }
    }
}

/// Contribution of one path to the reciprocal-latency sum `Σ f_P/ℓ_P`
/// (zero-latency paths never enter a strict suffix, but they must not
/// poison the running total with infinities).
#[inline]
fn recip_or_zero(l: f64) -> f64 {
    if l > 0.0 {
        1.0 / l
    } else {
        0.0
    }
}

/// Fills the per-path exit rates `exit_p = Σ_{Q} σ_Q µ(ℓ_P, ℓ_Q)` of
/// one commodity block in O(n) after sorting, returning the maximum —
/// the block's contribution to the uniformization constant Λ, read off
/// the sorted extremes instead of a dense row sweep.
///
/// `order` is the permutation sorting the block's paths by board
/// latency ascending; `weights`/`latencies` are indexed by local path.
///
/// Public because the open-system agent simulator reuses it to turn a
/// frozen board into per-path *move probabilities*: with `weights` the
/// normalised sampling distribution σ, `exit_p` is exactly the
/// probability that one activation on path `P` migrates, which drives
/// its batched binomial activation draws.
pub fn fill_exit_rates(
    kernel: SeparableKernel,
    order: &[u32],
    weights: &[f64],
    latencies: &[f64],
    exit: &mut [f64],
) -> f64 {
    let n = order.len();
    // Prefix sums over the sorted order, maintained by two monotone
    // pointers: `k_lt` covers {Q : ℓ_Q < ℓ_P}, `k_cl` (clamped-linear
    // only) covers {Q : ℓ_Q ≤ ℓ_P − 1/α}, where µ saturates at 1.
    let mut k_lt = 0usize;
    let mut w_lt = 0.0; // Σ σ_Q over the `<` prefix
    let mut wl_lt = 0.0; // Σ σ_Q ℓ_Q over the `<` prefix
    let mut k_cl = 0usize;
    let mut w_cl = 0.0;
    let mut wl_cl = 0.0;
    let mut max_exit = 0.0_f64;
    for kp in 0..n {
        let p = order[kp] as usize;
        let lp = latencies[p];
        while k_lt < n {
            let q = order[k_lt] as usize;
            if latencies[q] >= lp {
                break;
            }
            w_lt += weights[q];
            wl_lt += weights[q] * latencies[q];
            k_lt += 1;
        }
        let e = match kernel {
            SeparableKernel::Indicator => w_lt,
            SeparableKernel::ClampedLinear { alpha } => {
                let saturation = lp - 1.0 / alpha;
                while k_cl < n {
                    let q = order[k_cl] as usize;
                    if latencies[q] > saturation {
                        break;
                    }
                    w_cl += weights[q];
                    wl_cl += weights[q] * latencies[q];
                    k_cl += 1;
                }
                w_cl + alpha * (lp * (w_lt - w_cl) - (wl_lt - wl_cl))
            }
            SeparableKernel::RelativeSlack => {
                if lp > 0.0 {
                    w_lt - wl_lt / lp
                } else {
                    0.0
                }
            }
        };
        // Guard the prefix-sum re-association: rates are probabilities
        // times weights, so the exact value is non-negative.
        let e = e.max(0.0);
        exit[p] = e;
        max_exit = max_exit.max(e);
    }
    max_exit
}

/// Applies one matrix-free block of the generator:
/// `out_Q = σ_Q Σ_P f_P µ(ℓ_P, ℓ_Q) − f_Q exit_Q`, in O(n) per call.
///
/// Suffix sums over the sorted order are maintained by subtraction from
/// the block totals as two monotone pointers advance (`k_gt` over
/// {P : ℓ_P > ℓ_Q}; `k_cl` over the clamped region of the linear
/// kernel), so the evaluation needs no scratch beyond a handful of
/// accumulators — `apply` stays `&self` and allocation-free.
pub(crate) fn apply_block(
    kernel: SeparableKernel,
    order: &[u32],
    weights: &[f64],
    latencies: &[f64],
    exit: &[f64],
    f: &[f64],
    out: &mut [f64],
) {
    let n = order.len();
    // Block totals; the third accumulator is kernel-specific: f·ℓ for
    // the linear kernels, f/ℓ for relative slack.
    let mut suf_f = 0.0;
    let mut suf_fx = 0.0;
    for &p in order {
        let p = p as usize;
        suf_f += f[p];
        suf_fx += match kernel {
            SeparableKernel::RelativeSlack => f[p] * recip_or_zero(latencies[p]),
            _ => f[p] * latencies[p],
        };
    }
    let mut k_gt = 0usize;
    let mut k_cl = 0usize;
    let mut suf_f_cl = suf_f;
    let mut suf_fl_cl = suf_fx;
    for kq in 0..n {
        let q = order[kq] as usize;
        let lq = latencies[q];
        while k_gt < n {
            let p = order[k_gt] as usize;
            if latencies[p] > lq {
                break;
            }
            suf_f -= f[p];
            suf_fx -= match kernel {
                SeparableKernel::RelativeSlack => f[p] * recip_or_zero(latencies[p]),
                _ => f[p] * latencies[p],
            };
            k_gt += 1;
        }
        let inflow = match kernel {
            SeparableKernel::Indicator => suf_f,
            SeparableKernel::ClampedLinear { alpha } => {
                let saturation = lq + 1.0 / alpha;
                while k_cl < n {
                    let p = order[k_cl] as usize;
                    if latencies[p] >= saturation {
                        break;
                    }
                    suf_f_cl -= f[p];
                    suf_fl_cl -= f[p] * latencies[p];
                    k_cl += 1;
                }
                alpha * ((suf_fx - suf_fl_cl) - lq * (suf_f - suf_f_cl)) + suf_f_cl
            }
            SeparableKernel::RelativeSlack => suf_f - lq * suf_fx,
        };
        out[q] = weights[q] * inflow.max(0.0) - f[q] * exit[q];
    }
}

/// The chunked form of [`apply_block`]: computes the generator outputs
/// of the sorted-position targets `kq ∈ [from, to)` only, writing
/// `out_part[kq - from]` for target `q = order[kq]` (note: indexed by
/// *sorted position*, not by local path — the caller scatters through
/// `order` afterwards).
///
/// **Bit-identical to the corresponding iterations of the serial
/// sweep.** The running suffix accumulators of [`apply_block`] at
/// position `from` are reconstructed by replaying exactly the serial
/// subtraction sequence: starting from the shared block totals
/// (computed once per apply by [`block_totals`], in the serial
/// accumulation order), the two monotone pointers are advanced to
/// where the serial loop would have left them after target `from − 1`
/// (their positions depend only on that target's latency, because the
/// thresholds are monotone in `ℓ_Q`). The replay costs O(from)
/// subtractions — a couple of flops per element versus the ~10 of the
/// full per-target work, which is why the caller sizes earlier chunks
/// larger (they pay less catch-up).
/// The serial opening pass of [`apply_block`]: the block totals
/// `(Σ f_P, Σ f_P·x_P)` accumulated in sorted order (`x = ℓ` for the
/// linear kernels, `1/ℓ` for relative slack). Computed once per apply
/// and shared by every chunk, so the chunked accumulators start from
/// exactly the serial sweep's values.
pub(crate) fn block_totals(
    kernel: SeparableKernel,
    order: &[u32],
    latencies: &[f64],
    f: &[f64],
) -> [f64; 2] {
    // Strided 4-wide gather with single sequential accumulators: the
    // addition order (and hence every rounding step) is exactly the
    // naive loop's, but the indexed loads pipeline and the kernel
    // branch is hoisted out of the loop body.
    let mut suf_f = 0.0;
    let mut suf_fx = 0.0;
    let x = |p: usize| match kernel {
        SeparableKernel::RelativeSlack => f[p] * recip_or_zero(latencies[p]),
        _ => f[p] * latencies[p],
    };
    let mut quads = order.chunks_exact(4);
    for q in &mut quads {
        let (p0, p1, p2, p3) = (q[0] as usize, q[1] as usize, q[2] as usize, q[3] as usize);
        let (f0, f1, f2, f3) = (f[p0], f[p1], f[p2], f[p3]);
        let (x0, x1, x2, x3) = (x(p0), x(p1), x(p2), x(p3));
        suf_f += f0;
        suf_f += f1;
        suf_f += f2;
        suf_f += f3;
        suf_fx += x0;
        suf_fx += x1;
        suf_fx += x2;
        suf_fx += x3;
    }
    for &p in quads.remainder() {
        let p = p as usize;
        suf_f += f[p];
        suf_fx += x(p);
    }
    [suf_f, suf_fx]
}

/// Scans one commodity block of a `before → after` flow diff: paths
/// whose movement exceeds `threshold` are [marked](ChangeSet::mark)
/// (global index `base + local`), everything below it is accounted
/// exactly into the [residual](ChangeSet::add_residual). Returns the
/// block's total movement `Σ |Δf_P|`.
///
/// This is new delta-path code with no bit-compatibility contract, so
/// the reduction uses four independent stride accumulators — the form
/// LLVM turns into packed adds.
pub(crate) fn changed_paths_in_block(
    before: &[f64],
    after: &[f64],
    base: usize,
    threshold: f64,
    out: &mut ChangeSet,
) -> f64 {
    debug_assert_eq!(before.len(), after.len());
    let n = before.len();
    let mut residual = 0.0;
    let (mut t0, mut t1, mut t2, mut t3) = (0.0, 0.0, 0.0, 0.0);
    let mut i = 0;
    while i + 4 <= n {
        let d0 = (after[i] - before[i]).abs();
        let d1 = (after[i + 1] - before[i + 1]).abs();
        let d2 = (after[i + 2] - before[i + 2]).abs();
        let d3 = (after[i + 3] - before[i + 3]).abs();
        t0 += d0;
        t1 += d1;
        t2 += d2;
        t3 += d3;
        if d0 > threshold {
            out.mark(base + i);
        } else {
            residual += d0;
        }
        if d1 > threshold {
            out.mark(base + i + 1);
        } else {
            residual += d1;
        }
        if d2 > threshold {
            out.mark(base + i + 2);
        } else {
            residual += d2;
        }
        if d3 > threshold {
            out.mark(base + i + 3);
        } else {
            residual += d3;
        }
        i += 4;
    }
    let mut total = (t0 + t1) + (t2 + t3);
    while i < n {
        let d = (after[i] - before[i]).abs();
        total += d;
        if d > threshold {
            out.mark(base + i);
        } else {
            residual += d;
        }
        i += 1;
    }
    out.add_residual(residual);
    total
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_block_part(
    kernel: SeparableKernel,
    order: &[u32],
    weights: &[f64],
    latencies: &[f64],
    exit: &[f64],
    f: &[f64],
    totals: [f64; 2],
    from: usize,
    to: usize,
    out_part: &mut [f64],
) {
    let n = order.len();
    debug_assert!(from <= to && to <= n);
    debug_assert_eq!(out_part.len(), to - from);
    let [mut suf_f, mut suf_fx] = totals;
    let mut k_gt = 0usize;
    let mut k_cl = 0usize;
    let mut suf_f_cl = suf_f;
    let mut suf_fl_cl = suf_fx;
    // Catch-up: replay the serial pointer advancement up to the state
    // after target `from − 1`.
    if from > 0 {
        let prev_lq = latencies[order[from - 1] as usize];
        while k_gt < n {
            let p = order[k_gt] as usize;
            if latencies[p] > prev_lq {
                break;
            }
            suf_f -= f[p];
            suf_fx -= match kernel {
                SeparableKernel::RelativeSlack => f[p] * recip_or_zero(latencies[p]),
                _ => f[p] * latencies[p],
            };
            k_gt += 1;
        }
        if let SeparableKernel::ClampedLinear { alpha } = kernel {
            let saturation = prev_lq + 1.0 / alpha;
            while k_cl < n {
                let p = order[k_cl] as usize;
                if latencies[p] >= saturation {
                    break;
                }
                suf_f_cl -= f[p];
                suf_fl_cl -= f[p] * latencies[p];
                k_cl += 1;
            }
        }
    }
    // The serial per-target body, restricted to [from, to).
    for kq in from..to {
        let q = order[kq] as usize;
        let lq = latencies[q];
        while k_gt < n {
            let p = order[k_gt] as usize;
            if latencies[p] > lq {
                break;
            }
            suf_f -= f[p];
            suf_fx -= match kernel {
                SeparableKernel::RelativeSlack => f[p] * recip_or_zero(latencies[p]),
                _ => f[p] * latencies[p],
            };
            k_gt += 1;
        }
        let inflow = match kernel {
            SeparableKernel::Indicator => suf_f,
            SeparableKernel::ClampedLinear { alpha } => {
                let saturation = lq + 1.0 / alpha;
                while k_cl < n {
                    let p = order[k_cl] as usize;
                    if latencies[p] >= saturation {
                        break;
                    }
                    suf_f_cl -= f[p];
                    suf_fl_cl -= f[p] * latencies[p];
                    k_cl += 1;
                }
                alpha * ((suf_fx - suf_fl_cl) - lq * (suf_f - suf_f_cl)) + suf_f_cl
            }
            SeparableKernel::RelativeSlack => suf_f - lq * suf_fx,
        };
        out_part[kq - from] = weights[q] * inflow.max(0.0) - f[q] * exit[q];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_exit(kernel: SeparableKernel, weights: &[f64], latencies: &[f64], p: usize) -> f64 {
        (0..weights.len())
            .filter(|&q| q != p)
            .map(|q| weights[q] * kernel.probability(latencies[p], latencies[q]))
            .sum()
    }

    fn sorted_order(latencies: &[f64]) -> Vec<u32> {
        let mut order: Vec<u32> = (0..latencies.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| latencies[a as usize].total_cmp(&latencies[b as usize]));
        order
    }

    fn kernels() -> Vec<SeparableKernel> {
        vec![
            SeparableKernel::ClampedLinear { alpha: 0.7 },
            SeparableKernel::ClampedLinear { alpha: 25.0 }, // clamp binds
            SeparableKernel::Indicator,
            SeparableKernel::RelativeSlack,
        ]
    }

    #[test]
    fn exit_rates_match_dense_sums_with_ties_and_zeros() {
        // Duplicated latencies and a zero-latency path.
        let latencies = [0.6, 0.0, 1.4, 0.6, 2.5, 1.4, 0.0];
        let weights = [0.2, 0.1, 0.05, 0.25, 0.15, 0.05, 0.2];
        let order = sorted_order(&latencies);
        for kernel in kernels() {
            let mut exit = [0.0; 7];
            let max = fill_exit_rates(kernel, &order, &weights, &latencies, &mut exit);
            let mut want_max = 0.0_f64;
            for (p, &got) in exit.iter().enumerate() {
                let want = dense_exit(kernel, &weights, &latencies, p);
                assert!(
                    (got - want).abs() < 1e-12,
                    "{kernel:?} exit[{p}]: {got} vs {want}"
                );
                want_max = want_max.max(want);
            }
            assert!((max - want_max).abs() < 1e-12, "{kernel:?} max");
        }
    }

    #[test]
    fn apply_matches_dense_generator_product() {
        let latencies = [0.6, 0.0, 1.4, 0.6, 2.5, 1.4, 0.0];
        let weights = [0.2, 0.1, 0.05, 0.25, 0.15, 0.05, 0.2];
        // Zero-flow paths included.
        let f = [0.3, 0.0, 0.2, 0.0, 0.25, 0.15, 0.1];
        let order = sorted_order(&latencies);
        for kernel in kernels() {
            let mut exit = [0.0; 7];
            fill_exit_rates(kernel, &order, &weights, &latencies, &mut exit);
            let mut out = [0.0; 7];
            apply_block(kernel, &order, &weights, &latencies, &exit, &f, &mut out);
            for q in 0..7 {
                let inflow: f64 = (0..7)
                    .filter(|&p| p != q)
                    .map(|p| f[p] * weights[q] * kernel.probability(latencies[p], latencies[q]))
                    .sum();
                let want = inflow - f[q] * exit[q];
                assert!(
                    (out[q] - want).abs() < 1e-12,
                    "{kernel:?} out[{q}]: {} vs {}",
                    out[q],
                    want
                );
            }
            // Mass conservation: the generator's columns sum to zero.
            let total: f64 = out.iter().sum();
            assert!(total.abs() < 1e-12, "{kernel:?} drift {total}");
        }
    }

    #[test]
    fn kernel_probability_matches_piecewise_definition() {
        let k = SeparableKernel::ClampedLinear { alpha: 2.0 };
        assert_eq!(k.probability(1.0, 1.0), 0.0);
        assert_eq!(k.probability(0.5, 1.0), 0.0);
        assert!((k.probability(1.0, 0.8) - 0.4).abs() < 1e-15);
        assert_eq!(k.probability(3.0, 0.5), 1.0); // saturated
        assert_eq!(SeparableKernel::Indicator.probability(1.0, 0.999), 1.0);
        assert_eq!(SeparableKernel::RelativeSlack.probability(0.0, 0.0), 0.0);
        assert!((SeparableKernel::RelativeSlack.probability(2.0, 0.5) - 0.75).abs() < 1e-15);
    }

    /// Every chunking of `apply_block_part` reproduces the serial
    /// sweep bit for bit — ties, zeros and saturated regions included.
    #[test]
    fn chunked_apply_is_bit_identical_for_every_split() {
        let latencies = [0.6, 0.0, 1.4, 0.6, 2.5, 1.4, 0.0, 0.9, 2.5];
        let weights = [0.2, 0.1, 0.05, 0.2, 0.1, 0.05, 0.1, 0.1, 0.1];
        let f = [0.3, 0.0, 0.2, 0.0, 0.15, 0.15, 0.1, 0.05, 0.05];
        let n = latencies.len();
        let order = sorted_order(&latencies);
        for kernel in kernels() {
            let mut exit = [0.0; 9];
            fill_exit_rates(kernel, &order, &weights, &latencies, &mut exit);
            let mut serial = [0.0; 9];
            apply_block(kernel, &order, &weights, &latencies, &exit, &f, &mut serial);
            // All 1-, 2- and 3-way contiguous splits.
            for a in 0..=n {
                for b in a..=n {
                    let totals = block_totals(kernel, &order, &latencies, &f);
                    let mut chunked = vec![0.0; n];
                    let do_part = |lo: usize, hi: usize, out: &mut Vec<f64>| {
                        let mut part = vec![0.0; hi - lo];
                        apply_block_part(
                            kernel, &order, &weights, &latencies, &exit, &f, totals, lo, hi,
                            &mut part,
                        );
                        for (j, v) in part.into_iter().enumerate() {
                            out[order[lo + j] as usize] = v;
                        }
                    };
                    do_part(0, a, &mut chunked);
                    do_part(a, b, &mut chunked);
                    do_part(b, n, &mut chunked);
                    for q in 0..n {
                        assert_eq!(
                            chunked[q].to_bits(),
                            serial[q].to_bits(),
                            "{kernel:?} split ({a},{b}) target {q}: {} vs {}",
                            chunked[q],
                            serial[q]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn single_path_block_is_inert() {
        for kernel in kernels() {
            let mut exit = [0.0];
            let max = fill_exit_rates(kernel, &[0], &[1.0], &[0.7], &mut exit);
            assert_eq!(exit[0], 0.0);
            assert_eq!(max, 0.0);
            let mut out = [123.0];
            apply_block(kernel, &[0], &[1.0], &[0.7], &exit, &[0.4], &mut out);
            assert_eq!(out[0], 0.0);
        }
    }
}
