//! The best response dynamics under stale information (Eq. (4)).
//!
//! Every activated agent switches to a minimum-latency path *of the
//! bulletin board*. In the fluid limit this is the differential
//! inclusion `ḟ ∈ β(f̂) − f`; because the board is frozen within a
//! phase, the best reply `b = β(f̂)` is a fixed vertex of the flow
//! polytope (ties broken deterministically to the first minimal path)
//! and the phase has the exact solution
//!
//! ```text
//! f(t̂ + τ) = b + (f(t̂) − b) · e^{−τ}.
//! ```
//!
//! Section 3.2 of the paper shows this dynamics oscillates forever on
//! two parallel links with latency `max{0, β(x − ½)}` no matter how
//! small `T` is; [`crate::theory::oscillation`] has the closed forms
//! and the experiments verify the engine against them.

use wardrop_net::flow::FlowVec;
use wardrop_net::instance::Instance;

use crate::board::BulletinBoard;
use crate::engine::{Dynamics, EngineWorkspace};
use crate::integrator::Integrator;

/// The best-response dynamics (not α-smooth; oscillates under
/// staleness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BestResponse;

impl BestResponse {
    /// Creates the best-response dynamics.
    pub fn new() -> Self {
        BestResponse
    }

    /// The best-reply flow `b = β(f̂)`: each commodity's demand on its
    /// first minimum-latency path of the board.
    pub fn best_reply_flow(&self, instance: &Instance, board: &BulletinBoard) -> FlowVec {
        let mut values = vec![0.0; instance.num_paths()];
        for (i, c) in instance.commodities().iter().enumerate() {
            values[board.best_reply(instance, i)] = c.demand;
        }
        FlowVec::from_values_unchecked(values)
    }
}

impl Dynamics for BestResponse {
    fn advance_phase(
        &self,
        instance: &Instance,
        board: &BulletinBoard,
        flow: &mut FlowVec,
        tau: f64,
        _integrator: &Integrator,
        _workspace: &mut EngineWorkspace,
    ) {
        // f(t̂ + τ) = b + (f − b) e^{−τ} = f·e^{−τ} + b·(1 − e^{−τ})
        // with b one-hot per commodity — applied in place, no
        // materialised best-reply vector.
        let decay = (-tau).exp();
        for f in flow.values_mut().iter_mut() {
            *f *= decay;
        }
        for (i, c) in instance.commodities().iter().enumerate() {
            let best = board.best_reply(instance, i);
            flow.values_mut()[best] += c.demand * (1.0 - decay);
        }
    }

    fn dynamics_name(&self) -> String {
        "best-response".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, SimulationConfig};
    use wardrop_net::builders;

    #[test]
    fn best_reply_concentrates_demand() {
        let inst = builders::pigou();
        let f = FlowVec::from_values(&inst, vec![0.2, 0.8]).unwrap();
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let b = BestResponse::new().best_reply_flow(&inst, &board);
        // ℓ₁ = 0.2 < 1 = ℓ₂: everything on path 0.
        assert_eq!(b.values(), &[1.0, 0.0]);
    }

    #[test]
    fn phase_solution_matches_exponential() {
        let inst = builders::pigou();
        let f0 = FlowVec::from_values(&inst, vec![0.2, 0.8]).unwrap();
        let board = BulletinBoard::post(&inst, &f0, 0.0);
        let mut f = f0.clone();
        let tau = 0.7;
        let mut ws = EngineWorkspace::new(&inst);
        BestResponse::new().advance_phase(
            &inst,
            &board,
            &mut f,
            tau,
            &Integrator::default(),
            &mut ws,
        );
        // f₂(τ) = f₂(0) e^{−τ}; f₁ = 1 − f₂.
        let expected2 = 0.8 * (-tau).exp();
        assert!((f.values()[1] - expected2).abs() < 1e-12);
        assert!((f.values()[0] + f.values()[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oscillator_period_two_orbit() {
        // §3.2: with f₁(0) = 1/(e^{−T}+1), the orbit returns after 2T.
        let beta = 2.0;
        let t_period = 0.5_f64;
        let inst = builders::two_link_oscillator(beta);
        let f1 = 1.0 / ((-t_period).exp() + 1.0);
        let f0 = FlowVec::from_values(&inst, vec![f1, 1.0 - f1]).unwrap();
        let config = SimulationConfig::new(t_period, 10).with_flows();
        let traj = run(&inst, &BestResponse::new(), &f0, &config);
        // Even phases start at f₁(0); odd phases at f₁(T) = f₁(0)e^{−T}.
        let mirrored = f1 * (-t_period).exp();
        for (i, flow) in traj.flows.iter().enumerate() {
            let expect = if i % 2 == 0 { f1 } else { mirrored };
            assert!(
                (flow.values()[0] - expect).abs() < 1e-9,
                "phase {i}: {} vs {expect}",
                flow.values()[0]
            );
        }
    }

    #[test]
    fn oscillation_never_converges() {
        let inst = builders::two_link_oscillator(4.0);
        let t_period = 0.25_f64;
        let f1 = 1.0 / ((-t_period).exp() + 1.0);
        let f0 = FlowVec::from_values(&inst, vec![f1, 1.0 - f1]).unwrap();
        let config = SimulationConfig::new(t_period, 500);
        let traj = run(&inst, &BestResponse::new(), &f0, &config);
        // Max regret at phase starts stays bounded away from zero.
        let last = traj.phases.last().unwrap();
        assert!(last.max_regret_start > 0.1);
        // No progress toward the equilibrium potential Φ* = 0: on the
        // symmetric orbit the phase-start potential is invariant.
        let first = &traj.phases[0];
        assert!(first.potential_start > 0.0);
        assert!((last.potential_start - first.potential_start).abs() < 1e-9);
    }

    #[test]
    fn off_orbit_start_still_oscillates() {
        // Starting away from the canonical orbit, best response still
        // fails to converge: the potential increases in some phases.
        let inst = builders::two_link_oscillator(4.0);
        let f0 = FlowVec::from_values(&inst, vec![0.9, 0.1]).unwrap();
        let config = SimulationConfig::new(0.25, 500);
        let traj = run(&inst, &BestResponse::new(), &f0, &config);
        assert!(traj.monotonicity_violations(1e-12) > 0);
        assert!(traj.phases.last().unwrap().max_regret_start > 0.1);
    }

    #[test]
    fn best_response_converges_with_fresh_information() {
        // With T → 0 the dynamics converges; emulate near-fresh
        // information with a very short period.
        let inst = builders::pigou();
        let f0 = FlowVec::uniform(&inst);
        let config = SimulationConfig::new(0.01, 2000);
        let traj = run(&inst, &BestResponse::new(), &f0, &config);
        assert!(traj.phases.last().unwrap().max_regret_start < 0.02);
    }
}
