//! # wardrop-core
//!
//! The primary contribution of *Adaptive routing with stale
//! information* (Fischer & Vöcking, PODC 2005 / TCS 2009): a class of
//! **α-smooth adaptive rerouting policies** that provably converge to
//! Wardrop equilibria even when all routing information comes from a
//! periodically-updated bulletin board.
//!
//! The crate provides:
//!
//! * the [bulletin board](board) model of stale information (§2.3);
//! * [sampling rules](sampling) (uniform, proportional, logit) and
//!   [migration rules](migration) (better response, linear, α-scaled)
//!   with α-smoothness analysis (Definition 2);
//! * composed [rerouting policies](policy) exposing the per-phase
//!   migration-rate generator, evaluated matrix-free in O(P log P)
//!   through the [separable kernels](kernel) of the stock rules (dense
//!   Θ(P²) blocks exist only as a lazy fallback for custom rules);
//! * a phase-wise [simulation engine](engine) for the fluid-limit ODE
//!   (Eq. (3)) with Euler, RK4 and exact
//!   [uniformization](integrator::Integrator::Uniformization)
//!   integrators, plus scenario epochs
//!   ([`engine::run_scenario`], [`Simulation::apply_event`]) for
//!   non-stationary demands and latencies, plus a deterministic
//!   multi-threaded mode ([`engine::Parallelism`] — bit-identical to
//!   serial at every lane count) and an [ensemble sweep
//!   runner](ensemble) fanning independent runs across per-lane
//!   reusable workspaces;
//! * the [best-response dynamics](best_response) (Eq. (4)) with its
//!   closed-form phase solution;
//! * per-phase [trajectories](trajectory) recording the quantities the
//!   convergence analysis bounds;
//! * the paper's [closed forms and bounds](theory): the safe update
//!   period `T* = 1/(4DαΒ)`, the §3.2 oscillation construction, and
//!   the Theorem 6/7 convergence-time shapes;
//! * checkpoint [snapshots](snapshot) of a running simulation —
//!   the complete dynamic state behind `wardrop-serve`'s
//!   crash-safety, restored bit-identically with typed errors on
//!   damaged input;
//! * a seeded [fault-injection layer](fault) that treats the board as
//!   a lossy, degrading channel (dropped posts, partial updates,
//!   noise, per-commodity staleness, outages), and an [AIMD
//!   smoothness governor](guard) that detects Lemma-4 violations under
//!   faults, throttles the effective α and cautiously restores it.
//!
//! # Examples
//!
//! Replicator dynamics (proportional sampling + linear migration) on
//! the Braess network under a stale bulletin board:
//!
//! ```
//! use wardrop_net::{builders, flow::FlowVec};
//! use wardrop_core::{engine, policy, theory};
//!
//! let inst = builders::braess();
//! let policy = policy::replicator(&inst);
//! let t_safe = theory::safe_update_period(&inst, 0.5); // α = 1/ℓmax = ½
//! let config = engine::SimulationConfig::new(t_safe, 200);
//! let traj = engine::run(&inst, &policy, &FlowVec::uniform(&inst), &config);
//! // Smooth + within the safe period ⇒ the potential never increases.
//! assert_eq!(traj.monotonicity_violations(1e-10), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod best_response;
pub mod board;
pub mod edge_engine;
pub mod engine;
pub mod ensemble;
pub mod fault;
pub mod guard;
pub mod integrator;
pub mod kernel;
pub mod migration;
pub mod policy;
pub mod sampling;
pub mod snapshot;
pub mod theory;
pub mod trajectory;

pub use best_response::BestResponse;
pub use board::{BoardPrecision, BulletinBoard};
pub use edge_engine::{run_edge, run_edge_scenario, EdgeSimulation, PathSeeding};
pub use engine::{
    run, run_scenario, run_scenario_audited, Dynamics, EngineWorkspace, Parallelism, Simulation,
    SimulationConfig,
};
pub use ensemble::{map_runs, run_many, RunSpec};
pub use fault::{FaultPlan, FaultSnapshot, FaultState, FaultStats};
pub use guard::{GuardConfig, GuardLog, GuardSnapshot, SmoothnessGuard};
pub use integrator::{Integrator, IntegratorScratch};
pub use kernel::SeparableKernel;
pub use migration::{BetterResponse, Linear, MigrationRule, RelativeSlack, ScaledLinear};
pub use policy::{stock_policy_zoo, PhaseRates, ReroutingPolicy, SmoothPolicy};
pub use sampling::{Logit, Proportional, SamplingRule, Uniform};
pub use snapshot::{EngineSnapshot, SnapshotError, SNAPSHOT_VERSION};
pub use trajectory::{PhaseRecord, Trajectory};
pub use wardrop_pool::WorkerPool;
