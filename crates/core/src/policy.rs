//! Rerouting policies and their per-phase migration-rate structure.
//!
//! A (smooth) rerouting policy combines a [sampling
//! rule](crate::sampling) with a [migration rule](crate::migration).
//! Because both steps read only the bulletin board, the per-unit-flow
//! migration rate from path `P` to path `Q`,
//!
//! ```text
//! c_PQ = σ_PQ(f̂) · µ(ℓ̂_P, ℓ̂_Q),
//! ```
//!
//! is *constant within a phase*. The fluid-limit ODE (paper Eq. (3))
//! restricted to one phase is therefore the linear system `ḟ = A f`
//! with `A_QP = c_PQ` off-diagonal — the generator of a continuous-time
//! Markov chain on paths, block-diagonal per commodity. [`PhaseRates`]
//! represents this generator; the integrators in [`crate::integrator`]
//! exploit its structure.
//!
//! For the stock policy zoo the generator is never materialised: every
//! sampling rule is origin-independent and every stock migration rule
//! has a [separable closed form](crate::kernel::SeparableKernel), so
//! [`PhaseRates`] stores the factors (sampling weights, board
//! latencies, a latency-sorted permutation) and evaluates products and
//! exit rates through prefix sums — O(P log P) per phase and O(P)
//! memory instead of the dense Θ(P²). Dense `n × n` blocks are
//! allocated lazily, only for genuinely non-separable custom rules
//! (or when forced via [`PhaseRates::dense_for_instance`], which the
//! bench baseline uses as an independent oracle).

use crate::board::BulletinBoard;
use crate::kernel::{self, SeparableKernel};
use crate::migration::MigrationRule;
use crate::sampling::SamplingRule;
use wardrop_net::instance::Instance;
use wardrop_pool::WorkerPool;

/// Path count below which the pooled fill/apply variants stay serial:
/// a dispatch costs a couple of microseconds (spin-handoff) plus the
/// permutation scatter, which only the larger workloads amortise.
const PARALLEL_RATES_MIN_PATHS: usize = 2048;

/// Minimum block size worth splitting *within* a block: smaller blocks
/// run as one part each (block-level parallelism only). The chunked
/// sweep pays a staging buffer, a permutation scatter and a catch-up
/// replay; measured on the bench box those only amortise at frontier
/// scale (hundreds of thousands of sorted targets), so the threshold
/// is deliberately high — `grid_12x12` (705 432 paths) splits,
/// `grid_10x10` (48 620) does not.
const WITHIN_BLOCK_SPLIT_MIN: usize = 1 << 16;

/// Catch-up replay cost per element relative to the full per-target
/// work of the chunked matrix-free apply (see [`crate::kernel`]).
/// Later chunks replay the serial accumulator past every earlier
/// element, so earlier chunks are sized larger by this ratio — the
/// boundaries stay a pure function of `(n, parts)`.
const CATCHUP_COST_RATIO: f64 = 0.35;

/// Pushes the `parts` weighted chunk boundaries of `0..n` (excluding
/// 0, including `n`) onto `bounds`, offset by `base`. Chunk `i`'s
/// completion time is modelled as `size_i + r · start_i`; equalising
/// gives the geometric recurrence below.
fn push_weighted_bounds(base: usize, n: usize, parts: usize, bounds: &mut Vec<usize>) {
    if parts <= 1 || n <= 1 {
        bounds.push(base + n);
        return;
    }
    let r = CATCHUP_COST_RATIO;
    let t = n as f64 * r / (1.0 - (1.0 - r).powi(parts as i32));
    let mut b = 0.0f64;
    let mut prev = 0usize;
    for i in 0..parts {
        b = t + (1.0 - r) * b;
        let mut cut = b.round() as usize;
        if i + 1 == parts {
            cut = n;
        }
        let cut = cut.clamp(prev, n);
        bounds.push(base + cut);
        prev = cut;
    }
}

/// Storage mode of one commodity block.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RateMode {
    /// Unfilled: the all-zero generator (fresh
    /// [`PhaseRates::for_instance`]).
    Zero,
    /// Dense row-major `n × n` rate matrix.
    Dense,
    /// Matrix-free separable factors.
    Separable(SeparableKernel),
}

/// Per-commodity migration rates for one phase — either a dense
/// `n × n` block or the matrix-free separable factors.
///
/// Equality compares the active *representation* (two blocks holding
/// the same generator in different representations are not `==`); use
/// [`CommodityRates::rate`] to compare by value.
#[derive(Debug, Clone, PartialEq)]
pub struct CommodityRates {
    /// Global path index of the commodity's first path.
    start: usize,
    /// Number of paths in the commodity.
    n: usize,
    /// Active representation.
    mode: RateMode,
    /// Row-major `n × n` rates: `c[p * n + q]` is the rate from local
    /// path `p` to local path `q`; diagonal entries are zero. **Empty
    /// until the first dense fill** — the separable path never
    /// allocates it.
    c: Vec<f64>,
    /// Row sums: total exit rate per local path (both representations).
    exit: Vec<f64>,
    /// Separable factor: sampling weights `σ_q` (empty in dense mode).
    weights: Vec<f64>,
    /// Separable factor: board latencies `ℓ̂_p` (empty in dense mode).
    latencies: Vec<f64>,
    /// Permutation sorting local paths by board latency ascending.
    order: Vec<u32>,
    /// Maximum exit rate, tracked during the fill so the
    /// uniformization constant Λ needs no extra sweep.
    max_exit: f64,
}

impl CommodityRates {
    /// Rate from local path `p` to local path `q`.
    ///
    /// O(1) in both representations: dense blocks read the matrix,
    /// matrix-free blocks evaluate `σ_q · µ(ℓ̂_p, ℓ̂_q)` on demand.
    #[inline]
    pub fn rate(&self, p: usize, q: usize) -> f64 {
        match self.mode {
            RateMode::Zero => 0.0,
            RateMode::Dense => self.c[p * self.n + q],
            RateMode::Separable(k) => {
                if p == q {
                    0.0
                } else {
                    self.weights[q] * k.probability(self.latencies[p], self.latencies[q])
                }
            }
        }
    }

    /// Total exit rate of local path `p` (`Σ_q c_pq`).
    #[inline]
    pub fn exit_rate(&self, p: usize) -> f64 {
        self.exit[p]
    }

    /// Number of paths in this commodity.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns true if the commodity has no paths (cannot occur for
    /// validated instances).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Global path index of local path 0.
    #[inline]
    pub fn start(&self) -> usize {
        self.start
    }

    /// The separable kernel backing this block, if it is matrix-free.
    #[inline]
    pub fn kernel(&self) -> Option<SeparableKernel> {
        match self.mode {
            RateMode::Separable(k) => Some(k),
            _ => None,
        }
    }
}

/// The full per-phase rate structure: one block per commodity.
///
/// Mass is conserved per commodity (columns of the generator sum to
/// zero), and exit rates never exceed 1 because `Σ_Q σ_PQ = 1` and
/// `µ ≤ 1` — the property that lets uniformization use `Λ = 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRates {
    blocks: Vec<CommodityRates>,
    num_paths: usize,
    /// Scratch for sampling weights during the dense fill, sized to
    /// the largest commodity (the separable fill stores weights in the
    /// block itself). Kept here so refilling allocates nothing.
    scratch: Vec<f64>,
    /// When set, [`ReroutingPolicy::phase_rates_into`] must materialise
    /// dense blocks even for separable policies (bench oracle mode).
    dense_only: bool,
}

impl PhaseRates {
    /// An all-zero rate structure with blocks shaped for `instance`.
    ///
    /// Allocates **O(P)**: exit-rate vectors and (on first fill) the
    /// separable factor buffers. Dense `n × n` blocks are only
    /// allocated if a fill actually needs them — a policy whose
    /// migration rule advertises a
    /// [`SeparableKernel`] never pays
    /// the Θ(P²) memory (for `grid_network(8, 8, _)` that is ~94 MB of
    /// matrix that no longer exists).
    ///
    /// Pair with [`ReroutingPolicy::phase_rates_into`] to rebuild the
    /// rates every phase without reallocating.
    pub fn for_instance(instance: &Instance) -> Self {
        Self::shaped(instance, false)
    }

    /// As [`PhaseRates::for_instance`], but forces every fill to
    /// materialise the dense Θ(P²) rate matrix even when the policy is
    /// separable.
    ///
    /// This is the frozen dense reference the benches and property
    /// tests compare the matrix-free path against
    /// (see [`ReroutingPolicy::phase_rates_dense`]).
    pub fn dense_for_instance(instance: &Instance) -> Self {
        Self::shaped(instance, true)
    }

    fn shaped(instance: &Instance, dense_only: bool) -> Self {
        let blocks = (0..instance.num_commodities())
            .map(|i| {
                let range = instance.commodity_paths(i);
                let n = range.len();
                CommodityRates {
                    start: range.start,
                    n,
                    mode: RateMode::Zero,
                    c: Vec::new(),
                    exit: vec![0.0; n],
                    weights: Vec::new(),
                    latencies: Vec::new(),
                    order: Vec::new(),
                    max_exit: 0.0,
                }
            })
            .collect();
        PhaseRates {
            blocks,
            num_paths: instance.num_paths(),
            scratch: vec![0.0; instance.max_commodity_path_count()],
            dense_only,
        }
    }

    /// Applies the generator: `out = A f`, i.e.
    /// `out_P = Σ_Q (f_Q c_QP − f_P c_PQ)`.
    ///
    /// Matrix-free blocks are evaluated in O(n) by a monotone
    /// two-pointer sweep over the latency-sorted order (see
    /// [`crate::kernel`]); dense blocks stream row-major (sequential
    /// reads of the rate matrix, accumulating into the small per-block
    /// output slice), which on large commodities is memory-bandwidth
    /// bound instead of latency bound.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from the instance's path count.
    pub fn apply(&self, f: &[f64], out: &mut [f64]) {
        assert_eq!(f.len(), self.num_paths);
        assert_eq!(out.len(), self.num_paths);
        for b in &self.blocks {
            let fs = &f[b.start..b.start + b.n];
            let os = &mut out[b.start..b.start + b.n];
            match b.mode {
                RateMode::Zero => os.fill(0.0),
                RateMode::Separable(k) => {
                    kernel::apply_block(k, &b.order, &b.weights, &b.latencies, &b.exit, fs, os);
                }
                RateMode::Dense => {
                    // Outflow first, then accumulate inflow row by row.
                    for (o, (&fq, &exit)) in os.iter_mut().zip(fs.iter().zip(&b.exit)) {
                        *o = -fq * exit;
                    }
                    for (p, &fp) in fs.iter().enumerate() {
                        if fp == 0.0 {
                            continue;
                        }
                        let row = &b.c[p * b.n..(p + 1) * b.n];
                        for (o, &c) in os.iter_mut().zip(row) {
                            *o += fp * c;
                        }
                    }
                }
            }
        }
    }

    /// Maximum exit rate over all paths (the uniformization constant
    /// Λ). Tracked during the fill — for matrix-free blocks it falls
    /// out of the sorted-extreme sweep — so this is O(#commodities).
    pub fn max_exit_rate(&self) -> f64 {
        self.blocks.iter().map(|b| b.max_exit).fold(0.0, f64::max)
    }

    /// The commodity blocks.
    pub fn blocks(&self) -> &[CommodityRates] {
        &self.blocks
    }

    /// Total number of paths across blocks.
    pub fn num_paths(&self) -> usize {
        self.num_paths
    }

    /// Scans a `before → after` flow diff into `changes`, block by
    /// block: every path whose `|Δf_P|` exceeds `threshold` is marked,
    /// the summed movement of all unmarked paths is added to the
    /// change set's exact [residual](wardrop_net::ChangeSet::residual)
    /// bound, and the **total** movement `‖after − before‖₁` is
    /// returned (the quantity the engine's
    /// `stop_when_phase_delta_below` early-out tests).
    ///
    /// `changes` is cleared first; callers widen it *afterwards* when
    /// the phase had out-of-band changes (faulted posts, discovery).
    /// The scan is representation-independent — it only uses the block
    /// boundaries, so it works for dense, matrix-free and zero blocks
    /// alike (and therefore for policies that never fill rates at
    /// all).
    ///
    /// # Panics
    ///
    /// Panics if the slices do not span exactly this structure's
    /// paths.
    pub fn changed_paths_into(
        &self,
        before: &[f64],
        after: &[f64],
        threshold: f64,
        changes: &mut wardrop_net::ChangeSet,
    ) -> f64 {
        assert_eq!(before.len(), self.num_paths);
        assert_eq!(after.len(), self.num_paths);
        changes.clear();
        let mut moved = 0.0;
        for b in &self.blocks {
            let (start, end) = (b.start, b.start + b.n);
            moved += crate::kernel::changed_paths_in_block(
                &before[start..end],
                &after[start..end],
                start,
                threshold,
                changes,
            );
        }
        moved
    }

    /// Total number of dense matrix elements currently allocated
    /// (`Σ nᵢ²` after a dense fill, 0 while every block is
    /// matrix-free). The regression tests pin the separable path to 0.
    pub fn dense_elements(&self) -> usize {
        self.blocks.iter().map(|b| b.c.len()).sum()
    }

    /// True when no block holds a dense matrix — the O(P log P)
    /// matrix-free representation is fully in effect.
    pub fn is_matrix_free(&self) -> bool {
        self.blocks
            .iter()
            .all(|b| !matches!(b.mode, RateMode::Dense))
    }

    /// [`PhaseRates::apply`], optionally fanned across a [`WorkerPool`]
    /// — **bit-identical** to the serial apply for every lane count.
    ///
    /// Parallelism is two-level and preserves every float-operation
    /// sequence of the serial sweep:
    ///
    /// * matrix-free blocks are chunked over their *sorted target
    ///   positions*; each chunk replays the serial suffix-accumulator
    ///   state at its boundary (see
    ///   [`crate::kernel`]'s chunked apply), writes into a
    ///   sorted-position scratch, and a serial pass scatters through
    ///   the permutation;
    /// * dense blocks are chunked over *columns*; each column's
    ///   accumulation runs in the serial row order.
    ///
    /// With `pool = None` (or on instances below the dispatch
    /// threshold) this is exactly [`PhaseRates::apply`]. `scratch`
    /// holds the sorted-position buffer and the chunk bounds; it grows
    /// once and is reused allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from the instance's path count.
    pub fn apply_with(
        &self,
        f: &[f64],
        out: &mut [f64],
        pool: Option<&WorkerPool>,
        scratch: &mut ApplyScratch,
    ) {
        let pool = match pool {
            Some(p) if p.lanes() > 1 && self.num_paths >= PARALLEL_RATES_MIN_PATHS => p,
            _ => return self.apply(f, out),
        };
        assert_eq!(f.len(), self.num_paths);
        assert_eq!(out.len(), self.num_paths);

        // When no block is large enough to split, skip the staging
        // buffer entirely: fan the serial per-block sweeps across the
        // lanes, each writing its own contiguous slice of `out`
        // directly (a single small block degenerates to the plain
        // serial apply).
        if self.blocks.iter().all(|b| b.n < WITHIN_BLOCK_SPLIT_MIN) {
            if self.blocks.len() < 2 {
                return self.apply(f, out);
            }
            scratch.bounds.clear();
            scratch.bounds.push(0);
            for b in &self.blocks {
                scratch.bounds.push(b.start + b.n);
            }
            let blocks = &self.blocks;
            pool.for_parts(out, &scratch.bounds, |bi, os| {
                let b = &blocks[bi];
                let fs = &f[b.start..b.start + b.n];
                match b.mode {
                    RateMode::Zero => os.fill(0.0),
                    RateMode::Separable(k) => {
                        kernel::apply_block(k, &b.order, &b.weights, &b.latencies, &b.exit, fs, os);
                    }
                    RateMode::Dense => dense_apply_columns(b, fs, 0, b.n, os),
                }
            });
            return;
        }

        // Partition every block into chunks of sorted positions (or
        // dense columns): one part per small block, `lanes` weighted
        // parts for blocks large enough to split. Bounds are a pure
        // function of the block shapes and the lane count; the buffers
        // grow once. The O(n) block-totals pass runs exactly once per
        // block (here, serially — in the serial accumulation order)
        // and is shared by its chunks.
        scratch.vals.resize(self.num_paths, 0.0);
        scratch.bounds.clear();
        scratch.part_block.clear();
        scratch.totals.clear();
        scratch.bounds.push(0);
        for (bi, b) in self.blocks.iter().enumerate() {
            let totals = match b.mode {
                RateMode::Separable(k) => {
                    let fs = &f[b.start..b.start + b.n];
                    kernel::block_totals(k, &b.order, &b.latencies, fs)
                }
                _ => [0.0; 2],
            };
            let parts = if b.n >= WITHIN_BLOCK_SPLIT_MIN {
                pool.lanes()
            } else {
                1
            };
            let before = scratch.bounds.len();
            match b.mode {
                // Dense column chunks pay no catch-up: split evenly.
                RateMode::Dense if parts > 1 => {
                    let step = b.n.div_ceil(parts);
                    let mut done = 0;
                    while done < b.n {
                        let end = (done + step).min(b.n);
                        scratch.bounds.push(b.start + end);
                        done = end;
                    }
                }
                _ => push_weighted_bounds(b.start, b.n, parts, &mut scratch.bounds),
            }
            for _ in before..scratch.bounds.len() {
                scratch.part_block.push(bi as u32);
                scratch.totals.push(totals);
            }
        }

        let ApplyScratch {
            vals,
            bounds,
            part_block,
            totals,
        } = scratch;
        let blocks = &self.blocks;
        pool.for_parts(vals, bounds, |pi, part| {
            let b = &blocks[part_block[pi] as usize];
            let lo = bounds[pi] - b.start;
            let hi = bounds[pi + 1] - b.start;
            let fs = &f[b.start..b.start + b.n];
            match b.mode {
                RateMode::Zero => part.fill(0.0),
                RateMode::Separable(k) => kernel::apply_block_part(
                    k,
                    &b.order,
                    &b.weights,
                    &b.latencies,
                    &b.exit,
                    fs,
                    totals[pi],
                    lo,
                    hi,
                    part,
                ),
                RateMode::Dense => dense_apply_columns(b, fs, lo, hi, part),
            }
        });

        // Serial scatter: sorted positions back to local path indices
        // (identity for dense/zero blocks).
        for b in &self.blocks {
            let vals = &scratch.vals[b.start..b.start + b.n];
            let os = &mut out[b.start..b.start + b.n];
            match b.mode {
                RateMode::Separable(_) => {
                    for (kq, &v) in vals.iter().enumerate() {
                        os[b.order[kq] as usize] = v;
                    }
                }
                _ => os.copy_from_slice(vals),
            }
        }
    }
}

/// One dense block's generator product restricted to the column chunk
/// `[lo, hi)`: outflow first, then the rows accumulate in serial order
/// per column — the per-column float sequence of the serial row-major
/// stream, so any column chunking is bit-identical to it.
fn dense_apply_columns(b: &CommodityRates, fs: &[f64], lo: usize, hi: usize, part: &mut [f64]) {
    for (o, q) in part.iter_mut().zip(lo..hi) {
        *o = -fs[q] * b.exit[q];
    }
    for (p, &fp) in fs.iter().enumerate() {
        if fp == 0.0 {
            continue;
        }
        let row = &b.c[p * b.n + lo..p * b.n + hi];
        for (o, &c) in part.iter_mut().zip(row) {
            *o += fp * c;
        }
    }
}

/// Reusable buffers for [`PhaseRates::apply_with`]: the sorted-position
/// output staging area and the chunk partition. Grows once to the path
/// count, then every apply is allocation-free.
#[derive(Debug, Clone, Default)]
pub struct ApplyScratch {
    vals: Vec<f64>,
    bounds: Vec<usize>,
    part_block: Vec<u32>,
    totals: Vec<[f64; 2]>,
}

impl ApplyScratch {
    /// An empty scratch (buffers grow on first pooled apply).
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-sized for `n` paths split across up to `lanes`
    /// lanes, so even the first pooled apply allocates nothing.
    pub fn for_len(n: usize, lanes: usize) -> Self {
        ApplyScratch {
            vals: vec![0.0; n],
            bounds: Vec::with_capacity(lanes * 8 + 2),
            part_block: Vec::with_capacity(lanes * 8 + 1),
            totals: Vec::with_capacity(lanes * 8 + 1),
        }
    }
}

/// A rerouting policy: produces the per-phase rate structure from the
/// bulletin board.
///
/// The provided implementation is [`SmoothPolicy`]; best response does
/// not fit this trait (its "rates" are unbounded) and lives in
/// [`crate::best_response`].
///
/// Policies are `Send + Sync` (like the sampling and migration rules
/// they compose): the engine's worker lanes fill commodity blocks —
/// and ensemble sweeps run whole simulations — concurrently against a
/// shared `&self`.
pub trait ReroutingPolicy: std::fmt::Debug + Send + Sync {
    /// Computes the generator `c_PQ = σ_PQ(f̂) µ(ℓ̂_P, ℓ̂_Q)` into a
    /// pre-shaped rate structure (see [`PhaseRates::for_instance`]),
    /// allocating nothing in steady state. Separable policies fill the
    /// matrix-free representation; others fill dense blocks (allocated
    /// lazily on the first such fill).
    ///
    /// # Panics
    ///
    /// May panic if `rates` was not shaped for `instance`.
    fn phase_rates_into(&self, instance: &Instance, board: &BulletinBoard, rates: &mut PhaseRates);

    /// [`ReroutingPolicy::phase_rates_into`], optionally fanned across
    /// a [`WorkerPool`]. The default ignores the pool and fills
    /// serially, so custom policies keep working unchanged;
    /// [`SmoothPolicy`] overrides it to dispatch per-commodity
    /// sort + prefix-sum fills across the lanes (commodity blocks
    /// never interact), **bit-identically** to the serial fill.
    fn phase_rates_into_with(
        &self,
        instance: &Instance,
        board: &BulletinBoard,
        rates: &mut PhaseRates,
        pool: Option<&WorkerPool>,
    ) {
        let _ = pool;
        self.phase_rates_into(instance, board, rates);
    }

    /// Computes the rates into a freshly allocated [`PhaseRates`].
    ///
    /// Convenience wrapper around [`ReroutingPolicy::phase_rates_into`];
    /// the engine's phase loop uses the `_into` form.
    fn phase_rates(&self, instance: &Instance, board: &BulletinBoard) -> PhaseRates {
        let mut rates = PhaseRates::for_instance(instance);
        self.phase_rates_into(instance, board, &mut rates);
        rates
    }

    /// Computes the rates into a dense Θ(P²) structure, bypassing the
    /// matrix-free path — the independent oracle the benches and
    /// property tests compare against
    /// (see [`PhaseRates::dense_for_instance`]).
    fn phase_rates_dense(&self, instance: &Instance, board: &BulletinBoard) -> PhaseRates {
        let mut rates = PhaseRates::dense_for_instance(instance);
        self.phase_rates_into(instance, board, &mut rates);
        rates
    }

    /// The α-smoothness constant of the migration rule, if smooth.
    fn smoothness(&self) -> Option<f64>;

    /// Human-readable policy name for reports.
    fn name(&self) -> String;
}

/// A two-step policy: sample with `S`, migrate with `M` (§2.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoothPolicy<S, M> {
    sampling: S,
    migration: M,
}

impl<S: SamplingRule, M: MigrationRule> SmoothPolicy<S, M> {
    /// Combines a sampling and a migration rule.
    pub fn new(sampling: S, migration: M) -> Self {
        SmoothPolicy {
            sampling,
            migration,
        }
    }

    /// The sampling rule.
    pub fn sampling(&self) -> &S {
        &self.sampling
    }

    /// The migration rule.
    pub fn migration(&self) -> &M {
        &self.migration
    }

    /// The separable kernel this policy's rate fill will use, if both
    /// halves opt in ([`SamplingRule::target_separable`] and
    /// [`MigrationRule::kernel`]).
    pub fn separable_kernel(&self) -> Option<SeparableKernel> {
        if self.sampling.target_separable() {
            self.migration.kernel()
        } else {
            None
        }
    }

    /// Fills one commodity block with the matrix-free factors:
    /// sampling weights, board latencies, the latency-sorted
    /// permutation, and the prefix-sum exit rates.
    fn fill_separable(
        &self,
        kernel: SeparableKernel,
        instance: &Instance,
        board: &BulletinBoard,
        commodity: usize,
        b: &mut CommodityRates,
    ) {
        let (start, n) = (b.start, b.n);
        b.weights.resize(n, 0.0);
        self.sampling
            .fill_weights(instance, board, commodity, &mut b.weights);
        b.latencies.resize(n, 0.0);
        b.latencies
            .copy_from_slice(&board.path_latencies()[start..start + n]);
        b.order.clear();
        b.order.extend(0..n as u32);
        let CommodityRates {
            order,
            weights,
            latencies,
            exit,
            ..
        } = b;
        order.sort_unstable_by(|&x, &y| latencies[x as usize].total_cmp(&latencies[y as usize]));
        b.max_exit = kernel::fill_exit_rates(kernel, order, weights, latencies, exit);
        b.mode = RateMode::Separable(kernel);
    }

    /// Fills one commodity block densely, allocating its `n × n`
    /// matrix on the first dense fill.
    fn fill_dense(
        &self,
        instance: &Instance,
        board: &BulletinBoard,
        commodity: usize,
        b: &mut CommodityRates,
        scratch: &mut [f64],
    ) {
        let lat = board.path_latencies();
        let (start, n) = (b.start, b.n);
        if b.c.len() != n * n {
            b.c.resize(n * n, 0.0);
        }
        let weights = &mut scratch[..n];
        self.sampling
            .fill_weights(instance, board, commodity, weights);
        let mut max_exit = 0.0_f64;
        for p in 0..n {
            let lp = lat[start + p];
            let mut row_sum = 0.0;
            let row = &mut b.c[p * n..(p + 1) * n];
            for (q, (slot, w)) in row.iter_mut().zip(weights.iter()).enumerate() {
                if p == q {
                    *slot = 0.0;
                    continue;
                }
                let rate = w * self.migration.probability(lp, lat[start + q]);
                *slot = rate;
                row_sum += rate;
            }
            b.exit[p] = row_sum;
            max_exit = max_exit.max(row_sum);
        }
        b.max_exit = max_exit;
        b.mode = RateMode::Dense;
    }
}

impl<S: SamplingRule, M: MigrationRule> ReroutingPolicy for SmoothPolicy<S, M> {
    fn phase_rates_into(&self, instance: &Instance, board: &BulletinBoard, rates: &mut PhaseRates) {
        assert_eq!(
            rates.num_paths,
            instance.num_paths(),
            "rate structure shaped for a different instance"
        );
        let kernel = if rates.dense_only {
            None
        } else {
            self.separable_kernel()
        };
        let PhaseRates {
            blocks, scratch, ..
        } = rates;
        for (i, b) in blocks.iter_mut().enumerate() {
            match kernel {
                Some(k) => self.fill_separable(k, instance, board, i, b),
                None => self.fill_dense(instance, board, i, b, scratch),
            }
        }
    }

    fn phase_rates_into_with(
        &self,
        instance: &Instance,
        board: &BulletinBoard,
        rates: &mut PhaseRates,
        pool: Option<&WorkerPool>,
    ) {
        // Blocks are filled independently (sort + prefix sums touch one
        // commodity's slices only), so a per-block fan-out is
        // bit-identical to the serial loop. The dense fallback shares
        // one weight scratch and stays serial.
        let parallel = match pool {
            Some(p) => {
                p.lanes() > 1
                    && rates.blocks.len() > 1
                    && rates.num_paths >= PARALLEL_RATES_MIN_PATHS
                    && !rates.dense_only
                    && self.separable_kernel().is_some()
            }
            None => false,
        };
        if !parallel {
            return self.phase_rates_into(instance, board, rates);
        }
        assert_eq!(
            rates.num_paths,
            instance.num_paths(),
            "rate structure shaped for a different instance"
        );
        let kernel = self.separable_kernel().expect("checked above");
        let pool = pool.expect("checked above");
        pool.for_each_mut(&mut rates.blocks, |i, b| {
            self.fill_separable(kernel, instance, board, i, b);
        });
    }

    fn smoothness(&self) -> Option<f64> {
        self.migration.smoothness()
    }

    fn name(&self) -> String {
        format!("{}+{}", self.sampling.name(), self.migration.name())
    }
}

/// The replicator dynamics slowed down for staleness: proportional
/// sampling + linear migration (§2.2; Theorem 7).
pub fn replicator(
    instance: &Instance,
) -> SmoothPolicy<crate::sampling::Proportional, crate::migration::Linear> {
    SmoothPolicy::new(
        crate::sampling::Proportional,
        crate::migration::Linear::new(instance.latency_upper_bound().max(f64::MIN_POSITIVE)),
    )
}

/// Uniform sampling + linear migration (Theorem 6).
pub fn uniform_linear(
    instance: &Instance,
) -> SmoothPolicy<crate::sampling::Uniform, crate::migration::Linear> {
    SmoothPolicy::new(
        crate::sampling::Uniform,
        crate::migration::Linear::new(instance.latency_upper_bound().max(f64::MIN_POSITIVE)),
    )
}

/// The fast elasticity-based dynamics of the follow-up work \[10\]:
/// proportional sampling + relative-slack migration.
///
/// **Not** α-smooth — outside the paper's convergence guarantee. On
/// instances with positive latencies it converges much faster than the
/// slowed-down replicator (its speed depends on elasticity, not
/// slope); on instances with vanishing latencies it degenerates into
/// better response. Exercised by experiment E8.
pub fn fast_relative_slack(
) -> SmoothPolicy<crate::sampling::Proportional, crate::migration::RelativeSlack> {
    SmoothPolicy::new(
        crate::sampling::Proportional,
        crate::migration::RelativeSlack,
    )
}

/// The full stock policy zoo: every shipped sampling × migration
/// combination (3 × 4 = 12), boxed for uniform treatment.
///
/// One definition shared by the matrix-free/dense agreement tests, the
/// `bench_report` `policy_zoo` section and CI's v3 assertion, so their
/// coverage cannot silently diverge. `lmax` parameterises the linear
/// rule (use the instance's latency upper bound); the scaled-linear
/// rule uses `α = 4/ℓmax` so its clamp genuinely saturates on gaps
/// beyond `ℓmax/4`, exercising both regions of the
/// [`ClampedLinear`](crate::kernel::SeparableKernel::ClampedLinear)
/// kernel.
///
/// # Panics
///
/// Panics if `lmax` is not positive and finite.
pub fn stock_policy_zoo(lmax: f64) -> Vec<Box<dyn ReroutingPolicy>> {
    use crate::migration::{BetterResponse, Linear, RelativeSlack, ScaledLinear};
    use crate::sampling::{Logit, Proportional, Uniform};
    let alpha = 4.0 / lmax;
    vec![
        Box::new(SmoothPolicy::new(Uniform, Linear::new(lmax))),
        Box::new(SmoothPolicy::new(Uniform, ScaledLinear::new(alpha))),
        Box::new(SmoothPolicy::new(Uniform, BetterResponse)),
        Box::new(SmoothPolicy::new(Uniform, RelativeSlack)),
        Box::new(SmoothPolicy::new(Proportional, Linear::new(lmax))),
        Box::new(SmoothPolicy::new(Proportional, ScaledLinear::new(alpha))),
        Box::new(SmoothPolicy::new(Proportional, BetterResponse)),
        Box::new(SmoothPolicy::new(Proportional, RelativeSlack)),
        Box::new(SmoothPolicy::new(Logit::new(2.0), Linear::new(lmax))),
        Box::new(SmoothPolicy::new(Logit::new(2.0), ScaledLinear::new(alpha))),
        Box::new(SmoothPolicy::new(Logit::new(2.0), BetterResponse)),
        Box::new(SmoothPolicy::new(Logit::new(2.0), RelativeSlack)),
    ]
}

/// Smoothed best response: logit sampling + linear migration (§2.2).
pub fn smoothed_best_response(
    instance: &Instance,
    c: f64,
) -> SmoothPolicy<crate::sampling::Logit, crate::migration::Linear> {
    SmoothPolicy::new(
        crate::sampling::Logit::new(c),
        crate::migration::Linear::new(instance.latency_upper_bound().max(f64::MIN_POSITIVE)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migration::{BetterResponse, Linear, ScaledLinear};
    use crate::sampling::{Proportional, Uniform};
    use wardrop_net::builders;
    use wardrop_net::flow::FlowVec;

    fn pigou_board(values: Vec<f64>) -> (wardrop_net::Instance, BulletinBoard) {
        let inst = builders::pigou();
        let f = FlowVec::from_values(&inst, values).unwrap();
        let board = BulletinBoard::post(&inst, &f, 0.0);
        (inst, board)
    }

    #[test]
    fn rates_are_selfish_only() {
        // ℓ₁ = 0.2 < ℓ₂ = 1: flow may only move 2 → 1.
        let (inst, board) = pigou_board(vec![0.2, 0.8]);
        let rates = uniform_linear(&inst).phase_rates(&inst, &board);
        let b = &rates.blocks()[0];
        assert_eq!(b.rate(0, 1), 0.0);
        assert!(b.rate(1, 0) > 0.0);
    }

    #[test]
    fn rate_value_matches_hand_computation() {
        // Uniform sampling: σ = ½ each; linear migration with
        // ℓmax = 1: µ(1, 0.2) = 0.8. So c_{2→1} = 0.4.
        let (inst, board) = pigou_board(vec![0.2, 0.8]);
        let rates = uniform_linear(&inst).phase_rates(&inst, &board);
        let b = &rates.blocks()[0];
        assert!((b.rate(1, 0) - 0.4).abs() < 1e-12);
        assert!((b.exit_rate(1) - 0.4).abs() < 1e-12);
        assert_eq!(b.exit_rate(0), 0.0);
    }

    #[test]
    fn replicator_rates_scale_with_target_flow() {
        let (inst, board) = pigou_board(vec![0.2, 0.8]);
        let rates = replicator(&inst).phase_rates(&inst, &board);
        let b = &rates.blocks()[0];
        // σ(path 0) = f̂₀ = 0.2; µ(1, 0.2) = 0.8 ⇒ c = 0.16.
        assert!((b.rate(1, 0) - 0.16).abs() < 1e-12);
    }

    #[test]
    fn apply_conserves_mass_per_commodity() {
        let inst = builders::braess();
        let f = FlowVec::uniform(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let rates = uniform_linear(&inst).phase_rates(&inst, &board);
        let mut out = vec![0.0; inst.num_paths()];
        rates.apply(f.values(), &mut out);
        let total: f64 = out.iter().sum();
        assert!(total.abs() < 1e-12, "mass must be conserved, got {total}");
    }

    #[test]
    fn apply_moves_mass_toward_cheaper_paths() {
        let (inst, board) = pigou_board(vec![0.2, 0.8]);
        let rates = uniform_linear(&inst).phase_rates(&inst, &board);
        let mut out = vec![0.0; 2];
        rates.apply(&[0.2, 0.8], &mut out);
        assert!(out[0] > 0.0);
        assert!(out[1] < 0.0);
    }

    #[test]
    fn exit_rates_bounded_by_one() {
        // Even with better response (µ ∈ {0,1}), Σ_Q σ_Q µ ≤ 1.
        let (inst, board) = pigou_board(vec![0.2, 0.8]);
        let policy = SmoothPolicy::new(Uniform, BetterResponse);
        let rates = policy.phase_rates(&inst, &board);
        assert!(rates.max_exit_rate() <= 1.0 + 1e-12);
    }

    #[test]
    fn named_policies_report_smoothness() {
        let inst = builders::pigou();
        assert!(uniform_linear(&inst).smoothness().is_some());
        assert!(replicator(&inst).smoothness().is_some());
        let br = SmoothPolicy::new(Uniform, BetterResponse);
        assert_eq!(br.smoothness(), None);
        let sl = SmoothPolicy::new(Proportional, ScaledLinear::new(2.0));
        assert_eq!(sl.smoothness(), Some(2.0));
    }

    #[test]
    fn policy_names_compose() {
        let inst = builders::pigou();
        let name = uniform_linear(&inst).name();
        assert!(name.contains("uniform"));
        assert!(name.contains("linear"));
    }

    #[test]
    fn wardrop_equilibrium_has_zero_rates() {
        let (inst, board) = pigou_board(vec![1.0, 0.0]);
        // At Pigou equilibrium both links show latency 1 on the board.
        let rates = uniform_linear(&inst).phase_rates(&inst, &board);
        assert_eq!(rates.max_exit_rate(), 0.0);
        let lin = Linear::new(1.0);
        assert_eq!(lin.probability(1.0, 1.0), 0.0);
    }

    #[test]
    fn phase_rates_into_matches_fresh_build_after_reuse() {
        let inst = builders::multi_commodity_grid(2, 3, 5);
        let f = FlowVec::uniform(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let policy = uniform_linear(&inst);
        let fresh = policy.phase_rates(&inst, &board);
        let mut reused = PhaseRates::for_instance(&inst);
        // Dirty the buffers with a different board, then refill.
        let g = FlowVec::concentrated(&inst);
        policy.phase_rates_into(&inst, &BulletinBoard::post(&inst, &g, 0.0), &mut reused);
        policy.phase_rates_into(&inst, &board, &mut reused);
        for (a, b) in fresh.blocks().iter().zip(reused.blocks()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn apply_matches_column_major_reference() {
        let inst = builders::multi_commodity_grid(3, 3, 9);
        let f = FlowVec::uniform(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let rates = uniform_linear(&inst).phase_rates(&inst, &board);
        let mut fast = vec![0.0; inst.num_paths()];
        rates.apply(f.values(), &mut fast);
        // Textbook column-per-output evaluation over entry queries.
        let mut reference = vec![0.0; inst.num_paths()];
        for b in rates.blocks() {
            let n = b.len();
            let fs = &f.values()[b.start()..b.start() + n];
            for q in 0..n {
                let mut acc = 0.0;
                for (p, fp) in fs.iter().enumerate() {
                    acc += fp * b.rate(p, q);
                }
                reference[b.start() + q] = acc - fs[q] * b.exit_rate(q);
            }
        }
        for (a, b) in fast.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn multi_commodity_blocks_are_independent() {
        let inst = builders::multi_commodity_grid(2, 2, 3);
        let f = FlowVec::uniform(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let rates = uniform_linear(&inst).phase_rates(&inst, &board);
        assert_eq!(rates.blocks().len(), 2);
        let mut out = vec![0.0; inst.num_paths()];
        rates.apply(f.values(), &mut out);
        // Mass conserved within each commodity separately.
        for i in 0..inst.num_commodities() {
            let r = inst.commodity_paths(i);
            let s: f64 = out[r].iter().sum();
            assert!(s.abs() < 1e-12);
        }
    }

    /// Satellite regression: the separable path must allocate no dense
    /// matrix — O(P) factors only — while the dense oracle still
    /// materialises Σ nᵢ².
    #[test]
    fn separable_fill_allocates_no_dense_blocks() {
        let inst = builders::grid_network(6, 6, 7); // 252 paths
        let f = FlowVec::uniform(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let policy = uniform_linear(&inst);

        // Fresh shape: nothing dense, nothing separable yet.
        let mut rates = PhaseRates::for_instance(&inst);
        assert_eq!(rates.dense_elements(), 0);
        assert!(rates.is_matrix_free());

        // Separable fill: still zero dense elements, factors are O(P).
        policy.phase_rates_into(&inst, &board, &mut rates);
        assert_eq!(rates.dense_elements(), 0);
        assert!(rates.is_matrix_free());
        for b in rates.blocks() {
            assert!(b.kernel().is_some());
            assert_eq!(b.weights.len(), b.len());
            assert_eq!(b.latencies.len(), b.len());
            assert_eq!(b.order.len(), b.len());
        }

        // The dense oracle allocates the full matrix.
        let dense = policy.phase_rates_dense(&inst, &board);
        let expected: usize = (0..inst.num_commodities())
            .map(|i| inst.commodity_path_count(i).pow(2))
            .sum();
        assert_eq!(dense.dense_elements(), expected);
        assert!(!dense.is_matrix_free());

        // A non-separable custom rule falls back to dense lazily.
        #[derive(Debug, Clone, Copy)]
        struct Opaque(Linear);
        impl MigrationRule for Opaque {
            fn probability(&self, l_from: f64, l_to: f64) -> f64 {
                self.0.probability(l_from, l_to)
            }
            fn smoothness(&self) -> Option<f64> {
                self.0.smoothness()
            }
            fn name(&self) -> String {
                "opaque".to_string()
            }
        }
        let custom = SmoothPolicy::new(Uniform, Opaque(Linear::new(1.0)));
        assert!(custom.separable_kernel().is_none());
        let mut rates = PhaseRates::for_instance(&inst);
        assert_eq!(rates.dense_elements(), 0);
        custom.phase_rates_into(&inst, &board, &mut rates);
        assert_eq!(rates.dense_elements(), expected);
    }

    /// The pooled apply and rate fill are bit-identical to the serial
    /// ones on workloads large enough to actually cross the dispatch
    /// gates — single-block (within-block chunking), many-block
    /// (block-level fan-out) and the dense fallback (column chunking).
    #[test]
    fn pooled_apply_and_fill_are_bit_identical() {
        use wardrop_pool::WorkerPool;
        let cases: Vec<(&str, wardrop_net::Instance)> = vec![
            ("grid_8x8", builders::grid_network(8, 8, 7)),
            (
                "many_commodity_8x8x6",
                builders::many_commodity_grid(8, 8, 6, 7),
            ),
        ];
        for (name, inst) in &cases {
            assert!(inst.num_paths() >= PARALLEL_RATES_MIN_PATHS, "{name}");
            let policy = uniform_linear(inst);
            for f in [FlowVec::uniform(inst), FlowVec::concentrated(inst)] {
                let board = BulletinBoard::post(inst, &f, 0.0);
                // Serial fill vs pooled fill.
                let mut serial = PhaseRates::for_instance(inst);
                policy.phase_rates_into(inst, &board, &mut serial);
                for lanes in [2usize, 3] {
                    let pool = WorkerPool::new(lanes);
                    let mut pooled = PhaseRates::for_instance(inst);
                    policy.phase_rates_into_with(inst, &board, &mut pooled, Some(&pool));
                    for (a, b) in serial.blocks().iter().zip(pooled.blocks()) {
                        assert_eq!(a, b, "{name}: fill diverged at {lanes} lanes");
                    }
                    // Serial apply vs pooled apply.
                    let mut out_serial = vec![0.0; inst.num_paths()];
                    serial.apply(f.values(), &mut out_serial);
                    let mut out_pooled = vec![0.0; inst.num_paths()];
                    let mut scratch = ApplyScratch::new();
                    pooled.apply_with(f.values(), &mut out_pooled, Some(&pool), &mut scratch);
                    for (i, (x, y)) in out_serial.iter().zip(&out_pooled).enumerate() {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "{name}: apply[{i}] {x} vs {y} at {lanes} lanes"
                        );
                    }
                    // A second apply through the now-warm scratch is
                    // identical too (bounds/vals reuse).
                    let mut again = vec![0.0; inst.num_paths()];
                    pooled.apply_with(f.values(), &mut again, Some(&pool), &mut scratch);
                    assert_eq!(again, out_pooled, "{name}");
                }
            }
        }

        // A single block large enough to cross the within-block split
        // threshold: the chunked sweep (staging, catch-up replay,
        // permutation scatter) must be bit-identical too.
        let inst = builders::standard_random_links(WITHIN_BLOCK_SPLIT_MIN + 123, 9);
        assert!(inst.num_paths() >= WITHIN_BLOCK_SPLIT_MIN);
        let policy = uniform_linear(&inst);
        for f in [FlowVec::uniform(&inst), FlowVec::concentrated(&inst)] {
            let board = BulletinBoard::post(&inst, &f, 0.0);
            let rates = policy.phase_rates(&inst, &board);
            let mut out_serial = vec![0.0; inst.num_paths()];
            rates.apply(f.values(), &mut out_serial);
            for lanes in [2usize, 3] {
                let pool = WorkerPool::new(lanes);
                let mut out_pooled = vec![0.0; inst.num_paths()];
                let mut scratch = ApplyScratch::new();
                rates.apply_with(f.values(), &mut out_pooled, Some(&pool), &mut scratch);
                for (i, (x, y)) in out_serial.iter().zip(&out_pooled).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "chunked apply[{i}] {x} vs {y} at {lanes} lanes"
                    );
                }
            }
        }

        // Dense fallback: column-chunked apply matches the row-major
        // serial stream.
        let inst = builders::standard_random_links(2500, 5);
        assert!(inst.num_paths() >= PARALLEL_RATES_MIN_PATHS);
        let f = FlowVec::uniform(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let policy = uniform_linear(&inst);
        let dense = policy.phase_rates_dense(&inst, &board);
        let mut out_serial = vec![0.0; inst.num_paths()];
        dense.apply(f.values(), &mut out_serial);
        let pool = WorkerPool::new(2);
        let mut out_pooled = vec![0.0; inst.num_paths()];
        let mut scratch = ApplyScratch::new();
        dense.apply_with(f.values(), &mut out_pooled, Some(&pool), &mut scratch);
        for (x, y) in out_serial.iter().zip(&out_pooled) {
            assert_eq!(x.to_bits(), y.to_bits(), "dense: {x} vs {y}");
        }
    }

    /// Every stock sampling × migration combination takes the
    /// matrix-free path.
    #[test]
    fn stock_policy_zoo_is_matrix_free() {
        let inst = builders::braess();
        let f = FlowVec::uniform(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let policies = stock_policy_zoo(inst.latency_upper_bound());
        assert_eq!(policies.len(), 12, "3 sampling × 4 migration rules");
        for p in &policies {
            let rates = p.phase_rates(&inst, &board);
            assert!(rates.is_matrix_free(), "{} fell back to dense", p.name());
            assert_eq!(rates.dense_elements(), 0, "{}", p.name());
            // …and the dense oracle agrees entry for entry.
            let dense = p.phase_rates_dense(&inst, &board);
            for (a, b) in rates.blocks().iter().zip(dense.blocks()) {
                for i in 0..a.len() {
                    assert!(
                        (a.exit_rate(i) - b.exit_rate(i)).abs() < 1e-12,
                        "{}",
                        p.name()
                    );
                    for j in 0..a.len() {
                        assert!(
                            (a.rate(i, j) - b.rate(i, j)).abs() < 1e-12,
                            "{}: c[{i}][{j}]",
                            p.name()
                        );
                    }
                }
            }
        }
    }
}
