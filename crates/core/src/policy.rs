//! Rerouting policies and their per-phase migration-rate matrices.
//!
//! A (smooth) rerouting policy combines a [sampling
//! rule](crate::sampling) with a [migration rule](crate::migration).
//! Because both steps read only the bulletin board, the per-unit-flow
//! migration rate from path `P` to path `Q`,
//!
//! ```text
//! c_PQ = σ_PQ(f̂) · µ(ℓ̂_P, ℓ̂_Q),
//! ```
//!
//! is *constant within a phase*. The fluid-limit ODE (paper Eq. (3))
//! restricted to one phase is therefore the linear system `ḟ = A f`
//! with `A_QP = c_PQ` off-diagonal — the generator of a continuous-time
//! Markov chain on paths, block-diagonal per commodity. [`PhaseRates`]
//! materialises this generator; the integrators in
//! [`crate::integrator`] exploit its structure.

use crate::board::BulletinBoard;
use crate::migration::MigrationRule;
use crate::sampling::SamplingRule;
use wardrop_net::instance::Instance;

/// Per-commodity dense migration-rate matrix for one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct CommodityRates {
    /// Global path index of the commodity's first path.
    start: usize,
    /// Number of paths in the commodity.
    n: usize,
    /// Row-major `n × n` rates: `c[p * n + q]` is the rate from local
    /// path `p` to local path `q`. Diagonal entries are zero.
    c: Vec<f64>,
    /// Row sums: total exit rate per local path.
    exit: Vec<f64>,
}

impl CommodityRates {
    /// Rate from local path `p` to local path `q`.
    #[inline]
    pub fn rate(&self, p: usize, q: usize) -> f64 {
        self.c[p * self.n + q]
    }

    /// Total exit rate of local path `p` (`Σ_q c_pq`).
    #[inline]
    pub fn exit_rate(&self, p: usize) -> f64 {
        self.exit[p]
    }

    /// Number of paths in this commodity.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns true if the commodity has no paths (cannot occur for
    /// validated instances).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Global path index of local path 0.
    #[inline]
    pub fn start(&self) -> usize {
        self.start
    }
}

/// The full per-phase rate structure: one block per commodity.
///
/// Mass is conserved per commodity (columns of the generator sum to
/// zero), and exit rates never exceed 1 because `Σ_Q σ_PQ = 1` and
/// `µ ≤ 1` — the property that lets uniformization use `Λ = 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRates {
    blocks: Vec<CommodityRates>,
    num_paths: usize,
    /// Scratch for sampling weights during [`ReroutingPolicy::phase_rates_into`],
    /// sized to the largest commodity. Kept here so refilling the rates
    /// allocates nothing.
    scratch: Vec<f64>,
}

impl PhaseRates {
    /// An all-zero rate structure with blocks shaped for `instance`.
    ///
    /// Pair with [`ReroutingPolicy::phase_rates_into`] to rebuild the
    /// rates every phase without reallocating the `n × n` blocks.
    pub fn for_instance(instance: &Instance) -> Self {
        let blocks = (0..instance.num_commodities())
            .map(|i| {
                let range = instance.commodity_paths(i);
                let n = range.len();
                CommodityRates {
                    start: range.start,
                    n,
                    c: vec![0.0; n * n],
                    exit: vec![0.0; n],
                }
            })
            .collect();
        PhaseRates {
            blocks,
            num_paths: instance.num_paths(),
            scratch: vec![0.0; instance.max_commodity_path_count()],
        }
    }

    /// Applies the generator: `out = A f`, i.e.
    /// `out_P = Σ_Q (f_Q c_QP − f_P c_PQ)`.
    ///
    /// Traverses each block row-major (sequential reads of the rate
    /// matrix, accumulating into the small per-block output slice) —
    /// on large commodities this is memory-bandwidth bound instead of
    /// latency bound, unlike the textbook column-per-output loop.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from the instance's path count.
    pub fn apply(&self, f: &[f64], out: &mut [f64]) {
        assert_eq!(f.len(), self.num_paths);
        assert_eq!(out.len(), self.num_paths);
        for b in &self.blocks {
            let fs = &f[b.start..b.start + b.n];
            let os = &mut out[b.start..b.start + b.n];
            // Outflow first, then accumulate inflow row by row.
            for (o, (&fq, &exit)) in os.iter_mut().zip(fs.iter().zip(&b.exit)) {
                *o = -fq * exit;
            }
            for (p, &fp) in fs.iter().enumerate() {
                if fp == 0.0 {
                    continue;
                }
                let row = &b.c[p * b.n..(p + 1) * b.n];
                for (o, &c) in os.iter_mut().zip(row) {
                    *o += fp * c;
                }
            }
        }
    }

    /// Maximum exit rate over all paths (the uniformization constant Λ).
    pub fn max_exit_rate(&self) -> f64 {
        self.blocks
            .iter()
            .flat_map(|b| b.exit.iter().copied())
            .fold(0.0, f64::max)
    }

    /// The commodity blocks.
    pub fn blocks(&self) -> &[CommodityRates] {
        &self.blocks
    }

    /// Total number of paths across blocks.
    pub fn num_paths(&self) -> usize {
        self.num_paths
    }
}

/// A rerouting policy: produces the per-phase rate structure from the
/// bulletin board.
///
/// The provided implementation is [`SmoothPolicy`]; best response does
/// not fit this trait (its "rates" are unbounded) and lives in
/// [`crate::best_response`].
pub trait ReroutingPolicy: std::fmt::Debug {
    /// Computes `c_PQ = σ_PQ(f̂) µ(ℓ̂_P, ℓ̂_Q)` for all path pairs into
    /// a pre-shaped rate structure (see [`PhaseRates::for_instance`]),
    /// allocating nothing.
    ///
    /// # Panics
    ///
    /// May panic if `rates` was not shaped for `instance`.
    fn phase_rates_into(&self, instance: &Instance, board: &BulletinBoard, rates: &mut PhaseRates);

    /// Computes the rates into a freshly allocated [`PhaseRates`].
    ///
    /// Convenience wrapper around [`ReroutingPolicy::phase_rates_into`];
    /// the engine's phase loop uses the `_into` form.
    fn phase_rates(&self, instance: &Instance, board: &BulletinBoard) -> PhaseRates {
        let mut rates = PhaseRates::for_instance(instance);
        self.phase_rates_into(instance, board, &mut rates);
        rates
    }

    /// The α-smoothness constant of the migration rule, if smooth.
    fn smoothness(&self) -> Option<f64>;

    /// Human-readable policy name for reports.
    fn name(&self) -> String;
}

/// A two-step policy: sample with `S`, migrate with `M` (§2.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoothPolicy<S, M> {
    sampling: S,
    migration: M,
}

impl<S: SamplingRule, M: MigrationRule> SmoothPolicy<S, M> {
    /// Combines a sampling and a migration rule.
    pub fn new(sampling: S, migration: M) -> Self {
        SmoothPolicy {
            sampling,
            migration,
        }
    }

    /// The sampling rule.
    pub fn sampling(&self) -> &S {
        &self.sampling
    }

    /// The migration rule.
    pub fn migration(&self) -> &M {
        &self.migration
    }
}

impl<S: SamplingRule, M: MigrationRule> ReroutingPolicy for SmoothPolicy<S, M> {
    fn phase_rates_into(&self, instance: &Instance, board: &BulletinBoard, rates: &mut PhaseRates) {
        assert_eq!(
            rates.num_paths,
            instance.num_paths(),
            "rate structure shaped for a different instance"
        );
        let lat = board.path_latencies();
        let PhaseRates {
            blocks, scratch, ..
        } = rates;
        for (i, b) in blocks.iter_mut().enumerate() {
            let (start, n) = (b.start, b.n);
            let weights = &mut scratch[..n];
            self.sampling.fill_weights(instance, board, i, weights);
            for p in 0..n {
                let lp = lat[start + p];
                let mut row_sum = 0.0;
                let row = &mut b.c[p * n..(p + 1) * n];
                for (q, (slot, w)) in row.iter_mut().zip(weights.iter()).enumerate() {
                    if p == q {
                        *slot = 0.0;
                        continue;
                    }
                    let rate = w * self.migration.probability(lp, lat[start + q]);
                    *slot = rate;
                    row_sum += rate;
                }
                b.exit[p] = row_sum;
            }
        }
    }

    fn smoothness(&self) -> Option<f64> {
        self.migration.smoothness()
    }

    fn name(&self) -> String {
        format!("{}+{}", self.sampling.name(), self.migration.name())
    }
}

/// The replicator dynamics slowed down for staleness: proportional
/// sampling + linear migration (§2.2; Theorem 7).
pub fn replicator(
    instance: &Instance,
) -> SmoothPolicy<crate::sampling::Proportional, crate::migration::Linear> {
    SmoothPolicy::new(
        crate::sampling::Proportional,
        crate::migration::Linear::new(instance.latency_upper_bound().max(f64::MIN_POSITIVE)),
    )
}

/// Uniform sampling + linear migration (Theorem 6).
pub fn uniform_linear(
    instance: &Instance,
) -> SmoothPolicy<crate::sampling::Uniform, crate::migration::Linear> {
    SmoothPolicy::new(
        crate::sampling::Uniform,
        crate::migration::Linear::new(instance.latency_upper_bound().max(f64::MIN_POSITIVE)),
    )
}

/// The fast elasticity-based dynamics of the follow-up work \[10\]:
/// proportional sampling + relative-slack migration.
///
/// **Not** α-smooth — outside the paper's convergence guarantee. On
/// instances with positive latencies it converges much faster than the
/// slowed-down replicator (its speed depends on elasticity, not
/// slope); on instances with vanishing latencies it degenerates into
/// better response. Exercised by experiment E8.
pub fn fast_relative_slack(
) -> SmoothPolicy<crate::sampling::Proportional, crate::migration::RelativeSlack> {
    SmoothPolicy::new(
        crate::sampling::Proportional,
        crate::migration::RelativeSlack,
    )
}

/// Smoothed best response: logit sampling + linear migration (§2.2).
pub fn smoothed_best_response(
    instance: &Instance,
    c: f64,
) -> SmoothPolicy<crate::sampling::Logit, crate::migration::Linear> {
    SmoothPolicy::new(
        crate::sampling::Logit::new(c),
        crate::migration::Linear::new(instance.latency_upper_bound().max(f64::MIN_POSITIVE)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migration::{BetterResponse, Linear, ScaledLinear};
    use crate::sampling::{Proportional, Uniform};
    use wardrop_net::builders;
    use wardrop_net::flow::FlowVec;

    fn pigou_board(values: Vec<f64>) -> (wardrop_net::Instance, BulletinBoard) {
        let inst = builders::pigou();
        let f = FlowVec::from_values(&inst, values).unwrap();
        let board = BulletinBoard::post(&inst, &f, 0.0);
        (inst, board)
    }

    #[test]
    fn rates_are_selfish_only() {
        // ℓ₁ = 0.2 < ℓ₂ = 1: flow may only move 2 → 1.
        let (inst, board) = pigou_board(vec![0.2, 0.8]);
        let rates = uniform_linear(&inst).phase_rates(&inst, &board);
        let b = &rates.blocks()[0];
        assert_eq!(b.rate(0, 1), 0.0);
        assert!(b.rate(1, 0) > 0.0);
    }

    #[test]
    fn rate_value_matches_hand_computation() {
        // Uniform sampling: σ = ½ each; linear migration with
        // ℓmax = 1: µ(1, 0.2) = 0.8. So c_{2→1} = 0.4.
        let (inst, board) = pigou_board(vec![0.2, 0.8]);
        let rates = uniform_linear(&inst).phase_rates(&inst, &board);
        let b = &rates.blocks()[0];
        assert!((b.rate(1, 0) - 0.4).abs() < 1e-12);
        assert!((b.exit_rate(1) - 0.4).abs() < 1e-12);
        assert_eq!(b.exit_rate(0), 0.0);
    }

    #[test]
    fn replicator_rates_scale_with_target_flow() {
        let (inst, board) = pigou_board(vec![0.2, 0.8]);
        let rates = replicator(&inst).phase_rates(&inst, &board);
        let b = &rates.blocks()[0];
        // σ(path 0) = f̂₀ = 0.2; µ(1, 0.2) = 0.8 ⇒ c = 0.16.
        assert!((b.rate(1, 0) - 0.16).abs() < 1e-12);
    }

    #[test]
    fn apply_conserves_mass_per_commodity() {
        let inst = builders::braess();
        let f = FlowVec::uniform(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let rates = uniform_linear(&inst).phase_rates(&inst, &board);
        let mut out = vec![0.0; inst.num_paths()];
        rates.apply(f.values(), &mut out);
        let total: f64 = out.iter().sum();
        assert!(total.abs() < 1e-12, "mass must be conserved, got {total}");
    }

    #[test]
    fn apply_moves_mass_toward_cheaper_paths() {
        let (inst, board) = pigou_board(vec![0.2, 0.8]);
        let rates = uniform_linear(&inst).phase_rates(&inst, &board);
        let mut out = vec![0.0; 2];
        rates.apply(&[0.2, 0.8], &mut out);
        assert!(out[0] > 0.0);
        assert!(out[1] < 0.0);
    }

    #[test]
    fn exit_rates_bounded_by_one() {
        // Even with better response (µ ∈ {0,1}), Σ_Q σ_Q µ ≤ 1.
        let (inst, board) = pigou_board(vec![0.2, 0.8]);
        let policy = SmoothPolicy::new(Uniform, BetterResponse);
        let rates = policy.phase_rates(&inst, &board);
        assert!(rates.max_exit_rate() <= 1.0 + 1e-12);
    }

    #[test]
    fn named_policies_report_smoothness() {
        let inst = builders::pigou();
        assert!(uniform_linear(&inst).smoothness().is_some());
        assert!(replicator(&inst).smoothness().is_some());
        let br = SmoothPolicy::new(Uniform, BetterResponse);
        assert_eq!(br.smoothness(), None);
        let sl = SmoothPolicy::new(Proportional, ScaledLinear::new(2.0));
        assert_eq!(sl.smoothness(), Some(2.0));
    }

    #[test]
    fn policy_names_compose() {
        let inst = builders::pigou();
        let name = uniform_linear(&inst).name();
        assert!(name.contains("uniform"));
        assert!(name.contains("linear"));
    }

    #[test]
    fn wardrop_equilibrium_has_zero_rates() {
        let (inst, board) = pigou_board(vec![1.0, 0.0]);
        // At Pigou equilibrium both links show latency 1 on the board.
        let rates = uniform_linear(&inst).phase_rates(&inst, &board);
        assert_eq!(rates.max_exit_rate(), 0.0);
        let lin = Linear::new(1.0);
        assert_eq!(lin.probability(1.0, 1.0), 0.0);
    }

    #[test]
    fn phase_rates_into_matches_fresh_build_after_reuse() {
        let inst = builders::multi_commodity_grid(2, 3, 5);
        let f = FlowVec::uniform(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let policy = uniform_linear(&inst);
        let fresh = policy.phase_rates(&inst, &board);
        let mut reused = PhaseRates::for_instance(&inst);
        // Dirty the buffers with a different board, then refill.
        let g = FlowVec::concentrated(&inst);
        policy.phase_rates_into(&inst, &BulletinBoard::post(&inst, &g, 0.0), &mut reused);
        policy.phase_rates_into(&inst, &board, &mut reused);
        for (a, b) in fresh.blocks().iter().zip(reused.blocks()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn apply_matches_column_major_reference() {
        let inst = builders::multi_commodity_grid(3, 3, 9);
        let f = FlowVec::uniform(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let rates = uniform_linear(&inst).phase_rates(&inst, &board);
        let mut fast = vec![0.0; inst.num_paths()];
        rates.apply(f.values(), &mut fast);
        // Textbook column-per-output evaluation.
        let mut reference = vec![0.0; inst.num_paths()];
        for b in rates.blocks() {
            let n = b.len();
            let fs = &f.values()[b.start()..b.start() + n];
            for q in 0..n {
                let mut acc = 0.0;
                for (p, fp) in fs.iter().enumerate() {
                    acc += fp * b.rate(p, q);
                }
                reference[b.start() + q] = acc - fs[q] * b.exit_rate(q);
            }
        }
        for (a, b) in fast.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-14, "{a} vs {b}");
        }
    }

    #[test]
    fn multi_commodity_blocks_are_independent() {
        let inst = builders::multi_commodity_grid(2, 2, 3);
        let f = FlowVec::uniform(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let rates = uniform_linear(&inst).phase_rates(&inst, &board);
        assert_eq!(rates.blocks().len(), 2);
        let mut out = vec![0.0; inst.num_paths()];
        rates.apply(f.values(), &mut out);
        // Mass conserved within each commodity separately.
        for i in 0..inst.num_commodities() {
            let r = inst.commodity_paths(i);
            let s: f64 = out[r].iter().sum();
            assert!(s.abs() < 1e-12);
        }
    }
}
