//! Rerouting policies and their per-phase migration-rate structure.
//!
//! A (smooth) rerouting policy combines a [sampling
//! rule](crate::sampling) with a [migration rule](crate::migration).
//! Because both steps read only the bulletin board, the per-unit-flow
//! migration rate from path `P` to path `Q`,
//!
//! ```text
//! c_PQ = σ_PQ(f̂) · µ(ℓ̂_P, ℓ̂_Q),
//! ```
//!
//! is *constant within a phase*. The fluid-limit ODE (paper Eq. (3))
//! restricted to one phase is therefore the linear system `ḟ = A f`
//! with `A_QP = c_PQ` off-diagonal — the generator of a continuous-time
//! Markov chain on paths, block-diagonal per commodity. [`PhaseRates`]
//! represents this generator; the integrators in [`crate::integrator`]
//! exploit its structure.
//!
//! For the stock policy zoo the generator is never materialised: every
//! sampling rule is origin-independent and every stock migration rule
//! has a [separable closed form](crate::kernel::SeparableKernel), so
//! [`PhaseRates`] stores the factors (sampling weights, board
//! latencies, a latency-sorted permutation) and evaluates products and
//! exit rates through prefix sums — O(P log P) per phase and O(P)
//! memory instead of the dense Θ(P²). Dense `n × n` blocks are
//! allocated lazily, only for genuinely non-separable custom rules
//! (or when forced via [`PhaseRates::dense_for_instance`], which the
//! bench baseline uses as an independent oracle).

use crate::board::BulletinBoard;
use crate::kernel::{self, SeparableKernel};
use crate::migration::MigrationRule;
use crate::sampling::SamplingRule;
use wardrop_net::instance::Instance;

/// Storage mode of one commodity block.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RateMode {
    /// Unfilled: the all-zero generator (fresh
    /// [`PhaseRates::for_instance`]).
    Zero,
    /// Dense row-major `n × n` rate matrix.
    Dense,
    /// Matrix-free separable factors.
    Separable(SeparableKernel),
}

/// Per-commodity migration rates for one phase — either a dense
/// `n × n` block or the matrix-free separable factors.
///
/// Equality compares the active *representation* (two blocks holding
/// the same generator in different representations are not `==`); use
/// [`CommodityRates::rate`] to compare by value.
#[derive(Debug, Clone, PartialEq)]
pub struct CommodityRates {
    /// Global path index of the commodity's first path.
    start: usize,
    /// Number of paths in the commodity.
    n: usize,
    /// Active representation.
    mode: RateMode,
    /// Row-major `n × n` rates: `c[p * n + q]` is the rate from local
    /// path `p` to local path `q`; diagonal entries are zero. **Empty
    /// until the first dense fill** — the separable path never
    /// allocates it.
    c: Vec<f64>,
    /// Row sums: total exit rate per local path (both representations).
    exit: Vec<f64>,
    /// Separable factor: sampling weights `σ_q` (empty in dense mode).
    weights: Vec<f64>,
    /// Separable factor: board latencies `ℓ̂_p` (empty in dense mode).
    latencies: Vec<f64>,
    /// Permutation sorting local paths by board latency ascending.
    order: Vec<u32>,
    /// Maximum exit rate, tracked during the fill so the
    /// uniformization constant Λ needs no extra sweep.
    max_exit: f64,
}

impl CommodityRates {
    /// Rate from local path `p` to local path `q`.
    ///
    /// O(1) in both representations: dense blocks read the matrix,
    /// matrix-free blocks evaluate `σ_q · µ(ℓ̂_p, ℓ̂_q)` on demand.
    #[inline]
    pub fn rate(&self, p: usize, q: usize) -> f64 {
        match self.mode {
            RateMode::Zero => 0.0,
            RateMode::Dense => self.c[p * self.n + q],
            RateMode::Separable(k) => {
                if p == q {
                    0.0
                } else {
                    self.weights[q] * k.probability(self.latencies[p], self.latencies[q])
                }
            }
        }
    }

    /// Total exit rate of local path `p` (`Σ_q c_pq`).
    #[inline]
    pub fn exit_rate(&self, p: usize) -> f64 {
        self.exit[p]
    }

    /// Number of paths in this commodity.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns true if the commodity has no paths (cannot occur for
    /// validated instances).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Global path index of local path 0.
    #[inline]
    pub fn start(&self) -> usize {
        self.start
    }

    /// The separable kernel backing this block, if it is matrix-free.
    #[inline]
    pub fn kernel(&self) -> Option<SeparableKernel> {
        match self.mode {
            RateMode::Separable(k) => Some(k),
            _ => None,
        }
    }
}

/// The full per-phase rate structure: one block per commodity.
///
/// Mass is conserved per commodity (columns of the generator sum to
/// zero), and exit rates never exceed 1 because `Σ_Q σ_PQ = 1` and
/// `µ ≤ 1` — the property that lets uniformization use `Λ = 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRates {
    blocks: Vec<CommodityRates>,
    num_paths: usize,
    /// Scratch for sampling weights during the dense fill, sized to
    /// the largest commodity (the separable fill stores weights in the
    /// block itself). Kept here so refilling allocates nothing.
    scratch: Vec<f64>,
    /// When set, [`ReroutingPolicy::phase_rates_into`] must materialise
    /// dense blocks even for separable policies (bench oracle mode).
    dense_only: bool,
}

impl PhaseRates {
    /// An all-zero rate structure with blocks shaped for `instance`.
    ///
    /// Allocates **O(P)**: exit-rate vectors and (on first fill) the
    /// separable factor buffers. Dense `n × n` blocks are only
    /// allocated if a fill actually needs them — a policy whose
    /// migration rule advertises a
    /// [`SeparableKernel`] never pays
    /// the Θ(P²) memory (for `grid_network(8, 8, _)` that is ~94 MB of
    /// matrix that no longer exists).
    ///
    /// Pair with [`ReroutingPolicy::phase_rates_into`] to rebuild the
    /// rates every phase without reallocating.
    pub fn for_instance(instance: &Instance) -> Self {
        Self::shaped(instance, false)
    }

    /// As [`PhaseRates::for_instance`], but forces every fill to
    /// materialise the dense Θ(P²) rate matrix even when the policy is
    /// separable.
    ///
    /// This is the frozen dense reference the benches and property
    /// tests compare the matrix-free path against
    /// (see [`ReroutingPolicy::phase_rates_dense`]).
    pub fn dense_for_instance(instance: &Instance) -> Self {
        Self::shaped(instance, true)
    }

    fn shaped(instance: &Instance, dense_only: bool) -> Self {
        let blocks = (0..instance.num_commodities())
            .map(|i| {
                let range = instance.commodity_paths(i);
                let n = range.len();
                CommodityRates {
                    start: range.start,
                    n,
                    mode: RateMode::Zero,
                    c: Vec::new(),
                    exit: vec![0.0; n],
                    weights: Vec::new(),
                    latencies: Vec::new(),
                    order: Vec::new(),
                    max_exit: 0.0,
                }
            })
            .collect();
        PhaseRates {
            blocks,
            num_paths: instance.num_paths(),
            scratch: vec![0.0; instance.max_commodity_path_count()],
            dense_only,
        }
    }

    /// Applies the generator: `out = A f`, i.e.
    /// `out_P = Σ_Q (f_Q c_QP − f_P c_PQ)`.
    ///
    /// Matrix-free blocks are evaluated in O(n) by a monotone
    /// two-pointer sweep over the latency-sorted order (see
    /// [`crate::kernel`]); dense blocks stream row-major (sequential
    /// reads of the rate matrix, accumulating into the small per-block
    /// output slice), which on large commodities is memory-bandwidth
    /// bound instead of latency bound.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from the instance's path count.
    pub fn apply(&self, f: &[f64], out: &mut [f64]) {
        assert_eq!(f.len(), self.num_paths);
        assert_eq!(out.len(), self.num_paths);
        for b in &self.blocks {
            let fs = &f[b.start..b.start + b.n];
            let os = &mut out[b.start..b.start + b.n];
            match b.mode {
                RateMode::Zero => os.fill(0.0),
                RateMode::Separable(k) => {
                    kernel::apply_block(k, &b.order, &b.weights, &b.latencies, &b.exit, fs, os);
                }
                RateMode::Dense => {
                    // Outflow first, then accumulate inflow row by row.
                    for (o, (&fq, &exit)) in os.iter_mut().zip(fs.iter().zip(&b.exit)) {
                        *o = -fq * exit;
                    }
                    for (p, &fp) in fs.iter().enumerate() {
                        if fp == 0.0 {
                            continue;
                        }
                        let row = &b.c[p * b.n..(p + 1) * b.n];
                        for (o, &c) in os.iter_mut().zip(row) {
                            *o += fp * c;
                        }
                    }
                }
            }
        }
    }

    /// Maximum exit rate over all paths (the uniformization constant
    /// Λ). Tracked during the fill — for matrix-free blocks it falls
    /// out of the sorted-extreme sweep — so this is O(#commodities).
    pub fn max_exit_rate(&self) -> f64 {
        self.blocks.iter().map(|b| b.max_exit).fold(0.0, f64::max)
    }

    /// The commodity blocks.
    pub fn blocks(&self) -> &[CommodityRates] {
        &self.blocks
    }

    /// Total number of paths across blocks.
    pub fn num_paths(&self) -> usize {
        self.num_paths
    }

    /// Total number of dense matrix elements currently allocated
    /// (`Σ nᵢ²` after a dense fill, 0 while every block is
    /// matrix-free). The regression tests pin the separable path to 0.
    pub fn dense_elements(&self) -> usize {
        self.blocks.iter().map(|b| b.c.len()).sum()
    }

    /// True when no block holds a dense matrix — the O(P log P)
    /// matrix-free representation is fully in effect.
    pub fn is_matrix_free(&self) -> bool {
        self.blocks
            .iter()
            .all(|b| !matches!(b.mode, RateMode::Dense))
    }
}

/// A rerouting policy: produces the per-phase rate structure from the
/// bulletin board.
///
/// The provided implementation is [`SmoothPolicy`]; best response does
/// not fit this trait (its "rates" are unbounded) and lives in
/// [`crate::best_response`].
pub trait ReroutingPolicy: std::fmt::Debug {
    /// Computes the generator `c_PQ = σ_PQ(f̂) µ(ℓ̂_P, ℓ̂_Q)` into a
    /// pre-shaped rate structure (see [`PhaseRates::for_instance`]),
    /// allocating nothing in steady state. Separable policies fill the
    /// matrix-free representation; others fill dense blocks (allocated
    /// lazily on the first such fill).
    ///
    /// # Panics
    ///
    /// May panic if `rates` was not shaped for `instance`.
    fn phase_rates_into(&self, instance: &Instance, board: &BulletinBoard, rates: &mut PhaseRates);

    /// Computes the rates into a freshly allocated [`PhaseRates`].
    ///
    /// Convenience wrapper around [`ReroutingPolicy::phase_rates_into`];
    /// the engine's phase loop uses the `_into` form.
    fn phase_rates(&self, instance: &Instance, board: &BulletinBoard) -> PhaseRates {
        let mut rates = PhaseRates::for_instance(instance);
        self.phase_rates_into(instance, board, &mut rates);
        rates
    }

    /// Computes the rates into a dense Θ(P²) structure, bypassing the
    /// matrix-free path — the independent oracle the benches and
    /// property tests compare against
    /// (see [`PhaseRates::dense_for_instance`]).
    fn phase_rates_dense(&self, instance: &Instance, board: &BulletinBoard) -> PhaseRates {
        let mut rates = PhaseRates::dense_for_instance(instance);
        self.phase_rates_into(instance, board, &mut rates);
        rates
    }

    /// The α-smoothness constant of the migration rule, if smooth.
    fn smoothness(&self) -> Option<f64>;

    /// Human-readable policy name for reports.
    fn name(&self) -> String;
}

/// A two-step policy: sample with `S`, migrate with `M` (§2.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoothPolicy<S, M> {
    sampling: S,
    migration: M,
}

impl<S: SamplingRule, M: MigrationRule> SmoothPolicy<S, M> {
    /// Combines a sampling and a migration rule.
    pub fn new(sampling: S, migration: M) -> Self {
        SmoothPolicy {
            sampling,
            migration,
        }
    }

    /// The sampling rule.
    pub fn sampling(&self) -> &S {
        &self.sampling
    }

    /// The migration rule.
    pub fn migration(&self) -> &M {
        &self.migration
    }

    /// The separable kernel this policy's rate fill will use, if both
    /// halves opt in ([`SamplingRule::target_separable`] and
    /// [`MigrationRule::kernel`]).
    pub fn separable_kernel(&self) -> Option<SeparableKernel> {
        if self.sampling.target_separable() {
            self.migration.kernel()
        } else {
            None
        }
    }

    /// Fills one commodity block with the matrix-free factors:
    /// sampling weights, board latencies, the latency-sorted
    /// permutation, and the prefix-sum exit rates.
    fn fill_separable(
        &self,
        kernel: SeparableKernel,
        instance: &Instance,
        board: &BulletinBoard,
        commodity: usize,
        b: &mut CommodityRates,
    ) {
        let (start, n) = (b.start, b.n);
        b.weights.resize(n, 0.0);
        self.sampling
            .fill_weights(instance, board, commodity, &mut b.weights);
        b.latencies.resize(n, 0.0);
        b.latencies
            .copy_from_slice(&board.path_latencies()[start..start + n]);
        b.order.clear();
        b.order.extend(0..n as u32);
        let CommodityRates {
            order,
            weights,
            latencies,
            exit,
            ..
        } = b;
        order.sort_unstable_by(|&x, &y| latencies[x as usize].total_cmp(&latencies[y as usize]));
        b.max_exit = kernel::fill_exit_rates(kernel, order, weights, latencies, exit);
        b.mode = RateMode::Separable(kernel);
    }

    /// Fills one commodity block densely, allocating its `n × n`
    /// matrix on the first dense fill.
    fn fill_dense(
        &self,
        instance: &Instance,
        board: &BulletinBoard,
        commodity: usize,
        b: &mut CommodityRates,
        scratch: &mut [f64],
    ) {
        let lat = board.path_latencies();
        let (start, n) = (b.start, b.n);
        if b.c.len() != n * n {
            b.c.resize(n * n, 0.0);
        }
        let weights = &mut scratch[..n];
        self.sampling
            .fill_weights(instance, board, commodity, weights);
        let mut max_exit = 0.0_f64;
        for p in 0..n {
            let lp = lat[start + p];
            let mut row_sum = 0.0;
            let row = &mut b.c[p * n..(p + 1) * n];
            for (q, (slot, w)) in row.iter_mut().zip(weights.iter()).enumerate() {
                if p == q {
                    *slot = 0.0;
                    continue;
                }
                let rate = w * self.migration.probability(lp, lat[start + q]);
                *slot = rate;
                row_sum += rate;
            }
            b.exit[p] = row_sum;
            max_exit = max_exit.max(row_sum);
        }
        b.max_exit = max_exit;
        b.mode = RateMode::Dense;
    }
}

impl<S: SamplingRule, M: MigrationRule> ReroutingPolicy for SmoothPolicy<S, M> {
    fn phase_rates_into(&self, instance: &Instance, board: &BulletinBoard, rates: &mut PhaseRates) {
        assert_eq!(
            rates.num_paths,
            instance.num_paths(),
            "rate structure shaped for a different instance"
        );
        let kernel = if rates.dense_only {
            None
        } else {
            self.separable_kernel()
        };
        let PhaseRates {
            blocks, scratch, ..
        } = rates;
        for (i, b) in blocks.iter_mut().enumerate() {
            match kernel {
                Some(k) => self.fill_separable(k, instance, board, i, b),
                None => self.fill_dense(instance, board, i, b, scratch),
            }
        }
    }

    fn smoothness(&self) -> Option<f64> {
        self.migration.smoothness()
    }

    fn name(&self) -> String {
        format!("{}+{}", self.sampling.name(), self.migration.name())
    }
}

/// The replicator dynamics slowed down for staleness: proportional
/// sampling + linear migration (§2.2; Theorem 7).
pub fn replicator(
    instance: &Instance,
) -> SmoothPolicy<crate::sampling::Proportional, crate::migration::Linear> {
    SmoothPolicy::new(
        crate::sampling::Proportional,
        crate::migration::Linear::new(instance.latency_upper_bound().max(f64::MIN_POSITIVE)),
    )
}

/// Uniform sampling + linear migration (Theorem 6).
pub fn uniform_linear(
    instance: &Instance,
) -> SmoothPolicy<crate::sampling::Uniform, crate::migration::Linear> {
    SmoothPolicy::new(
        crate::sampling::Uniform,
        crate::migration::Linear::new(instance.latency_upper_bound().max(f64::MIN_POSITIVE)),
    )
}

/// The fast elasticity-based dynamics of the follow-up work \[10\]:
/// proportional sampling + relative-slack migration.
///
/// **Not** α-smooth — outside the paper's convergence guarantee. On
/// instances with positive latencies it converges much faster than the
/// slowed-down replicator (its speed depends on elasticity, not
/// slope); on instances with vanishing latencies it degenerates into
/// better response. Exercised by experiment E8.
pub fn fast_relative_slack(
) -> SmoothPolicy<crate::sampling::Proportional, crate::migration::RelativeSlack> {
    SmoothPolicy::new(
        crate::sampling::Proportional,
        crate::migration::RelativeSlack,
    )
}

/// The full stock policy zoo: every shipped sampling × migration
/// combination (3 × 4 = 12), boxed for uniform treatment.
///
/// One definition shared by the matrix-free/dense agreement tests, the
/// `bench_report` `policy_zoo` section and CI's v3 assertion, so their
/// coverage cannot silently diverge. `lmax` parameterises the linear
/// rule (use the instance's latency upper bound); the scaled-linear
/// rule uses `α = 4/ℓmax` so its clamp genuinely saturates on gaps
/// beyond `ℓmax/4`, exercising both regions of the
/// [`ClampedLinear`](crate::kernel::SeparableKernel::ClampedLinear)
/// kernel.
///
/// # Panics
///
/// Panics if `lmax` is not positive and finite.
pub fn stock_policy_zoo(lmax: f64) -> Vec<Box<dyn ReroutingPolicy>> {
    use crate::migration::{BetterResponse, Linear, RelativeSlack, ScaledLinear};
    use crate::sampling::{Logit, Proportional, Uniform};
    let alpha = 4.0 / lmax;
    vec![
        Box::new(SmoothPolicy::new(Uniform, Linear::new(lmax))),
        Box::new(SmoothPolicy::new(Uniform, ScaledLinear::new(alpha))),
        Box::new(SmoothPolicy::new(Uniform, BetterResponse)),
        Box::new(SmoothPolicy::new(Uniform, RelativeSlack)),
        Box::new(SmoothPolicy::new(Proportional, Linear::new(lmax))),
        Box::new(SmoothPolicy::new(Proportional, ScaledLinear::new(alpha))),
        Box::new(SmoothPolicy::new(Proportional, BetterResponse)),
        Box::new(SmoothPolicy::new(Proportional, RelativeSlack)),
        Box::new(SmoothPolicy::new(Logit::new(2.0), Linear::new(lmax))),
        Box::new(SmoothPolicy::new(Logit::new(2.0), ScaledLinear::new(alpha))),
        Box::new(SmoothPolicy::new(Logit::new(2.0), BetterResponse)),
        Box::new(SmoothPolicy::new(Logit::new(2.0), RelativeSlack)),
    ]
}

/// Smoothed best response: logit sampling + linear migration (§2.2).
pub fn smoothed_best_response(
    instance: &Instance,
    c: f64,
) -> SmoothPolicy<crate::sampling::Logit, crate::migration::Linear> {
    SmoothPolicy::new(
        crate::sampling::Logit::new(c),
        crate::migration::Linear::new(instance.latency_upper_bound().max(f64::MIN_POSITIVE)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migration::{BetterResponse, Linear, ScaledLinear};
    use crate::sampling::{Proportional, Uniform};
    use wardrop_net::builders;
    use wardrop_net::flow::FlowVec;

    fn pigou_board(values: Vec<f64>) -> (wardrop_net::Instance, BulletinBoard) {
        let inst = builders::pigou();
        let f = FlowVec::from_values(&inst, values).unwrap();
        let board = BulletinBoard::post(&inst, &f, 0.0);
        (inst, board)
    }

    #[test]
    fn rates_are_selfish_only() {
        // ℓ₁ = 0.2 < ℓ₂ = 1: flow may only move 2 → 1.
        let (inst, board) = pigou_board(vec![0.2, 0.8]);
        let rates = uniform_linear(&inst).phase_rates(&inst, &board);
        let b = &rates.blocks()[0];
        assert_eq!(b.rate(0, 1), 0.0);
        assert!(b.rate(1, 0) > 0.0);
    }

    #[test]
    fn rate_value_matches_hand_computation() {
        // Uniform sampling: σ = ½ each; linear migration with
        // ℓmax = 1: µ(1, 0.2) = 0.8. So c_{2→1} = 0.4.
        let (inst, board) = pigou_board(vec![0.2, 0.8]);
        let rates = uniform_linear(&inst).phase_rates(&inst, &board);
        let b = &rates.blocks()[0];
        assert!((b.rate(1, 0) - 0.4).abs() < 1e-12);
        assert!((b.exit_rate(1) - 0.4).abs() < 1e-12);
        assert_eq!(b.exit_rate(0), 0.0);
    }

    #[test]
    fn replicator_rates_scale_with_target_flow() {
        let (inst, board) = pigou_board(vec![0.2, 0.8]);
        let rates = replicator(&inst).phase_rates(&inst, &board);
        let b = &rates.blocks()[0];
        // σ(path 0) = f̂₀ = 0.2; µ(1, 0.2) = 0.8 ⇒ c = 0.16.
        assert!((b.rate(1, 0) - 0.16).abs() < 1e-12);
    }

    #[test]
    fn apply_conserves_mass_per_commodity() {
        let inst = builders::braess();
        let f = FlowVec::uniform(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let rates = uniform_linear(&inst).phase_rates(&inst, &board);
        let mut out = vec![0.0; inst.num_paths()];
        rates.apply(f.values(), &mut out);
        let total: f64 = out.iter().sum();
        assert!(total.abs() < 1e-12, "mass must be conserved, got {total}");
    }

    #[test]
    fn apply_moves_mass_toward_cheaper_paths() {
        let (inst, board) = pigou_board(vec![0.2, 0.8]);
        let rates = uniform_linear(&inst).phase_rates(&inst, &board);
        let mut out = vec![0.0; 2];
        rates.apply(&[0.2, 0.8], &mut out);
        assert!(out[0] > 0.0);
        assert!(out[1] < 0.0);
    }

    #[test]
    fn exit_rates_bounded_by_one() {
        // Even with better response (µ ∈ {0,1}), Σ_Q σ_Q µ ≤ 1.
        let (inst, board) = pigou_board(vec![0.2, 0.8]);
        let policy = SmoothPolicy::new(Uniform, BetterResponse);
        let rates = policy.phase_rates(&inst, &board);
        assert!(rates.max_exit_rate() <= 1.0 + 1e-12);
    }

    #[test]
    fn named_policies_report_smoothness() {
        let inst = builders::pigou();
        assert!(uniform_linear(&inst).smoothness().is_some());
        assert!(replicator(&inst).smoothness().is_some());
        let br = SmoothPolicy::new(Uniform, BetterResponse);
        assert_eq!(br.smoothness(), None);
        let sl = SmoothPolicy::new(Proportional, ScaledLinear::new(2.0));
        assert_eq!(sl.smoothness(), Some(2.0));
    }

    #[test]
    fn policy_names_compose() {
        let inst = builders::pigou();
        let name = uniform_linear(&inst).name();
        assert!(name.contains("uniform"));
        assert!(name.contains("linear"));
    }

    #[test]
    fn wardrop_equilibrium_has_zero_rates() {
        let (inst, board) = pigou_board(vec![1.0, 0.0]);
        // At Pigou equilibrium both links show latency 1 on the board.
        let rates = uniform_linear(&inst).phase_rates(&inst, &board);
        assert_eq!(rates.max_exit_rate(), 0.0);
        let lin = Linear::new(1.0);
        assert_eq!(lin.probability(1.0, 1.0), 0.0);
    }

    #[test]
    fn phase_rates_into_matches_fresh_build_after_reuse() {
        let inst = builders::multi_commodity_grid(2, 3, 5);
        let f = FlowVec::uniform(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let policy = uniform_linear(&inst);
        let fresh = policy.phase_rates(&inst, &board);
        let mut reused = PhaseRates::for_instance(&inst);
        // Dirty the buffers with a different board, then refill.
        let g = FlowVec::concentrated(&inst);
        policy.phase_rates_into(&inst, &BulletinBoard::post(&inst, &g, 0.0), &mut reused);
        policy.phase_rates_into(&inst, &board, &mut reused);
        for (a, b) in fresh.blocks().iter().zip(reused.blocks()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn apply_matches_column_major_reference() {
        let inst = builders::multi_commodity_grid(3, 3, 9);
        let f = FlowVec::uniform(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let rates = uniform_linear(&inst).phase_rates(&inst, &board);
        let mut fast = vec![0.0; inst.num_paths()];
        rates.apply(f.values(), &mut fast);
        // Textbook column-per-output evaluation over entry queries.
        let mut reference = vec![0.0; inst.num_paths()];
        for b in rates.blocks() {
            let n = b.len();
            let fs = &f.values()[b.start()..b.start() + n];
            for q in 0..n {
                let mut acc = 0.0;
                for (p, fp) in fs.iter().enumerate() {
                    acc += fp * b.rate(p, q);
                }
                reference[b.start() + q] = acc - fs[q] * b.exit_rate(q);
            }
        }
        for (a, b) in fast.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn multi_commodity_blocks_are_independent() {
        let inst = builders::multi_commodity_grid(2, 2, 3);
        let f = FlowVec::uniform(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let rates = uniform_linear(&inst).phase_rates(&inst, &board);
        assert_eq!(rates.blocks().len(), 2);
        let mut out = vec![0.0; inst.num_paths()];
        rates.apply(f.values(), &mut out);
        // Mass conserved within each commodity separately.
        for i in 0..inst.num_commodities() {
            let r = inst.commodity_paths(i);
            let s: f64 = out[r].iter().sum();
            assert!(s.abs() < 1e-12);
        }
    }

    /// Satellite regression: the separable path must allocate no dense
    /// matrix — O(P) factors only — while the dense oracle still
    /// materialises Σ nᵢ².
    #[test]
    fn separable_fill_allocates_no_dense_blocks() {
        let inst = builders::grid_network(6, 6, 7); // 252 paths
        let f = FlowVec::uniform(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let policy = uniform_linear(&inst);

        // Fresh shape: nothing dense, nothing separable yet.
        let mut rates = PhaseRates::for_instance(&inst);
        assert_eq!(rates.dense_elements(), 0);
        assert!(rates.is_matrix_free());

        // Separable fill: still zero dense elements, factors are O(P).
        policy.phase_rates_into(&inst, &board, &mut rates);
        assert_eq!(rates.dense_elements(), 0);
        assert!(rates.is_matrix_free());
        for b in rates.blocks() {
            assert!(b.kernel().is_some());
            assert_eq!(b.weights.len(), b.len());
            assert_eq!(b.latencies.len(), b.len());
            assert_eq!(b.order.len(), b.len());
        }

        // The dense oracle allocates the full matrix.
        let dense = policy.phase_rates_dense(&inst, &board);
        let expected: usize = (0..inst.num_commodities())
            .map(|i| inst.commodity_path_count(i).pow(2))
            .sum();
        assert_eq!(dense.dense_elements(), expected);
        assert!(!dense.is_matrix_free());

        // A non-separable custom rule falls back to dense lazily.
        #[derive(Debug, Clone, Copy)]
        struct Opaque(Linear);
        impl MigrationRule for Opaque {
            fn probability(&self, l_from: f64, l_to: f64) -> f64 {
                self.0.probability(l_from, l_to)
            }
            fn smoothness(&self) -> Option<f64> {
                self.0.smoothness()
            }
            fn name(&self) -> String {
                "opaque".to_string()
            }
        }
        let custom = SmoothPolicy::new(Uniform, Opaque(Linear::new(1.0)));
        assert!(custom.separable_kernel().is_none());
        let mut rates = PhaseRates::for_instance(&inst);
        assert_eq!(rates.dense_elements(), 0);
        custom.phase_rates_into(&inst, &board, &mut rates);
        assert_eq!(rates.dense_elements(), expected);
    }

    /// Every stock sampling × migration combination takes the
    /// matrix-free path.
    #[test]
    fn stock_policy_zoo_is_matrix_free() {
        let inst = builders::braess();
        let f = FlowVec::uniform(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let policies = stock_policy_zoo(inst.latency_upper_bound());
        assert_eq!(policies.len(), 12, "3 sampling × 4 migration rules");
        for p in &policies {
            let rates = p.phase_rates(&inst, &board);
            assert!(rates.is_matrix_free(), "{} fell back to dense", p.name());
            assert_eq!(rates.dense_elements(), 0, "{}", p.name());
            // …and the dense oracle agrees entry for entry.
            let dense = p.phase_rates_dense(&inst, &board);
            for (a, b) in rates.blocks().iter().zip(dense.blocks()) {
                for i in 0..a.len() {
                    assert!(
                        (a.exit_rate(i) - b.exit_rate(i)).abs() < 1e-12,
                        "{}",
                        p.name()
                    );
                    for j in 0..a.len() {
                        assert!(
                            (a.rate(i, j) - b.rate(i, j)).abs() < 1e-12,
                            "{}: c[{i}][{j}]",
                            p.name()
                        );
                    }
                }
            }
        }
    }
}
