//! Integrators for the within-phase linear ODE `ḟ = A f`.
//!
//! Within one bulletin-board phase the migration rates are frozen, so
//! the fluid-limit dynamics (paper Eq. (3)) is a *linear* ODE whose
//! matrix is a CTMC generator (block-diagonal per commodity, exit rates
//! ≤ 1). Three integrators are provided:
//!
//! * [`Integrator::Euler`] — explicit Euler, the textbook baseline;
//! * [`Integrator::Rk4`] — classical 4th-order Runge–Kutta;
//! * [`Integrator::Uniformization`] — *exact* evaluation of
//!   `exp(τA) f` via the uniformization series
//!   `e^{−Λτ} Σ_k (Λτ)^k / k! · M^k f` with `M = I + A/Λ`. Because exit
//!   rates never exceed 1, `Λ = max_P Σ_Q c_PQ ≤ 1` makes `M`
//!   (sub)stochastic, so the series is numerically stable and the
//!   truncation error is bounded by the Poisson tail. This gives
//!   machine-precision phase transitions at modest cost and is the
//!   default for experiments.

use serde::{Deserialize, Serialize};

use crate::policy::{ApplyScratch, PhaseRates};
use wardrop_pool::WorkerPool;

/// Integration scheme for one phase of length `τ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Integrator {
    /// Explicit Euler with fixed step `dt` (the last step is shortened
    /// to land exactly on the phase end).
    Euler {
        /// Step size; must be positive.
        dt: f64,
    },
    /// Classical RK4 with fixed step `dt`.
    Rk4 {
        /// Step size; must be positive.
        dt: f64,
    },
    /// Exact `exp(τA) f` via uniformization, truncated when the Poisson
    /// tail mass drops below `tol`.
    Uniformization {
        /// Series truncation tolerance (e.g. `1e-12`).
        tol: f64,
    },
}

impl Default for Integrator {
    fn default() -> Self {
        Integrator::Uniformization { tol: 1e-12 }
    }
}

/// Path count below which the pooled fused-axpy pass of
/// uniformization stays serial (memory-bound work; only large vectors
/// amortise a dispatch).
const PARALLEL_AXPY_MIN: usize = 8192;

/// Reusable integration buffers, so stepping a phase allocates nothing.
///
/// Buffers grow on first use and are retained across phases; a scratch
/// can be shared between integrator variants (each uses a subset).
#[derive(Debug, Clone, Default)]
pub struct IntegratorScratch {
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    tmp: Vec<f64>,
    /// Staging for the pooled generator apply (sorted-position values
    /// and chunk bounds); unused in serial mode.
    apply: ApplyScratch,
    /// Equal-chunk bounds for the pooled axpy passes; unused in serial
    /// mode.
    axpy_bounds: Vec<usize>,
}

impl IntegratorScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch with all buffers pre-sized for `n` paths, so even the
    /// first phase allocates nothing.
    pub fn for_len(n: usize) -> Self {
        let mut s = Self::default();
        s.resize(n);
        s
    }

    fn resize(&mut self, n: usize) {
        self.k1.resize(n, 0.0);
        self.k2.resize(n, 0.0);
        self.k3.resize(n, 0.0);
        self.k4.resize(n, 0.0);
        self.tmp.resize(n, 0.0);
    }
}

impl Integrator {
    /// Advances `f` by `tau` time units under the frozen rates.
    ///
    /// Allocates fresh work buffers; the phase loop uses
    /// [`Integrator::advance_with`] with a reusable scratch instead.
    ///
    /// # Panics
    ///
    /// Panics if `tau` is negative/non-finite or the scheme parameters
    /// are invalid (`dt ≤ 0`, `tol ≤ 0`).
    pub fn advance(&self, rates: &PhaseRates, f: &mut [f64], tau: f64) {
        let mut scratch = IntegratorScratch::new();
        self.advance_with(rates, f, tau, &mut scratch);
    }

    /// Advances `f` by `tau` time units under the frozen rates, using
    /// caller-owned buffers (allocation-free once `scratch` has grown
    /// to the path count).
    ///
    /// # Panics
    ///
    /// As [`Integrator::advance`].
    pub fn advance_with(
        &self,
        rates: &PhaseRates,
        f: &mut [f64],
        tau: f64,
        scratch: &mut IntegratorScratch,
    ) {
        self.advance_pooled(rates, f, tau, scratch, None);
    }

    /// [`Integrator::advance_with`], optionally fanning every generator
    /// application across a [`WorkerPool`] via
    /// [`PhaseRates::apply_with`] — bit-identical to the serial
    /// integration for every lane count (the scalar recurrences —
    /// Poisson weights, step bookkeeping, the axpy updates — stay on
    /// the dispatching thread in their serial order).
    ///
    /// # Panics
    ///
    /// As [`Integrator::advance`].
    pub fn advance_pooled(
        &self,
        rates: &PhaseRates,
        f: &mut [f64],
        tau: f64,
        scratch: &mut IntegratorScratch,
        pool: Option<&WorkerPool>,
    ) {
        assert!(tau.is_finite() && tau >= 0.0, "phase length must be ≥ 0");
        if tau == 0.0 {
            return;
        }
        scratch.resize(f.len());
        match *self {
            Integrator::Euler { dt } => {
                assert!(dt > 0.0, "Euler step must be positive");
                euler(rates, f, tau, dt, scratch, pool);
            }
            Integrator::Rk4 { dt } => {
                assert!(dt > 0.0, "RK4 step must be positive");
                rk4(rates, f, tau, dt, scratch, pool);
            }
            Integrator::Uniformization { tol } => {
                assert!(tol > 0.0, "uniformization tolerance must be positive");
                uniformization(rates, f, tau, tol, scratch, pool);
            }
        }
    }

    /// A short identifier for reports.
    pub fn name(&self) -> String {
        match self {
            Integrator::Euler { dt } => format!("euler(dt={dt})"),
            Integrator::Rk4 { dt } => format!("rk4(dt={dt})"),
            Integrator::Uniformization { tol } => format!("uniformization(tol={tol})"),
        }
    }
}

fn euler(
    rates: &PhaseRates,
    f: &mut [f64],
    tau: f64,
    dt: f64,
    scratch: &mut IntegratorScratch,
    pool: Option<&WorkerPool>,
) {
    let n = f.len();
    let IntegratorScratch {
        k1: deriv, apply, ..
    } = scratch;
    let mut remaining = tau;
    while remaining > 1e-15 {
        let h = dt.min(remaining);
        rates.apply_with(f, deriv, pool, apply);
        for i in 0..n {
            f[i] += h * deriv[i];
        }
        remaining -= h;
    }
}

fn rk4(
    rates: &PhaseRates,
    f: &mut [f64],
    tau: f64,
    dt: f64,
    scratch: &mut IntegratorScratch,
    pool: Option<&WorkerPool>,
) {
    let n = f.len();
    let IntegratorScratch {
        k1,
        k2,
        k3,
        k4,
        tmp,
        apply,
        ..
    } = scratch;
    let mut remaining = tau;
    while remaining > 1e-15 {
        let h = dt.min(remaining);
        rates.apply_with(f, k1, pool, apply);
        for i in 0..n {
            tmp[i] = f[i] + 0.5 * h * k1[i];
        }
        rates.apply_with(tmp, k2, pool, apply);
        for i in 0..n {
            tmp[i] = f[i] + 0.5 * h * k2[i];
        }
        rates.apply_with(tmp, k3, pool, apply);
        for i in 0..n {
            tmp[i] = f[i] + h * k3[i];
        }
        rates.apply_with(tmp, k4, pool, apply);
        for i in 0..n {
            f[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        remaining -= h;
    }
}

/// Exact `exp(τA) f` by uniformization.
///
/// With Λ bounding every exit rate, `M = I + A/Λ` has non-negative
/// entries and row sums ≤ 1 interpreted as a DTMC on paths, and
/// `exp(τA) = Σ_k Poisson_{Λτ}(k) M^k`. The iteration keeps a running
/// Poisson weight in log-safe form to avoid overflow for large `Λτ`.
fn uniformization(
    rates: &PhaseRates,
    f: &mut [f64],
    tau: f64,
    tol: f64,
    scratch: &mut IntegratorScratch,
    pool: Option<&WorkerPool>,
) {
    // Λ is tracked during the rate fill (for matrix-free blocks it
    // falls out of the sorted-extreme sweep), so this is O(commodities).
    let lambda = rates.max_exit_rate();
    if lambda <= 0.0 {
        return; // A = 0: nothing moves.
    }
    let lt = lambda * tau;
    // v_k = M^k f, accumulated with Poisson(Λτ) weights.
    let IntegratorScratch {
        k1: v,
        k2: av,
        k3: out,
        apply,
        axpy_bounds,
        ..
    } = scratch;
    v.copy_from_slice(f);
    let mut weight = (-lt).exp(); // Poisson pmf at k = 0
    let mut cumulative = weight;
    for (o, vi) in out.iter_mut().zip(v.iter()) {
        *o = weight * vi;
    }
    // Pooled mode fuses the two per-iteration vector updates into one
    // equal-chunk dispatch. Element-wise (out[i] reads the freshly
    // updated v[i] in both orders), so bit-identical to the two serial
    // loops.
    let axpy_pool = match pool {
        Some(p) if p.lanes() > 1 && f.len() >= PARALLEL_AXPY_MIN => {
            axpy_bounds.clear();
            let step = f.len().div_ceil(p.lanes());
            axpy_bounds.push(0);
            let mut done = 0;
            while done < f.len() {
                done = (done + step).min(f.len());
                axpy_bounds.push(done);
            }
            Some(p)
        }
        _ => None,
    };
    // Cap iterations defensively: mean Λτ, tail needs ~Λτ + 40√Λτ terms.
    let max_k = (lt + 40.0 * lt.sqrt() + 64.0).ceil() as usize;
    for k in 1..=max_k {
        // v ← M v = v + (A v)/Λ.
        rates.apply_with(v, av, pool, apply);
        weight *= lt / k as f64;
        match axpy_pool {
            Some(p) => {
                let av = &*av;
                p.for_parts2(v, out, axpy_bounds, |pi, vp, op| {
                    let base = axpy_bounds[pi];
                    for (j, (vi, o)) in vp.iter_mut().zip(op.iter_mut()).enumerate() {
                        *vi += av[base + j] / lambda;
                        *o += weight * *vi;
                    }
                });
            }
            None => {
                for (vi, a) in v.iter_mut().zip(av.iter()) {
                    *vi += a / lambda;
                }
                for (o, vi) in out.iter_mut().zip(v.iter()) {
                    *o += weight * vi;
                }
            }
        }
        cumulative += weight;
        if 1.0 - cumulative < tol && k as f64 > lt {
            break;
        }
    }
    f.copy_from_slice(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::BulletinBoard;
    use crate::policy::{uniform_linear, ReroutingPolicy};
    use wardrop_net::builders;
    use wardrop_net::flow::FlowVec;

    /// Two-path rates with a single transition 1 → 0 at rate `r` admit
    /// the closed form f₁(τ) = f₁(0) e^{−rτ}.
    fn single_rate_setup(r_expected: f64) -> (wardrop_net::Instance, PhaseRates, Vec<f64>) {
        let inst = builders::pigou();
        let f = FlowVec::from_values(&inst, vec![0.2, 0.8]).unwrap();
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let rates = uniform_linear(&inst).phase_rates(&inst, &board);
        assert!((rates.blocks()[0].rate(1, 0) - r_expected).abs() < 1e-12);
        (inst, rates, f.values().to_vec())
    }

    #[test]
    fn uniformization_matches_closed_form() {
        let (_inst, rates, f0) = single_rate_setup(0.4);
        let tau = 2.0_f64;
        let mut f = f0.clone();
        Integrator::Uniformization { tol: 1e-14 }.advance(&rates, &mut f, tau);
        let expected1 = 0.8 * (-0.4 * tau).exp();
        assert!(
            (f[1] - expected1).abs() < 1e-12,
            "got {}, want {expected1}",
            f[1]
        );
        assert!((f[0] + f[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rk4_matches_closed_form() {
        let (_inst, rates, f0) = single_rate_setup(0.4);
        let tau = 2.0_f64;
        let mut f = f0.clone();
        Integrator::Rk4 { dt: 0.01 }.advance(&rates, &mut f, tau);
        let expected1 = 0.8 * (-0.4 * tau).exp();
        assert!((f[1] - expected1).abs() < 1e-9);
    }

    #[test]
    fn euler_converges_with_step() {
        let (_inst, rates, f0) = single_rate_setup(0.4);
        let tau = 2.0_f64;
        let expected1 = 0.8 * (-0.4 * tau).exp();
        let mut coarse = f0.clone();
        Integrator::Euler { dt: 0.1 }.advance(&rates, &mut coarse, tau);
        let mut fine = f0.clone();
        Integrator::Euler { dt: 0.001 }.advance(&rates, &mut fine, tau);
        assert!((fine[1] - expected1).abs() < (coarse[1] - expected1).abs());
        assert!((fine[1] - expected1).abs() < 1e-3);
    }

    #[test]
    fn integrators_agree_on_braess() {
        let inst = builders::braess();
        let f = FlowVec::uniform(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let rates = uniform_linear(&inst).phase_rates(&inst, &board);
        let tau = 1.0;

        let mut a = f.values().to_vec();
        Integrator::Uniformization { tol: 1e-14 }.advance(&rates, &mut a, tau);
        let mut b = f.values().to_vec();
        Integrator::Rk4 { dt: 0.005 }.advance(&rates, &mut b, tau);
        let mut c = f.values().to_vec();
        Integrator::Euler { dt: 0.0005 }.advance(&rates, &mut c, tau);

        for i in 0..a.len() {
            assert!((a[i] - b[i]).abs() < 1e-8, "rk4 vs unif at {i}");
            assert!((a[i] - c[i]).abs() < 1e-3, "euler vs unif at {i}");
        }
    }

    #[test]
    fn mass_is_conserved_by_all_schemes() {
        let inst = builders::braess();
        let f = FlowVec::concentrated(&inst);
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let rates = uniform_linear(&inst).phase_rates(&inst, &board);
        for integ in [
            Integrator::Euler { dt: 0.05 },
            Integrator::Rk4 { dt: 0.05 },
            Integrator::Uniformization { tol: 1e-13 },
        ] {
            let mut g = f.values().to_vec();
            integ.advance(&rates, &mut g, 3.0);
            let total: f64 = g.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "{}", integ.name());
            assert!(g.iter().all(|x| *x >= -1e-9), "{}", integ.name());
        }
    }

    #[test]
    fn advance_with_reused_scratch_matches_advance() {
        let (_inst, rates, f0) = single_rate_setup(0.4);
        let mut scratch = IntegratorScratch::for_len(f0.len());
        for integ in [
            Integrator::Euler { dt: 0.05 },
            Integrator::Rk4 { dt: 0.05 },
            Integrator::Uniformization { tol: 1e-13 },
        ] {
            let mut fresh = f0.clone();
            integ.advance(&rates, &mut fresh, 1.5);
            let mut reused = f0.clone();
            integ.advance_with(&rates, &mut reused, 1.5, &mut scratch);
            assert_eq!(fresh, reused, "{}", integ.name());
            // A second run with the now-dirty scratch is identical.
            let mut again = f0.clone();
            integ.advance_with(&rates, &mut again, 1.5, &mut scratch);
            assert_eq!(fresh, again, "{}", integ.name());
        }
    }

    #[test]
    fn zero_phase_is_identity() {
        let (_inst, rates, f0) = single_rate_setup(0.4);
        let mut f = f0.clone();
        Integrator::default().advance(&rates, &mut f, 0.0);
        assert_eq!(f, f0);
    }

    #[test]
    fn zero_rates_are_identity() {
        let inst = builders::pigou();
        // At equilibrium the board shows equal latencies: no movement.
        let f = FlowVec::from_values(&inst, vec![1.0, 0.0]).unwrap();
        let board = BulletinBoard::post(&inst, &f, 0.0);
        let rates = uniform_linear(&inst).phase_rates(&inst, &board);
        let mut g = f.values().to_vec();
        Integrator::default().advance(&rates, &mut g, 10.0);
        assert_eq!(g, f.values());
    }

    #[test]
    fn long_phase_reaches_absorbing_state() {
        // With only 1 → 0 transitions, τ → ∞ sends all mass to path 0.
        let (_inst, rates, f0) = single_rate_setup(0.4);
        let mut f = f0;
        Integrator::Uniformization { tol: 1e-14 }.advance(&rates, &mut f, 200.0);
        assert!(f[1] < 1e-9);
        assert!((f[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn euler_rejects_zero_step() {
        let (_inst, rates, f0) = single_rate_setup(0.4);
        let mut f = f0;
        Integrator::Euler { dt: 0.0 }.advance(&rates, &mut f, 1.0);
    }

    #[test]
    #[should_panic(expected = "phase length")]
    fn negative_tau_rejected() {
        let (_inst, rates, f0) = single_rate_setup(0.4);
        let mut f = f0;
        Integrator::default().advance(&rates, &mut f, -1.0);
    }
}
