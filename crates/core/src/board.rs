//! The bulletin board model of stale information (§2.3).
//!
//! All information relevant to rerouting is posted on a bulletin board
//! at the beginning of every phase of fixed length `T` (Mitzenmacher's
//! model). Agents base both their sampling and their migration decision
//! on the *board*, i.e. on the flow `f(t̂)` at the phase start, not on
//! the true current flow.

use serde::{Deserialize, Serialize};
use wardrop_net::eval::EvalWorkspace;
use wardrop_net::flow::{path_latencies_from_edge_into, FlowVec};
use wardrop_net::instance::Instance;

/// Precision of the posted bulletin-board snapshot.
///
/// The board is *stale information by construction* — agents already
/// act on values up to a phase old — so rounding the posted copy to
/// `f32` (roughly 7 decimal digits) is a second, much smaller
/// staleness that models a bandwidth-limited board. Only the posted
/// snapshot is quantised: the true flow, the ODE integration and the
/// phase-boundary evaluation all stay in `f64`.
///
/// `F32` trades bit-exactness of the trajectory for a halved board
/// footprint; quantised runs are deterministic but *not* comparable
/// bitwise with `F64` runs. The default `F64` leaves the post path
/// byte-identical to builds that predate this knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum BoardPrecision {
    /// Full-precision posts (the default; bit-identical legacy path).
    #[default]
    F64,
    /// Posts are rounded through `f32` (board buffers stay `f64`-typed
    /// so every reader is unchanged).
    F32,
}

/// A snapshot of all routing-relevant information at a phase start.
///
/// # Examples
///
/// ```
/// use wardrop_net::{builders, flow::FlowVec};
/// use wardrop_core::board::BulletinBoard;
///
/// let inst = builders::pigou();
/// let f = FlowVec::uniform(&inst);
/// let board = BulletinBoard::post(&inst, &f, 0.0);
/// assert_eq!(board.path_latencies().len(), 2);
/// assert!((board.path_latency(wardrop_net::PathId::from_index(1)) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BulletinBoard {
    time: f64,
    edge_flows: Vec<f64>,
    edge_latencies: Vec<f64>,
    path_latencies: Vec<f64>,
    path_flows: Vec<f64>,
}

impl BulletinBoard {
    /// Posts a new board from the true flow at time `time`.
    pub fn post(instance: &Instance, flow: &FlowVec, time: f64) -> Self {
        let mut board = Self::for_instance(instance);
        board.post_into(instance, flow, time);
        board
    }

    /// An unposted board with buffers sized for `instance` (all zeros).
    ///
    /// Pair with [`BulletinBoard::post_into`] /
    /// [`BulletinBoard::post_from_eval`] to refresh the board every
    /// phase without reallocating.
    pub fn for_instance(instance: &Instance) -> Self {
        BulletinBoard {
            time: 0.0,
            edge_flows: vec![0.0; instance.num_edges()],
            edge_latencies: vec![0.0; instance.num_edges()],
            path_latencies: vec![0.0; instance.num_paths()],
            path_flows: vec![0.0; instance.num_paths()],
        }
    }

    /// Re-posts the board in place from the true flow, reusing the
    /// board's buffers (allocation-free).
    ///
    /// # Panics
    ///
    /// Panics if the board or `flow` was sized for a different
    /// instance.
    pub fn post_into(&mut self, instance: &Instance, flow: &FlowVec, time: f64) {
        self.time = time;
        flow.edge_flows_into(instance, &mut self.edge_flows);
        for ((le, &fe), lat) in self
            .edge_latencies
            .iter_mut()
            .zip(&self.edge_flows)
            .zip(instance.latencies())
        {
            *le = lat.eval(fe);
        }
        path_latencies_from_edge_into(instance, &self.edge_latencies, &mut self.path_latencies);
        self.path_flows.copy_from_slice(flow.values());
    }

    /// Re-posts the board by copying the quantities already computed in
    /// `eval` for `flow` (allocation-free; no recomputation).
    ///
    /// The workspace must have been [evaluated](EvalWorkspace::evaluate)
    /// at exactly `flow` — the engine maintains this invariant because
    /// it evaluates once per phase boundary.
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths disagree.
    pub fn post_from_eval(&mut self, eval: &EvalWorkspace, flow: &FlowVec, time: f64) {
        self.time = time;
        self.edge_flows.copy_from_slice(eval.edge_flows());
        self.edge_latencies.copy_from_slice(eval.edge_latencies());
        self.path_latencies.copy_from_slice(eval.path_latencies());
        self.path_flows.copy_from_slice(flow.values());
    }

    /// Re-posts the board from caller-supplied edge quantities,
    /// deriving the path latencies from the edge rows (allocation-free).
    ///
    /// This is the post hook for simulators whose *experienced* edge
    /// latencies are not the instance's latency functions alone — the
    /// open-system agent simulator adds M/M/c queueing delays on top of
    /// `ℓ_e(x_e)` before posting, so the board cannot be copied from an
    /// [`EvalWorkspace`] verbatim.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree with the board's buffers.
    pub fn post_from_parts(
        &mut self,
        instance: &Instance,
        edge_flows: &[f64],
        edge_latencies: &[f64],
        path_flows: &[f64],
        time: f64,
    ) {
        self.time = time;
        self.edge_flows.copy_from_slice(edge_flows);
        self.edge_latencies.copy_from_slice(edge_latencies);
        path_latencies_from_edge_into(instance, &self.edge_latencies, &mut self.path_latencies);
        self.path_flows.copy_from_slice(path_flows);
    }

    /// Sets the posting time without touching the posted arrays — the
    /// fault layer uses this when a degraded post refreshes only part
    /// of the board.
    #[inline]
    pub(crate) fn set_time(&mut self, time: f64) {
        self.time = time;
    }

    /// Mutable access to every posted buffer, in declaration order
    /// `(edge_flows, edge_latencies, path_latencies, path_flows)`.
    /// Only the fault layer writes the board piecemeal; everything else
    /// goes through the whole-board `post_*` methods.
    #[inline]
    #[allow(clippy::type_complexity)]
    pub(crate) fn buffers_mut(&mut self) -> (&mut [f64], &mut [f64], &mut [f64], &mut [f64]) {
        (
            &mut self.edge_flows,
            &mut self.edge_latencies,
            &mut self.path_latencies,
            &mut self.path_flows,
        )
    }

    /// Rounds every posted buffer through the requested precision
    /// (no-op for [`BoardPrecision::F64`]). Called once per post when
    /// the engine opts in — the buffers stay `f64`-typed, only their
    /// values are quantised.
    pub fn quantize(&mut self, precision: BoardPrecision) {
        if precision == BoardPrecision::F64 {
            return;
        }
        for v in self
            .edge_flows
            .iter_mut()
            .chain(self.edge_latencies.iter_mut())
            .chain(self.path_latencies.iter_mut())
            .chain(self.path_flows.iter_mut())
        {
            *v = *v as f32 as f64;
        }
    }

    /// The posting time `t̂` (phase start).
    #[inline]
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Posted edge flows `f̂_e`.
    #[inline]
    pub fn edge_flows(&self) -> &[f64] {
        &self.edge_flows
    }

    /// Posted edge latencies `ℓ_e(f̂_e)`.
    #[inline]
    pub fn edge_latencies(&self) -> &[f64] {
        &self.edge_latencies
    }

    /// Posted path latencies `ℓ̂_P = ℓ_P(f̂)`.
    #[inline]
    pub fn path_latencies(&self) -> &[f64] {
        &self.path_latencies
    }

    /// Posted path flows `f̂_P` (used by proportional sampling).
    #[inline]
    pub fn path_flows(&self) -> &[f64] {
        &self.path_flows
    }

    /// Posted latency of a single path.
    #[inline]
    pub fn path_latency(&self, p: wardrop_net::PathId) -> f64 {
        self.path_latencies[p.index()]
    }

    /// Index of a minimum-latency path of commodity `i` on the board
    /// (the *best reply* β(f̂); first index on ties).
    pub fn best_reply(&self, instance: &Instance, commodity: usize) -> usize {
        let range = instance.commodity_paths(commodity);
        let mut best = range.start;
        for p in range {
            if self.path_latencies[p] < self.path_latencies[best] {
                best = p;
            }
        }
        best
    }

    /// Minimum posted latency of commodity `i`.
    pub fn min_latency(&self, instance: &Instance, commodity: usize) -> f64 {
        instance
            .commodity_paths(commodity)
            .map(|p| self.path_latencies[p])
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wardrop_net::builders;

    #[test]
    fn post_snapshot_matches_flow_quantities() {
        let inst = builders::braess();
        let f = FlowVec::uniform(&inst);
        let board = BulletinBoard::post(&inst, &f, 1.5);
        assert_eq!(board.time(), 1.5);
        assert_eq!(board.edge_flows(), f.edge_flows(&inst).as_slice());
        assert_eq!(board.path_latencies(), f.path_latencies(&inst).as_slice());
        assert_eq!(board.path_flows(), f.values());
    }

    #[test]
    fn board_is_stale_after_flow_changes() {
        let inst = builders::pigou();
        let f0 = FlowVec::from_values(&inst, vec![0.5, 0.5]).unwrap();
        let board = BulletinBoard::post(&inst, &f0, 0.0);
        // The flow moves on; the board doesn't.
        let f1 = FlowVec::from_values(&inst, vec![0.9, 0.1]).unwrap();
        assert_ne!(board.path_latencies(), f1.path_latencies(&inst).as_slice());
        assert_eq!(board.path_latencies(), f0.path_latencies(&inst).as_slice());
    }

    #[test]
    fn post_into_matches_post_and_reuses_buffers() {
        let inst = builders::braess();
        let mut board = BulletinBoard::for_instance(&inst);
        let f0 = FlowVec::uniform(&inst);
        board.post_into(&inst, &f0, 1.0);
        assert_eq!(board, BulletinBoard::post(&inst, &f0, 1.0));
        // Re-posting overwrites every field.
        let f1 = FlowVec::concentrated(&inst);
        board.post_into(&inst, &f1, 2.0);
        assert_eq!(board, BulletinBoard::post(&inst, &f1, 2.0));
    }

    #[test]
    fn post_from_eval_matches_post() {
        let inst = builders::braess();
        let f = FlowVec::uniform(&inst);
        let mut eval = wardrop_net::eval::EvalWorkspace::new(&inst);
        eval.evaluate(&inst, &f);
        let mut board = BulletinBoard::for_instance(&inst);
        board.post_from_eval(&eval, &f, 3.5);
        assert_eq!(board, BulletinBoard::post(&inst, &f, 3.5));
    }

    #[test]
    fn best_reply_picks_min_latency_path() {
        let inst = builders::pigou();
        // ℓ₁(0.2) = 0.2 < 1 = ℓ₂.
        let f = FlowVec::from_values(&inst, vec![0.2, 0.8]).unwrap();
        let board = BulletinBoard::post(&inst, &f, 0.0);
        assert_eq!(board.best_reply(&inst, 0), 0);
        assert!((board.min_latency(&inst, 0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn best_reply_ties_break_to_first() {
        let inst = builders::two_link_oscillator(1.0);
        let f = FlowVec::from_values(&inst, vec![0.5, 0.5]).unwrap();
        let board = BulletinBoard::post(&inst, &f, 0.0);
        assert_eq!(board.best_reply(&inst, 0), 0);
    }

    #[test]
    fn f64_quantize_is_a_no_op_and_f32_rounds() {
        let inst = builders::braess();
        let f = FlowVec::from_values(&inst, vec![0.3, 0.6, 0.1]).unwrap();
        let reference = BulletinBoard::post(&inst, &f, 0.0);
        let mut board = reference.clone();
        board.quantize(BoardPrecision::F64);
        assert_eq!(board, reference);
        board.quantize(BoardPrecision::F32);
        for (q, r) in board
            .path_latencies()
            .iter()
            .zip(reference.path_latencies())
        {
            assert_eq!(*q, *q as f32 as f64, "quantised value must be f32-exact");
            assert!((q - r).abs() <= r.abs() * 1e-6);
        }
        // Idempotent: a second quantisation changes nothing.
        let once = board.clone();
        board.quantize(BoardPrecision::F32);
        assert_eq!(board, once);
    }
}
