//! Migration rules `µ(ℓ_P, ℓ_Q)` (§2.2, step 2) and α-smoothness
//! (Definition 2).
//!
//! After sampling path `Q`, the agent migrates from `P` to `Q` with
//! probability `µ(ℓ̂_P, ℓ̂_Q)` computed from the *board* latencies. A
//! rule is **α-smooth** if `µ(ℓ_P, ℓ_Q) ≤ α (ℓ_P − ℓ_Q)` for
//! `ℓ_P ≥ ℓ_Q`; this Lipschitz-like condition at 0 is what tames
//! staleness (Lemma 4). The rules provided:
//!
//! * [`BetterResponse`] — migrate whenever the sampled path is strictly
//!   better. **Not** α-smooth for any α; oscillates under staleness.
//! * [`Linear`] — `µ = (ℓ_P − ℓ_Q)/ℓmax`, the paper's *linear migration
//!   policy*; `(1/ℓmax)`-smooth.
//! * [`ScaledLinear`] — `µ = min{1, α (ℓ_P − ℓ_Q)}` for a chosen α,
//!   letting experiments sweep the smoothness parameter directly.

use std::fmt;

use crate::kernel::SeparableKernel;

/// A migration rule `µ : R≥0 × R≥0 → [0, 1]`.
///
/// Conventions from the paper: `µ(ℓ_P, ℓ_Q) = 0` whenever
/// `ℓ_Q ≥ ℓ_P` (agents only make selfish moves), and `µ` is
/// non-decreasing in the latency difference.
pub trait MigrationRule: fmt::Debug + Send + Sync {
    /// Probability of migrating from a path with board latency `l_from`
    /// to one with board latency `l_to`.
    fn probability(&self, l_from: f64, l_to: f64) -> f64;

    /// The smallest `α` for which this rule is α-smooth, or `None` if
    /// the rule is not α-smooth for any α (e.g. better response).
    fn smoothness(&self) -> Option<f64>;

    /// The rule's [separable closed form](crate::kernel), if it has
    /// one — the opt-in to the engine's matrix-free O(P log P) phase
    /// rates. The kernel **must** evaluate pointwise-identically to
    /// [`MigrationRule::probability`]; every stock rule advertises one.
    /// Defaults to `None`, which keeps custom rules on the dense Θ(P²)
    /// path.
    fn kernel(&self) -> Option<SeparableKernel> {
        None
    }

    /// Human-readable rule name for reports.
    fn name(&self) -> String;
}

/// The better-response rule: migrate iff the sampled path is strictly
/// better. Not smooth; the canonical oscillator under staleness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BetterResponse;

impl MigrationRule for BetterResponse {
    fn probability(&self, l_from: f64, l_to: f64) -> f64 {
        if l_from > l_to {
            1.0
        } else {
            0.0
        }
    }

    fn smoothness(&self) -> Option<f64> {
        None
    }

    fn kernel(&self) -> Option<SeparableKernel> {
        Some(SeparableKernel::Indicator)
    }

    fn name(&self) -> String {
        "better-response".to_string()
    }
}

/// The linear migration policy `µ = max{0, (ℓ_P − ℓ_Q)}/ℓmax` (§2.2).
///
/// `(1/ℓmax)`-smooth. `ℓmax` must upper-bound every path latency so
/// that `µ ≤ 1`; use `wardrop_net::Instance::latency_upper_bound`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Linear {
    /// Upper bound `ℓmax` on any path latency.
    pub lmax: f64,
}

impl Linear {
    /// Creates the linear migration policy for latency bound `lmax`.
    ///
    /// # Panics
    ///
    /// Panics if `lmax` is not positive and finite.
    pub fn new(lmax: f64) -> Self {
        assert!(
            lmax.is_finite() && lmax > 0.0,
            "ℓmax must be positive and finite"
        );
        Linear { lmax }
    }
}

impl MigrationRule for Linear {
    fn probability(&self, l_from: f64, l_to: f64) -> f64 {
        // Multiply by the reciprocal rather than divide: bit-identical
        // to the `ClampedLinear { alpha: 1/ℓmax }` kernel evaluation,
        // so the kernel's "pointwise-identical" contract holds exactly
        // (division and reciprocal-multiplication differ by 1 ulp on
        // some inputs).
        ((l_from - l_to) * (1.0 / self.lmax)).clamp(0.0, 1.0)
    }

    fn smoothness(&self) -> Option<f64> {
        Some(1.0 / self.lmax)
    }

    fn kernel(&self) -> Option<SeparableKernel> {
        Some(SeparableKernel::ClampedLinear {
            alpha: 1.0 / self.lmax,
        })
    }

    fn name(&self) -> String {
        format!("linear(ℓmax={:.3})", self.lmax)
    }
}

/// α-scaled linear migration `µ = min{1, α (ℓ_P − ℓ_Q)}` for `ℓ_P > ℓ_Q`.
///
/// α-smooth by construction. Sweeping `α` against the safe threshold
/// `1/(4 D β T)` reproduces the convergence boundary of Corollary 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaledLinear {
    /// Smoothness parameter `α > 0`.
    pub alpha: f64,
}

impl ScaledLinear {
    /// Creates an α-scaled linear migration rule.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive and finite.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "α must be positive and finite"
        );
        ScaledLinear { alpha }
    }
}

impl MigrationRule for ScaledLinear {
    fn probability(&self, l_from: f64, l_to: f64) -> f64 {
        (self.alpha * (l_from - l_to)).clamp(0.0, 1.0)
    }

    fn smoothness(&self) -> Option<f64> {
        Some(self.alpha)
    }

    fn kernel(&self) -> Option<SeparableKernel> {
        Some(SeparableKernel::ClampedLinear { alpha: self.alpha })
    }

    fn name(&self) -> String {
        format!("scaled-linear(α={})", self.alpha)
    }
}

/// Relative-slack migration `µ = (ℓ_P − ℓ_Q)/ℓ_P` for `ℓ_P > ℓ_Q`.
///
/// The migration rule behind the *fast* convergence result of the
/// follow-up paper (Fischer, Räcke, Vöcking, STOC 2006 — reference
/// \[10\]): its behaviour scales with the *relative* latency gain, so the
/// right update period depends on the latency functions' **elasticity**
/// rather than their slope. It is **not** α-smooth for any α — the
/// ratio `µ/(ℓ_P − ℓ_Q) = 1/ℓ_P` blows up as `ℓ_P → 0` — so the
/// paper's Lemma 4 does not cover it; on instances whose latencies
/// vanish (the §3.2 oscillator) it degenerates into better response
/// and oscillates. See experiment E8 (`exp_beyond_smoothness`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelativeSlack;

impl MigrationRule for RelativeSlack {
    fn probability(&self, l_from: f64, l_to: f64) -> f64 {
        if l_from > l_to && l_from > 0.0 {
            (l_from - l_to) / l_from
        } else {
            0.0
        }
    }

    fn smoothness(&self) -> Option<f64> {
        None
    }

    fn kernel(&self) -> Option<SeparableKernel> {
        Some(SeparableKernel::RelativeSlack)
    }

    fn name(&self) -> String {
        "relative-slack".to_string()
    }
}

/// Numerically verifies α-smoothness of a rule on a latency grid.
///
/// Returns the maximum observed ratio `µ(ℓ_P, ℓ_Q)/(ℓ_P − ℓ_Q)` over
/// `0 ≤ ℓ_Q < ℓ_P ≤ lmax`, i.e. an empirical lower bound on the true
/// smoothness constant. Used by tests and by the E3 experiment to
/// cross-check [`MigrationRule::smoothness`].
pub fn empirical_smoothness<M: MigrationRule + ?Sized>(rule: &M, lmax: f64, grid: usize) -> f64 {
    let mut worst: f64 = 0.0;
    for i in 0..=grid {
        for j in 0..i {
            let lp = lmax * i as f64 / grid as f64;
            let lq = lmax * j as f64 / grid as f64;
            let gap = lp - lq;
            if gap > 1e-12 {
                worst = worst.max(rule.probability(lp, lq) / gap);
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn better_response_is_all_or_nothing() {
        let r = BetterResponse;
        assert_eq!(r.probability(1.0, 0.5), 1.0);
        assert_eq!(r.probability(0.5, 1.0), 0.0);
        assert_eq!(r.probability(1.0, 1.0), 0.0);
        assert_eq!(r.smoothness(), None);
    }

    #[test]
    fn linear_matches_paper_formula() {
        let r = Linear::new(2.0);
        assert!((r.probability(1.5, 0.5) - 0.5).abs() < 1e-12);
        assert_eq!(r.probability(0.5, 1.5), 0.0);
        assert_eq!(r.smoothness(), Some(0.5));
    }

    #[test]
    fn linear_never_exceeds_one() {
        let r = Linear::new(1.0);
        // Gap larger than ℓmax (can't happen for true path latencies,
        // but the rule must still be a probability).
        assert_eq!(r.probability(5.0, 0.0), 1.0);
    }

    #[test]
    fn scaled_linear_clamps_and_reports_alpha() {
        let r = ScaledLinear::new(10.0);
        assert_eq!(r.probability(1.0, 0.0), 1.0);
        assert!((r.probability(0.01, 0.0) - 0.1).abs() < 1e-12);
        assert_eq!(r.smoothness(), Some(10.0));
    }

    #[test]
    fn zero_gap_never_migrates() {
        let rules: Vec<Box<dyn MigrationRule>> = vec![
            Box::new(BetterResponse),
            Box::new(Linear::new(1.0)),
            Box::new(ScaledLinear::new(3.0)),
        ];
        for r in &rules {
            assert_eq!(r.probability(0.7, 0.7), 0.0, "{}", r.name());
        }
    }

    #[test]
    fn empirical_smoothness_matches_declared() {
        let lin = Linear::new(4.0);
        let emp = empirical_smoothness(&lin, 4.0, 64);
        assert!((emp - 0.25).abs() < 1e-9);

        let sl = ScaledLinear::new(0.5);
        let emp = empirical_smoothness(&sl, 1.0, 64);
        assert!((emp - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empirical_smoothness_diverges_for_better_response() {
        // µ jumps to 1 for arbitrarily small gaps: the observed ratio
        // grows with the grid resolution — no finite α.
        let coarse = empirical_smoothness(&BetterResponse, 1.0, 16);
        let fine = empirical_smoothness(&BetterResponse, 1.0, 256);
        assert!(fine > coarse * 4.0);
    }

    #[test]
    fn relative_slack_is_scale_invariant() {
        let r = RelativeSlack;
        // µ depends only on the ratio ℓ_Q/ℓ_P.
        assert!((r.probability(2.0, 1.0) - r.probability(20.0, 10.0)).abs() < 1e-12);
        assert!((r.probability(2.0, 1.0) - 0.5).abs() < 1e-12);
        assert_eq!(r.probability(1.0, 2.0), 0.0);
        assert_eq!(r.probability(0.0, 0.0), 0.0);
        assert_eq!(r.smoothness(), None);
    }

    #[test]
    fn relative_slack_is_not_alpha_smooth() {
        // µ/(ℓP − ℓQ) = 1/ℓP grows without bound near ℓP = 0.
        let coarse = empirical_smoothness(&RelativeSlack, 1.0, 16);
        let fine = empirical_smoothness(&RelativeSlack, 1.0, 256);
        assert!(fine > coarse * 4.0);
    }

    #[test]
    fn relative_slack_bounded_by_one() {
        let r = RelativeSlack;
        for (lp, lq) in [(1.0, 0.0), (5.0, 0.1), (0.2, 0.15)] {
            let p = r.probability(lp, lq);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn kernels_evaluate_pointwise_identically_to_their_rules() {
        let rules: Vec<Box<dyn MigrationRule>> = vec![
            Box::new(BetterResponse),
            Box::new(Linear::new(1.7)),
            Box::new(ScaledLinear::new(4.0)),
            Box::new(RelativeSlack),
        ];
        let grid: Vec<f64> = (0..=20).map(|i| i as f64 * 0.35).collect();
        for r in &rules {
            let k = r.kernel().expect("every stock rule has a kernel");
            for &lp in &grid {
                for &lq in &grid {
                    assert_eq!(
                        r.probability(lp, lq),
                        k.probability(lp, lq),
                        "{} at ({lp}, {lq})",
                        r.name()
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn linear_rejects_zero_lmax() {
        let _ = Linear::new(0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_linear_rejects_negative_alpha() {
        let _ = ScaledLinear::new(-0.1);
    }
}
