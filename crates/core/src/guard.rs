//! The AIMD smoothness governor — a self-stabilising guard on the
//! engine's effective α.
//!
//! Lemma 4 guarantees that the potential never increases across a
//! bulletin-board phase as long as the update period stays below
//! `T* = 1/(4 D α β)`. When the board degrades — posts drop, latencies
//! arrive noisy, rows go stale (see [`crate::fault`]) — the effective
//! staleness grows past what `T*` was computed for and the guarantee
//! can break: the potential climbs and the run oscillates or diverges.
//!
//! The [`SmoothnessGuard`] watches the potential at each board refresh
//! and runs a classic AIMD control loop on an **α throttle**
//! `s ∈ (0, 1]`:
//!
//! * **violation** (`Φ` increased beyond a float tolerance — a Lemma-4
//!   breach): multiplicative decrease, `s ← max(s·backoff, floor)`;
//! * **quiet window** (`quiet_phases` consecutive clean refreshes):
//!   additive increase, `s ← min(s + restore_step, 1)`.
//!
//! Because every smooth policy's within-phase dynamics is the linear
//! ODE `ḟ = R f` with `R` frozen for the phase — and α-smoothness is
//! linear in the migration rates — scaling the rates by `s` is exactly
//! the same trajectory as integrating for `s·τ` time units. The engine
//! therefore applies the throttle as a *time dilation* of the
//! within-phase dynamics: policies, kernels and the integrator stay
//! untouched, yet the effective α (and hence the effective `α·T`
//! product that Lemma 4 bounds) shrinks by `s`.
//!
//! Every intervention is recorded in a [`GuardLog`], so a recovery is
//! auditable phase by phase.

use serde::{Deserialize, Serialize};

fn default_tolerance() -> f64 {
    1e-9
}
fn default_backoff() -> f64 {
    0.5
}
fn default_restore_step() -> f64 {
    0.1
}
fn default_quiet_phases() -> usize {
    8
}
fn default_floor() -> f64 {
    1.0 / 64.0
}

/// Tuning of the AIMD loop. The defaults halve the throttle on every
/// violation, and pay back `0.1` per eight quiet refreshes.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardConfig {
    /// Float tolerance on the per-refresh potential increase; smaller
    /// increases are treated as numerical noise, not violations.
    pub tolerance: f64,
    /// Multiplicative decrease factor in `(0, 1)`.
    pub backoff: f64,
    /// Additive restore step per quiet window, `> 0`.
    pub restore_step: f64,
    /// Consecutive clean refreshes required before a restore, `≥ 1`.
    pub quiet_phases: usize,
    /// Lower bound on the throttle in `(0, 1]` — the guard never
    /// freezes the dynamics entirely.
    pub floor: f64,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            tolerance: default_tolerance(),
            backoff: default_backoff(),
            restore_step: default_restore_step(),
            quiet_phases: default_quiet_phases(),
            floor: default_floor(),
        }
    }
}

// Manual serde impls so that knobs missing from a sparse config take
// the documented AIMD defaults, not the field types' zeros (which
// `validate` would reject).
impl Serialize for GuardConfig {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("tolerance".to_string(), self.tolerance.to_value()),
            ("backoff".to_string(), self.backoff.to_value()),
            ("restore_step".to_string(), self.restore_step.to_value()),
            ("quiet_phases".to_string(), self.quiet_phases.to_value()),
            ("floor".to_string(), self.floor.to_value()),
        ])
    }
}

impl Deserialize for GuardConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected a map for GuardConfig"))?;
        let mut config = GuardConfig::default();
        for (key, value) in entries {
            match key.as_str() {
                "tolerance" => config.tolerance = Deserialize::from_value(value)?,
                "backoff" => config.backoff = Deserialize::from_value(value)?,
                "restore_step" => config.restore_step = Deserialize::from_value(value)?,
                "quiet_phases" => config.quiet_phases = Deserialize::from_value(value)?,
                "floor" => config.floor = Deserialize::from_value(value)?,
                _ => {}
            }
        }
        Ok(config)
    }
}

impl GuardConfig {
    /// # Panics
    ///
    /// Panics if any knob is out of range (the guard is engine
    /// configuration, validated like
    /// [`SimulationConfig`](crate::engine::SimulationConfig)).
    pub fn validate(&self) {
        if let Err(msg) = self.check() {
            panic!("{msg}");
        }
    }

    /// Non-panicking range check of every knob — the checkpoint-restore
    /// path treats configuration as untrusted input.
    ///
    /// # Errors
    ///
    /// A message naming the first out-of-range knob.
    pub fn check(&self) -> Result<(), String> {
        if !(self.tolerance.is_finite() && self.tolerance >= 0.0) {
            return Err("guard tolerance must be finite and non-negative".into());
        }
        if !(self.backoff.is_finite() && self.backoff > 0.0 && self.backoff < 1.0) {
            return Err("guard backoff must be in (0, 1)".into());
        }
        if !(self.restore_step.is_finite() && self.restore_step > 0.0) {
            return Err("guard restore step must be positive".into());
        }
        if self.quiet_phases < 1 {
            return Err("guard quiet window must be ≥ 1".into());
        }
        if !(self.floor.is_finite() && self.floor > 0.0 && self.floor <= 1.0) {
            return Err("guard floor must be in (0, 1]".into());
        }
        Ok(())
    }
}

/// What an intervention did to the throttle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GuardAction {
    /// Multiplicative decrease after a Lemma-4 violation.
    Backoff,
    /// Additive restore after a quiet window.
    Restore,
}

/// One recorded intervention of the governor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GuardEvent {
    /// Phase index of the refresh that triggered the intervention.
    pub phase: usize,
    /// Wall-clock time of the refresh.
    pub time: f64,
    /// Backoff or restore.
    pub action: GuardAction,
    /// Throttle before the intervention.
    pub scale_before: f64,
    /// Throttle after the intervention.
    pub scale_after: f64,
    /// The observed potential change `ΔΦ` across the refresh (positive
    /// for violations).
    pub potential_delta: f64,
}

/// The auditable record of every intervention of a run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GuardLog {
    events: Vec<GuardEvent>,
    violations: usize,
    restores: usize,
    min_scale: Option<f64>,
}

impl GuardLog {
    /// Every intervention, in phase order.
    #[inline]
    pub fn events(&self) -> &[GuardEvent] {
        &self.events
    }

    /// Number of Lemma-4 violations seen (each triggers a backoff).
    #[inline]
    pub fn violations(&self) -> usize {
        self.violations
    }

    /// Number of restores granted after quiet windows.
    #[inline]
    pub fn restores(&self) -> usize {
        self.restores
    }

    /// The deepest throttle the run reached (`None`: never intervened).
    #[inline]
    pub fn min_scale(&self) -> Option<f64> {
        self.min_scale
    }
}

/// The mutable AIMD state of a [`SmoothnessGuard`], as captured in an
/// engine checkpoint (the tuning lives in the checkpointed
/// [`SimulationConfig`](crate::engine::SimulationConfig), not here).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuardSnapshot {
    /// The α throttle at the checkpoint.
    pub scale: f64,
    /// Clean refreshes accumulated towards the next restore.
    pub quiet: usize,
    /// The potential baseline (`None` right after a scenario event).
    pub last_potential: Option<f64>,
    /// The intervention log so far.
    pub log: GuardLog,
}

impl GuardSnapshot {
    /// Validates the captured state: the throttle must be a sane
    /// probability-like scale and the baseline finite.
    ///
    /// # Errors
    ///
    /// A message naming the violated invariant.
    pub fn check(&self) -> Result<(), String> {
        if !(self.scale.is_finite() && self.scale > 0.0 && self.scale <= 1.0) {
            return Err(format!("guard throttle {} outside (0, 1]", self.scale));
        }
        if let Some(p) = self.last_potential {
            if !p.is_finite() {
                return Err(format!("non-finite guard potential baseline {p}"));
            }
        }
        Ok(())
    }
}

/// The in-flight AIMD governor: attach one per simulation. See the
/// [module docs](self) for the control loop.
#[derive(Debug, Clone)]
pub struct SmoothnessGuard {
    config: GuardConfig,
    scale: f64,
    quiet: usize,
    last_potential: Option<f64>,
    log: GuardLog,
}

impl SmoothnessGuard {
    /// A governor at full throttle (`s = 1`).
    ///
    /// # Panics
    ///
    /// Panics if `config` is out of range ([`GuardConfig::validate`]).
    pub fn new(config: GuardConfig) -> Self {
        config.validate();
        SmoothnessGuard {
            config,
            scale: 1.0,
            quiet: 0,
            last_potential: None,
            log: GuardLog::default(),
        }
    }

    /// The current α throttle `s ∈ [floor, 1]`.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The intervention log so far.
    #[inline]
    pub fn log(&self) -> &GuardLog {
        &self.log
    }

    /// Captures the mutable AIMD state for a checkpoint.
    pub fn snapshot(&self) -> GuardSnapshot {
        GuardSnapshot {
            scale: self.scale,
            quiet: self.quiet,
            last_potential: self.last_potential,
            log: self.log.clone(),
        }
    }

    /// Rebuilds a governor from checkpointed state, continuing the
    /// AIMD loop exactly where the snapshot left it.
    ///
    /// # Errors
    ///
    /// A message naming the violated invariant when `config` or
    /// `snapshot` is out of range.
    pub fn from_snapshot(config: GuardConfig, snapshot: &GuardSnapshot) -> Result<Self, String> {
        config.check()?;
        snapshot.check()?;
        Ok(SmoothnessGuard {
            config,
            scale: snapshot.scale,
            quiet: snapshot.quiet,
            last_potential: snapshot.last_potential,
            log: snapshot.log.clone(),
        })
    }

    /// Forgets the potential baseline. Called after scenario events:
    /// a demand surge or link degradation raises the potential
    /// legitimately, which must not count as a Lemma-4 violation.
    pub fn reset_baseline(&mut self) {
        self.last_potential = None;
    }

    /// Observes the potential at a board refresh and returns the
    /// throttle to apply to the upcoming phase.
    pub fn observe(&mut self, phase: usize, time: f64, potential: f64) -> f64 {
        if let Some(prev) = self.last_potential {
            let delta = potential - prev;
            if delta > self.config.tolerance {
                // Lemma-4 violation: multiplicative decrease.
                let before = self.scale;
                self.scale = (self.scale * self.config.backoff).max(self.config.floor);
                self.quiet = 0;
                self.log.violations += 1;
                self.log.min_scale = Some(self.log.min_scale.unwrap_or(before).min(self.scale));
                self.log.events.push(GuardEvent {
                    phase,
                    time,
                    action: GuardAction::Backoff,
                    scale_before: before,
                    scale_after: self.scale,
                    potential_delta: delta,
                });
            } else {
                self.quiet += 1;
                if self.quiet >= self.config.quiet_phases && self.scale < 1.0 {
                    // Quiet window over: additive (cautious) restore.
                    let before = self.scale;
                    self.scale = (self.scale + self.config.restore_step).min(1.0);
                    self.quiet = 0;
                    self.log.restores += 1;
                    self.log.events.push(GuardEvent {
                        phase,
                        time,
                        action: GuardAction::Restore,
                        scale_before: before,
                        scale_after: self.scale,
                        potential_delta: delta,
                    });
                }
            }
        }
        self.last_potential = Some(potential);
        self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_at_full_throttle_while_potential_decreases() {
        let mut g = SmoothnessGuard::new(GuardConfig::default());
        for (i, phi) in [5.0, 4.0, 3.5, 3.2, 3.1].iter().enumerate() {
            assert_eq!(g.observe(i, i as f64, *phi), 1.0);
        }
        assert!(g.log().events().is_empty());
        assert_eq!(g.log().min_scale(), None);
    }

    #[test]
    fn violation_backs_off_multiplicatively_down_to_the_floor() {
        let mut g = SmoothnessGuard::new(GuardConfig::default());
        g.observe(0, 0.0, 1.0);
        assert_eq!(g.observe(1, 1.0, 2.0), 0.5);
        assert_eq!(g.observe(2, 2.0, 3.0), 0.25);
        for i in 3..40 {
            g.observe(i, i as f64, 2.0 + i as f64);
        }
        assert_eq!(g.scale(), GuardConfig::default().floor);
        assert_eq!(g.log().violations(), 39);
        assert_eq!(g.log().min_scale(), Some(GuardConfig::default().floor));
    }

    #[test]
    fn quiet_window_restores_additively_and_caps_at_one() {
        let config = GuardConfig {
            quiet_phases: 2,
            restore_step: 0.3,
            ..GuardConfig::default()
        };
        let mut g = SmoothnessGuard::new(config);
        g.observe(0, 0.0, 1.0);
        g.observe(1, 1.0, 2.0); // violation: 1.0 -> 0.5
        assert_eq!(g.scale(), 0.5);
        // Two quiet refreshes earn one restore step.
        g.observe(2, 2.0, 1.9);
        assert_eq!(g.observe(3, 3.0, 1.8), 0.8);
        g.observe(4, 4.0, 1.7);
        assert_eq!(g.observe(5, 5.0, 1.6), 1.0);
        // Fully restored: further quiet windows are no-ops.
        g.observe(6, 6.0, 1.5);
        assert_eq!(g.observe(7, 7.0, 1.4), 1.0);
        assert_eq!(g.log().restores(), 2);
        let kinds: Vec<GuardAction> = g.log().events().iter().map(|e| e.action).collect();
        assert_eq!(
            kinds,
            vec![
                GuardAction::Backoff,
                GuardAction::Restore,
                GuardAction::Restore
            ]
        );
    }

    #[test]
    fn tolerance_ignores_numerical_noise() {
        let config = GuardConfig {
            tolerance: 1e-6,
            ..GuardConfig::default()
        };
        let mut g = SmoothnessGuard::new(config);
        g.observe(0, 0.0, 1.0);
        assert_eq!(g.observe(1, 1.0, 1.0 + 1e-9), 1.0);
        assert_eq!(g.log().violations(), 0);
    }

    #[test]
    fn reset_baseline_skips_the_cross_epoch_comparison() {
        let mut g = SmoothnessGuard::new(GuardConfig::default());
        g.observe(0, 0.0, 1.0);
        g.reset_baseline();
        // The potential jumped (scenario event), but no violation fires.
        assert_eq!(g.observe(1, 1.0, 10.0), 1.0);
        assert_eq!(g.log().violations(), 0);
        // The new baseline is live again.
        assert_eq!(g.observe(2, 2.0, 11.0), 0.5);
    }

    #[test]
    fn serde_round_trips_config_and_log() {
        let config = GuardConfig {
            backoff: 0.25,
            ..GuardConfig::default()
        };
        let json = serde_json::to_string(&config).unwrap();
        let back: GuardConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config, back);
        // Sparse configs default the missing knobs.
        let sparse: GuardConfig = serde_json::from_str(r#"{"quiet_phases": 3}"#).unwrap();
        assert_eq!(sparse.quiet_phases, 3);
        assert_eq!(sparse.backoff, 0.5);
        let mut g = SmoothnessGuard::new(GuardConfig::default());
        g.observe(0, 0.0, 1.0);
        g.observe(1, 1.0, 2.0);
        let json = serde_json::to_string(g.log()).unwrap();
        let log: GuardLog = serde_json::from_str(&json).unwrap();
        assert_eq!(&log, g.log());
    }

    #[test]
    #[should_panic(expected = "backoff")]
    fn bad_backoff_rejected() {
        SmoothnessGuard::new(GuardConfig {
            backoff: 1.5,
            ..GuardConfig::default()
        });
    }
}
