//! Closed forms and bound calculators from the paper's analysis.
//!
//! * [`safe_update_period`] — the Lemma 4 / Corollary 5 threshold
//!   `T* = 1/(4 D α β)`.
//! * [`oscillation`] — the §3.2 two-link best-response construction:
//!   the period-2 orbit, its sustained deviation `X`, and the maximum
//!   update period tolerating deviation `ε`.
//! * [`theorem6_bound`] / [`theorem7_bound`] — the convergence-time
//!   bounds (number of phases not starting at approximate equilibria),
//!   reported *without* the hidden O-constant so experiments can fit
//!   the constant empirically.

use wardrop_net::instance::Instance;

/// The safe update period `T* = 1/(4 D α β)` of Lemma 4 / Corollary 5.
///
/// For `T ≤ T*` every α-smooth policy satisfies `ΔΦ ≤ ½V ≤ 0` per
/// phase and hence converges to the set of Wardrop equilibria.
/// Degenerate inputs (`β = 0` or `α = 0`: latencies never change, or
/// agents never move) yield `+∞` — any period is safe.
///
/// # Panics
///
/// Panics if `alpha` is negative or non-finite.
pub fn safe_update_period(instance: &Instance, alpha: f64) -> f64 {
    assert!(alpha.is_finite() && alpha >= 0.0, "α must be ≥ 0");
    let d = instance.max_path_len() as f64;
    let beta = instance.slope_bound();
    let denom = 4.0 * d * alpha * beta;
    if denom <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / denom
    }
}

/// Theorem 6 (uniform sampling + linear migration): bound shape
/// `m / (ε T) · (ℓmax / δ)²` on the number of update periods not
/// starting at a `(δ, ε)`-equilibrium.
///
/// `m = max_i |P_i|` and `ℓmax` are read off the instance. The hidden
/// constant of the theorem (`2e` from the proof) is *not* included.
pub fn theorem6_bound(instance: &Instance, t_period: f64, delta: f64, eps: f64) -> f64 {
    let m = instance.max_commodity_path_count() as f64;
    let lmax = instance.latency_upper_bound();
    m / (eps * t_period) * (lmax / delta).powi(2)
}

/// Theorem 7 (proportional sampling + linear migration): bound shape
/// `1 / (ε T) · (ℓmax / δ)²` on the number of update periods not
/// starting at a *weak* `(δ, ε)`-equilibrium — independent of `|P|`.
pub fn theorem7_bound(instance: &Instance, t_period: f64, delta: f64, eps: f64) -> f64 {
    let lmax = instance.latency_upper_bound();
    1.0 / (eps * t_period) * (lmax / delta).powi(2)
}

/// Closed forms for the §3.2 two-link best-response oscillation.
///
/// The instance is `wardrop_net::builders::two_link_oscillator`:
/// two parallel links
/// with `ℓ(x) = max{0, β(x − ½)}` and demand 1. Starting from
/// `f₁(0) = 1/(e^{−T} + 1)` the best-response dynamics in the bulletin
/// board model is periodic with period `2T` for *every* `T > 0`.
pub mod oscillation {
    /// The oscillating initial condition `f₁(0) = 1/(e^{−T} + 1)`.
    pub fn initial_flow(t_period: f64) -> f64 {
        1.0 / ((-t_period).exp() + 1.0)
    }

    /// The exact orbit `f₁(t)` for the initial condition
    /// [`initial_flow`].
    ///
    /// Within even phases the over-loaded link 1 decays exponentially;
    /// within odd phases it fills back up symmetrically.
    pub fn orbit_f1(t: f64, t_period: f64) -> f64 {
        let f10 = initial_flow(t_period);
        // Reduce to the fundamental domain [0, 2T).
        let cycle = 2.0 * t_period;
        let s = t - (t / cycle).floor() * cycle;
        if s < t_period {
            // f₁ > ½ at phase start: link 1 drains.
            f10 * (-s).exp()
        } else {
            // f₁ < ½ at phase start: link 1 refills.
            let f1t = f10 * (-t_period).exp();
            1.0 - (1.0 - f1t) * (-(s - t_period)).exp()
        }
    }

    /// The sustained deviation from the Wardrop latency at phase
    /// starts: `X = β (1 − e^{−T}) / (2 e^{−T} + 2)` (§3.2).
    pub fn deviation(beta: f64, t_period: f64) -> f64 {
        let e = (-t_period).exp();
        beta * (1.0 - e) / (2.0 * e + 2.0)
    }

    /// The largest update period guaranteeing deviation at most `ε`:
    /// `T ≤ ln((1 + 2ε/β) / (1 − 2ε/β)) = O(ε/β)`.
    ///
    /// Returns `None` when `2ε/β ≥ 1`: the deviation `X` is always
    /// below `β/2`, so no update period can violate the target — the
    /// constraint is vacuous.
    pub fn max_period_for_deviation(beta: f64, eps: f64) -> Option<f64> {
        let r = 2.0 * eps / beta;
        if r >= 1.0 {
            None
        } else {
            Some(((1.0 + r) / (1.0 - r)).ln())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wardrop_net::builders;

    #[test]
    fn safe_period_matches_formula() {
        let inst = builders::braess(); // D = 3, β = 1
        let alpha = 0.5;
        let t = safe_update_period(&inst, alpha);
        assert!((t - 1.0 / (4.0 * 3.0 * 0.5 * 1.0)).abs() < 1e-12);
    }

    #[test]
    fn safe_period_infinite_for_constant_latencies() {
        let inst = builders::parallel_links(vec![
            wardrop_net::Latency::Constant(1.0),
            wardrop_net::Latency::Constant(2.0),
        ]);
        assert_eq!(safe_update_period(&inst, 1.0), f64::INFINITY);
        let inst2 = builders::pigou();
        assert_eq!(safe_update_period(&inst2, 0.0), f64::INFINITY);
    }

    #[test]
    fn theorem_bounds_scaling() {
        let inst = builders::uniform_parallel_links(8);
        let b6 = theorem6_bound(&inst, 0.1, 0.05, 0.1);
        let b7 = theorem7_bound(&inst, 0.1, 0.05, 0.1);
        // Theorem 6 carries the extra factor m = 8.
        assert!((b6 / b7 - 8.0).abs() < 1e-9);
        // Halving δ quadruples both bounds.
        assert!((theorem6_bound(&inst, 0.1, 0.025, 0.1) / b6 - 4.0).abs() < 1e-9);
        // Halving T doubles both bounds.
        assert!((theorem7_bound(&inst, 0.05, 0.05, 0.1) / b7 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn oscillation_initial_flow_above_half() {
        for t in [0.01, 0.1, 1.0, 3.0] {
            let f = oscillation::initial_flow(t);
            assert!(f > 0.5 && f < 1.0);
        }
    }

    #[test]
    fn orbit_is_periodic_with_period_2t() {
        let t_period = 0.7;
        for t in [0.0, 0.3, 0.9, 1.2] {
            let a = oscillation::orbit_f1(t, t_period);
            let b = oscillation::orbit_f1(t + 2.0 * t_period, t_period);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn orbit_endpoints_match_paper() {
        let t_period = 0.5;
        let f10 = oscillation::initial_flow(t_period);
        assert!((oscillation::orbit_f1(0.0, t_period) - f10).abs() < 1e-12);
        // f₁(T) = f₁(0) e^{−T} < ½.
        let f1t = f10 * (-t_period).exp();
        assert!((oscillation::orbit_f1(t_period, t_period) - f1t).abs() < 1e-12);
        assert!(f1t < 0.5);
        // f₁(2T) = f₁(0) (paper's calculation).
        assert!((oscillation::orbit_f1(2.0 * t_period, t_period) - f10).abs() < 1e-12);
    }

    #[test]
    fn deviation_matches_direct_evaluation() {
        // X = β (f₁(0) − ½) must equal the closed form.
        for (beta, t_period) in [(1.0, 0.3), (4.0, 1.0), (0.5, 2.0)] {
            let f10 = oscillation::initial_flow(t_period);
            let direct = beta * (f10 - 0.5);
            let formula = oscillation::deviation(beta, t_period);
            assert!((direct - formula).abs() < 1e-12);
        }
    }

    #[test]
    fn max_period_inverts_deviation() {
        let beta = 2.0;
        let eps = 0.3;
        let t = oscillation::max_period_for_deviation(beta, eps).unwrap();
        // At the critical period the deviation equals ε.
        let x = oscillation::deviation(beta, t);
        assert!((x - eps).abs() < 1e-9);
        // Below it, the deviation is smaller.
        assert!(oscillation::deviation(beta, 0.5 * t) < eps);
    }

    #[test]
    fn max_period_is_o_of_eps_over_beta() {
        // For small ε/β, T(ε) ≈ 4ε/β.
        let beta = 1.0;
        let eps = 1e-4;
        let t = oscillation::max_period_for_deviation(beta, eps).unwrap();
        assert!((t / (4.0 * eps / beta) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn max_period_none_when_unconstrained() {
        assert!(oscillation::max_period_for_deviation(1.0, 0.5).is_none());
        assert!(oscillation::max_period_for_deviation(1.0, 0.49).is_some());
    }

    #[test]
    #[should_panic(expected = "α must be")]
    fn negative_alpha_rejected() {
        let inst = builders::pigou();
        let _ = safe_update_period(&inst, -1.0);
    }
}
