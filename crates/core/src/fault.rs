//! Fault injection for the bulletin board — the information channel as
//! a lossy, degrading medium.
//!
//! The paper's model assumes a perfectly periodic, lossless, uniform
//! board refresh. Real metric pipelines drop updates, deliver partial
//! snapshots, add measurement noise and suffer outages. A [`FaultPlan`]
//! composes these failure modes into a deterministic, seeded schedule
//! that is applied **at post time only**: policies, rate kernels, the
//! integrator and the worker pool never see the fault layer — they keep
//! reading a [`BulletinBoard`], it just may hold degraded information.
//!
//! Supported board faults:
//!
//! | fault | knob | effect at a post |
//! |-------|------|-----------------|
//! | dropped post | [`FaultPlan::with_drop_probability`] | the whole refresh is skipped; the board stays stale |
//! | board outage | [`FaultPlan::with_outage`] | every post inside the phase window is skipped |
//! | partial update | [`FaultPlan::with_partial_updates`] | only a pseudo-random subset of edges refreshes |
//! | posting noise | [`FaultPlan::with_noise`] | refreshed edge latencies get bounded multiplicative noise |
//! | per-commodity staleness | [`FaultPlan::with_staleness`] | commodity `k`'s path rows refresh only every `T_k` posts |
//!
//! All pseudo-randomness is SplitMix64 keyed on `(seed, phase, lane)`,
//! so a plan is reproducible across runs, backends and lane counts. A
//! **zero-fault plan is inert**: every post takes the same
//! [`BulletinBoard::post_from_eval`] path as an unfaulted simulation,
//! so trajectories are bit-identical and the steady-state phase loop
//! stays allocation-free (pinned by `crates/core/tests/zero_alloc.rs`
//! and the `zero_fault_plan_is_bit_identical` proptest).
//!
//! # Examples
//!
//! ```
//! use wardrop_core::fault::FaultPlan;
//!
//! let plan = FaultPlan::new(7)
//!     .with_drop_probability(0.2)?
//!     .with_noise(0.05)?
//!     .with_partial_updates(0.5)?
//!     .with_staleness(0, 4)?
//!     .with_outage(30, 40)?;
//! assert!(!plan.is_trivial());
//! # Ok::<(), wardrop_net::NetError>(())
//! ```

use serde::{Deserialize, Serialize};
use wardrop_net::error::NetError;
use wardrop_net::eval::EvalWorkspace;
use wardrop_net::flow::{path_latencies_from_edge_into, FlowVec};
use wardrop_net::instance::Instance;
use wardrop_net::rng::splitmix_unit;

use crate::board::BulletinBoard;

/// A half-open phase window `[start, end)` during which the board never
/// refreshes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseWindow {
    /// First phase of the outage (inclusive).
    pub start: usize,
    /// First phase after the outage (exclusive).
    pub end: usize,
}

impl PhaseWindow {
    /// Whether `phase` falls inside the window.
    #[inline]
    pub fn contains(&self, phase: usize) -> bool {
        (self.start..self.end).contains(&phase)
    }
}

/// Per-commodity staleness: commodity `commodity`'s path latencies and
/// path flows refresh only every `period` posts (`T_k` in phase units).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommodityStaleness {
    /// The commodity whose board rows go stale.
    pub commodity: usize,
    /// Refresh period in posts (`1` = every post, i.e. no staleness).
    pub period: usize,
}

fn default_refresh_fraction() -> f64 {
    1.0
}

/// A seeded, deterministic composition of bulletin-board faults.
///
/// Build with the fallible `with_*` methods (each rejects NaN,
/// negative and non-finite knobs with [`NetError::InvalidFault`]), or
/// deserialize from JSON and gate through [`FaultPlan::validate`]. See
/// the [module docs](self) for the fault taxonomy.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    drop_probability: f64,
    refresh_fraction: f64,
    noise_amplitude: f64,
    staleness: Vec<CommodityStaleness>,
    outages: Vec<PhaseWindow>,
}

// Manual serde impls so that knobs missing from a sparse plan (older
// artefacts, hand-written `--faults` JSON) take the *plan* defaults —
// in particular `refresh_fraction` defaults to 1.0, not f64's 0.0.
impl Serialize for FaultPlan {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("seed".to_string(), self.seed.to_value()),
            (
                "drop_probability".to_string(),
                self.drop_probability.to_value(),
            ),
            (
                "refresh_fraction".to_string(),
                self.refresh_fraction.to_value(),
            ),
            (
                "noise_amplitude".to_string(),
                self.noise_amplitude.to_value(),
            ),
            ("staleness".to_string(), self.staleness.to_value()),
            ("outages".to_string(), self.outages.to_value()),
        ])
    }
}

impl Deserialize for FaultPlan {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected a map for FaultPlan"))?;
        let mut plan = FaultPlan::default();
        for (key, value) in entries {
            match key.as_str() {
                "seed" => plan.seed = Deserialize::from_value(value)?,
                "drop_probability" => plan.drop_probability = Deserialize::from_value(value)?,
                "refresh_fraction" => plan.refresh_fraction = Deserialize::from_value(value)?,
                "noise_amplitude" => plan.noise_amplitude = Deserialize::from_value(value)?,
                "staleness" => plan.staleness = Deserialize::from_value(value)?,
                "outages" => plan.outages = Deserialize::from_value(value)?,
                _ => {}
            }
        }
        Ok(plan)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_probability: 0.0,
            refresh_fraction: default_refresh_fraction(),
            noise_amplitude: 0.0,
            staleness: Vec::new(),
            outages: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A zero-fault plan with the given RNG seed. Until faults are
    /// added it is [trivial](FaultPlan::is_trivial) — attaching it to a
    /// simulation changes nothing.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Each scheduled post is independently dropped with probability
    /// `p` (the board stays stale for the whole phase).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidFault`] unless `0 ≤ p ≤ 1` and `p`
    /// is finite (NaN is rejected).
    pub fn with_drop_probability(mut self, p: f64) -> Result<Self, NetError> {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(NetError::InvalidFault(format!(
                "drop probability must be finite and in [0, 1], got {p}"
            )));
        }
        self.drop_probability = p;
        Ok(self)
    }

    /// Each post refreshes every edge independently with probability
    /// `fraction`; unrefreshed edges keep their previously posted flow
    /// and latency.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidFault`] unless `0 < fraction ≤ 1`
    /// and `fraction` is finite (NaN is rejected).
    pub fn with_partial_updates(mut self, fraction: f64) -> Result<Self, NetError> {
        if !(fraction.is_finite() && fraction > 0.0 && fraction <= 1.0) {
            return Err(NetError::InvalidFault(format!(
                "refresh fraction must be finite and in (0, 1], got {fraction}"
            )));
        }
        self.refresh_fraction = fraction;
        Ok(self)
    }

    /// Refreshed edge latencies are posted as
    /// `ℓ_e · (1 + amplitude · u)` with `u ∈ [−1, 1)` drawn per
    /// `(phase, edge)` — bounded multiplicative noise that keeps the
    /// posted values positive.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidFault`] unless `0 ≤ amplitude < 1`
    /// and `amplitude` is finite (NaN, negative and non-finite noise
    /// factors are rejected).
    pub fn with_noise(mut self, amplitude: f64) -> Result<Self, NetError> {
        if !amplitude.is_finite() || !(0.0..1.0).contains(&amplitude) {
            return Err(NetError::InvalidFault(format!(
                "noise amplitude must be finite and in [0, 1), got {amplitude}"
            )));
        }
        self.noise_amplitude = amplitude;
        Ok(self)
    }

    /// Commodity `commodity`'s path latencies and path flows refresh
    /// only every `period` posts (`T_k` staleness). Repeated calls for
    /// the same commodity overwrite the period.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidFault`] if `period == 0`.
    pub fn with_staleness(mut self, commodity: usize, period: usize) -> Result<Self, NetError> {
        if period == 0 {
            return Err(NetError::InvalidFault(
                "staleness period must be at least 1 post".into(),
            ));
        }
        if let Some(s) = self.staleness.iter_mut().find(|s| s.commodity == commodity) {
            s.period = period;
        } else {
            self.staleness
                .push(CommodityStaleness { commodity, period });
        }
        Ok(self)
    }

    /// Adds a full board outage over the half-open phase window
    /// `[start, end)`: every post inside it is skipped.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidFault`] if the window is empty
    /// (`start ≥ end`).
    pub fn with_outage(mut self, start: usize, end: usize) -> Result<Self, NetError> {
        if start >= end {
            return Err(NetError::InvalidFault(format!(
                "outage window [{start}, {end}) is empty"
            )));
        }
        self.outages.push(PhaseWindow { start, end });
        Ok(self)
    }

    /// The seed of the deterministic fault stream.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-post drop probability.
    #[inline]
    pub fn drop_probability(&self) -> f64 {
        self.drop_probability
    }

    /// The per-edge refresh probability of a post.
    #[inline]
    pub fn refresh_fraction(&self) -> f64 {
        self.refresh_fraction
    }

    /// The multiplicative noise amplitude on posted edge latencies.
    #[inline]
    pub fn noise_amplitude(&self) -> f64 {
        self.noise_amplitude
    }

    /// The per-commodity staleness entries.
    #[inline]
    pub fn staleness(&self) -> &[CommodityStaleness] {
        &self.staleness
    }

    /// The outage windows.
    #[inline]
    pub fn outages(&self) -> &[PhaseWindow] {
        &self.outages
    }

    /// Whether the plan can never perturb a post — attaching a trivial
    /// plan is bit-identical to running without one.
    pub fn is_trivial(&self) -> bool {
        self.drop_probability == 0.0
            && self.refresh_fraction >= 1.0
            && self.noise_amplitude == 0.0
            && self.staleness.iter().all(|s| s.period <= 1)
            && self.outages.is_empty()
    }

    /// Re-checks every knob — the gate for plans that bypassed the
    /// builder (e.g. deserialized from an artefact or a `--faults`
    /// flag).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidFault`] describing the first bad
    /// knob.
    pub fn validate(&self) -> Result<(), NetError> {
        FaultPlan::new(self.seed)
            .with_drop_probability(self.drop_probability)?
            .with_partial_updates(self.refresh_fraction)?
            .with_noise(self.noise_amplitude)?;
        for s in &self.staleness {
            if s.period == 0 {
                return Err(NetError::InvalidFault(format!(
                    "staleness period for commodity {} must be at least 1 post",
                    s.commodity
                )));
            }
        }
        for w in &self.outages {
            if w.start >= w.end {
                return Err(NetError::InvalidFault(format!(
                    "outage window [{}, {}) is empty",
                    w.start, w.end
                )));
            }
        }
        Ok(())
    }
}

/// Running counters of what the fault layer actually did — the cheap,
/// allocation-free audit trail of a faulted run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Scheduled posts seen (one per phase).
    pub posts: usize,
    /// Posts skipped entirely (drop fault or outage window).
    pub dropped: usize,
    /// Posts that went through the degraded path (partial / noisy /
    /// stale) instead of a clean whole-board refresh.
    pub degraded: usize,
    /// Edges left stale by partial updates, summed over posts.
    pub edges_skipped: usize,
    /// Commodity rows left stale by `T_k` staleness, summed over posts.
    pub stale_commodity_rows: usize,
}

/// Distinct SplitMix64 sub-streams of a plan's seed, so the drop,
/// partial-update and noise decisions at a phase are independent.
const STREAM_DROP: u64 = 0x9e37_79b9_7f4a_7c15;
const STREAM_PARTIAL: u64 = 0xbf58_476d_1ce4_e5b9;
const STREAM_NOISE: u64 = 0x94d0_49bb_1331_11eb;

/// One uniform draw in `[0, 1)` keyed on `(seed, stream, phase, lane)`.
#[inline]
fn fault_unit(seed: u64, stream: u64, phase: usize, lane: usize) -> f64 {
    splitmix_unit(
        seed ^ stream
            ^ (phase as u64).wrapping_mul(0xd604_5623_35f0_0b2d)
            ^ (lane as u64).wrapping_mul(0xa24b_aed4_963e_e407),
    )
}

/// The mutable bookkeeping of a [`FaultState`], as captured in an
/// engine checkpoint. The plan itself travels in the checkpointed
/// configuration; only the refresh cursors, the bootstrap flag and
/// the running counters need saving — the fault *decisions* are a
/// pure function of `(seed, stream, phase, lane)` and replay
/// identically after a restore.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSnapshot {
    /// Whether the board holds at least one real post.
    pub posted: bool,
    /// Post index of each commodity's last refresh.
    pub last_refresh: Vec<usize>,
    /// Running counters at the checkpoint.
    pub stats: FaultStats,
}

/// The attachable runtime of a [`FaultPlan`]: pre-sized scratch
/// buffers, per-commodity refresh bookkeeping and the running
/// [`FaultStats`]. One state per simulation; posts are replayed
/// identically for the same plan and phase indices.
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    /// Per-commodity refresh period (`staleness` flattened; 1 = fresh).
    periods: Vec<usize>,
    /// Post index of each commodity's last refresh.
    last_refresh: Vec<usize>,
    /// Scratch for path latencies recomputed from the degraded board.
    path_scratch: Vec<f64>,
    /// Whether the board holds at least one real post (the bootstrap
    /// post is always clean — faults need something to degrade).
    posted: bool,
    stats: FaultStats,
}

impl FaultState {
    /// Validates `plan` against `instance` and pre-sizes every buffer
    /// the per-post fault path needs, so posting is allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidFault`] if the plan is malformed or
    /// names a commodity the instance does not have.
    pub fn new(plan: FaultPlan, instance: &Instance) -> Result<Self, NetError> {
        plan.validate()?;
        let k = instance.num_commodities();
        let mut periods = vec![1usize; k];
        for s in &plan.staleness {
            if s.commodity >= k {
                return Err(NetError::InvalidFault(format!(
                    "staleness names commodity {} but the instance has {k}",
                    s.commodity
                )));
            }
            periods[s.commodity] = s.period;
        }
        Ok(FaultState {
            plan,
            periods,
            last_refresh: vec![0; k],
            path_scratch: vec![0.0; instance.num_paths()],
            posted: false,
            stats: FaultStats::default(),
        })
    }

    /// The plan driving this state.
    #[inline]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The running fault counters.
    #[inline]
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Captures the mutable bookkeeping for a checkpoint.
    pub fn snapshot(&self) -> FaultSnapshot {
        FaultSnapshot {
            posted: self.posted,
            last_refresh: self.last_refresh.clone(),
            stats: self.stats,
        }
    }

    /// Restores checkpointed bookkeeping into this state (built from
    /// the same plan and an instance of the same shape), so subsequent
    /// posts replay exactly as they would have in the original run.
    ///
    /// # Errors
    ///
    /// A message when the refresh table does not match this state's
    /// commodity count.
    pub fn restore(&mut self, snapshot: &FaultSnapshot) -> Result<(), String> {
        if snapshot.last_refresh.len() != self.last_refresh.len() {
            return Err(format!(
                "fault refresh table has {} rows, state expects {}",
                snapshot.last_refresh.len(),
                self.last_refresh.len()
            ));
        }
        self.posted = snapshot.posted;
        self.last_refresh.copy_from_slice(&snapshot.last_refresh);
        self.stats = snapshot.stats;
        Ok(())
    }

    /// Re-sizes the scratch buffers after the owning simulation changed
    /// shape (the edge backend grows its active path set), and forces
    /// the next post to be a clean bootstrap — the rebuilt board starts
    /// out blank, so there is nothing meaningful to leave stale.
    pub fn rebind(&mut self, instance: &Instance) {
        self.path_scratch.resize(instance.num_paths(), 0.0);
        self.posted = false;
    }

    /// Resets the refresh bookkeeping and counters for a fresh run of
    /// the same plan (buffer shapes are kept).
    pub fn reset(&mut self) {
        self.posted = false;
        self.last_refresh.fill(0);
        self.stats = FaultStats::default();
    }

    /// Posts the board for phase `phase`, applying every fault the plan
    /// schedules there. The degenerate cases — the bootstrap post, and
    /// any phase where no fault fires — take the exact
    /// [`BulletinBoard::post_from_eval`] path of an unfaulted
    /// simulation, byte for byte.
    ///
    /// `eval` must hold the evaluation of `flow` (the engine invariant
    /// shared with [`BulletinBoard::post_from_eval`]).
    ///
    /// # Panics
    ///
    /// Panics if board, eval or state were sized for a different
    /// instance.
    pub fn post(
        &mut self,
        board: &mut BulletinBoard,
        instance: &Instance,
        eval: &EvalWorkspace,
        flow: &FlowVec,
        phase: usize,
        time: f64,
    ) {
        self.stats.posts += 1;
        // Bootstrap: the very first post (and the first after a
        // rebind) is always clean — a dropped post would leave the
        // all-zero placeholder board in force.
        if !self.posted {
            board.post_from_eval(eval, flow, time);
            self.posted = true;
            self.last_refresh.fill(phase);
            return;
        }

        let plan = &self.plan;
        let dropped = plan.outages.iter().any(|w| w.contains(phase))
            || (plan.drop_probability > 0.0
                && fault_unit(plan.seed, STREAM_DROP, phase, 0) < plan.drop_probability);
        if dropped {
            self.stats.dropped += 1;
            return;
        }

        let partial = plan.refresh_fraction < 1.0;
        let noisy = plan.noise_amplitude > 0.0;
        let all_due = (0..self.periods.len())
            .all(|i| self.periods[i] <= 1 || phase >= self.last_refresh[i] + self.periods[i]);
        if !partial && !noisy && all_due {
            // Nothing fires this phase: the clean whole-board path.
            board.post_from_eval(eval, flow, time);
            self.last_refresh.fill(phase);
            return;
        }

        self.stats.degraded += 1;
        let seed = plan.seed;
        let refresh_fraction = plan.refresh_fraction;
        let noise_amplitude = plan.noise_amplitude;
        board.set_time(time);
        let (edge_flows, edge_latencies, path_latencies, path_flows) = board.buffers_mut();
        for e in 0..edge_latencies.len() {
            if partial && fault_unit(seed, STREAM_PARTIAL, phase, e) >= refresh_fraction {
                self.stats.edges_skipped += 1;
                continue;
            }
            let mut le = eval.edge_latencies()[e];
            if noisy {
                let u = fault_unit(seed, STREAM_NOISE, phase, e) * 2.0 - 1.0;
                le *= 1.0 + noise_amplitude * u;
            }
            edge_latencies[e] = le;
            edge_flows[e] = eval.edge_flows()[e];
        }
        // Path latencies follow from the (partially refreshed, noisy)
        // edge rows; stale commodities then keep their old rows.
        path_latencies_from_edge_into(instance, edge_latencies, &mut self.path_scratch);
        for i in 0..self.periods.len() {
            let due = self.periods[i] <= 1 || phase >= self.last_refresh[i] + self.periods[i];
            let range = instance.commodity_paths(i);
            if due {
                self.last_refresh[i] = phase;
                path_latencies[range.clone()].copy_from_slice(&self.path_scratch[range.clone()]);
                path_flows[range.clone()].copy_from_slice(&flow.values()[range]);
            } else {
                self.stats.stale_commodity_rows += range.len();
            }
        }
    }

    /// As [`FaultState::post`], but sourced from raw edge/path slices
    /// instead of an [`EvalWorkspace`] — the post hook for discrete
    /// -event board refreshes whose experienced edge latencies include
    /// quantities the workspace does not model (M/M/c queueing delays
    /// in the open-system agent simulator). The clean paths go through
    /// [`BulletinBoard::post_from_parts`]; the degraded paths apply the
    /// exact same drop/partial/noise/staleness schedule as [`FaultState::post`]
    /// (the fault RNG streams are keyed by `phase`, not by entry point).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree with the board or state.
    #[allow(clippy::too_many_arguments)]
    pub fn post_parts(
        &mut self,
        board: &mut BulletinBoard,
        instance: &Instance,
        true_edge_flows: &[f64],
        true_edge_latencies: &[f64],
        true_path_flows: &[f64],
        phase: usize,
        time: f64,
    ) {
        self.stats.posts += 1;
        if !self.posted {
            board.post_from_parts(
                instance,
                true_edge_flows,
                true_edge_latencies,
                true_path_flows,
                time,
            );
            self.posted = true;
            self.last_refresh.fill(phase);
            return;
        }

        let plan = &self.plan;
        let dropped = plan.outages.iter().any(|w| w.contains(phase))
            || (plan.drop_probability > 0.0
                && fault_unit(plan.seed, STREAM_DROP, phase, 0) < plan.drop_probability);
        if dropped {
            self.stats.dropped += 1;
            return;
        }

        let partial = plan.refresh_fraction < 1.0;
        let noisy = plan.noise_amplitude > 0.0;
        let all_due = (0..self.periods.len())
            .all(|i| self.periods[i] <= 1 || phase >= self.last_refresh[i] + self.periods[i]);
        if !partial && !noisy && all_due {
            board.post_from_parts(
                instance,
                true_edge_flows,
                true_edge_latencies,
                true_path_flows,
                time,
            );
            self.last_refresh.fill(phase);
            return;
        }

        self.stats.degraded += 1;
        let seed = plan.seed;
        let refresh_fraction = plan.refresh_fraction;
        let noise_amplitude = plan.noise_amplitude;
        board.set_time(time);
        let (edge_flows, edge_latencies, path_latencies, path_flows) = board.buffers_mut();
        for e in 0..edge_latencies.len() {
            if partial && fault_unit(seed, STREAM_PARTIAL, phase, e) >= refresh_fraction {
                self.stats.edges_skipped += 1;
                continue;
            }
            let mut le = true_edge_latencies[e];
            if noisy {
                let u = fault_unit(seed, STREAM_NOISE, phase, e) * 2.0 - 1.0;
                le *= 1.0 + noise_amplitude * u;
            }
            edge_latencies[e] = le;
            edge_flows[e] = true_edge_flows[e];
        }
        path_latencies_from_edge_into(instance, edge_latencies, &mut self.path_scratch);
        for i in 0..self.periods.len() {
            let due = self.periods[i] <= 1 || phase >= self.last_refresh[i] + self.periods[i];
            let range = instance.commodity_paths(i);
            if due {
                self.last_refresh[i] = phase;
                path_latencies[range.clone()].copy_from_slice(&self.path_scratch[range.clone()]);
                path_flows[range.clone()].copy_from_slice(&true_path_flows[range]);
            } else {
                self.stats.stale_commodity_rows += range.len();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wardrop_net::builders;

    fn eval_of(instance: &Instance, flow: &FlowVec) -> EvalWorkspace {
        let mut eval = EvalWorkspace::new(instance);
        eval.evaluate(instance, flow);
        eval
    }

    #[test]
    fn builder_rejects_bad_knobs_with_typed_errors() {
        for bad in [f64::NAN, -0.1, 1.5, f64::INFINITY] {
            assert!(matches!(
                FaultPlan::new(0).with_drop_probability(bad),
                Err(NetError::InvalidFault(_))
            ));
            assert!(matches!(
                FaultPlan::new(0).with_noise(bad),
                Err(NetError::InvalidFault(_))
            ));
        }
        for bad in [f64::NAN, -0.1, 0.0, 1.5, f64::NEG_INFINITY] {
            assert!(matches!(
                FaultPlan::new(0).with_partial_updates(bad),
                Err(NetError::InvalidFault(_))
            ));
        }
        assert!(matches!(
            FaultPlan::new(0).with_staleness(0, 0),
            Err(NetError::InvalidFault(_))
        ));
        assert!(matches!(
            FaultPlan::new(0).with_outage(5, 5),
            Err(NetError::InvalidFault(_))
        ));
        // Noise amplitude 1 would allow a zero posted latency.
        assert!(FaultPlan::new(0).with_noise(1.0).is_err());
        assert!(FaultPlan::new(0).with_noise(0.999).is_ok());
    }

    #[test]
    fn trivial_plan_posts_exactly_like_post_from_eval() {
        let inst = builders::braess();
        let flow = FlowVec::uniform(&inst);
        let eval = eval_of(&inst, &flow);
        let mut plain = BulletinBoard::for_instance(&inst);
        plain.post_from_eval(&eval, &flow, 1.0);
        let mut faulted = BulletinBoard::for_instance(&inst);
        let mut state = FaultState::new(FaultPlan::new(3), &inst).unwrap();
        assert!(state.plan().is_trivial());
        state.post(&mut faulted, &inst, &eval, &flow, 0, 1.0);
        assert_eq!(plain, faulted);
        assert_eq!(state.stats().degraded, 0);
        assert_eq!(state.stats().dropped, 0);
    }

    #[test]
    fn dropped_posts_keep_the_board_stale() {
        let inst = builders::pigou();
        let f0 = FlowVec::from_values(&inst, vec![0.5, 0.5]).unwrap();
        let f1 = FlowVec::from_values(&inst, vec![0.9, 0.1]).unwrap();
        let plan = FaultPlan::new(0).with_outage(1, 3).unwrap();
        let mut state = FaultState::new(plan, &inst).unwrap();
        let mut board = BulletinBoard::for_instance(&inst);
        state.post(&mut board, &inst, &eval_of(&inst, &f0), &f0, 0, 0.0);
        let posted = board.clone();
        // Phases 1 and 2 fall in the outage: the board must not move.
        state.post(&mut board, &inst, &eval_of(&inst, &f1), &f1, 1, 1.0);
        state.post(&mut board, &inst, &eval_of(&inst, &f1), &f1, 2, 2.0);
        assert_eq!(board, posted);
        assert_eq!(state.stats().dropped, 2);
        // Phase 3 is past the outage: the refresh goes through.
        state.post(&mut board, &inst, &eval_of(&inst, &f1), &f1, 3, 3.0);
        assert_eq!(board.path_flows(), f1.values());
    }

    #[test]
    fn bootstrap_post_ignores_faults() {
        let inst = builders::pigou();
        let f = FlowVec::uniform(&inst);
        // An outage covering phase 0 cannot suppress the first post.
        let plan = FaultPlan::new(0).with_outage(0, 10).unwrap();
        let mut state = FaultState::new(plan, &inst).unwrap();
        let mut board = BulletinBoard::for_instance(&inst);
        state.post(&mut board, &inst, &eval_of(&inst, &f), &f, 0, 0.0);
        assert_eq!(board.path_flows(), f.values());
        assert_eq!(state.stats().dropped, 0);
    }

    #[test]
    fn noise_is_bounded_and_deterministic() {
        let inst = builders::braess();
        let f = FlowVec::uniform(&inst);
        let eval = eval_of(&inst, &f);
        let amp = 0.2;
        let plan = FaultPlan::new(11).with_noise(amp).unwrap();
        let run = |plan: &FaultPlan| {
            let mut state = FaultState::new(plan.clone(), &inst).unwrap();
            let mut board = BulletinBoard::for_instance(&inst);
            state.post(&mut board, &inst, &eval, &f, 0, 0.0);
            state.post(&mut board, &inst, &eval, &f, 1, 1.0);
            board
        };
        let a = run(&plan);
        let b = run(&plan);
        assert_eq!(a, b, "same seed, same noise");
        for (noisy, &truth) in a.edge_latencies().iter().zip(eval.edge_latencies()) {
            assert!(
                (noisy - truth).abs() <= amp * truth + 1e-12,
                "noise out of bounds: {noisy} vs {truth}"
            );
        }
        // A different seed perturbs differently.
        let c = run(&FaultPlan::new(12).with_noise(amp).unwrap());
        assert_ne!(a.edge_latencies(), c.edge_latencies());
    }

    #[test]
    fn partial_updates_leave_unrefreshed_edges_stale() {
        let inst = builders::grid_network(4, 4, 5);
        let f0 = FlowVec::uniform(&inst);
        let f1 = FlowVec::concentrated(&inst);
        let plan = FaultPlan::new(21).with_partial_updates(0.3).unwrap();
        let mut state = FaultState::new(plan, &inst).unwrap();
        let mut board = BulletinBoard::for_instance(&inst);
        state.post(&mut board, &inst, &eval_of(&inst, &f0), &f0, 0, 0.0);
        let before = board.clone();
        let eval1 = eval_of(&inst, &f1);
        state.post(&mut board, &inst, &eval1, &f1, 1, 1.0);
        let stale = board
            .edge_latencies()
            .iter()
            .zip(before.edge_latencies())
            .filter(|(now, old)| now == old)
            .count();
        assert!(state.stats().edges_skipped > 0);
        assert!(
            stale >= state.stats().edges_skipped,
            "{stale} stale edges for {} skips",
            state.stats().edges_skipped
        );
        // Refreshed edges carry the new truth.
        let refreshed = board
            .edge_latencies()
            .iter()
            .zip(eval1.edge_latencies())
            .filter(|(now, truth)| now == truth)
            .count();
        assert!(refreshed > 0);
    }

    #[test]
    fn staleness_holds_commodity_rows_for_the_period() {
        let inst = builders::multi_commodity_grid(2, 2, 9);
        let f0 = FlowVec::uniform(&inst);
        let f1 = FlowVec::concentrated(&inst);
        let plan = FaultPlan::new(0).with_staleness(0, 3).unwrap();
        let mut state = FaultState::new(plan, &inst).unwrap();
        let mut board = BulletinBoard::for_instance(&inst);
        state.post(&mut board, &inst, &eval_of(&inst, &f0), &f0, 0, 0.0);
        let r0 = inst.commodity_paths(0);
        let r1 = inst.commodity_paths(1);
        let held = board.path_flows()[r0.clone()].to_vec();
        let eval1 = eval_of(&inst, &f1);
        // Posts 1 and 2: commodity 0 is held, commodity 1 refreshes.
        for phase in [1usize, 2] {
            state.post(&mut board, &inst, &eval1, &f1, phase, phase as f64);
            assert_eq!(&board.path_flows()[r0.clone()], held.as_slice());
            assert_eq!(&board.path_flows()[r1.clone()], &f1.values()[r1.clone()]);
        }
        // Post 3 = last_refresh + period: commodity 0 finally refreshes.
        state.post(&mut board, &inst, &eval1, &f1, 3, 3.0);
        assert_eq!(&board.path_flows()[r0.clone()], &f1.values()[r0.clone()]);
        assert!(state.stats().stale_commodity_rows > 0);
    }

    #[test]
    fn state_rejects_out_of_range_commodity() {
        let inst = builders::pigou();
        let plan = FaultPlan::new(0).with_staleness(5, 2).unwrap();
        assert!(matches!(
            FaultState::new(plan, &inst),
            Err(NetError::InvalidFault(_))
        ));
    }

    #[test]
    fn serde_round_trip_preserves_the_plan() {
        let plan = FaultPlan::new(9)
            .with_drop_probability(0.1)
            .unwrap()
            .with_noise(0.05)
            .unwrap()
            .with_partial_updates(0.75)
            .unwrap()
            .with_staleness(1, 4)
            .unwrap()
            .with_outage(10, 20)
            .unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
        back.validate().unwrap();
        // Partial plans (older artefacts) default the missing knobs.
        let sparse: FaultPlan = serde_json::from_str(r#"{"seed": 3}"#).unwrap();
        assert!(sparse.is_trivial());
        assert_eq!(sparse.refresh_fraction(), 1.0);
        // A hand-written NaN knob is caught by validate().
        let bad: FaultPlan =
            serde_json::from_str(r#"{"seed": 3, "noise_amplitude": -0.5}"#).unwrap();
        assert!(matches!(bad.validate(), Err(NetError::InvalidFault(_))));
    }
}
