//! The ensemble sweep runner: independent [`Simulation`] runs fanned
//! across a [`WorkerPool`], with one reusable engine workspace per
//! lane.
//!
//! Parameter sweeps (E4/E5), scenario batteries (`wardrop-lab`) and
//! thread-scaling benches all share the same shape: hundreds to
//! thousands of *independent* simulations over a small set of instance
//! shapes. This module packages that pattern:
//!
//! * each lane lazily builds one [`Simulation`] and **reuses** it run
//!   to run through [`Simulation::rebind`] whenever the next spec has
//!   the same shape — the O(P) evaluation/rate buffers (and any lazy
//!   dense blocks) are allocated once per lane, not once per run;
//! * inner simulations are forced serial
//!   ([`Simulation::with_worker_pool`] with `None`), so ensemble
//!   parallelism and within-run parallelism never multiply;
//! * results land in spec order regardless of which lane ran which
//!   spec, and every run is deterministic in isolation, so the
//!   ensemble output is **independent of the lane count** — including
//!   `pool = None`.

use wardrop_net::flow::FlowVec;
use wardrop_net::instance::Instance;
use wardrop_pool::WorkerPool;

use crate::engine::{Dynamics, Simulation, SimulationConfig};
use crate::trajectory::Trajectory;

/// One independent run of an ensemble sweep.
#[derive(Debug)]
pub struct RunSpec<'a, D: ?Sized> {
    /// The instance to simulate.
    pub instance: &'a Instance,
    /// The dynamics driving this run (may differ per spec — a lane's
    /// simulation swaps dynamics via [`Simulation::set_dynamics`]).
    pub dynamics: &'a D,
    /// Initial flow.
    pub f0: FlowVec,
    /// Run configuration. Its `parallelism` field is ignored — inner
    /// runs are always serial; parallelism lives at the ensemble level.
    pub config: SimulationConfig,
}

impl<'a, D: Dynamics + ?Sized> RunSpec<'a, D> {
    /// Bundles one run.
    pub fn new(
        instance: &'a Instance,
        dynamics: &'a D,
        f0: FlowVec,
        config: SimulationConfig,
    ) -> Self {
        RunSpec {
            instance,
            dynamics,
            f0,
            config,
        }
    }
}

/// Runs every spec and folds each with `per_run`, fanning the runs
/// across `pool` (serially when `None` or single-lane). `per_run`
/// receives the spec index and an in-flight simulation positioned at
/// phase 0; it typically streams [`Simulation::step`] and returns a
/// count, a trajectory, or any `Send` summary.
///
/// Results are returned in spec order. Lane-local simulations are
/// reused across specs of identical shape (see the module docs), which
/// is bit-transparent: a rebound workspace replays a run exactly.
pub fn map_runs<'a, D, R, F>(
    pool: Option<&WorkerPool>,
    specs: &[RunSpec<'a, D>],
    per_run: F,
) -> Vec<R>
where
    D: Dynamics + ?Sized,
    R: Send,
    F: Fn(usize, &mut Simulation<'_, D>) -> R + Sync,
{
    let exec = |lane_sim: &mut Option<Simulation<'a, D>>, i: usize| -> R {
        let spec = &specs[i];
        let reusable = lane_sim
            .as_ref()
            .is_some_and(|sim| sim.shape_matches(spec.instance));
        if reusable {
            let sim = lane_sim.as_mut().expect("checked above");
            sim.set_dynamics(spec.dynamics);
            sim.rebind(spec.instance, &spec.f0, &spec.config);
        } else {
            *lane_sim = Some(Simulation::with_worker_pool(
                spec.instance,
                spec.dynamics,
                &spec.f0,
                &spec.config,
                None,
            ));
        }
        per_run(i, lane_sim.as_mut().expect("simulation just ensured"))
    };

    match pool {
        Some(pool) if pool.lanes() > 1 && specs.len() > 1 => {
            pool.map_collect(specs.len(), || None, |lane_sim, i| exec(lane_sim, i))
        }
        _ => {
            let mut lane_sim: Option<Simulation<'a, D>> = None;
            (0..specs.len()).map(|i| exec(&mut lane_sim, i)).collect()
        }
    }
}

/// Runs every spec to completion, returning one [`Trajectory`] per
/// spec (in spec order). The materialising convenience over
/// [`map_runs`]; prefer a streaming `per_run` fold when only a scalar
/// per run is needed — trajectories of long runs are large.
pub fn run_many<'a, D>(pool: Option<&WorkerPool>, specs: &[RunSpec<'a, D>]) -> Vec<Trajectory>
where
    D: Dynamics + ?Sized,
{
    map_runs(pool, specs, |_, sim| sim.drive())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, SimulationConfig};
    use crate::policy::{replicator, uniform_linear};
    use wardrop_net::builders;

    fn specs_for<'a, D: Dynamics + ?Sized>(
        insts: &'a [Instance],
        dynamics: &'a D,
        config: &SimulationConfig,
    ) -> Vec<RunSpec<'a, D>> {
        insts
            .iter()
            .map(|inst| RunSpec::new(inst, dynamics, FlowVec::uniform(inst), config.clone()))
            .collect()
    }

    #[test]
    fn ensemble_matches_individual_runs_bitwise_for_any_lane_count() {
        let insts: Vec<Instance> = [3u64, 7, 11, 13, 17]
            .iter()
            .map(|s| builders::standard_random_links(6, *s))
            .collect();
        let policy = uniform_linear(&insts[0]);
        let config = SimulationConfig::new(0.2, 40).with_flows();
        let reference: Vec<Trajectory> = insts
            .iter()
            .map(|i| run(i, &policy, &FlowVec::uniform(i), &config))
            .collect();
        for lanes in [1usize, 2, 4] {
            let pool = WorkerPool::new(lanes);
            let specs = specs_for(&insts, &policy, &config);
            let got = run_many(Some(&pool), &specs);
            assert_eq!(got.len(), reference.len());
            for (g, r) in got.iter().zip(&reference) {
                assert_eq!(g.phases, r.phases, "lanes = {lanes}");
                assert_eq!(g.final_flow, r.final_flow, "lanes = {lanes}");
                assert_eq!(g.flows, r.flows, "lanes = {lanes}");
            }
        }
        // And with no pool at all.
        let specs = specs_for(&insts, &policy, &config);
        let got = run_many(None, &specs);
        for (g, r) in got.iter().zip(&reference) {
            assert_eq!(g.phases, r.phases);
        }
    }

    #[test]
    fn map_runs_streams_and_orders_results() {
        let insts: Vec<Instance> = (0..7)
            .map(|s| builders::standard_random_links(4, 100 + s))
            .collect();
        let policy = uniform_linear(&insts[0]);
        let config = SimulationConfig::new(0.25, 15);
        let specs = specs_for(&insts, &policy, &config);
        let pool = WorkerPool::new(3);
        let counts = map_runs(Some(&pool), &specs, |i, sim| {
            let mut steps = 0usize;
            while sim.step().is_some() {
                steps += 1;
            }
            (i, steps)
        });
        for (i, (idx, steps)) in counts.iter().enumerate() {
            assert_eq!(*idx, i, "results must land in spec order");
            assert_eq!(*steps, 15);
        }
    }

    #[test]
    fn mixed_dynamics_and_shapes_rebuild_lane_simulations() {
        let small = builders::standard_random_links(4, 1);
        let big = builders::standard_random_links(9, 2);
        let uni_small = uniform_linear(&small);
        let uni_big = uniform_linear(&big);
        let rep_small = replicator(&small);
        let config = SimulationConfig::new(0.2, 10);
        // Same shape, different dynamics → set_dynamics + rebind; new
        // shape → rebuild. All against dyn so the specs mix policies.
        let specs: Vec<RunSpec<'_, dyn Dynamics>> = vec![
            RunSpec::new(&small, &uni_small, FlowVec::uniform(&small), config.clone()),
            RunSpec::new(&small, &rep_small, FlowVec::uniform(&small), config.clone()),
            RunSpec::new(&big, &uni_big, FlowVec::uniform(&big), config.clone()),
        ];
        let got = run_many(None, &specs);
        assert_eq!(
            got[0].phases,
            run(&small, &uni_small, &FlowVec::uniform(&small), &config).phases
        );
        assert_eq!(
            got[1].phases,
            run(&small, &rep_small, &FlowVec::uniform(&small), &config).phases
        );
        assert_eq!(
            got[2].phases,
            run(&big, &uni_big, &FlowVec::uniform(&big), &config).phases
        );
    }
}
