//! Crash-resume bit-identity, property-tested across the policy zoo,
//! fault plans, guard configurations and scenario events — plus
//! component-level round-trip and corruption tests for every piece of
//! snapshotted state.
//!
//! The property: killing a run at an arbitrary phase, serialising the
//! engine through [`EngineSnapshot::to_bytes`], decoding the bytes
//! back and resuming with [`Simulation::from_snapshot`] yields exactly
//! the trajectory of the uninterrupted run — same phase records, same
//! final flow, and a byte-identical final snapshot (which pins the
//! board, guard log and fault counters bitwise).

use proptest::prelude::*;
use wardrop_core::engine::{Simulation, SimulationConfig};
use wardrop_core::fault::{FaultPlan, FaultSnapshot, FaultState};
use wardrop_core::guard::{GuardConfig, GuardSnapshot, SmoothnessGuard};
use wardrop_core::policy::{stock_policy_zoo, ReroutingPolicy};
use wardrop_core::snapshot::{EngineSnapshot, SnapshotError, SNAPSHOT_VERSION};
use wardrop_core::PhaseRecord;
use wardrop_net::builders;
use wardrop_net::flow::FlowVec;
use wardrop_net::graph::EdgeId;
use wardrop_net::instance::Instance;
use wardrop_net::scenario::{Event, EventAction};

const PHASES: usize = 30;

fn pick_instance(index: usize) -> Instance {
    match index % 3 {
        0 => builders::braess(),
        1 => builders::uniform_parallel_links(5),
        _ => builders::multi_commodity_grid(2, 2, 7),
    }
}

fn pick_faults(index: usize, seed: u64) -> Option<FaultPlan> {
    match index % 5 {
        0 => None,
        1 => Some(FaultPlan::new(seed).with_drop_probability(0.3).unwrap()),
        2 => Some(FaultPlan::new(seed).with_partial_updates(0.5).unwrap()),
        3 => Some(FaultPlan::new(seed).with_staleness(0, 3).unwrap()),
        _ => Some(
            FaultPlan::new(seed)
                .with_drop_probability(0.15)
                .unwrap()
                .with_noise(0.02)
                .unwrap(),
        ),
    }
}

fn pick_events(on: bool, instance: &Instance) -> Vec<Event> {
    if !on {
        return Vec::new();
    }
    let mut events = Vec::new();
    // Single-commodity demand is pinned to 1 by the paper's
    // normalisation, so the demand shift only applies when there are
    // several commodities.
    if instance.num_commodities() > 1 {
        events.push(Event::at(
            5,
            "demand-shift",
            EventAction::SetDemand {
                commodity: 0,
                demand: 0.7,
            },
        ));
    }
    events.push(Event::at(
        13,
        "degrade",
        EventAction::ScaleLatency {
            edge: EdgeId::from_index(0),
            factor: 1.6,
        },
    ));
    events
}

/// Steps `sim` with the daemon's event cadence (everything due at or
/// before the current phase boundary is applied before stepping),
/// stopping after `stop_after` total phases if given.
fn drive(
    sim: &mut Simulation<'_, dyn ReroutingPolicy>,
    events: &[Event],
    cursor: &mut usize,
    stop_after: Option<usize>,
) -> Vec<PhaseRecord> {
    let mut records = Vec::new();
    loop {
        if let Some(limit) = stop_after {
            if sim.phases_run() >= limit {
                break;
            }
        }
        while *cursor < events.len() && events[*cursor].at_phase <= sim.phases_run() {
            sim.apply_event(&events[*cursor].actions).unwrap();
            *cursor += 1;
        }
        match sim.step() {
            Some(record) => records.push(record),
            None => break,
        }
    }
    records
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite: kill at a random phase × the 12-policy zoo × fault
    /// plans × guard × scenario events, resume from serialized bytes,
    /// and demand the exact uninterrupted trajectory.
    #[test]
    fn crash_resume_is_bit_identical(
        (policy_index, instance_index) in (0usize..12, 0usize..3),
        (fault_index, guard_on) in (0usize..5, 0usize..2),
        (events_on, kill_phase) in (0usize..2, 1usize..PHASES - 1),
        fault_seed in 1u64..1_000,
    ) {
        let instance = pick_instance(instance_index);
        let policy =
            stock_policy_zoo(instance.latency_upper_bound()).swap_remove(policy_index);
        let dynamics: &dyn ReroutingPolicy = &*policy;
        let mut config = SimulationConfig::new(0.25, PHASES).with_flows();
        if let Some(plan) = pick_faults(fault_index, fault_seed) {
            config = config.with_faults(plan);
        }
        if guard_on == 1 {
            config = config.with_guard(GuardConfig::default());
        }
        let events = pick_events(events_on == 1, &instance);
        let f0 = FlowVec::uniform(&instance);

        // Uninterrupted reference.
        let mut reference = Simulation::new(&instance, dynamics, &f0, &config);
        let mut reference_cursor = 0;
        let reference_records = drive(&mut reference, &events, &mut reference_cursor, None);
        let reference_bytes = reference.snapshot().to_bytes();

        // Interrupted run: kill, serialise, decode, resume.
        let mut first = Simulation::new(&instance, dynamics, &f0, &config);
        let mut cursor = 0;
        let mut records = drive(&mut first, &events, &mut cursor, Some(kill_phase));
        let bytes = first.snapshot().to_bytes();
        drop(first);
        let decoded = EngineSnapshot::from_bytes(&bytes).unwrap();
        let mut resumed = Simulation::from_snapshot(dynamics, &decoded).unwrap();
        // Cursor recovery exactly as the daemon does it: everything
        // due strictly before the checkpoint phase was already applied.
        let mut resumed_cursor = events
            .iter()
            .take_while(|e| e.at_phase < resumed.phases_run())
            .count();
        prop_assert_eq!(resumed_cursor, cursor);
        records.extend(drive(&mut resumed, &events, &mut resumed_cursor, None));

        prop_assert_eq!(records.len(), reference_records.len());
        prop_assert_eq!(records, reference_records);
        prop_assert_eq!(resumed.snapshot().to_bytes(), reference_bytes);
    }
}

/// A fully-featured snapshot: faults, guard, an applied event, a few
/// phases of history — every optional component present.
fn rich_snapshot() -> EngineSnapshot {
    let instance = builders::braess();
    let policy = stock_policy_zoo(instance.latency_upper_bound()).swap_remove(4);
    let dynamics: &dyn ReroutingPolicy = &*policy;
    let config = SimulationConfig::new(0.25, 20)
        .with_flows()
        .with_faults(
            FaultPlan::new(11)
                .with_drop_probability(0.2)
                .unwrap()
                .with_staleness(0, 2)
                .unwrap(),
        )
        .with_guard(GuardConfig::default());
    let mut sim = Simulation::new(&instance, dynamics, &FlowVec::uniform(&instance), &config);
    for _ in 0..7 {
        sim.step().unwrap();
    }
    sim.apply_event(&[EventAction::ScaleLatency {
        edge: EdgeId::from_index(1),
        factor: 1.3,
    }])
    .unwrap();
    for _ in 0..3 {
        sim.step().unwrap();
    }
    sim.snapshot()
}

#[test]
fn rich_snapshot_round_trips_bit_exactly() {
    let snapshot = rich_snapshot();
    assert!(snapshot.guard.is_some(), "guard state must be present");
    assert!(snapshot.fault.is_some(), "fault state must be present");
    let bytes = snapshot.to_bytes();
    let decoded = EngineSnapshot::from_bytes(&bytes).unwrap();
    assert_eq!(decoded.to_bytes(), bytes);
}

#[test]
fn every_single_byte_flip_is_caught_typed() {
    // Satellite: corruption anywhere — header, checksum, payload —
    // must surface as a typed SnapshotError, never a panic and never
    // a silently-accepted snapshot.
    let bytes = rich_snapshot().to_bytes();
    for position in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[position] ^= 0x01;
        assert!(
            EngineSnapshot::from_bytes(&corrupt).is_err(),
            "flipping byte {position} ({:#04x}) was not detected",
            bytes[position],
        );
    }
}

#[test]
fn every_truncation_is_caught_typed() {
    let bytes = rich_snapshot().to_bytes();
    // Every proper prefix must fail typed (torn write at any point).
    for cut in (0..bytes.len()).step_by(97) {
        let error = EngineSnapshot::from_bytes(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(
                error,
                SnapshotError::Truncated { .. } | SnapshotError::Corrupt(_)
            ),
            "prefix of {cut} bytes gave {error:?}"
        );
    }
}

#[test]
fn foreign_schema_version_is_refused() {
    let bytes = rich_snapshot().to_bytes();
    let text = String::from_utf8(bytes).unwrap();
    let bumped = text.replacen(
        &format!("v{SNAPSHOT_VERSION} "),
        &format!("v{} ", SNAPSHOT_VERSION + 1),
        1,
    );
    match EngineSnapshot::from_bytes(bumped.as_bytes()) {
        Err(SnapshotError::SchemaMismatch { found, supported }) => {
            assert_eq!(found, SNAPSHOT_VERSION + 1);
            assert_eq!(supported, SNAPSHOT_VERSION);
        }
        other => panic!("expected SchemaMismatch, got {other:?}"),
    }
}

#[test]
fn fault_snapshot_round_trips_through_serde() {
    let instance = builders::braess();
    let plan = FaultPlan::new(42)
        .with_drop_probability(0.25)
        .unwrap()
        .with_partial_updates(0.75)
        .unwrap()
        .with_noise(0.01)
        .unwrap()
        .with_staleness(0, 4)
        .unwrap();
    let state = FaultState::new(plan, &instance).unwrap();
    let snapshot = state.snapshot();
    let json = serde_json::to_string(&snapshot).unwrap();
    let back: FaultSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(serde_json::to_string(&back).unwrap(), json);
}

#[test]
fn guard_snapshot_round_trips_through_serde() {
    let mut guard = SmoothnessGuard::new(GuardConfig::default());
    // Record a violation and a restore so the log is non-trivial.
    guard.observe(0, 0.0, 1.0);
    guard.observe(1, 0.25, 2.0);
    guard.observe(2, 0.5, 1.5);
    let snapshot = guard.snapshot();
    let json = serde_json::to_string(&snapshot).unwrap();
    let back: GuardSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(serde_json::to_string(&back).unwrap(), json);
    // And the restored guard continues from the same state.
    let restored = SmoothnessGuard::from_snapshot(GuardConfig::default(), &back).unwrap();
    assert_eq!(restored.scale(), guard.scale());
    assert_eq!(restored.log().events().len(), guard.log().events().len());
}

#[test]
fn sparse_fault_plan_decodes_with_defaults() {
    // The manual serde impl tolerates knobs missing from older
    // checkpoints: absent keys take the plan defaults.
    let sparse: FaultPlan = serde_json::from_str(r#"{"seed": 9}"#).unwrap();
    assert_eq!(sparse.seed(), 9);
    assert_eq!(sparse.drop_probability(), 0.0);
    assert_eq!(sparse.refresh_fraction(), 1.0);
    assert!(sparse.staleness().is_empty());
}
